"""Code-generation details: source structure, runtime bindings, the
counting variant's static costs, and the CLI driver."""

import math

import numpy as np
import pytest

from repro.codegen.compile import compile_primal, compile_raw
from repro.codegen.pygen import generate_source
from repro.codegen.runtime import direct_bindings, dispatch_bindings
from repro.frontend import kernel
from repro.interp.cost_model import (
    DEFAULT_COST_MODEL,
    expr_cost,
    static_function_cost,
)
from repro.ir import builder as b
from repro.ir.types import DType
from repro.util.errors import ExecutionError


@kernel
def cg_simple(x: float, n: int) -> float:
    acc = 0.0
    for i in range(n):
        acc = acc + sin(x) / (i + 1.0)
    return acc


class TestGeneratedSource:
    def test_source_is_valid_python(self):
        src = generate_source(cg_simple.ir)
        compile(src, "<test>", "exec")  # must not raise

    def test_no_rounding_calls_in_all_f64_code(self):
        src = generate_source(cg_simple.ir)
        assert "_c32(" not in src and "_c16(" not in src

    def test_f32_code_rounds(self):
        @kernel
        def cg_f32(x: "f32") -> float:
            y: "f32" = x * x
            return y

        src = generate_source(cg_f32.ir)
        assert "_c32(" in src

    def test_intrinsics_via_bindings(self):
        src = generate_source(cg_simple.ir)
        assert "_i_sin(" in src

    def test_restricted_builtins(self):
        g = direct_bindings()
        assert "open" not in g["__builtins__"]
        assert "__import__" not in g["__builtins__"]

    def test_wrong_arity_raises(self):
        c = compile_primal(cg_simple.ir)
        with pytest.raises(ExecutionError, match="expected"):
            c(1.0)

    def test_dispatch_bindings_handle_floats_too(self):
        g = dispatch_bindings()
        assert g["_i_sin"](0.5) == math.sin(0.5)
        assert g["_c32"](math.pi) == float(np.float32(math.pi))


class TestArrayConventions:
    @kernel
    def cg_arr(n: int, a: "f64[]") -> float:  # noqa: N805
        for i in range(n):
            a[i] = a[i] * 2.0
        s = 0.0
        for i in range(n):
            s = s + a[i]
        return s

    def test_ndarray_written_back(self):
        a = np.array([1.0, 2.0])
        v = self.cg_arr(2, a)
        np.testing.assert_array_equal(a, [2.0, 4.0])
        assert v == 6.0

    def test_sequence_inputs_accepted(self):
        assert self.cg_arr(2, (1.0, 2.0)) == 6.0

    def test_list_fast_path(self):
        lst = [1.0, 2.0]
        self.cg_arr(2, lst)
        assert lst == [2.0, 4.0]  # mutated in place


class TestStaticCosts:
    def test_expr_cost_charges_promotion_casts(self):
        e = b.add(b.name("a", DType.F32), b.name("c", DType.F64))
        e.dtype = DType.F64
        cm = DEFAULT_COST_MODEL
        assert expr_cost(e, cm) == cm.add[DType.F64] + cm.cast

    def test_expr_cost_cheaper_at_f32(self):
        hi = b.mul(b.name("a", DType.F64), b.name("c", DType.F64))
        hi.dtype = DType.F64
        lo = b.mul(b.name("a", DType.F32), b.name("c", DType.F32))
        lo.dtype = DType.F32
        assert expr_cost(lo, DEFAULT_COST_MODEL) < expr_cost(
            hi, DEFAULT_COST_MODEL
        )

    def test_approx_call_costs_less(self):
        e = b.call("exp", [b.name("a", DType.F64)])
        cm = DEFAULT_COST_MODEL
        assert expr_cost(e, cm, approx={"exp"}) < expr_cost(e, cm)

    def test_static_function_cost_scales_with_trips(self):
        c10 = static_function_cost(cg_simple.ir, {"i": 10.0})
        c100 = static_function_cost(cg_simple.ir, {"i": 100.0})
        assert 8.0 < c100 / c10 < 12.0

    def test_static_matches_dynamic_on_constant_loop(self):
        @kernel
        def cg_const(x: float) -> float:
            s = 0.0
            for i in range(16):
                s = s + x * x
            return s

        static = static_function_cost(cg_const.ir, {})
        compiled = compile_raw(cg_const.ir, counting=True)
        _, extras = compiled(1.5)
        assert extras["cost"] == pytest.approx(static, rel=0.05)


class TestRunAllCLI:
    def test_figure_subcommand(self, capsys, monkeypatch):
        from repro.experiments import run_all
        from repro.experiments.figures import FIGURES

        monkeypatch.setattr(FIGURES[5], "sizes", (50, 150))
        assert run_all.main(["--figure", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "CHEF time(ms)" in out

    def test_fig9_subcommand(self, capsys, monkeypatch):
        from repro.experiments import run_all, tables

        original = tables.hpccg_sensitivity
        monkeypatch.setattr(
            tables, "hpccg_sensitivity",
            lambda nz=10, max_iter=60: original(4, 15),
        )
        assert run_all.main(["--figure", "9"]) == 0
        out = capsys.readouterr().out
        assert "split point" in out

    def test_csv_output(self, tmp_path, monkeypatch, capsys):
        from repro.experiments import run_all
        from repro.experiments.figures import FIGURES

        monkeypatch.setattr(FIGURES[4], "sizes", (50,))
        run_all.main(["--figure", "4", "--csv", str(tmp_path)])
        assert (tmp_path / "figure4.csv").exists()
        text = (tmp_path / "figure4.csv").read_text()
        assert text.splitlines()[0].startswith("iterations")
