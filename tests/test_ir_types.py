"""Unit tests for the IR type system."""

import pytest

from repro.ir.types import (
    ArrayType,
    DType,
    F32,
    F64,
    I64,
    BOOL,
    ScalarType,
    machine_eps,
    parse_annotation,
    promote,
)


class TestDType:
    def test_float_predicates(self):
        assert DType.F16.is_float
        assert DType.F32.is_float
        assert DType.F64.is_float
        assert not DType.I64.is_float
        assert not DType.B1.is_float

    def test_integer_predicate(self):
        assert DType.I64.is_integer
        assert not DType.F64.is_integer

    def test_bits(self):
        assert DType.F16.bits == 16
        assert DType.F32.bits == 32
        assert DType.F64.bits == 64
        assert DType.I64.bits == 64
        assert DType.B1.bits == 1


class TestPromotion:
    def test_same_dtype(self):
        assert promote(DType.F32, DType.F32) is DType.F32

    def test_float_widening(self):
        assert promote(DType.F32, DType.F64) is DType.F64
        assert promote(DType.F16, DType.F32) is DType.F32

    def test_int_float(self):
        assert promote(DType.I64, DType.F32) is DType.F32
        assert promote(DType.F64, DType.I64) is DType.F64

    def test_bool_promotes_to_int(self):
        assert promote(DType.B1, DType.I64) is DType.I64
        assert promote(DType.B1, DType.B1) is DType.B1

    def test_commutative(self):
        for a in DType:
            for b in DType:
                assert promote(a, b) is promote(b, a)


class TestMachineEps:
    def test_ieee_values(self):
        assert machine_eps(DType.F64) == 2.0 ** -52
        assert machine_eps(DType.F32) == 2.0 ** -23
        assert machine_eps(DType.F16) == 2.0 ** -10

    def test_no_eps_for_ints(self):
        with pytest.raises(KeyError):
            machine_eps(DType.I64)

    def test_eps_is_gap_above_one(self):
        # eps is the gap between 1.0 and the next representable value
        import numpy as np

        assert machine_eps(DType.F32) == float(
            np.float32(1) + np.finfo(np.float32).eps
        ) - 1.0


class TestAnnotations:
    def test_builtins(self):
        assert parse_annotation(float) == F64
        assert parse_annotation(int) == I64
        assert parse_annotation(bool) == BOOL

    def test_strings(self):
        assert parse_annotation("f32") == F32
        assert parse_annotation("f64") == F64
        assert parse_annotation("double") == F64
        assert parse_annotation("half") == ScalarType(DType.F16)

    def test_arrays(self):
        assert parse_annotation("f64[]") == ArrayType(DType.F64)
        assert parse_annotation("i64[]") == ArrayType(DType.I64)
        assert parse_annotation("f32 []") == ArrayType(DType.F32)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            parse_annotation("quaternion")

    def test_type_str(self):
        assert str(F32) == "f32"
        assert str(ArrayType(DType.F64)) == "f64[]"
        assert ArrayType(DType.F64).is_array
        assert not F64.is_array
