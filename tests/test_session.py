"""Session facade tests: SessionConfig serialization, shared-resource
reuse (estimator memo + sweep cache hit counters), bit-identical
equivalence between the legacy free functions and the session methods,
provenance stamping, the plan/runs facades, the deprecation contract,
and the error-hierarchy mapping."""

import json

import numpy as np
import pytest

import repro
from repro import (
    ConfigError,
    InputError,
    ReproError,
    Session,
    SessionConfig,
    StoreError,
    UnknownNameError,
)
from repro.apps import blackscholes as bs
from repro.apps import kmeans as km
from repro.core.api import clear_estimator_memo, estimator_memo_stats
from repro.core.models import AdaptModel
from repro.frontend import kernel
from repro.ir.types import DType
from repro.sweep import SweepCache, random_sweep
from repro.sweep.cache import digest_inputs


@kernel
def sess_kernel(x: "f32", y: "f32") -> float:
    z: "f32" = x * y + x
    return z


def _bs_samples(n=16, seed=7):
    return random_sweep(
        {"sptprice": (25.0, 150.0), "volatility": (0.05, 0.65)},
        n=n,
        seed=seed,
    )


_BS_FIXED = {"strike": 100.0, "rate": 0.05, "otime": 0.5, "otype": 0}


def _front_tuples(result):
    return [(p.key, p.error, p.cycles) for p in result.front.points]


def _history_tuples(result):
    return [
        (c.key, c.error, c.cycles, c.strategy, c.index)
        for c in result.evaluations
    ]


class TestSessionConfig:
    def test_roundtrip(self):
        cfg = SessionConfig(
            workers=2,
            seed=9,
            strategies=("greedy", "delta"),
            aggregate=("percentile", 90.0),
            demote_to=DType.F16,
            cache_dir="/tmp/x",
        )
        blob = cfg.to_json()
        back = SessionConfig.from_json(blob)
        assert back == cfg
        assert json.loads(blob)["demote_to"] == DType.F16.value

    def test_fingerprint_stable_and_sensitive(self):
        a = SessionConfig()
        b = SessionConfig()
        c = SessionConfig(seed=1)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_with_options(self):
        cfg = SessionConfig().with_options(budget=16)
        assert cfg.budget == 16
        assert SessionConfig().budget != 16 or True  # frozen original
        with pytest.raises(ConfigError):
            SessionConfig().with_options(nonsense=1)

    def test_validation(self):
        with pytest.raises(ConfigError):
            SessionConfig(error_metric="bogus")
        with pytest.raises(ConfigError):
            SessionConfig(budget=0)
        with pytest.raises(ConfigError):
            SessionConfig(opt_level=7)
        with pytest.raises(ConfigError):
            SessionConfig(workers=-1)
        with pytest.raises(ConfigError):
            SessionConfig(aggregate=np.max)
        with pytest.raises(ConfigError):
            SessionConfig.from_dict({"bogus_key": 1})
        # ConfigError is still a ValueError for old callers
        with pytest.raises(ValueError):
            SessionConfig(budget=-3)

    def test_demote_to_accepts_raw_value(self):
        cfg = SessionConfig.from_dict({"demote_to": DType.F16.value})
        assert cfg.demote_to is DType.F16

    def test_numeric_fields_coerced_from_json_strings(self):
        # hand-edited JSON configs must not smuggle strings past
        # validation into the search driver
        cfg = SessionConfig.from_dict({"workers": "4", "budget": "10"})
        assert cfg.workers == 4 and isinstance(cfg.workers, int)
        assert cfg.budget == 10 and isinstance(cfg.budget, int)
        with pytest.raises(ConfigError, match="integer"):
            SessionConfig(workers="lots")

    def test_bare_string_strategies_rejected(self):
        # tuple("greedy") must not become ('g','r','e','e','d','y')
        with pytest.raises(ConfigError, match="bare"):
            SessionConfig(strategies="greedy")
        with pytest.raises(ConfigError, match="bare"):
            SessionConfig.from_dict({"strategies": "greedy"})
        with pytest.raises(ConfigError, match="names"):
            SessionConfig(strategies=(1, 2))
        with pytest.raises(ConfigError, match="sequence"):
            SessionConfig.from_dict({"strategies": 42})

    def test_default_strategies_match_search_subsystem(self):
        # config.py keeps a literal copy (import-cycle avoidance);
        # this pins it to the search registry's default line-up
        from repro.search.strategies import DEFAULT_STRATEGIES

        assert SessionConfig().strategies == DEFAULT_STRATEGIES


class TestSharedResources:
    def test_estimator_memo_reused_across_calls(self):
        clear_estimator_memo()
        sess = Session()
        a = sess.estimate(sess_kernel)
        before = estimator_memo_stats()
        b = sess.estimate(sess_kernel)
        after = estimator_memo_stats()
        assert a is b
        assert after["hits"] == before["hits"] + 1
        assert after["entries"] == before["entries"]

    def test_sweep_cache_reused_across_calls(self):
        sess = Session(cache=SweepCache())
        samples = _bs_samples()
        r1 = sess.sweep(
            bs.bs_price, samples, fixed=_BS_FIXED, model=AdaptModel()
        )
        stats1 = sess.cache_stats()
        r2 = sess.sweep(
            bs.bs_price, samples, fixed=_BS_FIXED, model=AdaptModel()
        )
        stats2 = sess.cache_stats()
        assert stats1["hits"] == 0 and stats1["misses"] == 1
        assert stats2["hits"] == 1
        assert r2.from_cache and not r1.from_cache
        np.testing.assert_array_equal(r1.total_error, r2.total_error)

    def test_two_searches_share_memo_and_cache(self):
        """Acceptance: two calls on one Session reuse the shared
        estimator memo and sweep cache (hit counters move)."""
        clear_estimator_memo()
        sess = Session(cache=SweepCache())
        scen = bs.search_scenario(n_points=2, n_samples=8)
        sess.search(scen, budget=3, strategies=("greedy",))
        memo1 = sess.estimator_memo_stats()
        cache1 = sess.cache_stats()
        sess.search(scen, budget=3, strategies=("greedy",))
        memo2 = sess.estimator_memo_stats()
        cache2 = sess.cache_stats()
        assert memo2["hits"] > memo1["hits"]
        assert memo2["misses"] == memo1["misses"]  # nothing recompiled
        assert cache2["hits"] > cache1["hits"]

    def test_session_stats_shape(self):
        sess = Session(cache=SweepCache())
        stats = sess.stats()
        assert stats["session_id"] == sess.id
        assert "estimator_memo" in stats
        assert "sweep_cache" in stats


class TestLegacyWrappers:
    """The deprecated free functions warn and stay bit-identical."""

    def test_estimate_error_warns_and_matches(self):
        with pytest.warns(DeprecationWarning, match="estimate_error"):
            legacy = repro.estimate_error(sess_kernel)
        fresh = Session().estimate(sess_kernel)
        r1 = legacy.execute(1.5, 2.5)
        r2 = fresh.execute(1.5, 2.5)
        assert r1.total_error == r2.total_error
        assert r1.per_variable == r2.per_variable

    def test_sweep_error_warns_and_matches(self):
        samples = _bs_samples()
        with pytest.warns(DeprecationWarning, match="sweep_error"):
            legacy = repro.sweep_error(
                bs.bs_price, samples=samples, fixed=_BS_FIXED,
                model=AdaptModel(),
            )
        fresh = Session().sweep(
            bs.bs_price, samples, fixed=_BS_FIXED, model=AdaptModel()
        )
        np.testing.assert_array_equal(
            legacy.total_error, fresh.total_error
        )

    def test_greedy_tune_warns_and_matches(self):
        args = (100.0, 100.0, 0.05, 0.3, 0.5, 0)
        with pytest.warns(DeprecationWarning, match="greedy_tune"):
            legacy = repro.greedy_tune(bs.bs_price, args, 1e-8)
        fresh = Session().tune(bs.bs_price, 1e-8, args=args)
        assert legacy.config.demotions == fresh.config.demotions
        assert legacy.estimated_error == fresh.estimated_error

    def test_robust_tune_warns_and_matches(self):
        samples = _bs_samples()
        with pytest.warns(DeprecationWarning, match="robust_tune"):
            legacy = repro.robust_tune(
                bs.bs_price, samples=samples, threshold=1e-9,
                fixed=_BS_FIXED,
            )
        fresh = Session().tune(
            bs.bs_price, 1e-9, samples=samples, fixed=_BS_FIXED
        )
        assert legacy.config.demotions == fresh.config.demotions
        assert legacy.estimated_error == fresh.estimated_error

    def test_search_warns_and_is_bit_identical(self):
        """Acceptance: session.search == legacy repro.search.search,
        front AND full evaluation history, serial and parallel."""
        scen = km.search_scenario()
        with pytest.warns(DeprecationWarning, match="search"):
            legacy = repro.search.search(
                scen.kernel, scen.points, scen.threshold,
                candidates=scen.candidates, samples=scen.samples,
                fixed=scen.fixed, budget=6,
            )
        serial = Session().search(scen, budget=6)
        assert _front_tuples(legacy) == _front_tuples(serial)
        assert _history_tuples(legacy) == _history_tuples(serial)
        parallel = Session().search(scen, budget=6, workers=2)
        assert parallel.parallel
        assert _front_tuples(legacy) == _front_tuples(parallel)
        assert _history_tuples(legacy) == _history_tuples(parallel)

    def test_warning_mentions_removal(self):
        with pytest.warns(DeprecationWarning, match="2.0"):
            repro.greedy_tune(
                bs.bs_price, (100.0, 100.0, 0.05, 0.3, 0.5, 0), 1e-8
            )

    def test_search_cli_alias_warns(self, capsys):
        from repro.search.__main__ import main as alias_main

        with pytest.warns(DeprecationWarning, match="repro.search"):
            code = alias_main(["--list"])
        assert code == 0
        assert "available scenarios" in capsys.readouterr().out


class TestSessionMethods:
    def test_estimate_at(self):
        sess = Session()
        rep = sess.estimate_at(sess_kernel, (1.5, 2.5))
        assert rep.total_error > 0

    def test_session_model_scopes_to_sweeps_not_tuning(self):
        # Session(model=Taylor) changes estimates/sweeps; tuning's
        # contribution ranking must stay on the ADAPT demotion model
        from repro.core.models import TaylorModel

        args = (100.0, 100.0, 0.05, 0.3, 0.5, 0)
        plain = Session().tune(bs.bs_price, 1e-8, args=args)
        taylor_sess = Session(model=TaylorModel())
        tuned = taylor_sess.tune(bs.bs_price, 1e-8, args=args)
        assert tuned.config.demotions == plain.config.demotions
        assert tuned.estimated_error == plain.estimated_error

    def test_tune_mode_inference(self):
        sess = Session()
        samples = _bs_samples(n=8)
        robust = sess.tune(
            bs.bs_price, 1e-9, samples=samples, fixed=_BS_FIXED
        )
        assert robust.sweep is not None
        point = sess.tune(
            bs.bs_price, 1e-9, args=(100.0, 100.0, 0.05, 0.3, 0.5, 0)
        )
        assert point.sweep is None
        with pytest.raises(ConfigError, match="samples="):
            sess.tune(bs.bs_price, 1e-9, robust=True)
        with pytest.raises(ConfigError, match="args="):
            sess.tune(bs.bs_price, 1e-9)
        # ambiguous: both inputs, mode unspecified
        point_args = (100.0, 100.0, 0.05, 0.3, 0.5, 0)
        with pytest.raises(ConfigError, match="robust="):
            sess.tune(
                bs.bs_price, 1e-9, args=point_args, samples=samples,
                fixed=_BS_FIXED,
            )
        # explicit mode resolves it either way
        explicit = sess.tune(
            bs.bs_price, 1e-9, args=point_args, samples=samples,
            fixed=_BS_FIXED, robust=False,
        )
        assert explicit.sweep is None

    def test_point_tune_rejects_robust_only_knobs(self):
        # fixed=/aggregate= are robust-mode parameters; silently
        # ignoring them would tune something else than asked
        sess = Session()
        point_args = (100.0, 100.0, 0.05, 0.3, 0.5, 0)
        with pytest.raises(ConfigError, match="robust tuning only"):
            sess.tune(
                bs.bs_price, 1e-9, args=point_args,
                fixed={"otype": 0}, robust=False,
            )
        with pytest.raises(ConfigError, match="robust tuning only"):
            sess.tune(
                bs.bs_price, 1e-9, args=point_args, aggregate="mean",
            )

    def test_search_by_scenario_name(self):
        res = Session().search("kmeans", budget=3, strategies=("greedy",))
        assert res.kernel == "kmeans_cost"
        assert len(res.front) >= 1
        with pytest.raises(UnknownNameError, match="unknown app"):
            Session().search("not-an-app")

    def test_search_requires_points_and_threshold(self):
        with pytest.raises(ConfigError, match="points="):
            Session().search(bs.bs_price)

    def test_provenance_stamped_and_sequenced(self):
        sess = Session()
        samples = _bs_samples(n=8)
        rep = sess.sweep(
            bs.bs_price, samples, fixed=_BS_FIXED, model=AdaptModel()
        )
        tun = sess.tune(
            bs.bs_price, 1e-9, samples=samples, fixed=_BS_FIXED
        )
        assert rep.provenance["session_id"] == sess.id
        assert rep.provenance["method"] == "sweep"
        assert tun.provenance["method"] == "tune"
        assert tun.provenance["seq"] == rep.provenance["seq"] + 1
        assert (
            rep.provenance["config_fingerprint"]
            == sess.config.fingerprint()
        )

    def test_search_result_provenance_in_dict(self):
        sess = Session()
        res = sess.search("kmeans", budget=3, strategies=("greedy",))
        assert res.provenance["method"] == "search"
        assert res.to_dict()["provenance"] == res.provenance

    def test_config_defaults_flow_into_search(self):
        # scenario defaults (budget) win over config, config fills the
        # rest (strategies, seed)
        cfg = SessionConfig(budget=3, strategies=("greedy",), seed=5)
        scen = km.search_scenario()
        res = Session(cfg).search(
            scen.kernel, scen.points, scen.threshold,
            candidates=scen.candidates,
        )
        assert res.budget == 3
        assert res.strategies == ("greedy",)
        # via the scenario, its own budget takes precedence
        res2 = Session(cfg).search("kmeans")
        assert res2.budget == scen.budget
        assert res2.strategies == ("greedy",)

    def test_session_store_used_by_search(self, tmp_path):
        sess = Session(store=tmp_path / "runs")
        res = sess.search("kmeans", budget=3, strategies=("greedy",))
        assert res.run_id is not None
        resumed = sess.search(
            "kmeans", budget=3, strategies=("greedy",), resume=True
        )
        assert resumed.resumed and resumed.n_restored == res.n_evaluated
        assert _front_tuples(resumed) == _front_tuples(res)

    def test_runs_requires_store(self):
        with pytest.raises(ConfigError, match="store"):
            Session().runs()
        with pytest.raises(ConfigError, match="store"):
            Session().plan(all_apps=True)


class TestPlanFacade:
    def test_plan_entries_and_run(self, tmp_path):
        sess = Session(store=tmp_path / "runs")
        orch = sess.plan(
            ["kmeans"], defaults={"budget": 3, "strategies": ("greedy",)}
        )
        assert orch.session is sess
        runs = orch.run()
        assert len(runs) == 1 and runs[0].ok
        # resumable: a second orchestration restores from the store
        orch2 = sess.plan(
            ["kmeans"], defaults={"budget": 3, "strategies": ("greedy",)}
        )
        runs2 = orch2.run()
        assert runs2[0].result.resumed

    def test_plan_validation(self, tmp_path):
        sess = Session(store=tmp_path / "runs")
        with pytest.raises(ConfigError, match="exactly one"):
            sess.plan(["kmeans"], all_apps=True)
        with pytest.raises(ConfigError, match="no entries"):
            sess.plan([])
        with pytest.raises(ConfigError):
            sess.plan([42])
        # typo'd names fail fast, before anything runs
        with pytest.raises(UnknownNameError, match="blackschols"):
            sess.plan(["blackschols"])

    def test_plan_file(self, tmp_path):
        plan = {
            "defaults": {"seed": 0},
            "entries": [
                {"scenario": "kmeans", "budget": 3,
                 "strategies": ["greedy"]}
            ],
        }
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan))
        sess = Session(store=tmp_path / "runs")
        orch = sess.plan(plan_file=plan_path)
        orch.run()
        assert orch.ok

    def test_plan_file_defaults_validated(self, tmp_path):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(
            {"entries": [{"scenario": "kmeans"}]}
        ))
        sess = Session(store=tmp_path / "runs")
        with pytest.raises(ConfigError, match="unknown override"):
            sess.plan(plan_file=plan_path, defaults={"budgettt": 3})
        with pytest.raises(ConfigError, match="unknown override"):
            sess.plan(plan_file=plan_path, defaults={"store": "x"})

    def test_robust_tune_honors_config_opt_level(self):
        # opt_level=0 must reach the contribution sweep (the ablation
        # path); results agree with the default pipeline bit-for-bit
        samples = _bs_samples(n=8)
        base = Session().tune(
            bs.bs_price, 1e-9, samples=samples, fixed=_BS_FIXED
        )
        ablate = Session(SessionConfig(opt_level=0)).tune(
            bs.bs_price, 1e-9, samples=samples, fixed=_BS_FIXED
        )
        assert ablate.config.demotions == base.config.demotions


class TestRunsFacade:
    def _seed_store(self, tmp_path, budgets=(3, 4)):
        sess = Session(store=tmp_path / "runs")
        for b in budgets:
            sess.search("kmeans", budget=b, strategies=("greedy",))
        return sess

    def test_list_and_compare(self, tmp_path):
        sess = self._seed_store(tmp_path)
        view = sess.runs()
        manifests = view.list()
        assert len(manifests) == 2
        rows = view.compare()
        assert {r["label"] for r in rows} == {"kmeans"}
        assert all(r["completed"] for r in rows)
        assert "kmeans" in view.format_compare()

    def test_prune(self, tmp_path):
        sess = self._seed_store(tmp_path)
        view = sess.runs()
        kept_id = view.list()[0]["run_id"]
        dry = view.prune(max_runs=1, dry_run=True)
        assert len(dry) == 1 and len(view.list()) == 2
        pruned = view.prune(max_runs=1)
        assert len(pruned) == 1
        remaining = view.list()
        assert len(remaining) == 1
        assert remaining[0]["run_id"] == kept_id
        with pytest.raises(ConfigError, match="criterion"):
            view.prune()
        # negative knobs are rejected, never coerced into "prune all"
        with pytest.raises(ConfigError, match="max_runs"):
            view.prune(max_runs=-1)
        with pytest.raises(ConfigError, match="max_age_days"):
            view.prune(max_age_days=-0.5)
        with pytest.raises(ConfigError, match="min_age_hours"):
            view.prune(incomplete=True, min_age_hours=-1)
        assert len(view.list()) == 1  # nothing was deleted

    def test_partial_run_shows_stored_record_count(self, tmp_path):
        # a crashed run's manifest counter is stuck at 0, but its
        # checkpointed records are the resumable work — list/compare
        # must count those, not the stale manifest field
        sess = self._seed_store(tmp_path, budgets=(3,))
        store = sess.store
        done = store.list_runs()[0]
        records = store.load_records(done["run_id"])
        partial = dict(done)
        partial["run_id"] = "c" * 64
        partial["completed"] = False
        partial["n_evaluations"] = 0
        store.save_manifest(partial["run_id"], partial)
        store.checkpoint(partial["run_id"], records[:2])
        view = sess.runs()
        row = next(
            r for r in view.compare() if r["run_id"] == "c" * 64
        )
        assert not row["completed"]
        assert row["n_evaluations"] == 2
        listing = view.format_list()
        # skip the header lines (the store path may contain "partial")
        partial_line = next(
            ln
            for ln in listing.splitlines()[2:]
            if " partial " in ln
        )
        assert "    2" in partial_line

    def test_prune_incomplete(self, tmp_path):
        sess = self._seed_store(tmp_path, budgets=(3,))
        store = sess.store
        # fabricate a partial run: manifest without completion
        manifest = dict(store.list_runs()[0])
        manifest["run_id"] = "f" * 64
        manifest["completed"] = False
        store.save_manifest(manifest["run_id"], manifest)
        view = sess.runs()
        assert len(view.list()) == 2
        # default recency guard presumes a fresh partial run is live
        assert view.prune(incomplete=True) == []
        pruned = view.prune(incomplete=True, min_age_hours=0)
        assert [m["run_id"] for m in pruned] == ["f" * 64]
        assert len(view.list()) == 1

    def test_prune_incomplete_collects_orphaned_dirs(self, tmp_path):
        # a run dir with no readable manifest (crash before the first
        # manifest write, format bump) must still be reclaimable
        sess = self._seed_store(tmp_path, budgets=(3,))
        store = sess.store
        orphan = store.root / "deadbeefdir"
        orphan.mkdir()
        (orphan / "evals.pkl").write_bytes(b"garbage")
        pruned = store.prune(
            incomplete=True, dry_run=True, min_age_hours=0
        )
        assert any(m.get("orphaned") for m in pruned)
        assert orphan.is_dir()  # dry run touches nothing
        pruned = store.prune(incomplete=True, min_age_hours=0)
        assert any(m["run_id"] == "deadbeefdir" for m in pruned)
        assert not orphan.exists()
        assert len(store.list_runs()) == 1  # completed run survives

    def test_prune_never_touches_non_run_directories(self, tmp_path):
        # colocated data that never was a run dir must survive the GC,
        # and runs written by a NEWER layout format are left alone
        sess = self._seed_store(tmp_path, budgets=(3,))
        store = sess.store
        archive = store.root / "archive"
        archive.mkdir()
        (archive / "notes.txt").write_text("keep me")
        newer = store.root / ("9" * 32)
        newer.mkdir()
        (newer / "manifest.json").write_text(
            json.dumps({"format": 999, "run_id": "9" * 64})
        )
        pruned = store.prune(incomplete=True, min_age_hours=0)
        assert pruned == []
        assert archive.is_dir() and (archive / "notes.txt").exists()
        assert newer.is_dir()

    def test_diff_identical_and_prefix_resolution(self, tmp_path):
        sess = self._seed_store(tmp_path)
        view = sess.runs()
        ids = [m["run_id"] for m in view.list()]
        diff = view.diff(ids[0][:12], ids[1][:12])
        assert isinstance(diff["identical"], bool)
        assert "front diff" in view.format_diff(diff)
        with pytest.raises(UnknownNameError, match="no stored run"):
            view.diff("0000dead", ids[0])

    def test_diff_detects_front_changes(self, tmp_path):
        sess = self._seed_store(tmp_path, budgets=(3,))
        store = sess.store
        manifest = dict(store.list_runs()[0])
        twin = dict(manifest)
        twin["run_id"] = "e" * 64
        front = [dict(p) for p in (twin.get("front") or [])]
        assert front
        front[0]["cycles"] = front[0]["cycles"] + 1.0
        twin["front"] = front
        store.save_manifest(twin["run_id"], twin)
        diff = store.diff_fronts(manifest["run_id"], "e" * 64)
        assert not diff["identical"]
        changed = [c for c in diff["common"] if not c["same"]]
        assert len(changed) == 1

    def test_diff_incomplete_raises_store_error(self, tmp_path):
        sess = self._seed_store(tmp_path, budgets=(3,))
        store = sess.store
        manifest = dict(store.list_runs()[0])
        partial = dict(manifest)
        partial["run_id"] = "d" * 64
        partial["completed"] = False
        store.save_manifest(partial["run_id"], partial)
        with pytest.raises(StoreError, match="never completed"):
            store.diff_fronts(manifest["run_id"], "d" * 64)


class TestErrorHierarchy:
    def test_digest_inputs_raises_input_error(self):
        with pytest.raises(InputError) as exc:
            digest_inputs([object()])
        assert isinstance(exc.value, TypeError)
        assert isinstance(exc.value, ReproError)
        with pytest.raises(InputError, match="element 1"):
            digest_inputs([[1.0, None, 2.0]])

    def test_search_points_input_error(self):
        with pytest.raises(InputError, match="argument tuples"):
            Session().search(bs.bs_price, [1.0, 2.0], 1e-6)

    def test_resume_without_store_config_error(self):
        with pytest.raises(ConfigError, match="requires store="):
            from repro.search.api import run_search

            run_search(km.search_scenario().kernel, [(1,)], 1e-6,
                       resume=True)

    def test_unknown_strategy_is_config_and_key_error(self):
        from repro.search.strategies import get_strategy

        with pytest.raises(UnknownNameError) as exc:
            get_strategy("bogus")
        assert isinstance(exc.value, KeyError)
        assert isinstance(exc.value, ValueError)
        assert "unknown search strategy" in str(exc.value)

    def test_plan_validation_errors(self, tmp_path):
        from repro.search.orchestrator import SearchOrchestrator

        with pytest.raises(UnknownNameError, match="unknown plan"):
            SearchOrchestrator.from_plan(
                {"entries": [{"scenario": "nope"}]}, store=tmp_path
            )
        with pytest.raises(ConfigError, match="unknown override"):
            SearchOrchestrator.from_plan(
                {"entries": [{"scenario": "kmeans", "bogus": 1}]},
                store=tmp_path,
            )

    def test_sampler_and_aggregate_config_errors(self):
        from repro.sweep.aggregate import resolve_aggregator
        from repro.sweep.samplers import random_sweep as rs

        with pytest.raises(ConfigError):
            resolve_aggregator("bogus")
        with pytest.raises(ConfigError):
            rs({"x": (0.0, 1.0)}, n=0, seed=1)

    def test_restore_misuse_is_store_error(self):
        from repro.search.evaluate import CandidateEvaluator

        ev = CandidateEvaluator(
            km.search_scenario().kernel,
            km.search_scenario().points,
        )
        ev.history.append(object())
        with pytest.raises(StoreError, match="fresh evaluator"):
            ev.restore([])

    def test_non_contiguous_restore_still_a_value_error(self):
        # historically a ValueError; InvalidRecordError keeps that
        from repro.search.evaluate import CandidateEvaluator

        scen = km.search_scenario()
        res = Session().search(scen, budget=3, strategies=("greedy",))
        gapped = res.evaluations[-1]
        assert gapped.index > 0  # restoring it alone leaves a gap
        ev = CandidateEvaluator(scen.kernel, scen.points)
        with pytest.raises(repro.InvalidRecordError) as exc:
            ev.restore([gapped])
        assert isinstance(exc.value, ValueError)
        assert isinstance(exc.value, StoreError)
