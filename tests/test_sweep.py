"""Tests for the batched input-sweep engine (repro.sweep) and
distribution-robust tuning (repro.tuning.robust)."""

from __future__ import annotations

import math
import os

import numpy as np
import pytest

from repro.apps import blackscholes as bs
from repro.apps import simpsons
from repro.core.api import (
    cached_error_estimator,
    clear_estimator_memo,
    estimate_error,
)
from repro.core.models import AdaptModel, ExternalModel, TaylorModel
from repro.codegen.npgen import UnvectorizableError, generate_batch_source
from repro.frontend.registry import kernel
from repro.ir.fingerprint import ir_fingerprint
from repro.sweep import (
    BatchReport,
    SweepCache,
    explicit_sweep,
    grid_sweep,
    random_sweep,
    summarize,
    sweep_error,
)
from repro.sweep.aggregate import resolve_aggregator
from repro.sweep.cache import digest_inputs, make_key
from repro.tuning import apply_precision, greedy_tune, robust_tune
from repro.tuning.greedy import TuningResult
from repro.tuning.config import PrecisionConfig
from repro.util.errors import ExecutionError


def _bs_sweep(n, seed=11):
    rng = np.random.default_rng(seed)
    spt = rng.uniform(25.0, 150.0, n)
    return {
        "sptprice": spt,
        "strike": spt * rng.uniform(0.8, 1.2, n),
        "rate": rng.uniform(0.02, 0.1, n),
        "volatility": rng.uniform(0.05, 0.65, n),
        "otime": rng.uniform(0.05, 1.0, n),
        "otype": rng.integers(0, 2, n).astype(np.int64),
    }


def _bs_point(sw, i):
    return (
        float(sw["sptprice"][i]),
        float(sw["strike"][i]),
        float(sw["rate"][i]),
        float(sw["volatility"][i]),
        float(sw["otime"][i]),
        int(sw["otype"][i]),
    )


def _assert_point_matches(batch, scalar_report, i, rtol=1e-12):
    p = batch.point(i)
    assert p.value == pytest.approx(scalar_report.value, rel=rtol, abs=0)
    assert p.total_error == pytest.approx(
        scalar_report.total_error, rel=rtol, abs=0
    )
    for v, e in scalar_report.per_variable.items():
        assert p.per_variable.get(v, 0.0) == pytest.approx(
            e, rel=rtol, abs=0
        ), v


# -- batched execution ---------------------------------------------------------


class TestBatchedExecution:
    def test_blackscholes_vectorized_matches_scalar(self):
        sw = _bs_sweep(60)
        est = estimate_error(bs.bs_price, model=AdaptModel())
        batch = est.execute_batch(*(sw[p] for p in (
            "sptprice", "strike", "rate", "volatility", "otime", "otype"
        )))
        assert batch.backend == "vectorized"
        assert batch.n == 60
        for i in range(60):
            _assert_point_matches(batch, est.execute(*_bs_point(sw, i)), i)

    def test_simpsons_loop_and_branches_vectorized(self):
        # simpson has a counted for-loop and an if/else on the iteration
        # parity — both must survive vectorization unchanged
        hi = np.linspace(math.pi / 2, math.pi, 25)
        est = estimate_error(simpsons.simpson, model=AdaptModel())
        batch = est.execute_batch(40, 0.0, hi)
        assert batch.backend == "vectorized"
        for i in range(25):
            _assert_point_matches(
                batch, est.execute(40, 0.0, float(hi[i])), i
            )

    def test_gradients_match_scalar(self):
        sw = _bs_sweep(20)
        est = estimate_error(bs.bs_price, model=AdaptModel())
        batch = est.execute_batch(*(sw[p] for p in (
            "sptprice", "strike", "rate", "volatility", "otime", "otype"
        )))
        for i in range(20):
            rep = est.execute(*_bs_point(sw, i))
            for g, v in rep.gradients.items():
                assert float(batch.gradients[g][i]) == pytest.approx(
                    v, rel=1e-12, abs=0
                )

    def test_taylor_model_batch(self):
        hi = np.linspace(1.0, math.pi, 15)
        est = estimate_error(simpsons.simpson, model=TaylorModel())
        batch = est.execute_batch(20, 0.0, hi)
        assert batch.backend == "vectorized"
        for i in range(15):
            _assert_point_matches(
                batch, est.execute(20, 0.0, float(hi[i])), i
            )

    def test_array_param_kernel_falls_back_to_loop(self):
        workload = bs.make_workload(8, seed=3)
        est = estimate_error(bs.bs_total, model=AdaptModel())
        # nothing batched: uniform arrays only -> loop backend, n=1
        batch = est.execute_batch(*workload)
        assert batch.backend == "loop"
        assert batch.n == 1
        rep = est.execute(*bs.make_workload(8, seed=3))
        _assert_point_matches(batch, rep, 0)

    def test_data_dependent_while_falls_back(self):
        @kernel
        def halving_sweeptest(x: float) -> float:
            y = x
            while y > 1.0:
                y = y * 0.5
            return y

        xs = np.array([3.0, 9.0, 1.5, 0.25])
        est = estimate_error(halving_sweeptest, model=AdaptModel())
        batch = est.execute_batch(xs)
        assert batch.backend == "loop"
        for i, x in enumerate(xs):
            _assert_point_matches(batch, est.execute(float(x)), i)

    def test_external_model_vectorizes_via_elementwise_binding(self):
        calls = []

        def user_err(dx, x, name):
            calls.append(name)
            return abs(dx) * 1e-7

        est = estimate_error(bs.cndf, model=ExternalModel(user_err))
        xs = np.linspace(-2.0, 2.0, 9)
        batch = est.execute_batch(xs)
        assert batch.backend == "vectorized"
        for i, x in enumerate(xs):
            _assert_point_matches(batch, est.execute(float(x)), i)

    def test_batch_size_mismatch_raises(self):
        est = estimate_error(simpsons.simpson, model=AdaptModel())
        with pytest.raises(ExecutionError):
            est.execute_batch(10, np.zeros(4), np.ones(5))

    def test_cse_temp_declared_inside_branch(self):
        # CSE (opt_level=2) declares temps *inside* data-dependent
        # branches; the batch backend must not blend a declaration with
        # its (nonexistent) prior value
        @kernel
        def branchy_cse_sweeptest(x: float, y: float) -> float:
            z = 0.0
            if x > y:
                z = sin(x) * sin(x) + sin(x)
            return z

        xs = np.array([1.0, 2.5, 0.3])
        est = estimate_error(branchy_cse_sweeptest, model=AdaptModel())
        batch = est.execute_batch(xs, 1.0)
        assert batch.backend == "vectorized"
        for i, x in enumerate(xs):
            _assert_point_matches(batch, est.execute(float(x), 1.0), i)

    def test_nan_saturation_matches_scalar(self):
        # inf - inf = NaN flows into the AdaptModel saturation clamp;
        # the scalar path's min()/max() propagate the NaN and the batch
        # backend must reproduce that (np.fmin would swallow it)
        @kernel
        def overflowing_sweeptest(x: float) -> float:
            z = x * x
            w = z - z
            return w

        xs = np.array([1.0, 1e200])
        est = estimate_error(overflowing_sweeptest, model=AdaptModel())
        batch = est.execute_batch(xs)
        assert batch.backend == "vectorized"
        for i, x in enumerate(xs):
            rep = est.execute(float(x))
            p = batch.point(i)
            for v, e in rep.per_variable.items():
                assert np.array_equal(
                    e, p.per_variable.get(v, 0.0), equal_nan=True
                ), v
            assert np.array_equal(
                rep.total_error, p.total_error, equal_nan=True
            )

    def test_empty_sweep_rejected(self):
        est = estimate_error(simpsons.simpson, model=AdaptModel())
        with pytest.raises(ExecutionError):
            est.execute_batch(10, 0.0, np.array([]))

    def test_tracked_estimator_uses_loop_backend(self):
        est = estimate_error(
            simpsons.simpson, model=AdaptModel(), track=("s",)
        )
        batch = est.execute_batch(10, 0.0, np.array([2.0, 3.0]))
        assert batch.backend == "loop"


class TestNpgen:
    def test_array_params_unvectorizable(self):
        est = estimate_error(bs.bs_total, model=AdaptModel())
        with pytest.raises(UnvectorizableError):
            generate_batch_source(est.adjoint_ir, {"n"})

    def test_unknown_batched_name_rejected(self):
        est = estimate_error(bs.bs_price, model=AdaptModel())
        with pytest.raises(UnvectorizableError):
            generate_batch_source(est.adjoint_ir, {"nonexistent"})

    def test_generated_source_has_masked_blends(self):
        est = estimate_error(bs.bs_price, model=AdaptModel())
        src = generate_batch_source(est.adjoint_ir, {"sptprice"})
        assert "_where(" in src  # data-dependent branches if-converted


# -- samplers ------------------------------------------------------------------


class TestSamplers:
    def test_grid_product_and_order(self):
        sw = grid_sweep({"a": (0.0, 1.0, 3), "b": (10.0, 20.0, 2)})
        assert len(sw["a"]) == len(sw["b"]) == 6
        assert sorted(set(sw["a"])) == [0.0, 0.5, 1.0]
        assert sorted(set(sw["b"])) == [10.0, 20.0]

    def test_grid_log_axis(self):
        sw = grid_sweep({"a": (1e-3, 1e3, 7, "log")})
        assert sw["a"][0] == pytest.approx(1e-3)
        assert sw["a"][-1] == pytest.approx(1e3)
        ratios = sw["a"][1:] / sw["a"][:-1]
        assert np.allclose(ratios, ratios[0])

    def test_grid_log_axis_needs_positive_bounds(self):
        with pytest.raises(ValueError):
            grid_sweep({"a": (-1.0, 1.0, 3, "log")})

    def test_grid_explicit_axis(self):
        sw = grid_sweep({"a": [1.0, 2.0], "b": (0.0, 1.0, 2)})
        assert len(sw["a"]) == 4

    def test_random_seed_reproducible(self):
        a = random_sweep({"x": (0.0, 1.0)}, n=32, seed=5)
        b = random_sweep({"x": (0.0, 1.0)}, n=32, seed=5)
        c = random_sweep({"x": (0.0, 1.0)}, n=32, seed=6)
        assert np.array_equal(a["x"], b["x"])
        assert not np.array_equal(a["x"], c["x"])

    def test_random_loguniform(self):
        sw = random_sweep(
            {"x": (1e-6, 1.0)}, n=500, seed=1, log=["x"]
        )
        assert np.all(sw["x"] >= 1e-6) and np.all(sw["x"] <= 1.0)
        # log-uniform: ~half the mass below the geometric midpoint
        mid = math.sqrt(1e-6 * 1.0)
        frac = np.mean(sw["x"] < mid)
        assert 0.35 < frac < 0.65

    def test_random_log_bounds_validated(self):
        with pytest.raises(ValueError):
            random_sweep({"x": (0.0, 1.0)}, n=4, seed=0, log=["x"])
        with pytest.raises(ValueError):
            random_sweep({"x": (0.0, 1.0)}, n=4, seed=0, log=["y"])

    def test_explicit_validates_lengths(self):
        sw = explicit_sweep({"a": [1.0, 2.0], "b": (3.0, 4.0)})
        assert np.array_equal(sw["b"], [3.0, 4.0])
        with pytest.raises(ValueError):
            explicit_sweep({"a": [1.0, 2.0], "b": [3.0]})


# -- aggregation ---------------------------------------------------------------


class TestAggregate:
    def test_resolvers(self):
        data = np.arange(101, dtype=np.float64)
        for spec, expect in [
            ("max", 100.0),
            ("mean", 50.0),
            ("p95", 95.0),
            (("percentile", 50), 50.0),
        ]:
            name, agg = resolve_aggregator(spec)
            assert agg(data) == pytest.approx(expect)
        name, agg = resolve_aggregator(lambda a: float(a[0]))
        assert agg(data) == 0.0
        with pytest.raises(ValueError):
            resolve_aggregator("median")
        with pytest.raises(ValueError):
            resolve_aggregator("p200")

    def test_summarize(self):
        hi = np.linspace(math.pi / 2, math.pi, 40)
        rep = sweep_error(
            simpsons.simpson,
            samples={"hi": hi},
            fixed={"n": 30, "lo": 0.0},
            model=AdaptModel(),
        )
        s = summarize(rep, "max")
        assert s.n == 40
        assert s.total_error == pytest.approx(float(np.max(rep.total_error)))
        assert s.worst_index == rep.worst()
        for v, a in rep.per_variable.items():
            assert s.per_variable[v] == pytest.approx(float(np.max(a)))
        m = summarize(rep, "mean")
        assert m.total_error <= s.total_error


# -- result cache --------------------------------------------------------------


class TestSweepCache:
    def _args(self, n=8):
        return [np.linspace(1.0, 2.0, n), 0.5]

    def test_key_changes_with_ir_model_and_inputs(self):
        est = estimate_error(simpsons.simpson, model=AdaptModel())
        primal = est.primal_ir
        args = [30, 0.0, np.linspace(1.0, 3.0, 8)]
        base = make_key(primal, AdaptModel(), args)
        assert base == make_key(primal, AdaptModel(), args)
        # model change
        assert base != make_key(primal, TaylorModel(), args)
        # input change
        args2 = [30, 0.0, np.linspace(1.0, 3.0, 9)]
        assert base != make_key(primal, AdaptModel(), args2)
        # IR change (a demoted clone of the same kernel)
        mixed = apply_precision(
            simpsons.simpson, PrecisionConfig.demote(["s"])
        )
        assert ir_fingerprint(mixed) != ir_fingerprint(
            simpsons.simpson.ir
        )
        assert base != make_key(mixed, AdaptModel(), args)
        # option change
        assert base != make_key(primal, AdaptModel(), args, opt_level=0)

    def test_uncacheable_model_gets_no_key(self):
        est = estimate_error(simpsons.simpson, model=AdaptModel())
        key = make_key(
            est.primal_ir,
            ExternalModel(lambda dx, x, name: 0.0),
            [30, 0.0, 1.0],
        )
        assert key is None

    def test_engine_memory_hits(self):
        cache = SweepCache()
        hi = np.linspace(1.0, 3.0, 12)
        kwargs = dict(
            samples={"hi": hi},
            fixed={"n": 20, "lo": 0.0},
            model=AdaptModel(),
            cache=cache,
        )
        first = sweep_error(simpsons.simpson, **kwargs)
        assert not first.from_cache
        assert cache.misses == 1 and cache.hits == 0
        second = sweep_error(simpsons.simpson, **kwargs)
        assert second.from_cache
        assert cache.hits == 1
        assert np.array_equal(first.total_error, second.total_error)
        # different inputs miss
        sweep_error(
            simpsons.simpson,
            samples={"hi": hi + 0.1},
            fixed={"n": 20, "lo": 0.0},
            model=AdaptModel(),
            cache=cache,
        )
        assert cache.misses == 2
        # different model misses
        sweep_error(
            simpsons.simpson,
            samples={"hi": hi},
            fixed={"n": 20, "lo": 0.0},
            model=TaylorModel(),
            cache=cache,
        )
        assert cache.misses == 3

    def test_disk_cache_survives_process_boundary(self, tmp_path):
        hi = np.linspace(1.0, 3.0, 10)
        kwargs = dict(
            samples={"hi": hi},
            fixed={"n": 20, "lo": 0.0},
            model=AdaptModel(),
        )
        c1 = SweepCache(directory=tmp_path)
        first = sweep_error(simpsons.simpson, cache=c1, **kwargs)
        assert not first.from_cache
        # a fresh cache over the same directory simulates a new process
        c2 = SweepCache(directory=tmp_path)
        second = sweep_error(simpsons.simpson, cache=c2, **kwargs)
        assert second.from_cache
        assert c2.hits == 1 and c2.misses == 0
        assert np.array_equal(first.total_error, second.total_error)
        assert first.per_variable.keys() == second.per_variable.keys()

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        hi = np.linspace(1.0, 3.0, 6)
        kwargs = dict(
            samples={"hi": hi},
            fixed={"n": 10, "lo": 0.0},
            model=AdaptModel(),
        )
        c1 = SweepCache(directory=tmp_path)
        sweep_error(simpsons.simpson, cache=c1, **kwargs)
        for p in tmp_path.glob("*.pkl"):
            p.write_bytes(b"not a pickle")
        c2 = SweepCache(directory=tmp_path)
        rep = sweep_error(simpsons.simpson, cache=c2, **kwargs)
        assert not rep.from_cache
        assert c2.misses == 1
        # the corrupt entry was evicted, then overwritten by the fresh
        # result — a third cache over the same directory hits again
        assert c2.corrupt_evictions == 1
        c3 = SweepCache(directory=tmp_path)
        assert sweep_error(simpsons.simpson, cache=c3, **kwargs).from_cache

    @pytest.mark.parametrize("via_env", [False, True])
    def test_truncated_disk_entry_is_a_miss_and_evicted(
        self, tmp_path, monkeypatch, via_env
    ):
        """Crash-safety: a pickle torn by a mid-write crash (outside
        the cache's own atomic protocol, e.g. a copied partial file)
        counts as a miss and is evicted — under both the in-process
        ``directory=`` configuration and ``REPRO_SWEEP_CACHE``."""
        if via_env:
            monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path))
            make = lambda: SweepCache()  # noqa: E731
        else:
            monkeypatch.delenv("REPRO_SWEEP_CACHE", raising=False)
            make = lambda: SweepCache(directory=tmp_path)  # noqa: E731
        hi = np.linspace(1.0, 3.0, 6)
        kwargs = dict(
            samples={"hi": hi},
            fixed={"n": 10, "lo": 0.0},
            model=AdaptModel(),
        )
        c1 = make()
        assert c1.directory == tmp_path
        sweep_error(simpsons.simpson, cache=c1, **kwargs)
        (entry,) = tmp_path.glob("*.pkl")
        data = entry.read_bytes()
        entry.write_bytes(data[: len(data) // 2])  # truncate mid-write
        c2 = make()
        rep = sweep_error(simpsons.simpson, cache=c2, **kwargs)
        assert not rep.from_cache
        assert c2.misses == 1 and c2.hits == 0
        assert c2.corrupt_evictions == 1
        assert c2.cache_stats()["corrupt_evictions"] == 1
        # evict-then-recompute leaves a valid entry behind
        c3 = make()
        rep3 = sweep_error(simpsons.simpson, cache=c3, **kwargs)
        assert rep3.from_cache and c3.corrupt_evictions == 0

    def test_truncated_entry_eviction_when_refetch_skipped(self, tmp_path):
        """The corrupt file is unlinked by the failed get() itself —
        even if nothing is ever re-put, it cannot shadow the key."""
        hi = np.linspace(1.0, 3.0, 6)
        kwargs = dict(
            samples={"hi": hi},
            fixed={"n": 10, "lo": 0.0},
            model=AdaptModel(),
        )
        c1 = SweepCache(directory=tmp_path)
        sweep_error(simpsons.simpson, cache=c1, **kwargs)
        (entry,) = tmp_path.glob("*.pkl")
        entry.write_bytes(entry.read_bytes()[:10])
        c2 = SweepCache(directory=tmp_path)
        assert c2.get(entry.stem) is None  # filename is the key
        assert not entry.exists()
        assert c2.corrupt_evictions == 1

    def test_ragged_sequence_raises_documented_typeerror(self):
        # regression: used to leak raw numpy errors (or, pre-1.24, an
        # object-dtype array into ``tobytes``)
        with pytest.raises(TypeError, match="element 1"):
            digest_inputs([[[1.0, 2.0], [3.0]]])

    def test_none_element_raises_with_offending_index(self):
        # regression: None used to be swallowed into an object array
        with pytest.raises(TypeError, match="element 2"):
            digest_inputs([[1.0, 2.0, None, 4.0]])

    def test_non_numeric_elements_raise(self):
        with pytest.raises(TypeError, match="element 0"):
            digest_inputs([["a", "b"]])
        with pytest.raises(TypeError, match="cannot digest argument"):
            digest_inputs([{"x": 1}])

    def test_uniform_sequences_still_digest(self):
        d1 = digest_inputs([[1.0, 2.0, 3.0]])
        assert d1 == digest_inputs([(1.0, 2.0, 3.0)])
        assert d1 != digest_inputs([[1.0, 2.0, 4.0]])
        # uniform nesting and bools are fine
        digest_inputs([[[1.0, 2.0], [3.0, 4.0]]])
        digest_inputs([[True, False]])

    def test_numpy_scalar_fixed_values_digestible(self):
        # sizes/bounds routinely come out of numpy; the cache key must
        # accept them (and give the same key as the Python equivalents)
        cache = SweepCache()
        hi = np.linspace(1.0, 2.0, 6)
        rep = sweep_error(
            simpsons.simpson,
            samples={"hi": hi},
            fixed={"n": np.int64(10), "lo": np.float64(0.0)},
            model=AdaptModel(),
            cache=cache,
        )
        assert rep.n == 6
        rep2 = sweep_error(
            simpsons.simpson,
            samples={"hi": hi},
            fixed={"n": 10, "lo": 0.0},
            model=AdaptModel(),
            cache=cache,
        )
        assert rep2.from_cache  # same key as the numpy-scalar call

    def test_cached_reports_are_isolated_copies(self):
        cache = SweepCache()
        hi = np.linspace(1.0, 3.0, 8)
        kwargs = dict(
            samples={"hi": hi},
            fixed={"n": 15, "lo": 0.0},
            model=AdaptModel(),
            cache=cache,
        )
        r1 = sweep_error(simpsons.simpson, **kwargs)
        r2 = sweep_error(simpsons.simpson, **kwargs)
        assert r2.from_cache and not r1.from_cache  # no retroactive flag
        assert r2.total_error is not r1.total_error
        # mutating a returned report must not corrupt the cache entry
        r2.total_error[:] = -1.0
        r3 = sweep_error(simpsons.simpson, **kwargs)
        assert np.array_equal(r3.total_error, r1.total_error)

    def test_cache_accepts_directory_path(self, tmp_path):
        hi = np.linspace(1.0, 2.0, 5)
        rep = sweep_error(
            simpsons.simpson,
            samples={"hi": hi},
            fixed={"n": 10, "lo": 0.0},
            model=AdaptModel(),
            cache=str(tmp_path / "sweeps"),
        )
        assert rep.n == 5
        assert list((tmp_path / "sweeps").glob("*.pkl"))


class TestCacheEviction:
    """Disk-tier size caps, LRU eviction order, and cache_stats()."""

    def _report(self, n=4):
        return BatchReport(
            n=n,
            values=np.zeros(n),
            total_error=np.zeros(n),
        )

    def test_entry_cap_evicts_oldest(self, tmp_path):
        cache = SweepCache(directory=tmp_path, max_disk_entries=2)
        for i, key in enumerate(["k0", "k1", "k2", "k3"]):
            cache.put(key, self._report())
            os.utime(tmp_path / f"{key}.pkl", (i, i))  # force ordering
            cache._evict_disk()
        names = {p.stem for p in tmp_path.glob("*.pkl")}
        assert names == {"k2", "k3"}
        assert cache.evictions == 2

    def test_byte_cap_evicts_until_under(self, tmp_path):
        cache = SweepCache(directory=tmp_path)
        cache.put("k0", self._report())
        entry_size = (tmp_path / "k0.pkl").stat().st_size
        cache.max_disk_bytes = 2 * entry_size
        for i, key in enumerate(["k1", "k2", "k3"]):
            cache.put(key, self._report())
            os.utime(tmp_path / f"{key}.pkl", (i + 1, i + 1))
            cache._evict_disk()
        files = list(tmp_path.glob("*.pkl"))
        assert len(files) == 2
        assert sum(p.stat().st_size for p in files) <= 2 * entry_size
        assert cache.evictions == 2

    def test_disk_hit_refreshes_recency(self, tmp_path):
        cache = SweepCache(directory=tmp_path, max_disk_entries=2)
        cache.put("old", self._report())
        os.utime(tmp_path / "old.pkl", (1, 1))
        cache.put("mid", self._report())
        os.utime(tmp_path / "mid.pkl", (2, 2))
        # a *disk* hit on `old` bumps its mtime past `mid`
        fresh = SweepCache(directory=tmp_path, max_disk_entries=2)
        assert fresh.get("old") is not None
        fresh.put("new", self._report())
        names = {p.stem for p in tmp_path.glob("*.pkl")}
        assert names == {"old", "new"}
        assert fresh.evictions == 1

    def test_cache_stats_counters(self, tmp_path):
        cache = SweepCache(
            directory=tmp_path, max_disk_entries=1, max_disk_bytes=None
        )
        cache.put("a", self._report())
        cache.get("a")
        cache.get("missing")
        cache.put("b", self._report())
        os.utime(tmp_path / "b.pkl", None)
        cache._evict_disk()
        stats = cache.cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] >= 1
        assert stats["disk_entries"] == 1
        assert stats["disk_bytes"] > 0
        assert stats["max_disk_entries"] == 1
        assert "evictions" in cache.stats

    def test_env_var_byte_cap(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_BYTES", "12345")
        cache = SweepCache(directory=tmp_path)
        assert cache.max_disk_bytes == 12345

    def test_unbounded_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CACHE_BYTES", raising=False)
        cache = SweepCache(directory=tmp_path)
        assert cache.max_disk_bytes is None
        for i in range(6):
            cache.put(f"k{i}", self._report())
        assert len(list(tmp_path.glob("*.pkl"))) == 6
        assert cache.evictions == 0


# -- estimator reuse -----------------------------------------------------------


class TestEstimatorReuse:
    def test_memo_shares_compiled_estimators(self):
        clear_estimator_memo()
        a = cached_error_estimator(simpsons.simpson, model=AdaptModel())
        b = cached_error_estimator(simpsons.simpson, model=AdaptModel())
        assert a is b
        c = cached_error_estimator(simpsons.simpson, model=TaylorModel())
        assert c is not a

    def test_uncacheable_model_not_memoized(self):
        m = ExternalModel(lambda dx, x, name: 0.0)
        a = cached_error_estimator(simpsons.simpson, model=m)
        b = cached_error_estimator(simpsons.simpson, model=m)
        assert a is not b


# -- robust tuning -------------------------------------------------------------


class TestRobustTune:
    def test_single_point_sweep_matches_greedy(self):
        args = simpsons.make_workload(50)
        g = greedy_tune(simpsons.INSTRUMENTED, args, 1e-6)
        r = robust_tune(
            simpsons.INSTRUMENTED,
            samples={"hi": np.array([args[2]])},
            fixed={"n": args[0], "lo": args[1]},
            threshold=1e-6,
        )
        assert r.demoted == g.demoted
        assert r.estimated_error == pytest.approx(
            g.estimated_error, rel=1e-12
        )

    def test_single_point_sweep_matches_greedy_blackscholes(self):
        sw = _bs_sweep(1, seed=21)
        g = greedy_tune(bs.bs_price, _bs_point(sw, 0), 1e-8)
        r = robust_tune(
            bs.bs_price,
            samples={k: v[:1] for k, v in sw.items()},
            threshold=1e-8,
        )
        assert r.demoted == g.demoted

    @pytest.mark.parametrize("threshold", [1e-6, 1e-8])
    def test_threshold_holds_over_sweep_simpsons(self, threshold):
        samples = random_sweep(
            {"lo": (0.0, 0.5), "hi": (math.pi / 2, math.pi)},
            n=120,
            seed=9,
        )
        r = robust_tune(
            simpsons.INSTRUMENTED,
            samples=samples,
            fixed={"n": 60},
            threshold=threshold,
        )
        assert r.sweep is not None and r.sweep.n == 120
        assert r.estimated_error <= threshold
        if r.demoted:
            per_sample = np.sum(
                [r.sweep.per_variable[v] for v in r.demoted], axis=0
            )
            assert float(np.max(per_sample)) <= threshold

    def test_threshold_holds_over_sweep_blackscholes(self):
        threshold = 1e-9
        samples = _bs_sweep(150, seed=17)
        r = robust_tune(bs.bs_price, samples=samples, threshold=threshold)
        assert r.sweep is not None and r.sweep.n == 150
        assert r.demoted, "expected at least one demotable variable"
        assert r.estimated_error <= threshold
        per_sample = np.sum(
            [r.sweep.per_variable[v] for v in r.demoted], axis=0
        )
        assert float(np.max(per_sample)) <= threshold

    def test_robust_is_no_looser_than_any_point(self):
        # every variable the robust (max-aggregated) run demotes must
        # also be demotable at each individual point's contribution
        samples = {"hi": np.linspace(math.pi / 2, math.pi, 40)}
        r = robust_tune(
            simpsons.INSTRUMENTED,
            samples=samples,
            fixed={"n": 40, "lo": 0.0},
            threshold=1e-7,
        )
        assert r.sweep is not None
        for i in range(r.sweep.n):
            point_total = sum(
                float(r.sweep.per_variable[v][i]) for v in r.demoted
            )
            assert point_total <= 1e-7

    def test_mean_aggregation(self):
        samples = {"hi": np.linspace(math.pi / 2, math.pi, 30)}
        rmax = robust_tune(
            simpsons.INSTRUMENTED,
            samples=samples,
            fixed={"n": 30, "lo": 0.0},
            threshold=1e-7,
            aggregate="max",
        )
        rmean = robust_tune(
            simpsons.INSTRUMENTED,
            samples=samples,
            fixed={"n": 30, "lo": 0.0},
            threshold=1e-7,
            aggregate="mean",
        )
        # mean-aggregated contributions are <= max-aggregated, so the
        # mean run demotes at least as many variables
        assert set(rmax.demoted) <= set(rmean.demoted)

    def test_tuning_result_report_optional(self):
        res = TuningResult(
            config=PrecisionConfig.demote([]), estimated_error=0.0
        )
        assert res.report is None
        assert res.sweep is None

    def test_robust_tune_with_cache(self, tmp_path):
        cache = SweepCache(directory=tmp_path)
        samples = {"hi": np.linspace(1.0, 3.0, 20)}
        kwargs = dict(
            samples=samples,
            fixed={"n": 20, "lo": 0.0},
            threshold=1e-6,
            cache=cache,
        )
        r1 = robust_tune(simpsons.INSTRUMENTED, **kwargs)
        r2 = robust_tune(simpsons.INSTRUMENTED, **kwargs)
        assert cache.hits == 1
        assert r1.demoted == r2.demoted
        assert r2.sweep is not None and r2.sweep.from_cache
