"""Direct coverage for :mod:`repro.tuning.validate` and
:mod:`repro.tuning.perforation`: speedup edge cases (zero-cost versus
degenerate configurations), reference reuse, the ``apply_precision``
round trip, and perforated-loop error accounting on real traces."""

import numpy as np
import pytest

import repro
from repro.frontend import kernel
from repro.ir import nodes as N
from repro.ir.types import DType
from repro.ir.visitor import walk_stmts
from repro.tuning import (
    ConfigValidation,
    PrecisionConfig,
    ReferencePoint,
    apply_precision,
    estimate_split_speedup,
    find_split_iteration,
    iteration_sensitivity,
    measure_reference,
    validate_config,
)
from repro.tuning.validate import counting_runner


@kernel
def vp_kernel(n: int, h: float, data: "f64[]") -> float:
    s = 0.0
    t = 0.0
    for i in range(n):
        t = data[i] * h + t * 0.5
        s = s + sqrt(t * t + h)
    return s


def _workload(n=32, seed=9):
    rng = np.random.default_rng(seed)
    return (n, 0.25, rng.uniform(0.1, 1.0, n))


def _validation(ref_cost, mixed_cost):
    return ConfigValidation(
        config=PrecisionConfig(),
        reference_value=1.0,
        mixed_value=1.0,
        actual_error=0.0,
        cost_reference=ref_cost,
        cost_mixed=mixed_cost,
    )


class TestSpeedupEdgeCases:
    def test_zero_cost_kernel_is_unit_speedup(self):
        v = _validation(0.0, 0.0)
        assert v.is_zero_cost
        assert not v.degenerate
        assert v.speedup == 1.0

    def test_degenerate_config_raises_instead_of_reporting_one(self):
        v = _validation(100.0, 0.0)
        assert v.degenerate
        with pytest.raises(ValueError, match="degenerate"):
            v.speedup

    def test_negative_cycle_counts_rejected_at_construction(self):
        with pytest.raises(ValueError, match="negative"):
            _validation(-1.0, 10.0)
        with pytest.raises(ValueError, match="negative"):
            _validation(10.0, -1.0)

    def test_normal_ratio(self):
        assert _validation(100.0, 50.0).speedup == 2.0


class TestReferenceReuse:
    def test_measure_reference_matches_validate(self):
        args = _workload()
        ref = measure_reference(vp_kernel, args)
        v = validate_config(vp_kernel, PrecisionConfig(), args)
        assert ref.value == v.reference_value
        assert ref.cost == v.cost_reference

    def test_validate_with_precomputed_reference(self):
        args = _workload()
        ref = measure_reference(vp_kernel, args)
        cfg = PrecisionConfig.demote(["t", "s"])
        direct = validate_config(vp_kernel, cfg, args)
        reused = validate_config(vp_kernel, cfg, args, reference=ref)
        assert reused.actual_error == direct.actual_error
        assert reused.cost_mixed == direct.cost_mixed
        assert reused.cost_reference == direct.cost_reference

    def test_reference_is_trusted_verbatim(self):
        # the supplied reference feeds the error/speedup arithmetic
        args = _workload()
        fake = ReferencePoint(value=0.0, cost=1.0)
        v = validate_config(
            vp_kernel, PrecisionConfig.demote(["t"]), args,
            reference=fake,
        )
        assert v.reference_value == 0.0
        assert v.actual_error == abs(v.mixed_value)

    def test_counting_runner_reusable_and_copies_arrays(self):
        run = counting_runner(vp_kernel.ir)
        args = _workload()
        before = args[2].copy()
        v1, c1 = run(args)
        v2, c2 = run(args)
        assert (v1, c1) == (v2, c2)
        np.testing.assert_array_equal(args[2], before)


class TestApplyPrecisionRoundTrip:
    def test_demote_then_promote_restores_dtypes(self):
        down = apply_precision(
            vp_kernel.ir, PrecisionConfig.demote(["t", "data"])
        )
        up = apply_precision(
            down, PrecisionConfig({"t": DType.F64, "data": DType.F64})
        )
        decls = {
            s.name: s.dtype
            for s in walk_stmts(up.body)
            if isinstance(s, N.VarDecl)
        }
        assert decls["t"] is DType.F64
        assert up.param("data").type.dtype is DType.F64

    def test_round_trip_restores_reference_values(self):
        from repro.codegen.compile import compile_primal

        args = _workload()
        ref = vp_kernel(*_workload())
        down = apply_precision(
            vp_kernel.ir, PrecisionConfig.demote(["t", "s", "h"])
        )
        up = apply_precision(
            down,
            PrecisionConfig(
                {"t": DType.F64, "s": DType.F64, "h": DType.F64}
            ),
        )
        assert compile_primal(up)(*args) == ref

    def test_round_trip_cost_matches_reference(self):
        args = _workload()
        ref = measure_reference(vp_kernel, args)
        down = apply_precision(
            vp_kernel.ir, PrecisionConfig.demote(["t"])
        )
        up = apply_precision(down, PrecisionConfig({"t": DType.F64}))
        again = measure_reference(up, args)
        assert again.cost == ref.cost
        assert again.value == ref.value


class TestPerforationAccounting:
    """Per-iteration error accounting on a *real* sensitivity trace."""

    N_ITER = 6

    def _trace(self):
        @kernel
        def vp_accum(n: int, x: float) -> float:
            s = 0.0
            for i in range(n):
                s = s + x * x
            return s

        est = repro.estimate_error(vp_accum, track=["s"])
        rep = est.execute(self.N_ITER, 0.37)
        trace = rep.traces["s"]
        # one sample per assignment to `s`, backward order: the final
        # entry is the `s = 0.0` initialization (executed first) — the
        # loop-body accounting folds the remaining N_ITER samples
        assert len(trace) == self.N_ITER + 1
        assert trace[-1] == 0.0
        return trace[:-1]

    def test_trace_folds_into_iterations_and_preserves_mass(self):
        trace = self._trace()
        assert len(trace) % self.N_ITER == 0
        series = iteration_sensitivity(trace, self.N_ITER)
        assert series.shape == (self.N_ITER,)
        assert series.sum() == pytest.approx(float(np.sum(trace)))

    def test_iteration_order_is_forward(self):
        trace = self._trace()
        series = iteration_sensitivity(trace, self.N_ITER)
        per_iter = self._group_backward(trace)
        # trace arrives in backward-sweep order: its first group is the
        # LAST iteration
        assert series[-1] == pytest.approx(per_iter[0])
        assert series[0] == pytest.approx(per_iter[-1])

    def _group_backward(self, trace):
        width = len(trace) // self.N_ITER
        arr = np.asarray(trace, dtype=np.float64)
        return arr.reshape(self.N_ITER, width).sum(axis=1)

    def test_split_pipeline_on_decaying_series(self):
        # a decaying sensitivity profile: split where it goes quiet
        series = {
            "r": np.array([1.0, 0.5, 0.1, 1e-8, 1e-9, 1e-9]),
            "p": np.array([0.8, 0.7, 0.2, 1e-7, 1e-9, 1e-10]),
        }
        split = find_split_iteration(series, threshold=1e-5)
        assert split == 3
        sp = estimate_split_speedup(10.0, 5.0, split, 6)
        assert 1.0 < sp < 2.0

    def test_split_speedup_degenerate_inputs(self):
        assert estimate_split_speedup(10.0, 5.0, 0, 0) == 1.0
        assert estimate_split_speedup(10.0, 5.0, 2, -1) == 1.0
        # non-positive split cost cannot report a speedup
        assert estimate_split_speedup(0.0, 0.0, 0, 10) == 1.0
