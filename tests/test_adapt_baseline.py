"""ADAPT baseline tests: tape mechanics, AdFloat arithmetic, the OOM
budget, and tool-versus-tool agreement on error totals."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.adapt import AdaptAnalysis, AdFloat, Tape, TapeLimits
from repro.adapt.tape import NODE_BYTES
from repro.frontend import kernel
from repro.util.errors import AnalysisOutOfMemory

xs = st.floats(min_value=-10.0, max_value=10.0)


@kernel
def ab_fn(x: float, y: float) -> float:
    z = x * y + sin(x) / (2.0 + cos(y))
    w = z * z - x
    return w


@kernel
def ab_loop(n: int, h: float) -> float:
    s = 0.0
    for i in range(n):
        s = s + sqrt(h * h + i * h)
    return s


class TestAdFloat:
    def _x(self, v=2.0):
        t = Tape()
        return AdFloat.input(t, v), t

    def test_arithmetic_values(self):
        x, _ = self._x(3.0)
        assert (x + 1).value == 4.0
        assert (1 + x).value == 4.0
        assert (x - 1).value == 2.0
        assert (1 - x).value == -2.0
        assert (x * 2).value == 6.0
        assert (x / 2).value == 1.5
        assert (6 / x).value == 2.0
        assert (-x).value == -3.0
        assert abs(-x).value == 3.0

    def test_comparisons_use_values(self):
        x, _ = self._x(3.0)
        assert x > 2.5
        assert x <= 3.0
        assert x == 3.0
        assert x != 2.0
        assert bool(x)

    def test_reverse_chain_rule(self):
        x, t = self._x(2.0)
        y = x * x * x  # d/dx = 3x^2 = 12
        adj = t.reverse(y.idx)
        assert adj[x.idx] == pytest.approx(12.0)

    def test_intrinsic_application(self):
        x, t = self._x(0.5)
        y = AdFloat.apply_intrinsic("sin", (x,))
        adj = t.reverse(y.idx)
        assert y.value == math.sin(0.5)
        assert adj[x.idx] == pytest.approx(math.cos(0.5))

    def test_two_arg_intrinsic(self):
        x, t = self._x(2.0)
        y = AdFloat.apply_intrinsic("pow", (x, 3.0))
        adj = t.reverse(y.idx)
        assert adj[x.idx] == pytest.approx(12.0)

    def test_round32_records_unit_derivative(self):
        x, t = self._x(math.pi)
        y = x.round32() * 2.0
        adj = t.reverse(y.idx)
        assert adj[x.idx] == 2.0
        assert y.value == 2.0 * float(np.float32(math.pi))


class TestTape:
    def test_node_count_and_bytes(self):
        t = Tape()
        a = AdFloat.input(t, 1.0)
        _ = a + a + a
        assert len(t) == 3
        assert t.estimated_bytes == 3 * NODE_BYTES

    def test_memory_budget_raises(self):
        t = Tape(TapeLimits(memory_budget_bytes=NODE_BYTES * 100))
        a = AdFloat.input(t, 1.0)
        with pytest.raises(AnalysisOutOfMemory):
            for _ in range(100_000):
                a = a + 1.0

    def test_budget_zero_disables(self):
        t = Tape(TapeLimits(memory_budget_bytes=0))
        a = AdFloat.input(t, 1.0)
        for _ in range(5000):
            a = a + 1.0  # no raise

    def test_eq2_error_zero_for_representable(self):
        t = Tape()
        a = AdFloat.input(t, 0.5)
        y = a * 2.0 + 0.25
        adj = t.reverse(y.idx)
        assert t.eq2_error(adj) == 0.0

    def test_eq2_error_positive_for_inexact(self):
        t = Tape()
        a = AdFloat.input(t, math.pi)
        y = a * a
        adj = t.reverse(y.idx)
        assert t.eq2_error(adj) > 0


class TestAnalysis:
    @given(xs, xs)
    @settings(max_examples=25, deadline=None)
    def test_gradients_match_chef(self, x, y):
        rep = AdaptAnalysis(ab_fn).execute(x, y)
        g = repro.gradient(ab_fn).execute(x, y)
        assert rep.value == g.value
        assert rep.grad("x") == pytest.approx(g.grad("x"), rel=1e-12)
        assert rep.grad("y") == pytest.approx(g.grad("y"), rel=1e-12)

    def test_error_totals_same_magnitude_as_chef(self):
        """The paper: CHEF-FP 'produces mixed precision analysis
        results that agree with ADAPT's analysis'."""
        chef = repro.estimate_error(
            ab_loop, model=repro.AdaptModel()
        ).execute(500, math.pi / 500)
        adapt = AdaptAnalysis(ab_loop).execute(500, math.pi / 500)
        ratio = chef.total_error / adapt.total_error
        assert 0.3 < ratio < 3.0

    def test_tape_grows_linearly_with_iterations(self):
        r1 = AdaptAnalysis(ab_loop).execute(100, 0.01)
        r2 = AdaptAnalysis(ab_loop).execute(1000, 0.001)
        assert 8 <= r2.tape_nodes / r1.tape_nodes <= 12

    def test_chef_memory_smaller_than_tape(self):
        """The paper's memory claim: the minimized push stacks are far
        smaller than the full tape."""
        from repro.experiments.measure import measure_adapt, measure_chef

        n = 3000
        chef = measure_chef(ab_loop, (n, 1e-3))
        adapt = measure_adapt(ab_loop, (n, 1e-3))
        assert not adapt.oom
        assert adapt.peak_bytes > 2 * chef.peak_bytes

    def test_oom_reported_not_raised(self):
        from repro.experiments.measure import measure_adapt

        m = measure_adapt(
            ab_loop, (200_000, 1e-5),
            memory_budget_bytes=1024 * 1024,
        )
        assert m.oom
        assert m.time_s != m.time_s  # NaN

    def test_integer_only_kernel_reports_constant(self):
        @kernel
        def int_only(n: int) -> float:
            s = 0.0
            for i in range(n):
                s = s + 1.0
            return s

        rep = AdaptAnalysis(int_only).execute(4)
        assert rep.value == 4.0
        # nothing differentiable: treated as constant, zero error
        assert rep.total_error == 0.0
