"""Shared pytest fixtures and helpers."""

from __future__ import annotations


import numpy as np
import pytest


def finite_diff(f, args, i, eps=1e-6):
    """Central finite difference of ``f`` w.r.t. scalar argument ``i``."""
    lo = list(args)
    hi = list(args)
    lo[i] -= eps
    hi[i] += eps
    return (f(*hi) - f(*lo)) / (2 * eps)


def finite_diff_array(f, args, i, j, eps=1e-6):
    """Central finite difference w.r.t. element ``j`` of array arg ``i``."""
    lo = [a.copy() if isinstance(a, np.ndarray) else a for a in args]
    hi = [a.copy() if isinstance(a, np.ndarray) else a for a in args]
    lo[i][j] -= eps
    hi[i][j] += eps
    return (f(*hi) - f(*lo)) / (2 * eps)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
