"""Experiment-harness tests: measurement plumbing, figure sweeps at toy
sizes, table builders, and rendering."""


import numpy as np
import pytest

from repro.experiments import tables
from repro.experiments.figures import (
    FIGURES,
    FigureRow,
    figure_improvements,
    run_figure,
)
from repro.experiments.measure import (
    Measurement,
    measure_adapt,
    measure_app,
    measure_chef,
)
from repro.experiments.render import ascii_heatmap, ascii_table, to_csv
from repro.frontend import kernel


@kernel
def ex_kernel(n: int, h: float) -> float:
    s = 0.0
    for i in range(n):
        s = s + sin(i * h) * h
    return s


class TestMeasure:
    def test_three_tools_agree_on_value(self):
        args = (200, 0.01)
        chef = measure_chef(ex_kernel, args)
        adapt = measure_adapt(ex_kernel, args)
        app = measure_app(ex_kernel, args)
        assert chef.value == adapt.value == app.value
        assert chef.time_s > 0 and adapt.time_s > 0 and app.time_s > 0

    def test_chef_and_adapt_errors_same_scale(self):
        args = (500, 0.003)
        chef = measure_chef(ex_kernel, args)
        adapt = measure_adapt(ex_kernel, args)
        assert chef.total_error > 0 and adapt.total_error > 0
        assert 0.2 < chef.total_error / adapt.total_error < 5.0

    def test_units(self):
        m = Measurement("t", time_s=0.5, peak_bytes=2 * 1024 * 1024)
        assert m.time_ms == 500.0
        assert m.peak_mb == 2.0


class TestFigures:
    def test_all_figures_defined(self):
        assert set(FIGURES) == {4, 5, 6, 7, 8}
        for spec in FIGURES.values():
            assert len(spec.sizes) >= 3
            assert len(spec.full_sizes) >= len(spec.sizes)

    def test_run_figure_small(self):
        rows = run_figure(5, sizes=(50, 200))
        assert len(rows) == 2
        assert rows[0].size == 50
        for r in rows:
            assert r.chef.total_error is not None
            assert not r.adapt.oom
        t, m = figure_improvements(rows)
        assert t is not None and m is not None

    def test_improvements_skip_oom(self):
        ok = Measurement("adapt", 1.0, 100)
        oom = Measurement("adapt", float("nan"), 100, oom=True)
        chef = Measurement("chef-fp", 0.5, 50)
        app = Measurement("app", 0.1, 10)
        rows = [
            FigureRow(1, chef, ok, app),
            FigureRow(2, chef, oom, app),
        ]
        t, m = figure_improvements(rows)
        assert t == pytest.approx(2.0)
        assert m == pytest.approx(2.0)


class TestTables:
    def test_table1_shape(self):
        headers, rows = tables.table1(
            sizes={"arclength": 400, "simpsons": 400, "kmeans": 120,
                   "hpccg": 4}
        )
        assert headers[0] == "Benchmark"
        names = [r[0] for r in rows]
        assert names == ["arclength", "simpsons", "kmeans", "hpccg"]
        for r in rows:
            threshold, actual, estimated, speedup = r[1:]
            assert estimated <= threshold * 1.0000001
            assert speedup > 0

    def test_table3_attributes_zero(self):
        headers, rows = tables.table3(npoints=150)
        by_label = {r[0]: r for r in rows}
        assert by_label["attributes"][1] == 0.0
        assert by_label["attributes"][2] == 0.0
        assert by_label["clusters"][2] > 0
        assert by_label["sum"][2] > 0

    def test_table4_shape(self):
        headers, rows = tables.table4(npoints=40)
        assert len(rows) == 2
        for r in rows:
            label, aavg, amax, aacc, eavg, emax, eacc, speedup = r
            assert aavg > 0 and eavg > 0
            assert amax >= aavg
            assert aacc == pytest.approx(aavg * 40, rel=1e-9)
            assert speedup > 1.0
        # adding fast exp increases the speedup
        assert rows[1][-1] > rows[0][-1]

    def test_hpccg_sensitivity_series(self):
        split, series, report = tables.hpccg_sensitivity(
            nz=4, max_iter=20
        )
        assert set(series) == {"r", "p", "x", "Ap"}
        for s in series.values():
            assert len(s) == 20
        assert 0 <= split <= 20
        # residual-driven decay: early iterations dominate
        assert series["r"][:5].sum() > series["r"][-5:].sum()


class TestRender:
    def test_ascii_table_alignment(self):
        text = ascii_table(
            ["a", "bb"], [[1, 2.5], [10, None]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "-" in lines[2]
        assert "-" in lines[4]  # None rendered as '-'

    def test_nan_renders_as_oom(self):
        text = ascii_table(["x"], [[float("nan")]])
        assert "OOM" in text

    def test_heatmap_ramp(self):
        m = np.array([[0.0, 0.5, 1.0]])
        text = ascii_heatmap(m, ["v"])
        assert "v |" in text
        assert "@" in text  # highest bucket present

    def test_heatmap_downsamples(self):
        m = np.random.default_rng(0).uniform(size=(2, 500))
        text = ascii_heatmap(m, ["a", "b"], max_cols=50)
        row = text.splitlines()[0]
        assert len(row) < 80

    def test_csv(self):
        out = to_csv(["a", "b"], [[1, None], [2, 3]])
        assert out.splitlines()[0] == "a,b"
        assert out.splitlines()[1] == "1,"
