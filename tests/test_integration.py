"""End-to-end integration: the full paper workflow on each benchmark —
analyze → tune → validate — plus cross-tool agreement at realistic (but
laptop-scaled) sizes."""

import math

import numpy as np
import pytest

import repro
from repro.adapt import AdaptAnalysis
from repro.apps import arclength, blackscholes, hpccg, kmeans, simpsons
from repro.tuning import greedy_tune, validate_config


class TestPaperWorkflow:
    """Listing 1 → analysis → Table-I-style tuning, per benchmark."""

    @pytest.mark.parametrize(
        "app,size",
        [(arclength, 1_000), (simpsons, 1_000), (kmeans, 300)],
    )
    def test_tune_validate_roundtrip(self, app, size):
        args = app.make_workload(size)
        tuning = greedy_tune(
            app.INSTRUMENTED, args, app.DEFAULT_THRESHOLD
        )
        assert tuning.estimated_error <= app.DEFAULT_THRESHOLD
        validation = validate_config(
            app.INSTRUMENTED, tuning.config, app.make_workload(size)
        )
        # the estimate is a (first-order) bound on the actual error
        assert validation.actual_error <= max(
            10.0 * tuning.estimated_error, 1e-12
        )

    def test_hpccg_workflow(self):
        from repro.experiments.tables import hpccg_sensitivity

        split, series, report = hpccg_sensitivity(nz=4, max_iter=30)
        assert 0 < split <= 30
        # the split kernel actually runs and stays stable
        v = hpccg.hpccg_cg_split(
            *hpccg.make_split_workload(4, split, max_iter=30)
        )
        assert math.isfinite(v)

    def test_blackscholes_workflow(self):
        model = repro.ApproxModel(blackscholes.APPROX_VARIABLE_MAP)
        est = repro.estimate_error(blackscholes.bs_price, model=model)
        wl = blackscholes.make_workload(30)
        for i in range(5):
            rep = est.execute(*blackscholes.point_args(wl, i))
            assert rep.total_error > 0


class TestCrossToolAgreement:
    """The paper: CHEF-FP 'produc[es] mixed precision analysis results
    that agree with ADAPT's analysis' — check gradients exactly and
    totals to within small factors on every benchmark."""

    @pytest.mark.parametrize(
        "app,size",
        [(arclength, 500), (simpsons, 500), (kmeans, 150)],
    )
    def test_gradients_exact_totals_close(self, app, size):
        args = app.make_workload(size)
        chef = repro.estimate_error(
            app.INSTRUMENTED, model=repro.AdaptModel()
        ).execute(*args)
        adapt = AdaptAnalysis(app.INSTRUMENTED).execute(
            *app.make_workload(size)
        )
        assert chef.value == adapt.value
        for name, g in adapt.gradients.items():
            mine = chef.gradients[name]
            if isinstance(g, np.ndarray):
                np.testing.assert_allclose(mine, g, rtol=1e-9)
            else:
                assert mine == pytest.approx(g, rel=1e-9)
        ratio = chef.total_error / max(adapt.total_error, 1e-300)
        assert 0.2 < ratio < 5.0

    def test_hpccg_agreement(self):
        args = hpccg.make_workload(4, max_iter=15)
        chef = repro.estimate_error(
            hpccg.INSTRUMENTED, model=repro.AdaptModel()
        ).execute(*args)
        adapt = AdaptAnalysis(hpccg.INSTRUMENTED).execute(
            *hpccg.make_workload(4, max_iter=15)
        )
        assert chef.value == pytest.approx(adapt.value, rel=1e-12)
        np.testing.assert_allclose(
            chef.grad("bvec"), adapt.grad("bvec"), rtol=1e-7
        )


class TestPerformanceShape:
    """The headline claims, as assertions (coarse, CI-stable)."""

    def test_chef_faster_than_adapt(self):
        from repro.experiments.measure import measure_adapt, measure_chef

        args = arclength.make_workload(5_000)
        chef = measure_chef(arclength.INSTRUMENTED, args)
        adapt = measure_adapt(
            arclength.INSTRUMENTED, arclength.make_workload(5_000)
        )
        assert chef.time_s < adapt.time_s

    def test_chef_leaner_than_adapt(self):
        from repro.experiments.measure import measure_adapt, measure_chef

        args = simpsons.make_workload(5_000)
        chef = measure_chef(simpsons.INSTRUMENTED, args)
        adapt = measure_adapt(
            simpsons.INSTRUMENTED, simpsons.make_workload(5_000)
        )
        assert chef.peak_bytes < adapt.peak_bytes

    def test_adapt_ooms_where_chef_survives(self):
        from repro.experiments.measure import measure_adapt, measure_chef

        budget = 2 * 1024 * 1024
        args = arclength.make_workload(20_000)
        adapt = measure_adapt(
            arclength.INSTRUMENTED,
            args,
            memory_budget_bytes=budget,
        )
        assert adapt.oom
        chef = measure_chef(
            arclength.INSTRUMENTED, arclength.make_workload(20_000)
        )
        assert chef.total_error is not None  # completed fine
