"""Unified ``python -m repro`` CLI tests: subcommand smoke runs over
the app scenarios, ``--help`` snapshots, exit codes on bad arguments,
JSON output, and the run-store management subcommand."""

import json

import pytest

from repro.cli import main as cli
from repro.search.store import RunStore

#: fast search arguments shared by the store-backed tests
_FAST = ["--budget", "3", "--strategies", "greedy"]


def _run_search_into(store, extra=()):
    code = cli(
        ["search", "--kernel", "kmeans", *_FAST, "--store", str(store),
         *extra]
    )
    assert code == 0
    return RunStore(store)


class TestHelp:
    def test_top_level_help_lists_subcommands(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for name in (
            "estimate", "sweep", "tune", "search", "plan", "runs", "serve",
        ):
            assert name in out

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            cli(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_no_subcommand_prints_help(self, capsys):
        assert cli([]) == 2
        assert "usage: python -m repro" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "command,needle",
        [
            ("estimate", "--point"),
            ("sweep", "--aggregate"),
            ("tune", "--robust"),
            ("search", "--store"),
            ("plan", "--all"),
            ("runs", "--prune"),
            ("serve", "--max-queue"),
        ],
    )
    def test_subcommand_help(self, capsys, command, needle):
        with pytest.raises(SystemExit) as exc:
            cli([command, "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert needle in out
        assert "--help" in out


class TestBadArgs:
    def test_unknown_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli(["frobnicate"])
        assert exc.value.code == 2
        capsys.readouterr()

    def test_unknown_kernel_exits_2(self, capsys):
        assert cli(["estimate", "--kernel", "nope"]) == 2
        assert "unknown kernel" in capsys.readouterr().err

    def test_missing_kernel_lists_and_exits_2(self, capsys):
        assert cli(["tune"]) == 2
        assert "available scenarios" in capsys.readouterr().out

    def test_list_exits_0(self, capsys):
        assert cli(["search", "--list"]) == 0
        assert "kmeans" in capsys.readouterr().out

    def test_point_out_of_range_exits_2(self, capsys):
        assert cli(
            ["estimate", "--kernel", "kmeans", "--point", "99"]
        ) == 2
        assert "out of range" in capsys.readouterr().err

    def test_search_resume_requires_store(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli(["search", "--kernel", "kmeans", "--resume"])
        assert exc.value.code == 2
        capsys.readouterr()

    def test_plan_requires_plan_or_all(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            cli(["plan", "--store", str(tmp_path)])
        assert exc.value.code == 2
        capsys.readouterr()

    def test_runs_requires_store(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli(["runs"])
        assert exc.value.code == 2
        capsys.readouterr()

    def test_runs_nonexistent_store_exits_2_without_mkdir(
        self, tmp_path, capsys
    ):
        missing = tmp_path / "typo-path"
        assert cli(["runs", "--store", str(missing)]) == 2
        assert "does not exist" in capsys.readouterr().err
        assert not missing.exists()  # no side-effect mkdir

    def test_bad_flag_value_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli(["search", "--kernel", "kmeans", "--budget", "lots"])
        assert exc.value.code == 2
        capsys.readouterr()

    def test_sweep_without_samples_exits_2(self, capsys):
        # kmeans ships no input sweep
        assert cli(["sweep", "--kernel", "kmeans"]) == 2
        assert "no input sweep" in capsys.readouterr().err

    def test_robust_tune_without_samples_exits_2(self, capsys):
        assert cli(["tune", "--kernel", "kmeans", "--robust"]) == 2
        assert "no input sweep" in capsys.readouterr().err

    def test_bad_aggregate_is_usage_error(self, capsys):
        # ConfigError raised mid-command maps to exit 2, like argparse
        assert cli(
            ["sweep", "--kernel", "blackscholes", "--aggregate", "p999"]
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestEstimate:
    def test_smoke_and_json(self, tmp_path, capsys):
        out = tmp_path / "est.json"
        assert cli(
            ["estimate", "--kernel", "kmeans", "--json", str(out)]
        ) == 0
        text = capsys.readouterr().out
        assert "total error" in text
        payload = json.loads(out.read_text())
        assert payload["kernel"] == "kmeans_cost"
        assert payload["total_error"] > 0
        assert payload["per_variable"]

    def test_adapt_model(self, capsys):
        assert cli(
            ["estimate", "--kernel", "kmeans", "--model", "adapt"]
        ) == 0
        assert "per-variable" in capsys.readouterr().out


class TestSweep:
    def test_smoke_and_json(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        assert cli(
            ["sweep", "--kernel", "blackscholes", "--model", "adapt",
             "--aggregate", "p95", "--json", str(out)]
        ) == 0
        text = capsys.readouterr().out
        assert "total error [p95]" in text
        payload = json.loads(out.read_text())
        assert payload["n"] > 0
        assert payload["aggregate"] == "p95"


class TestTune:
    def test_point_mode(self, capsys):
        assert cli(
            ["tune", "--kernel", "kmeans", "--threshold", "1e-6"]
        ) == 0
        out = capsys.readouterr().out
        assert "configuration" in out
        assert "estimated error" in out

    def test_robust_mode_and_json(self, tmp_path, capsys):
        out = tmp_path / "tune.json"
        assert cli(
            ["tune", "--kernel", "blackscholes", "--robust",
             "--json", str(out)]
        ) == 0
        assert "robust [max]" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["kernel"] == "bs_price"
        assert isinstance(payload["demoted"], list)


class TestSearch:
    def test_smoke_with_store_and_resume(self, tmp_path, capsys):
        store = tmp_path / "runs"
        _run_search_into(store)
        out1 = capsys.readouterr().out
        assert "run store: run=" in out1
        assert "Pareto" in out1 or "front size" in out1
        assert cli(
            ["search", "--kernel", "kmeans", *_FAST,
             "--store", str(store), "--resume"]
        ) == 0
        assert "computed=0" in capsys.readouterr().out

    def test_json_result(self, tmp_path, capsys):
        out = tmp_path / "search.json"
        assert cli(
            ["search", "--kernel", "kmeans", *_FAST, "--json", str(out)]
        ) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["kernel"] == "kmeans_cost"
        assert payload["front"]


class TestPlan:
    def test_plan_file_roundtrip(self, tmp_path, capsys):
        plan = {
            "entries": [
                {"scenario": "kmeans", "budget": 3,
                 "strategies": ["greedy"]}
            ]
        }
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan))
        store = tmp_path / "runs"
        out = tmp_path / "plan-result.json"
        assert cli(
            ["plan", "--plan", str(plan_path), "--store", str(store),
             "--json", str(out)]
        ) == 0
        text = capsys.readouterr().out
        assert "kmeans" in text and "completed" in text
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        # resumed second run restores from the store
        assert cli(
            ["plan", "--plan", str(plan_path), "--store", str(store)]
        ) == 0
        assert "restored" in capsys.readouterr().out

    def test_legacy_search_plan_flags_still_work(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(
            {"entries": [{"scenario": "kmeans", "budget": 3,
                          "strategies": ["greedy"]}]}
        ))
        store = tmp_path / "runs"
        assert cli(
            ["search", "--plan", str(plan_path), "--store", str(store)]
        ) == 0
        assert "kmeans" in capsys.readouterr().out


class TestRuns:
    def test_list_compare_prune_diff(self, tmp_path, capsys):
        store = tmp_path / "runs"
        rs = _run_search_into(store)
        cli(
            ["search", "--kernel", "kmeans", "--budget", "4",
             "--strategies", "greedy", "--store", str(store)]
        )
        capsys.readouterr()

        assert cli(["runs", "--store", str(store)]) == 0
        listing = capsys.readouterr().out
        assert "2 stored run(s)" in listing
        assert "completed" in listing

        assert cli(["runs", "--store", str(store), "--compare"]) == 0
        compared = capsys.readouterr().out
        assert "comparing 2 run(s)" in compared
        assert "best@thr" in compared

        ids = [m["run_id"][:12] for m in rs.list_runs()]
        assert cli(
            ["runs", "--store", str(store), "--diff", ids[0], ids[1]]
        ) == 0
        assert "front diff" in capsys.readouterr().out

        assert cli(
            ["runs", "--store", str(store), "--prune", "--max-runs",
             "1", "--dry-run"]
        ) == 0
        assert "would prune 1 run(s)" in capsys.readouterr().out
        assert len(rs.list_runs()) == 2

        assert cli(
            ["runs", "--store", str(store), "--prune", "--max-runs", "1"]
        ) == 0
        assert "pruned 1 run(s)" in capsys.readouterr().out
        assert len(rs.list_runs()) == 1

    def test_prune_without_criteria_exits_2(self, tmp_path, capsys):
        store = tmp_path / "runs"
        store.mkdir()
        assert cli(["runs", "--store", str(store), "--prune"]) == 2
        assert "criterion" in capsys.readouterr().err

    def test_criteria_without_prune_exits_2(self, tmp_path, capsys):
        # --incomplete alone must not silently fall through to --list
        store = tmp_path / "runs"
        store.mkdir()
        with pytest.raises(SystemExit) as exc:
            cli(["runs", "--store", str(store), "--incomplete"])
        assert exc.value.code == 2
        capsys.readouterr()

    def test_plan_json_with_cache_flag(self, tmp_path, capsys):
        # regression: a live cache object must never leak into the
        # serialized plan defaults
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(
            {"entries": [{"scenario": "kmeans", "budget": 3,
                          "strategies": ["greedy"]}]}
        ))
        out = tmp_path / "plan.json.out"
        assert cli(
            ["plan", "--plan", str(plan_path),
             "--store", str(tmp_path / "runs"),
             "--cache", str(tmp_path / "cache"), "--json", str(out)]
        ) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["ok"] is True

    def test_diff_unknown_run_exits_2(self, tmp_path, capsys):
        store = tmp_path / "runs"
        _run_search_into(store)
        capsys.readouterr()
        assert cli(
            ["runs", "--store", str(store), "--diff", "00000000",
             "11111111"]
        ) == 2
        assert "no stored run" in capsys.readouterr().err

    def test_json_output(self, tmp_path, capsys):
        store = tmp_path / "runs"
        _run_search_into(store)
        capsys.readouterr()
        out = tmp_path / "runs.json"
        assert cli(
            ["runs", "--store", str(store), "--json", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        assert len(payload["runs"]) == 1
