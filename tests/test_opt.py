"""Optimization-pass tests: folding, DCE, CSE — each pass must be
semantics-preserving (checked by executing before/after) and must
actually simplify its target patterns."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.codegen.compile import compile_primal
from repro.frontend import kernel
from repro.ir import builder as b
from repro.ir import nodes as N
from repro.ir.types import DType, ScalarType
from repro.opt import dce_function, fold_function, optimize

xs = st.floats(min_value=-50.0, max_value=50.0)


def _fn_of(expr_builder):
    fn = N.Function(
        name="opt_t",
        params=[N.Param("x", ScalarType(DType.F64))],
        body=[N.Return(expr_builder(b.name("x", DType.F64)))],
        ret_dtype=DType.F64,
    )
    return fn


def _ret_expr(fn):
    return fn.body[-1].value


class TestFolding:
    def test_const_arith(self):
        fn = _fn_of(lambda x: b.add(b.const(2.0), b.const(3.0)))
        fold_function(fn)
        assert isinstance(_ret_expr(fn), N.Const)
        assert _ret_expr(fn).value == 5.0

    def test_mul_one_identity(self):
        fn = _fn_of(lambda x: b.mul(x, b.const(1.0)))
        fold_function(fn)
        assert isinstance(_ret_expr(fn), N.Name)

    def test_mul_minus_one_becomes_neg(self):
        fn = _fn_of(lambda x: b.mul(b.const(-1.0), x))
        fold_function(fn)
        assert isinstance(_ret_expr(fn), N.UnaryOp)

    def test_add_zero(self):
        fn = _fn_of(lambda x: b.add(b.const(0.0), x))
        fold_function(fn)
        assert isinstance(_ret_expr(fn), N.Name)

    def test_sub_zero_left(self):
        fn = _fn_of(lambda x: b.sub(b.const(0.0), x))
        fold_function(fn)
        e = _ret_expr(fn)
        assert isinstance(e, N.UnaryOp) and e.op == "-"

    def test_double_negation(self):
        fn = _fn_of(lambda x: b.neg(b.neg(x)))
        fold_function(fn)
        assert isinstance(_ret_expr(fn), N.Name)

    def test_nested_fabs(self):
        fn = _fn_of(lambda x: b.fabs(b.fabs(x)))
        fold_function(fn)
        e = _ret_expr(fn)
        assert isinstance(e, N.Call) and isinstance(e.args[0], N.Name)

    def test_fabs_of_neg(self):
        fn = _fn_of(lambda x: b.fabs(b.neg(x)))
        fold_function(fn)
        e = _ret_expr(fn)
        assert isinstance(e.args[0], N.Name)

    def test_cast_of_const(self):
        fn = _fn_of(lambda x: b.cast(DType.F32, b.const(math.pi)))
        fold_function(fn)
        e = _ret_expr(fn)
        assert isinstance(e, N.Const)
        assert e.value == float(np.float32(math.pi))

    def test_division_by_zero_not_folded(self):
        fn = _fn_of(lambda x: b.div(b.const(1.0), b.const(0.0)))
        fold_function(fn)
        assert isinstance(_ret_expr(fn), N.BinOp)  # left for runtime

    def test_comparison_folding(self):
        fn = _fn_of(lambda x: b.binop("<", b.const(1.0), b.const(2.0)))
        fold_function(fn)
        assert _ret_expr(fn).value is True


class TestDCE:
    def test_dead_store_removed(self):
        fn = N.Function(
            "dce_t",
            [N.Param("x", ScalarType(DType.F64))],
            [
                N.VarDecl("dead", DType.F64, b.mul(b.name("x"), b.const(3.0))),
                N.VarDecl("live", DType.F64, b.add(b.name("x"), b.const(1.0))),
                N.Return(b.name("live", DType.F64)),
            ],
            DType.F64,
        )
        dce_function(fn)
        names = [s.name for s in fn.body if isinstance(s, N.VarDecl)]
        assert "dead" not in names and "live" in names

    def test_dead_pop_becomes_discard(self):
        fn = N.Function(
            "dce_p",
            [N.Param("x", ScalarType(DType.F64))],
            [
                N.VarDecl("v", DType.F64, None),
                N.Push("tape", b.name("x", DType.F64)),
                N.Pop("tape", b.name("v", DType.F64)),
                N.Return(b.name("x", DType.F64)),
            ],
            DType.F64,
        )
        dce_function(fn)
        kinds = [type(s).__name__ for s in fn.body]
        assert "PopDiscard" in kinds  # stack alignment preserved
        assert "Pop" not in kinds


class TestCSE:
    def test_repeated_calls_hoisted(self):
        @kernel
        def cse_k(x: float) -> float:
            a = sin(x) * 2.0
            c = sin(x) * 3.0
            d = sin(x) + a + c
            return d

        opt = optimize(cse_k.ir, level=2)
        src_opt = compile_primal(opt).source
        # three textual sin() calls collapse to one
        assert src_opt.count("_i_sin(") == 1

    def test_invalidation_on_write(self):
        @kernel
        def cse_inv(x: float) -> float:
            a = cos(x) * 1.5
            x = x + 1.0
            c = cos(x) * 2.5
            return a + c

        opt = optimize(cse_inv.ir, level=2)
        src_opt = compile_primal(opt).source
        # the second cos(x) sees a *different* x: must NOT be merged
        assert src_opt.count("_i_cos(") == 2
        assert cse_inv(0.7) == pytest.approx(
            math.cos(0.7) * 1.5 + math.cos(1.7) * 2.5
        )


class TestSemanticsPreservation:
    @given(xs)
    @settings(max_examples=40, deadline=None)
    def test_optimize_preserves_kernel_semantics(self, x):
        @kernel
        def opt_sem(v: float) -> float:
            a = v * 1.0 + 0.0
            c = sin(a) * sin(a) + cos(a) * cos(a)
            d = c - 1.0 + v * 2.0
            return d

        raw = compile_primal(opt_sem.ir)
        opt = compile_primal(optimize(opt_sem.ir, level=2))
        assert raw(x) == opt(x)

    @given(xs)
    @settings(max_examples=25, deadline=None)
    def test_optimized_adjoint_matches_unoptimized(self, x):
        @kernel
        def opt_adj(v: float) -> float:
            w = exp(v * 0.1) * sin(v)
            return w * w

        g0 = repro.gradient(opt_adj, opt_level=0).execute(x)
        g2 = repro.gradient(opt_adj, opt_level=2).execute(x)
        assert g0.value == g2.value
        assert g0.grad("v") == pytest.approx(g2.grad("v"), rel=1e-12)

    def test_optimized_ee_matches_unoptimized(self):
        @kernel
        def opt_ee(v: float) -> float:
            w = v * v + sin(v)
            return w / 2.0

        e0 = repro.estimate_error(opt_ee, opt_level=0).execute(1.7)
        e2 = repro.estimate_error(opt_ee, opt_level=2).execute(1.7)
        assert e0.total_error == pytest.approx(e2.total_error, rel=1e-12)
        assert e0.per_variable == pytest.approx(e2.per_variable)

    def test_optimization_reduces_intrinsic_calls(self):
        @kernel
        def opt_sz(v: float) -> float:
            w = sin(v) * cos(v) + sin(v) / (1.0 + cos(v))
            return w

        e0 = repro.estimate_error(opt_sz, opt_level=0)
        e2 = repro.estimate_error(opt_sz, opt_level=2)
        calls0 = e0.source.count("_i_sin(") + e0.source.count("_i_cos(")
        calls2 = e2.source.count("_i_sin(") + e2.source.count("_i_cos(")
        assert calls2 < calls0
        # and the optimized analysis is measurably cheaper to run
        assert e2.execute(0.8).total_error == pytest.approx(
            e0.execute(0.8).total_error, rel=1e-12
        )
