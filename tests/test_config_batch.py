"""Config-batched candidate evaluation: lanes vs the scalar path.

The contract under test is *bitwise* equivalence: every number the
compile-once precision-parameterized lane engine produces — values,
actual errors, modelled cycles, adjoint error estimates — must equal
what the per-config ``apply_precision`` + compile + run path produces,
float for float.  Plus the supporting machinery: vectorized pool
lowering against its type-inference reference, the fingerprint-keyed
kernel cache, fallback paths, and the generation-based population
strategy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import blackscholes as bs
from repro.apps import kmeans as km
from repro.codegen.compile import (
    ConfigLoweringError,
    clear_config_kernel_cache,
    config_kernel_cache_stats,
    config_lane_kernel,
    lower_config_pool,
    lower_config_pool_reference,
)
from repro.codegen.npgen import (
    UnvectorizableError,
    generate_config_lane_source,
)
from repro.core.api import (
    cached_error_estimator,
    clear_estimator_memo,
    estimate_error,
)
from repro.core.models import AdaptModel, TaylorModel
from repro.frontend.registry import kernel as register_kernel
from repro.ir.fingerprint import ir_fingerprint
from repro.ir.types import DType
from repro.search.evaluate import CandidateEvaluator, config_key
from repro.search.parallel import ParallelEvaluator
from repro.sweep.samplers import random_sweep
from repro.tuning.config import (
    PrecisionConfig,
    apply_precision,
    resolve_targets,
)
from repro.tuning.validate import counting_runner, pool_counting_runner

KM_CANDIDATES = ("attributes", "clusters", "sum", "total", "best", "d")


def make_pool(names, k, seed=0, p=0.4):
    """Distinct random configurations with per-variable f32/f16 mixes."""
    names = sorted(names)
    rng = np.random.default_rng(seed)
    pool, seen = [], set()
    while len(pool) < k:
        demotions = {
            n: (DType.F32 if rng.random() < 0.7 else DType.F16)
            for n in names
            if rng.random() < p
        }
        cfg = PrecisionConfig(demotions)
        key = config_key(cfg)
        if demotions and key not in seen:
            seen.add(key)
            pool.append(cfg)
    return pool


def bs_points(n=4):
    wl = bs.make_workload(8)
    return [bs.point_args(wl, i) for i in range(n)]


def km_points(n=2, size=12):
    return [km.make_workload(size, seed=2023 + 7 * i) for i in range(n)]


# --------------------------------------------------------------------------
# Pool runner: bitwise identity against the per-config scalar path
# --------------------------------------------------------------------------


class TestPoolRunner:
    @pytest.mark.parametrize(
        "fn,points,names,mode",
        [
            (bs.bs_price.ir, bs_points(), bs.SEARCH_CANDIDATES, "grid"),
            (km.kmeans_cost.ir, km_points(), KM_CANDIDATES, "perpoint"),
        ],
        ids=["blackscholes", "kmeans"],
    )
    def test_bitwise_identical_to_scalar(self, fn, points, names, mode):
        pool = make_pool(names, 20, seed=1)
        runner = pool_counting_runner(fn)
        assert runner is not None and runner.mode == mode
        values, costs = runner(pool, points)
        for lane, cfg in enumerate(pool):
            run = counting_runner(apply_precision(fn, cfg))
            for j, pt in enumerate(points):
                v, c = run(pt)
                assert v == values[lane, j]  # bitwise, not approx
                assert c == costs[lane, j]

    def test_bitwise_identical_with_approx_intrinsics(self):
        # FastApprox substitutions must flow into the lane bindings —
        # regression: approx was once only part of the cache key
        fn = bs.bs_price.ir
        points = bs_points(2)
        approx = frozenset({"log", "sqrt", "exp"})
        pool = make_pool(bs.SEARCH_CANDIDATES, 8, seed=11)
        runner = pool_counting_runner(fn, approx=approx)
        values, costs = runner(pool, points)
        for lane, cfg in enumerate(pool):
            run = counting_runner(
                apply_precision(fn, cfg), approx=approx
            )
            for j, pt in enumerate(points):
                assert run(pt) == (values[lane, j], costs[lane, j])

    def test_negative_cycle_counts_raise(self):
        # same guard as the scalar counting_runner (the PR-2 fix)
        from repro.interp.cost_model import CostModel

        broken = CostModel()
        broken.add = {dt: -100.0 for dt in broken.add}
        broken.mul = {dt: -100.0 for dt in broken.mul}
        broken.div = {dt: -100.0 for dt in broken.div}
        broken.scalar_store = {dt: -100.0 for dt in broken.scalar_store}
        runner = pool_counting_runner(bs.bs_price.ir, cost_model=broken)
        with pytest.raises(ValueError, match="negative modelled cycle"):
            runner(
                make_pool(bs.SEARCH_CANDIDATES, 2, seed=12), bs_points(1)
            )

    def test_single_config_pool(self):
        fn = bs.bs_price.ir
        points = bs_points(2)
        cfg = PrecisionConfig.demote(["login", "xd1"], to=DType.F16)
        runner = pool_counting_runner(fn)
        values, costs = runner([cfg], points)
        run = counting_runner(apply_precision(fn, cfg))
        for j, pt in enumerate(points):
            v, c = run(pt)
            assert (v, c) == (values[0, j], costs[0, j])

    def test_unknown_variable_raises_keyerror(self):
        runner = pool_counting_runner(bs.bs_price.ir)
        bad = PrecisionConfig.demote(["no_such_var"])
        with pytest.raises(KeyError, match="no_such_var"):
            runner([bad], bs_points(1))

    def test_non_float_target_raises_lowering_error(self):
        runner = pool_counting_runner(km.kmeans_cost.ir)
        bad = PrecisionConfig.demote(["npoints"])  # i64 parameter
        with pytest.raises(ConfigLoweringError):
            runner([bad], km_points(1))

    def test_lowering_restores_nothing_because_nothing_mutates(self):
        # a pool lowering must leave the kernel IR untouched: the same
        # fingerprint (and bit-identical scalar behaviour) afterwards
        fn = bs.bs_price.ir
        before = ir_fingerprint(fn)
        runner = pool_counting_runner(fn)
        runner(make_pool(bs.SEARCH_CANDIDATES, 8), bs_points(1))
        assert ir_fingerprint(fn) == before
        # reference lowering mutates in place but restores on exit
        lower_config_pool_reference(
            runner.kernel.program, make_pool(bs.SEARCH_CANDIDATES, 4)
        )
        assert ir_fingerprint(fn) == before


# --------------------------------------------------------------------------
# Vectorized lowering vs the type-inference reference
# --------------------------------------------------------------------------


def _pools_equal(a, b):
    assert a.k == b.k
    assert len(a.selectors) == len(b.selectors)
    for sa, sb in zip(a.selectors, b.selectors):
        assert (sa is None) == (sb is None)
        if sa is not None:
            assert np.array_equal(sa.codes, sb.codes)
    assert len(a.charges) == len(b.charges)
    for ca, cb in zip(a.charges, b.charges):
        va = np.broadcast_to(np.asarray(ca, float), (a.k, 1))
        vb = np.broadcast_to(np.asarray(cb, float), (b.k, 1))
        assert np.array_equal(va, vb)
    for ca, cb in zip(a.consts, b.consts):
        va = np.broadcast_to(np.asarray(ca, float), (a.k, 1))
        vb = np.broadcast_to(np.asarray(cb, float), (b.k, 1))
        assert np.array_equal(va, vb)


class TestLoweringEquivalence:
    @pytest.mark.parametrize(
        "fn,names",
        [
            (bs.bs_price.ir, bs.SEARCH_CANDIDATES),
            (km.kmeans_cost.ir, KM_CANDIDATES),
        ],
        ids=["blackscholes", "kmeans"],
    )
    def test_vectorized_matches_reference(self, fn, names):
        runner = pool_counting_runner(fn)
        program = runner.kernel.program
        for seed in range(3):
            pool = make_pool(names, 16, seed=seed, p=0.5)
            fast = lower_config_pool(program, pool)
            ref = lower_config_pool_reference(program, pool)
            _pools_equal(fast, ref)

    def test_fast_targets_matches_resolve_targets(self):
        # exact keys must win over inlined-prefix matches, in both
        fn = bs.bs_price.ir  # cndf inlined twice: x_in1, x_in2 etc.
        cfgs = [
            PrecisionConfig({"expin": DType.F32}),
            PrecisionConfig(
                {"expin_in1": DType.F16, "expin": DType.F32}
            ),
            PrecisionConfig({"x": DType.F32}),  # only inlined copies
        ]
        from repro.codegen.compile import _fast_targets, _plan_for

        runner = pool_counting_runner(fn)
        plan = _plan_for(runner.kernel.program)
        for cfg in cfgs:
            assert _fast_targets(plan, fn.name, cfg) == resolve_targets(
                fn, cfg
            )
        with pytest.raises(KeyError):
            _fast_targets(
                plan, fn.name, PrecisionConfig({"zzz": DType.F32})
            )


# --------------------------------------------------------------------------
# Fingerprint-keyed compile cache
# --------------------------------------------------------------------------


class TestKernelCache:
    def test_same_content_shares_compiled_kernel(self):
        clear_config_kernel_cache()
        fn = bs.bs_price.ir
        batched = {p.name for p in fn.params}
        k1 = config_lane_kernel(fn, batched=batched, counting=True)
        k2 = config_lane_kernel(fn, batched=batched, counting=True)
        assert k1 is k2
        stats = config_kernel_cache_stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_different_content_misses(self):
        clear_config_kernel_cache()
        fn = bs.bs_price.ir
        batched = {p.name for p in fn.params}
        k1 = config_lane_kernel(fn, batched=batched, counting=True)
        # a *semantically different* kernel (a demoted clone) must not
        # reuse the baseline's compiled code
        demoted = apply_precision(
            fn, PrecisionConfig.demote(["login"])
        )
        demoted.name = fn.name  # same name, different content
        k3 = config_lane_kernel(demoted, batched=batched, counting=True)
        assert k3 is not k1
        assert config_kernel_cache_stats()["entries"] == 2

    def test_config_change_cannot_reuse_stale_lanes(self):
        # configurations are lowering-time lane parameters, never part
        # of the compiled kernel: two different pools through the same
        # kernel must score differently (no stale selector reuse)
        fn = bs.bs_price.ir
        points = bs_points(2)
        runner = pool_counting_runner(fn)
        a = PrecisionConfig.demote(["login"], to=DType.F16)
        b = PrecisionConfig.demote(["xden"], to=DType.F32)
        va, ca = runner([a], points)
        vb, cb = runner([b], points)
        assert not np.array_equal(va, vb) or not np.array_equal(ca, cb)
        # and each matches its own scalar evaluation
        for cfg, (v, c) in ((a, (va, ca)), (b, (vb, cb))):
            run = counting_runner(apply_precision(fn, cfg))
            for j, pt in enumerate(points):
                assert run(pt) == (v[0, j], c[0, j])


# --------------------------------------------------------------------------
# CandidateEvaluator: batched pools vs per-candidate scoring
# --------------------------------------------------------------------------


def _candidates_identical(xs, ys):
    assert len(xs) == len(ys)
    for x, y in zip(xs, ys):
        assert x.key == y.key
        assert x.actual_error == y.actual_error
        assert x.point_errors == y.point_errors
        assert x.estimated_error == y.estimated_error
        assert x.error == y.error
        assert x.cycles == y.cycles
        assert x.cycles_reference == y.cycles_reference
        assert x.index == y.index and x.strategy == y.strategy


class TestCandidateEvaluator:
    def test_batched_equals_scalar_blackscholes_with_sweep(self):
        fn = bs.bs_price.ir
        points = bs_points()
        samples = random_sweep(
            {"sptprice": (25.0, 150.0), "volatility": (0.05, 0.65)},
            n=16,
            seed=5,
        )
        fixed = {"strike": 100.0, "rate": 0.05, "otime": 0.5, "otype": 0}
        pool = [PrecisionConfig()] + make_pool(
            bs.SEARCH_CANDIDATES, 12, seed=2
        )
        kwargs = dict(samples=samples, fixed=fixed)
        batched = CandidateEvaluator(fn, points, **kwargs)
        scalar = CandidateEvaluator(
            fn, points, config_batch=False, **kwargs
        )
        rb = batched.evaluate_many(pool, "t")
        rs = scalar.evaluate_many(pool, "t")
        _candidates_identical(rb, rs)
        assert batched.n_pool_lanes == 12  # empty config not laned
        assert batched.pool_mode == "grid"
        assert scalar.pool_mode is None

    def test_batched_equals_scalar_kmeans(self):
        fn = km.kmeans_cost.ir
        points = km_points()
        pool = make_pool(KM_CANDIDATES, 10, seed=3)
        batched = CandidateEvaluator(fn, points)
        scalar = CandidateEvaluator(fn, points, config_batch=False)
        _candidates_identical(
            batched.evaluate_many(pool, "t"),
            scalar.evaluate_many(pool, "t"),
        )
        assert batched.pool_mode == "perpoint"
        assert batched.n_pool_runs == 1

    def test_memo_preserved_across_pool_calls(self):
        fn = bs.bs_price.ir
        ev = CandidateEvaluator(fn, bs_points(2))
        pool = make_pool(bs.SEARCH_CANDIDATES, 6, seed=4)
        ev.evaluate_many(pool, "first")
        n = ev.n_computed
        again = ev.evaluate_many(pool + pool[:3], "second")
        assert ev.n_computed == n  # everything served from the memo
        assert ev.n_memo_hits >= len(pool) + 3
        assert [c.strategy for c in again] == ["first"] * len(again)

    def test_parallel_blocks_identical_to_serial(self):
        fn = bs.bs_price.ir
        points = bs_points(2)
        pool = make_pool(bs.SEARCH_CANDIDATES, 8, seed=6)
        serial = CandidateEvaluator(fn, points)
        rs = serial.evaluate_many(pool, "t")
        with ParallelEvaluator(fn, points, workers=2) as par:
            rp = par.evaluate_many(pool, "t")
            if par.parallel:
                # worker-side pool telemetry must surface in the parent
                assert par.n_pool_lanes == len(pool)
                assert par.n_pool_runs >= 1
        _candidates_identical(rs, rp)


# --------------------------------------------------------------------------
# Scalar fallbacks: kernels the lane generator cannot express
# --------------------------------------------------------------------------


@register_kernel
def cb_while_kernel(x: float) -> float:
    s = 0.0
    while s < x:  # trip count depends on batched/config data
        s = s + 0.25
    return s


@register_kernel
def cb_simple_kernel(x: float, y: float) -> float:
    a = x * y
    b = a + x
    return b


class TestFallbacks:
    def test_while_kernel_unvectorizable_falls_back(self):
        fn = cb_while_kernel.ir
        assert pool_counting_runner(fn) is None
        ev = CandidateEvaluator(fn, [(1.0,), (2.5,)])
        scalar = CandidateEvaluator(
            fn, [(1.0,), (2.5,)], config_batch=False
        )
        pool = [
            PrecisionConfig.demote(["s"]),
            PrecisionConfig.demote(["s", "x"], to=DType.F16),
        ]
        _candidates_identical(
            ev.evaluate_many(pool, "t"), scalar.evaluate_many(pool, "t")
        )
        assert ev.pool_mode is None and ev.n_pool_runs == 0

    def test_generator_rejects_tainted_while(self):
        with pytest.raises(UnvectorizableError, match="while"):
            generate_config_lane_source(
                cb_while_kernel.ir,
                batched={"x"},
                counting=True,
            )

    def test_sweep_loop_backend_still_used_for_arrays(self):
        # the input-sweep engine's scalar-loop fallback (array params)
        est = estimate_error(km.euclid_dist, model=AdaptModel())
        size, _, nf, attrs, cl = km.make_workload(8)
        batch = est.execute_batch(nf, [0, 1, 2], 0, attrs, cl)
        assert batch.backend == "loop"
        for i, pt in enumerate([0, 1, 2]):
            rep = est.execute(nf, pt, 0, attrs.copy(), cl.copy())
            assert rep.value == batch.values[i]
            assert rep.total_error == batch.total_error[i]


# --------------------------------------------------------------------------
# ErrorEstimator.execute_config_batch
# --------------------------------------------------------------------------


class TestExecuteConfigBatch:
    @pytest.mark.parametrize(
        "model_cls", [TaylorModel, AdaptModel], ids=["taylor", "adapt"]
    )
    def test_lanes_match_per_config_estimators(self, model_cls):
        clear_estimator_memo()
        sw = random_sweep(
            {"sptprice": (25.0, 150.0), "volatility": (0.05, 0.65)},
            n=12,
            seed=9,
        )
        args = (sw["sptprice"], 100.0, 0.05, sw["volatility"], 0.5, 0)
        pool = [PrecisionConfig()] + make_pool(
            bs.SEARCH_CANDIDATES, 8, seed=7
        )
        est = estimate_error(bs.bs_price, model=model_cls())
        rep = est.execute_config_batch(pool, *args)
        assert rep.backend == "lanes"
        assert rep.total_error.shape == (len(pool), 12)
        for lane, cfg in enumerate(pool):
            mixed = (
                apply_precision(bs.bs_price.ir, cfg)
                if cfg
                else bs.bs_price.ir
            )
            ref = cached_error_estimator(
                mixed, model=model_cls()
            ).execute_batch(*args)
            assert np.array_equal(ref.values, rep.values[lane])
            assert np.array_equal(
                ref.total_error, rep.total_error[lane]
            )
            row = rep.report(lane)
            for v, e in ref.per_variable.items():
                assert np.array_equal(e, row.per_variable[v])
            for g, a in ref.gradients.items():
                assert np.array_equal(np.asarray(a), row.gradients[g])

    def test_array_kernel_falls_back_to_loop_backend(self):
        est = estimate_error(km.euclid_dist, model=AdaptModel())
        size, _, nf, attrs, cl = km.make_workload(6)
        pool = [
            PrecisionConfig.demote(["sum"]),
            PrecisionConfig.demote(["attributes", "clusters"]),
        ]
        rep = est.execute_config_batch(pool, nf, [0, 1], 0, attrs, cl)
        assert rep.backend == "loop"
        for lane, cfg in enumerate(pool):
            mixed = apply_precision(km.euclid_dist.ir, cfg)
            ref = cached_error_estimator(
                mixed, model=AdaptModel()
            ).execute_batch(nf, [0, 1], 0, attrs, cl)
            assert np.array_equal(ref.values, rep.values[lane])
            assert np.array_equal(
                ref.total_error, rep.total_error[lane]
            )


# --------------------------------------------------------------------------
# Population strategy and search-level identity
# --------------------------------------------------------------------------


class TestSearchIntegration:
    def _front_fp(self, res):
        return [(p.key, p.error, p.cycles) for p in res.front.points]

    def test_search_config_batch_identical_to_per_candidate(self):
        scen = km.search_scenario(size=10, n_workloads=2)
        a = scen.run(seed=0, budget=10)
        b = scen.run(seed=0, budget=10, config_batch=False)
        assert self._front_fp(a) == self._front_fp(b)
        evs_a = [(c.key, c.error, c.cycles) for c in a.evaluations]
        evs_b = [(c.key, c.error, c.cycles) for c in b.evaluations]
        assert evs_a == evs_b
        assert a.stats["evaluator"]["pool_mode"] == "perpoint"
        assert b.stats["evaluator"]["pool_mode"] is None

    def test_population_strategy_deterministic_and_budgeted(self):
        scen = km.search_scenario(size=10, n_workloads=2)
        a = scen.run(seed=3, budget=12, strategies=("population",))
        b = scen.run(seed=3, budget=12, strategies=("population",))
        assert self._front_fp(a) == self._front_fp(b)
        assert 0 < a.n_evaluated <= 12
        assert a.front.is_consistent()
        assert all(
            c.strategy in ("population", "exhaustive")
            for c in a.evaluations
        )

    def test_population_proposes_generations(self):
        # on a space too big to enumerate, generations arrive as pools:
        # the config-batched evaluator must see multi-lane runs
        scen = bs.search_scenario(n_points=2, n_samples=8)
        res = scen.run(seed=1, budget=14, strategies=("population",))
        ev = res.stats["evaluator"]
        assert ev["pool_runs"] >= 1
        assert ev["pool_lanes"] >= 4  # at least one whole generation
        assert res.front.is_consistent()

    def test_cli_prints_cache_and_memo_stats(self, capsys, tmp_path):
        from repro.search.__main__ import main

        rc = main(
            [
                "--kernel",
                "kmeans",
                "--budget",
                "6",
                "--cache",
                str(tmp_path / "cache"),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "evaluator: computed=" in out
        assert "estimator memo: entries=" in out
        assert "kernel cache: entries=" in out
        assert "sweep cache: hits=" in out
