"""FP substrate tests: rounding, ULPs, FastApprox accuracy, counters."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp import (
    CastCounter,
    EPS_F32,
    demotion_error,
    eps_of,
    fastapprox as fa,
    float_distance,
    round_f16,
    round_f32,
    round_to,
    ulp,
)
from repro.ir.types import DType

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e30, max_value=1e30
)
positive_floats = st.floats(min_value=1e-30, max_value=1e30)


class TestRounding:
    def test_round_f32_idempotent(self):
        v = round_f32(math.pi)
        assert round_f32(v) == v

    def test_round_f32_matches_numpy(self):
        for x in (math.pi, 1e-7, 12345.6789, -2.5e10):
            assert round_f32(x) == float(np.float32(x))

    def test_round_f16(self):
        assert round_f16(1.0) == 1.0
        assert round_f16(math.pi) == float(np.float16(math.pi))

    def test_round_to_arrays(self):
        a = np.array([math.pi, math.e])
        r = round_to(a, DType.F32)
        assert r.dtype == np.float64
        assert np.all(r == a.astype(np.float32).astype(np.float64))

    def test_round_to_non_float_passthrough(self):
        assert round_to(5, DType.I64) == 5

    @given(finite_floats.filter(lambda x: x == 0.0 or abs(x) > 1e-37))
    @settings(max_examples=300)
    def test_demotion_error_bound(self, x):
        # |x - (float)x| <= eps_f32 * |x| in binary32's *normal* range
        # (subnormal underflow legitimately violates the relative bound)
        err = abs(demotion_error(x))
        assert err <= EPS_F32 * abs(x) + 1e-300

    @given(finite_floats)
    def test_roundtrip_exact_for_f32_values(self, x):
        v = round_f32(x)
        assert demotion_error(v) == 0.0

    def test_eps_of(self):
        assert eps_of(DType.F32) == 2.0 ** -23
        with pytest.raises(KeyError):
            eps_of(DType.B1)


class TestUlp:
    def test_float_distance_adjacent(self):
        x = 1.0
        y = math.nextafter(x, 2.0)
        assert float_distance(x, y) == 1

    def test_float_distance_symmetric(self):
        assert float_distance(1.0, 1.5) == float_distance(1.5, 1.0)

    def test_float_distance_across_zero(self):
        a = math.nextafter(0.0, -1.0)
        c = math.nextafter(0.0, 1.0)
        assert float_distance(a, c) == 2

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            float_distance(float("nan"), 1.0)

    def test_ulp_positive(self):
        assert ulp(1.0) == 2.0 ** -52


class TestFastApprox:
    @given(st.floats(min_value=1e-20, max_value=1e20))
    @settings(max_examples=300)
    def test_fastlog2_accuracy(self, x):
        assert fa.fastlog2(x) == pytest.approx(
            math.log2(x), abs=2e-4, rel=1e-3
        )

    @given(st.floats(min_value=-80.0, max_value=80.0))
    @settings(max_examples=300)
    def test_fastpow2_relative_accuracy(self, p):
        assert fa.fastpow2(p) == pytest.approx(2.0 ** p, rel=3e-4)

    @given(st.floats(min_value=-50.0, max_value=50.0))
    def test_fastexp(self, p):
        assert fa.fastexp(p) == pytest.approx(math.exp(p), rel=5e-4)

    @given(positive_floats)
    @settings(max_examples=300)
    def test_fastsqrt(self, x):
        assert fa.fastsqrt(x) == pytest.approx(math.sqrt(x), rel=5e-3)

    def test_fastsqrt_zero(self):
        assert fa.fastsqrt(0.0) == 0.0

    @given(st.floats(min_value=0.1, max_value=100.0),
           st.floats(min_value=-3.0, max_value=3.0))
    def test_fastpow(self, x, p):
        assert fa.fastpow(x, p) == pytest.approx(x ** p, rel=2e-3)

    def test_faster_tier_is_cruder_but_sane(self):
        x = 7.3
        fine = abs(fa.fastlog(x) - math.log(x))
        crude = abs(fa.fasterlog(x) - math.log(x))
        assert fine < 1e-4
        assert crude < 0.05

    def test_domain_errors(self):
        with pytest.raises(ValueError):
            fa.fastlog(-1.0)
        with pytest.raises(ValueError):
            fa.fastrsqrt(0.0)

    def test_variant_tables_consistent(self):
        for name, fn in fa.FAST_VARIANTS.items():
            assert name in fa.EXACT_REFERENCE
            assert callable(fn)

    def test_nonzero_approximation_error(self):
        # the whole point: these are *approximate*
        assert fa.fastexp(1.0) != math.exp(1.0)
        assert fa.fastlog(2.7) != math.log(2.7)


class TestCastCounter:
    def test_records_and_totals(self):
        c = CastCounter()
        c.record(DType.F64, DType.F32)
        c.record(DType.F64, DType.F32, times=2)
        c.record(DType.F32, DType.F64)
        assert c.total == 4
        assert c.as_dict()[("f64", "f32")] == 3

    def test_same_precision_ignored(self):
        c = CastCounter()
        c.record(DType.F64, DType.F64)
        assert c.total == 0

    def test_merge(self):
        a, b = CastCounter(), CastCounter()
        a.record(DType.F64, DType.F32)
        b.record(DType.F64, DType.F32)
        a.merge(b)
        assert a.total == 2

    def test_str(self):
        c = CastCounter()
        assert "empty" in str(c)
        c.record(DType.F64, DType.F16)
        assert "f64->f16" in str(c)
