"""Forward mode, hoisting, pullback, and typecheck internals."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.hoist import hoist_locals
from repro.core.pullback import adjoint_name, pullback
from repro.frontend import kernel
from repro.ir import builder as b
from repro.ir import nodes as N
from repro.ir.printer import format_expr
from repro.ir.typecheck import collect_var_dtypes, infer_types, intrinsic_result_dtype
from repro.ir.types import DType
from repro.util.errors import DifferentiationError, TypeCheckError

xs = st.floats(min_value=-2.0, max_value=2.0)


@kernel
def fw_fn(x: float, y: float) -> float:
    a = x * y + exp(x * 0.2)
    c = a * a / (y + 3.0)
    return c


@kernel
def fw_arr(n: int, v: "f64[]") -> float:
    s = 0.0
    for i in range(n):
        s = s + v[i] * v[i] * 0.5
    return s


class TestForwardMode:
    @given(xs, xs)
    @settings(max_examples=30, deadline=None)
    def test_matches_reverse(self, x, y):
        rev = repro.gradient(fw_fn).execute(x, y)
        _, dx = repro.forward_derivative(fw_fn, "x").execute(x, y)
        _, dy = repro.forward_derivative(fw_fn, "y").execute(x, y)
        assert dx == pytest.approx(rev.grad("x"), rel=1e-12)
        assert dy == pytest.approx(rev.grad("y"), rel=1e-12)

    def test_array_seed(self, rng):
        n = 5
        v = rng.normal(size=n)
        # seeding the whole array computes sum_j d/dv_j (dot with ones)
        _, dv = repro.forward_derivative(fw_arr, "v").execute(n, v)
        assert dv == pytest.approx(float(np.sum(v)), rel=1e-12)

    def test_unknown_wrt_rejected(self):
        with pytest.raises(DifferentiationError, match="nope"):
            repro.forward_derivative(fw_fn, "nope")

    def test_value_matches_primal(self):
        v, _ = repro.forward_derivative(fw_fn, "x").execute(1.1, 0.4)
        assert v == fw_fn(1.1, 0.4)


class TestHoisting:
    def test_decls_move_to_prologue(self):
        h = hoist_locals(fw_fn.ir)
        kinds = [type(s).__name__ for s in h.body]
        first_non_decl = next(
            i for i, k in enumerate(kinds) if k != "VarDecl"
        )
        assert "VarDecl" not in kinds[first_non_decl:]

    def test_hoisted_initializers_become_assigns(self):
        h = hoist_locals(fw_fn.ir)
        assigns = [s for s in h.body if isinstance(s, N.Assign)]
        names = {
            s.target.id for s in assigns if isinstance(s.target, N.Name)
        }
        assert {"a", "c"} <= names

    def test_original_not_mutated(self):
        before = len(fw_fn.ir.body)
        hoist_locals(fw_fn.ir)
        assert len(fw_fn.ir.body) == before


class TestPullback:
    def _contrib_map(self, expr, seed=None):
        seed = seed or b.name("_s", DType.F64)
        out = {}
        for lv, contrib in pullback(expr, seed):
            key = format_expr(lv)
            out.setdefault(key, []).append(format_expr(contrib))
        return out

    def test_linear_ops_have_constant_partials(self):
        e = b.add(b.name("u", DType.F64), b.name("v", DType.F64))
        m = self._contrib_map(e)
        assert m[adjoint_name("u")] == ["_s"]
        assert m[adjoint_name("v")] == ["_s"]

    def test_product_references_cofactor(self):
        e = b.mul(b.name("u", DType.F64), b.name("v", DType.F64))
        m = self._contrib_map(e)
        assert m[adjoint_name("u")] == ["_s * v"]
        assert m[adjoint_name("v")] == ["_s * u"]

    def test_integer_leaves_transparent(self):
        e = b.mul(b.name("u", DType.F64), b.name("i", DType.I64))
        m = self._contrib_map(e)
        assert adjoint_name("i") not in m

    def test_repeated_variable_accumulates_twice(self):
        u = b.name("u", DType.F64)
        e = b.mul(u, b.clone(u))
        m = self._contrib_map(e)
        assert len(m[adjoint_name("u")]) == 2

    def test_array_element_target(self):
        e = b.index("a", b.name("i", DType.I64), DType.F64)
        m = self._contrib_map(e)
        assert "_d_a[i]" in m

    def test_nondifferentiable_intrinsic_zero(self):
        e = b.call("floor", [b.name("u", DType.F64)])
        assert pullback(e, b.fone()) == []

    def test_fmax_subgradient(self):
        e = b.call(
            "fmax", [b.name("u", DType.F64), b.name("v", DType.F64)]
        )
        m = self._contrib_map(e, seed=b.fone())
        assert adjoint_name("u") in m and adjoint_name("v") in m


class TestTypecheck:
    def test_collect_var_dtypes(self):
        env = collect_var_dtypes(fw_arr.ir)
        assert env["n"] is DType.I64
        assert env["v"] is DType.F64
        assert env["i"] is DType.I64
        assert env["s"] is DType.F64

    def test_infer_types_fills_exprs(self):
        clone = b.clone(fw_fn.ir)
        # blank out all expression dtypes, then re-infer
        from repro.ir.visitor import iter_stmt_exprs, walk_expr, walk_stmts

        for s in walk_stmts(clone.body):
            for e in iter_stmt_exprs(s):
                for node in walk_expr(e):
                    node.dtype = None
        infer_types(clone)
        for s in walk_stmts(clone.body):
            for e in iter_stmt_exprs(s):
                for node in walk_expr(e):
                    assert node.dtype is not None

    def test_unknown_variable_raises(self):
        fn = N.Function(
            "tc_bad",
            [],
            [N.Return(b.name("ghost"))],
            DType.F64,
        )
        with pytest.raises(TypeCheckError, match="ghost"):
            infer_types(fn)

    def test_intrinsic_result_precision_follows_args(self):
        assert intrinsic_result_dtype("sin", [DType.F32]) is DType.F32
        assert intrinsic_result_dtype("sin", [DType.F64]) is DType.F64
        assert intrinsic_result_dtype("sin", [DType.I64]) is DType.F64
        assert (
            intrinsic_result_dtype("pow", [DType.F32, DType.F64])
            is DType.F64
        )
