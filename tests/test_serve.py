"""Job-server tests: spec validation and content-hash identity, the
registry lifecycle (dedupe, backpressure, cancel, deadline, journal
recovery), the pure route table, the wire protocol, and full-process
server exercises — including SIGKILL mid-search → restart → resumed
front bit-identical to an uninterrupted run."""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve import (
    JobJournal,
    JobRegistry,
    JobSpec,
    QueueFullError,
    ServeApp,
    ServiceMetrics,
)
from repro.serve.http import (
    HttpError,
    HttpRequest,
    read_request,
    render,
)
from repro.session import Session
from repro.util.errors import ConfigError, UnknownNameError

_SRC = Path(__file__).resolve().parents[1] / "src"

# small but real search work: enough evaluations to checkpoint and to
# crash in the middle of
_SEARCH_SPEC = {
    "kind": "search",
    "kernel": "kmeans",
    "budget": 12,
    "strategies": ["greedy", "delta", "anneal"],
}


def _wait(fn, timeout=60.0, period=0.05):
    deadline = time.monotonic() + timeout
    while True:
        value = fn()
        if value:
            return value
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(period)


def _finished(reg, job_id):
    return lambda: (
        reg.get(job_id)
        if reg.get(job_id).state in ("completed", "failed", "cancelled")
        else None
    )


# -- specs --------------------------------------------------------------------


class TestJobSpec:
    def test_normalization_gives_one_identity(self):
        short = JobSpec.from_dict({"kind": "search", "kernel": "kmeans"})
        spelled = JobSpec.from_dict(
            {
                "kind": "search",
                "kernel": "kmeans",
                "seed": 0,
                "point": 0,
                "robust": False,
                "threshold": None,
            }
        )
        assert short == spelled
        assert short.job_id == spelled.job_id

    def test_any_knob_changes_the_id(self):
        base = JobSpec.from_dict(_SEARCH_SPEC)
        for delta in (
            {"budget": 13},
            {"seed": 1},
            {"strategies": ["greedy"]},
            {"threshold": 1e-3},
            {"kernel": "simpsons"},
        ):
            other = JobSpec.from_dict({**_SEARCH_SPEC, **delta})
            assert other.job_id != base.job_id, delta

    def test_roundtrip(self):
        spec = JobSpec.from_dict(_SEARCH_SPEC)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "raw",
        [
            {"kind": "zap", "kernel": "kmeans"},
            {"kind": "search", "kernel": ""},
            {"kind": "search", "kernel": 7},
            {"kind": "estimate", "kernel": "kmeans", "budget": 4},
            {"kind": "sweep", "kernel": "kmeans", "threshold": 1e-6},
            {"kind": "estimate", "kernel": "kmeans", "aggregate": "max"},
            {"kind": "search", "kernel": "kmeans", "robust": True},
            {"kind": "search", "kernel": "kmeans", "budget": 0},
            {"kind": "search", "kernel": "kmeans", "threshold": 0.0},
            {"kind": "search", "kernel": "kmeans", "strategies": "greedy"},
            {"kind": "search", "kernel": "kmeans", "point": -1},
            {"kind": "search", "kernel": "kmeans", "timeout_s": 0},
            {"kind": "search", "kernel": "kmeans", "bogus": 1},
            ["kind", "search"],
        ],
    )
    def test_invalid_specs_rejected(self, raw):
        with pytest.raises(ConfigError):
            JobSpec.from_dict(raw)


# -- registry -----------------------------------------------------------------


@pytest.fixture
def sess(tmp_path):
    return Session(store=tmp_path / "runs")


@pytest.fixture
def registry(sess, tmp_path):
    reg = JobRegistry(
        sess, workers=2, journal=JobJournal(tmp_path / "jobs")
    )
    yield reg
    reg.close()


class TestRegistry:
    def test_search_job_end_to_end(self, registry, sess):
        job, created = registry.submit(JobSpec.from_dict(_SEARCH_SPEC))
        assert created
        # the run id is resolved at submission through the same
        # pipeline the execution uses
        assert job.run_id == sess.search_run_id(
            "kmeans",
            budget=12,
            strategies=("greedy", "delta", "anneal"),
            seed=0,
        )
        done = _wait(_finished(registry, job.id))
        assert done.state == "completed", done.error
        assert done.result["front"]
        assert done.result["run_id"] == job.run_id
        progress = registry.progress(done)
        assert progress["exists"] and progress["completed"]
        assert progress["front_size"] == len(done.result["front"])

    def test_identical_submission_dedupes(self, registry):
        a, created_a = registry.submit(JobSpec.from_dict(_SEARCH_SPEC))
        b, created_b = registry.submit(
            JobSpec.from_dict({**_SEARCH_SPEC, "seed": 0, "point": 0})
        )
        assert created_a and not created_b
        assert a is b
        assert registry.counters["deduped"] == 1
        _wait(_finished(registry, a.id))

    def test_resubmit_after_completion_reuses_store(self, sess, tmp_path):
        # two registry lives over one session: the second run of the
        # same job is answered entirely from the run store — zero new
        # candidate evaluations
        reg1 = JobRegistry(sess)
        first = _wait(
            _finished(
                reg1, reg1.submit(JobSpec.from_dict(_SEARCH_SPEC))[0].id
            )
        )
        reg1.close()
        assert first.state == "completed"
        n_stored = len(sess.store.load_records(first.result["run_id"]))

        reg2 = JobRegistry(sess)
        again = _wait(
            _finished(
                reg2, reg2.submit(JobSpec.from_dict(_SEARCH_SPEC))[0].id
            )
        )
        reg2.close()
        assert again.state == "completed"
        assert again.result["resumed"]
        assert again.result["n_restored"] == again.result["n_evaluated"]
        assert again.result["stats"]["run_store"]["computed"] == 0
        assert again.result["front"] == first.result["front"]
        assert (
            len(sess.store.load_records(first.result["run_id"]))
            == n_stored
        )

    def test_unknown_scenario_rejected_at_submit(self, registry):
        with pytest.raises(UnknownNameError):
            registry.submit(
                JobSpec.from_dict({"kind": "search", "kernel": "nope"})
            )

    def test_point_out_of_range_rejected_at_submit(self, registry):
        with pytest.raises(ConfigError):
            registry.submit(
                JobSpec.from_dict(
                    {"kind": "estimate", "kernel": "simpsons", "point": 99}
                )
            )

    def test_budget_cap(self, sess):
        reg = JobRegistry(sess, max_budget=8)
        try:
            with pytest.raises(ConfigError):
                reg.submit(
                    JobSpec.from_dict(
                        {"kind": "search", "kernel": "kmeans", "budget": 9}
                    )
                )
            # the scenario default budget is checked too
            with pytest.raises(ConfigError):
                reg.submit(
                    JobSpec.from_dict({"kind": "search", "kernel": "kmeans"})
                )
        finally:
            reg.close()

    def test_queue_backpressure(self, sess):
        reg = JobRegistry(sess, workers=1, max_queue=1)
        gate = threading.Event()
        reg._pre_run_hook = lambda job: gate.wait(30)
        try:
            first, _ = reg.submit(
                JobSpec.from_dict({"kind": "estimate", "kernel": "simpsons"})
            )
            _wait(lambda: reg.get(first.id).state == "running")
            reg.submit(
                JobSpec.from_dict({"kind": "estimate", "kernel": "arclength"})
            )
            with pytest.raises(QueueFullError):
                reg.submit(
                    JobSpec.from_dict({"kind": "estimate", "kernel": "hpccg"})
                )
            assert reg.counters["rejected"] == 1
        finally:
            gate.set()
            reg.drain(30)
            reg.close()

    def test_cancel_queued_and_finished(self, sess):
        reg = JobRegistry(sess, workers=1)
        gate = threading.Event()
        reg._pre_run_hook = lambda job: gate.wait(30)
        try:
            a, _ = reg.submit(
                JobSpec.from_dict({"kind": "estimate", "kernel": "simpsons"})
            )
            b, _ = reg.submit(
                JobSpec.from_dict({"kind": "estimate", "kernel": "arclength"})
            )
            _wait(lambda: reg.get(a.id).state == "running")
            cancelled, accepted = reg.cancel(b.id)
            assert accepted and cancelled.state == "cancelled"
            gate.set()
            done = _wait(_finished(reg, a.id))
            assert done.state == "completed"
            _, accepted = reg.cancel(a.id)
            assert not accepted  # finished jobs stay finished
        finally:
            gate.set()
            reg.close()

    def test_cancel_running_search_mid_flight(self, sess):
        reg = JobRegistry(sess, workers=1)
        started = threading.Event()
        reg._pre_run_hook = lambda job: started.set()
        try:
            spec = JobSpec.from_dict(
                {**_SEARCH_SPEC, "budget": 48, "strategies": ["anneal"]}
            )
            job, _ = reg.submit(spec)
            assert started.wait(30)
            reg.cancel(job.id)
            done = _wait(_finished(reg, job.id))
            assert done.state == "cancelled"
        finally:
            reg.close()

    def test_deadline_fails_the_job(self, sess):
        reg = JobRegistry(sess, workers=1)
        try:
            spec = JobSpec.from_dict(
                {**_SEARCH_SPEC, "budget": 48, "timeout_s": 1e-4}
            )
            job, _ = reg.submit(spec)
            done = _wait(_finished(reg, job.id))
            assert done.state == "failed"
            assert "deadline" in done.error
            assert reg.counters["timeouts"] == 1
        finally:
            reg.close()

    def test_journal_recovery_requeues_unfinished(self, sess, tmp_path):
        journal_dir = tmp_path / "jobs"
        reg1 = JobRegistry(sess, journal=JobJournal(journal_dir))
        gate = threading.Event()
        reg1._pre_run_hook = lambda job: gate.wait(30)
        job, _ = reg1.submit(JobSpec.from_dict(_SEARCH_SPEC))
        _wait(lambda: reg1.get(job.id).state == "running")
        # abandon the registry with the job still RUNNING in the
        # journal — the moral equivalent of a SIGKILL
        reg1.close()
        gate.set()

        reg2 = JobRegistry(sess, journal=JobJournal(journal_dir))
        try:
            assert reg2.recover() == 1
            recovered = reg2.get(job.id)
            assert recovered.recovered
            done = _wait(_finished(reg2, job.id))
            assert done.state == "completed", done.error
            assert done.result["front"]
        finally:
            reg2.close()

        # a third life rehydrates the finished record without rerunning
        reg3 = JobRegistry(sess, journal=JobJournal(journal_dir))
        try:
            assert reg3.recover() == 0
            kept = reg3.get(job.id)
            assert kept.state == "completed"
            assert kept.result is not None
            assert reg3.counters["submitted"] == 0
        finally:
            reg3.close()

    def test_journal_tolerates_garbage(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs")
        (tmp_path / "jobs" / "job-zzz.json").write_text("{not json")
        (tmp_path / "jobs" / "job-yyy.json").write_text("[1, 2]")
        assert journal.load() == []


# -- route table --------------------------------------------------------------


def _req(method, path, body=None):
    raw = b"" if body is None else json.dumps(body).encode()
    return HttpRequest(method, path, {}, raw)


@pytest.fixture
def app(registry):
    return ServeApp(registry, ServiceMetrics(registry))


class TestServeApp:
    def test_healthz(self, app):
        status, payload, _ = app.handle(_req("GET", "/v1/healthz"))
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["version"]

    def test_draining_healthz_and_submit(self, registry):
        app = ServeApp(
            registry, ServiceMetrics(registry), is_draining=lambda: True
        )
        assert app.handle(_req("GET", "/v1/healthz"))[0] == 503
        status, _, headers = app.handle(
            _req("POST", "/v1/jobs", _SEARCH_SPEC)
        )
        assert status == 503
        assert "Retry-After" in headers

    def test_submit_poll_result(self, app):
        status, payload, _ = app.handle(
            _req("POST", "/v1/jobs", _SEARCH_SPEC)
        )
        assert status == 201 and payload["created"]
        jid = payload["id"]
        # identical resubmission answers 200 from the dedup
        status, payload, _ = app.handle(
            _req("POST", "/v1/jobs", _SEARCH_SPEC)
        )
        assert status == 200 and not payload["created"]

        def result():
            s, p, _ = app.handle(_req("GET", f"/v1/jobs/{jid}/result"))
            return (s, p) if s != 202 else None

        status, payload = _wait(result)
        assert status == 200
        assert payload["result"]["front"]
        status, payload, _ = app.handle(_req("GET", f"/v1/jobs/{jid}"))
        assert status == 200
        assert payload["progress"]["completed"]
        status, payload, _ = app.handle(_req("GET", "/v1/jobs"))
        assert status == 200 and payload["count"] == 1

    def test_submit_errors(self, app):
        bad = HttpRequest("POST", "/v1/jobs", {}, b"{not json")
        assert app.handle(bad)[0] == 400
        assert (
            app.handle(
                _req("POST", "/v1/jobs", {"kind": "zap", "kernel": "x"})
            )[0]
            == 400
        )
        assert (
            app.handle(
                _req(
                    "POST",
                    "/v1/jobs",
                    {"kind": "search", "kernel": "nope"},
                )
            )[0]
            == 404
        )

    def test_queue_full_is_429(self, sess):
        reg = JobRegistry(sess, workers=1, max_queue=0)
        try:
            app = ServeApp(reg, ServiceMetrics(reg))
            status, payload, headers = app.handle(
                _req("POST", "/v1/jobs", _SEARCH_SPEC)
            )
            assert status == 429
            assert headers["Retry-After"]
            assert payload["retry_after_s"]
        finally:
            reg.close()

    def test_unknown_routes_and_methods(self, app):
        assert app.handle(_req("GET", "/v1/nope"))[0] == 404
        assert app.handle(_req("GET", "/v1/jobs/job-missing"))[0] == 404
        assert app.handle(_req("PUT", "/v1/jobs"))[0] == 405
        assert app.handle(_req("POST", "/v1/metrics"))[0] == 405
        assert app.handle(_req("GET", "/v1/jobs/a/b/c"))[0] == 404

    def test_cancel_route(self, sess):
        reg = JobRegistry(sess, workers=1)
        gate = threading.Event()
        reg._pre_run_hook = lambda job: gate.wait(30)
        try:
            app = ServeApp(reg, ServiceMetrics(reg))
            _, submitted, _ = app.handle(
                _req("POST", "/v1/jobs", _SEARCH_SPEC)
            )
            _, queued, _ = app.handle(
                _req(
                    "POST",
                    "/v1/jobs",
                    {"kind": "estimate", "kernel": "simpsons"},
                )
            )
            status, payload, _ = app.handle(
                _req("DELETE", f"/v1/jobs/{queued['id']}")
            )
            assert status == 200
            gate.set()
            _wait(_finished(reg, submitted["id"]))
            status, _, _ = app.handle(
                _req("DELETE", f"/v1/jobs/{submitted['id']}")
            )
            assert status == 409  # already finished
        finally:
            gate.set()
            reg.close()

    def test_metrics_snapshot(self, app, registry):
        job, _ = registry.submit(JobSpec.from_dict(_SEARCH_SPEC))
        _wait(_finished(registry, job.id))
        status, m, _ = app.handle(_req("GET", "/v1/metrics"))
        assert status == 200
        assert m["jobs"]["counters"]["completed"] == 1
        assert m["service"]["version"]
        assert "estimator_memo" in m["session"]
        assert "config_kernel_cache" in m["session"]
        assert m["store"]["runs"] == 1
        assert m["store"]["in_flight"] == 0

    def test_metrics_prom_exposition(self, app):
        from repro.serve.http import PlainText

        status, payload, _ = app.handle(
            _req("GET", "/v1/metrics?format=prom")
        )
        assert status == 200
        assert isinstance(payload, PlainText)
        assert payload.content_type.startswith("text/plain")
        lines = payload.text.splitlines()
        assert any(ln.startswith("# TYPE repro_") for ln in lines)
        for line in lines:
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name.startswith("repro_")
            float(value)  # every sample value parses

    def test_metrics_unknown_format_rejected(self, app):
        status, payload, _ = app.handle(
            _req("GET", "/v1/metrics?format=xml")
        )
        assert status == 400
        assert "xml" in payload["error"]

    def test_submit_echoes_request_id(self, app, registry):
        status, payload, headers = app.handle(
            _req("POST", "/v1/jobs", _SEARCH_SPEC)
        )
        assert status == 201
        rid = headers["X-Request-Id"]
        assert rid.startswith("req-")
        assert payload["request_id"] == rid
        assert registry.get(payload["id"]).request_id == rid

    def test_submit_honors_client_request_id(self, app):
        req = HttpRequest(
            "POST",
            "/v1/jobs",
            {"x-request-id": "req-client-0001"},
            json.dumps(_SEARCH_SPEC).encode(),
        )
        status, payload, headers = app.handle(req)
        assert status == 201
        assert headers["X-Request-Id"] == "req-client-0001"
        assert payload["request_id"] == "req-client-0001"


# -- wire protocol ------------------------------------------------------------


def _parse(data: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestHttpProtocol:
    def test_request_with_body(self):
        body = b'{"a": 1}'
        raw = (
            b"POST /v1/jobs?x=1&y=%20z HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        req = _parse(raw)
        assert req.method == "POST"
        assert req.path == "/v1/jobs"
        assert req.query == {"x": "1", "y": " z"}
        assert req.json() == {"a": 1}
        assert req.keep_alive

    def test_connection_close(self):
        req = _parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not req.keep_alive

    def test_clean_eof_is_none(self):
        assert _parse(b"") is None

    @pytest.mark.parametrize(
        "raw",
        [
            b"GARBAGE\r\n\r\n",
            b"GET /\r\n\r\n",
            b"GET / SPDY/3\r\n\r\n",
            b"GET / HTTP/1.1\r\nbadheader\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
            b"GET / HTT",
        ],
    )
    def test_malformed_requests_raise(self, raw):
        with pytest.raises(HttpError):
            _parse(raw)

    def test_empty_body_json_raises(self):
        req = _parse(b"POST / HTTP/1.1\r\n\r\n")
        with pytest.raises(HttpError):
            req.json()

    def test_render(self):
        out = render(
            429, {"error": "x"}, keep_alive=False,
            headers={"Retry-After": "2"},
        )
        head, _, body = out.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests\r\n")
        assert b"Retry-After: 2" in head
        assert b"Connection: close" in head
        assert json.loads(body) == {"error": "x"}
        assert f"Content-Length: {len(body)}".encode() in head


# -- full-process server ------------------------------------------------------


class _Client:
    """Tiny urllib front over one spawned server process."""

    def __init__(self, port):
        self.base = f"http://127.0.0.1:{port}"

    def request(self, method, path, body=None):
        import urllib.error
        import urllib.request

        req = urllib.request.Request(
            self.base + path,
            data=None if body is None else json.dumps(body).encode(),
            method=method,
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def wait_result(self, job_id, timeout=120.0):
        deadline = time.monotonic() + timeout
        while True:
            status, payload = self.request(
                "GET", f"/v1/jobs/{job_id}/result"
            )
            if status != 202:
                return status, payload
            if time.monotonic() > deadline:
                raise AssertionError("job did not finish in time")
            time.sleep(0.2)


def _spawn_server(store, crash_after=None):
    env = dict(os.environ, PYTHONPATH=str(_SRC))
    if crash_after is not None:
        env["REPRO_SEARCH_CRASH_AFTER"] = str(crash_after)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--store",
            str(store),
            "--port",
            "0",
            "--workers",
            "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    banner = proc.stdout.readline()
    match = re.search(r"listening on http://[^:]+:(\d+)", banner)
    if match is None:
        proc.kill()
        raise AssertionError(
            f"no banner: {banner!r}\n{proc.stderr.read()}"
        )
    return proc, _Client(int(match.group(1)))


class TestServerProcess:
    def test_sigterm_drains_cleanly(self, tmp_path):
        proc, client = _spawn_server(tmp_path / "runs")
        try:
            status, payload = client.request("GET", "/v1/healthz")
            assert status == 200 and payload["status"] == "ok"
            status, payload = client.request(
                "POST",
                "/v1/jobs",
                {"kind": "estimate", "kernel": "simpsons"},
            )
            assert status == 201
            status, payload = client.wait_result(payload["id"])
            assert status == 200
            assert payload["result"]["kind"] == "estimate"
        finally:
            proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0

    def test_sigkill_restart_resumes_bit_identical(self, tmp_path):
        # the uninterrupted reference: same session shape the server
        # builds, driven in-process (content addressing guarantees the
        # server's run and this one are the same run)
        ref_sess = Session(store=tmp_path / "ref-runs")
        reference = ref_sess.search(
            "kmeans",
            budget=12,
            strategies=("greedy", "delta", "anneal"),
            seed=0,
        )
        ref_front = reference.to_dict()["front"]
        assert reference.n_evaluated > 4  # the crash point is mid-run

        store = tmp_path / "runs"
        # life 1: the search SIGKILLs the whole server after 4
        # computed evaluations (post-checkpoint — a strict prefix of
        # the run is on disk when the process dies)
        proc, client = _spawn_server(store, crash_after=4)
        status, payload = client.request("POST", "/v1/jobs", _SEARCH_SPEC)
        assert status == 201
        job_id = payload["id"]
        run_id = payload["run_id"]
        assert run_id == reference.run_id
        assert proc.wait(timeout=120) == -signal.SIGKILL

        # the store holds a strict, checkpointed prefix
        from repro.search import RunStore

        killed = RunStore(store)
        assert 0 < len(killed.load_records(run_id)) < len(
            reference.evaluations
        )
        manifest = killed.load_manifest(run_id)
        assert manifest is not None and not manifest["completed"]

        # life 2: recovery requeues the journaled job and resumes the
        # search from the checkpointed prefix
        proc2, client2 = _spawn_server(store)
        try:
            status, payload = client2.request("GET", f"/v1/jobs/{job_id}")
            assert status == 200
            assert payload["recovered"]
            status, payload = client2.wait_result(job_id)
            assert status == 200
            result = payload["result"]
            assert result["resumed"]
            assert result["n_restored"] > 0
            assert result["front"] == ref_front
            # resubmitting the identical job dedupes onto the
            # completed one: zero further evaluations
            status, payload = client2.request(
                "POST", "/v1/jobs", _SEARCH_SPEC
            )
            assert status == 200 and not payload["created"]
            status, metrics = client2.request("GET", "/v1/metrics")
            assert metrics["jobs"]["counters"]["deduped"] >= 1
            assert metrics["jobs"]["counters"]["recovered"] == 1
        finally:
            proc2.send_signal(signal.SIGTERM)
        assert proc2.wait(timeout=60) == 0

        # stored records match the reference's byte-for-byte
        assert len(killed.load_records(run_id)) == len(
            reference.evaluations
        )
        ref_store = RunStore(tmp_path / "ref-runs")
        assert killed.load_records(run_id) == ref_store.load_records(
            run_id
        )


# -- shared caches under server concurrency -----------------------------------

from repro.frontend import kernel as _kernel  # noqa: E402


@_kernel
def serve_cache_kernel(x: "f64", y: "f64") -> float:
    z: "f32" = x * y + 0.5
    w: "f32" = z * z - x
    return w


class TestSharedCacheThreadSafety:
    """Regression tests for the process-wide memo locks: the server
    runs jobs on worker threads over one session, so concurrent
    same-key requests must build exactly one cached object and the
    hit/miss counters must stay exact."""

    N_THREADS = 8
    CALLS = 25

    def _hammer(self, fn):
        barrier = threading.Barrier(self.N_THREADS)
        results = [None] * self.N_THREADS
        errors = []

        def worker(i):
            try:
                barrier.wait(timeout=30)
                for _ in range(self.CALLS):
                    results[i] = fn()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors
        return results

    def test_estimator_memo_counters_exact_under_threads(self):
        from repro.core.api import (
            cached_error_estimator,
            clear_estimator_memo,
            estimator_memo_stats,
        )

        clear_estimator_memo()
        results = self._hammer(
            lambda: cached_error_estimator(serve_cache_kernel)
        )
        stats = estimator_memo_stats()
        # every call is accounted for, and the miss-build happened
        # exactly once: concurrent same-key requests waited on the
        # lock instead of compiling duplicate estimators
        assert (
            stats["hits"] + stats["misses"]
            == self.N_THREADS * self.CALLS
        )
        assert stats["misses"] == 1
        assert all(r is results[0] for r in results)
        clear_estimator_memo()

    def test_config_kernel_cache_counters_exact_under_threads(self):
        from repro.codegen.compile import (
            clear_config_kernel_cache,
            config_kernel_cache_stats,
            config_lane_kernel,
        )

        clear_config_kernel_cache()
        results = self._hammer(
            lambda: config_lane_kernel(serve_cache_kernel.ir)
        )
        stats = config_kernel_cache_stats()
        assert (
            stats["hits"] + stats["misses"]
            == self.N_THREADS * self.CALLS
        )
        assert stats["misses"] == 1
        assert stats["unvectorizable"] == 0
        assert all(r is results[0] for r in results)
        clear_config_kernel_cache()
