"""Frontend tests: parsing the Python subset, inlining, and rejections."""

import math

import numpy as np
import pytest

from repro.frontend import kernel
from repro.ir import nodes as N
from repro.ir.types import DType
from repro.util.errors import FrontendError


@kernel
def fe_basic(x: float, y: "f32") -> float:
    z: "f32" = x * y + 2.0
    w = z - x / 4.0
    return w


@kernel
def fe_loops(n: int, a: "f64[]") -> float:
    s = 0.0
    for i in range(n):
        s += a[i]
    k = 0
    while k < 3:
        s = s * 0.5
        k = k + 1
    return s


@kernel
def fe_ifs(x: float) -> float:
    y = 0.0
    if x > 0.0 and x < 10.0:
        y = x
    elif x >= 10.0:
        y = 10.0
    else:
        y = -x
    return y


@kernel
def fe_callee(u: float) -> float:
    v = u * u
    return v


@kernel
def fe_caller(x: float) -> float:
    a = fe_callee(x + 1.0)
    bb = fe_callee(a)
    return a + bb


@kernel
def fe_math(x: float) -> float:
    return math.sin(x) + abs(x) + math.pi + x ** 2.0


class TestParsing:
    def test_param_types(self):
        ir = fe_basic.ir
        assert ir.param("x").type.dtype is DType.F64
        assert ir.param("y").type.dtype is DType.F32

    def test_annotated_local_precision(self):
        decls = {
            s.name: s.dtype
            for s in ir_decls(fe_basic.ir)
        }
        assert decls["z"] is DType.F32
        assert decls["w"] is DType.F64

    def test_augassign_desugars(self):
        # s += a[i]  ->  s = s + a[i]
        text = fe_loops.source
        assert "s = s + a[i]" in text

    def test_execution_matches_python(self):
        x, y = 1.7, 2.25  # y exactly representable in f32
        expected = np.float32(np.float32(x * y) + 2.0)
        got = fe_basic(x, y)
        assert got == pytest.approx(float(expected) - x / 4.0, rel=1e-12)

    def test_loops_and_while(self):
        a = np.array([1.0, 2.0, 3.0])
        assert fe_loops(3, a) == pytest.approx(6.0 * 0.125)

    def test_branches(self):
        assert fe_ifs(5.0) == 5.0
        assert fe_ifs(50.0) == 10.0
        assert fe_ifs(-2.0) == 2.0

    def test_inlining_removes_calls(self):
        calls = [
            e.fn
            for s in walk(fe_caller.ir)
            for e in exprs_of(s)
            if isinstance(e, N.Call)
        ]
        assert "fe_callee" not in calls

    def test_inlining_value(self):
        x = 1.5
        a = (x + 1.0) ** 2
        assert fe_caller(x) == pytest.approx(a + a * a)

    def test_math_module_and_named_constants(self):
        x = 0.7
        assert fe_math(x) == pytest.approx(
            math.sin(x) + abs(x) + math.pi + x * x
        )

    def test_pow_becomes_intrinsic(self):
        calls = {
            e.fn
            for s in walk(fe_math.ir)
            for e in exprs_of(s)
            if isinstance(e, N.Call)
        }
        assert "pow" in calls


class TestRejections:
    def _reject(self, fn, pattern):
        with pytest.raises(FrontendError, match=pattern):
            kernel(fn)

    def test_reserved_underscore_names(self):
        def bad(x: float) -> float:
            _tmp = x
            return _tmp

        self._reject(bad, "reserved")

    def test_tuple_assignment(self):
        def bad(x: float) -> float:
            a, c = x, x
            return a

        self._reject(bad, "")

    def test_unknown_function(self):
        def bad(x: float) -> float:
            return frobnicate(x)  # noqa: F821

        self._reject(bad, "unknown function")

    def test_chained_compare(self):
        def bad(x: float) -> float:
            y = 0.0
            if 0.0 < x < 1.0:
                y = x
            return y

        self._reject(bad, "chained")

    def test_non_range_for(self):
        def bad(a: "f64[]") -> float:
            s = 0.0
            for v in a:
                s = s + v
            return s

        self._reject(bad, "range")

    def test_array_annotation_on_local(self):
        def bad(x: float) -> float:
            a: "f64[]" = x
            return x

        self._reject(bad, "local arrays")

    def test_keyword_args(self):
        def bad(x: float) -> float:
            return pow(x, y=2.0)

        self._reject(bad, "keyword")

    def test_defaults_rejected(self):
        def bad(x: float = 1.0) -> float:
            return x

        self._reject(bad, "defaults")


# -- helpers ------------------------------------------------------------------

def ir_decls(ir):
    from repro.ir.visitor import walk_stmts

    return [s for s in walk_stmts(ir.body) if isinstance(s, N.VarDecl)]


def walk(ir):
    from repro.ir.visitor import walk_stmts

    return list(walk_stmts(ir.body))


def exprs_of(s):
    from repro.ir.visitor import iter_stmt_exprs, walk_expr

    out = []
    for e in iter_stmt_exprs(s):
        out.extend(walk_expr(e))
    return out
