"""Pareto precision-search subsystem tests: front invariants, candidate
evaluation, the strategy line-up, serial/parallel agreement, the
acceptance criteria on Black-Scholes and k-Means, and the CLI."""

import json

import numpy as np
import pytest

import repro
from repro.frontend import kernel
from repro.interp.cost_model import (
    config_cycle_delta,
    static_config_cost,
    static_function_cost,
)
from repro.ir.types import DType
from repro.search import (
    CandidateEvaluator,
    EvaluatedCandidate,
    ParallelEvaluator,
    ParetoFront,
    STRATEGIES,
    SearchProblem,
    SearchStrategy,
    config_key,
    dominates,
    get_strategy,
    register_strategy,
    search,
)
from repro.search.__main__ import main as search_cli
from repro.tuning import PrecisionConfig


@kernel
def ps_kernel(n: int, h: float, data: "f64[]") -> float:
    s = 0.0
    t = 0.0
    for i in range(n):
        t = data[i] * h + t * 0.5
        s = s + sqrt(t * t + h)
    return s


def _points(n=48, seeds=(5, 6)):
    out = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        out.append((n, 1.0 / 3.0, rng.uniform(0.1, 1.0, n)))
    return out


def _poisoned_block(payload):
    """Module-level so the pool can pickle it into forked workers."""
    raise RuntimeError("poisoned worker block")


def _cand(key, error, cycles, strategy="t", index=0):
    """A minimal EvaluatedCandidate for front unit tests."""
    return EvaluatedCandidate(
        key=key,
        config=PrecisionConfig.demote(key.split("+") if key else []),
        actual_error=error,
        point_errors=(error,),
        estimated_error=None,
        error=error,
        cycles=cycles,
        cycles_reference=100.0,
        strategy=strategy,
        index=index,
    )


class TestParetoFront:
    def test_dominance(self):
        a = _cand("a", 1.0, 10.0)
        b = _cand("b", 2.0, 20.0)
        c = _cand("c", 1.0, 10.0)
        assert dominates(a, b)
        assert not dominates(b, a)
        assert not dominates(a, c) and not dominates(c, a)

    def test_add_prunes_dominated(self):
        front = ParetoFront()
        assert front.add(_cand("a", 2.0, 20.0))
        assert front.add(_cand("b", 1.0, 30.0))  # trade-off: stays
        assert front.add(_cand("c", 1.0, 10.0))  # dominates both
        assert len(front) == 1
        assert front.points[0].key == "c"

    def test_exact_tie_keeps_first(self):
        front = ParetoFront()
        assert front.add(_cand("a", 1.0, 10.0, index=0))
        assert not front.add(_cand("b", 1.0, 10.0, index=1))
        assert front.points[0].key == "a"

    def test_consistency_and_best_under(self):
        front = ParetoFront(
            [_cand("a", 1e-3, 50.0), _cand("b", 1e-6, 80.0)]
        )
        assert front.is_consistent()
        assert front.best_under(1e-5).key == "b"
        assert front.best_under(1e-2).key == "a"
        assert front.best_under(1e-9) is None

    def test_covers(self):
        front = ParetoFront([_cand("a", 1.0, 10.0)])
        assert front.covers(_cand("x", 2.0, 20.0))
        assert front.covers(_cand("y", 1.0, 10.0))
        assert not front.covers(_cand("z", 0.5, 5.0))

    def test_nan_error_never_dominates_and_never_joins(self):
        # a numerically broken config (inf-inf -> NaN error) with few
        # cycles must not evict valid points or join the front
        good = _cand("good", 1e-7, 80.0)
        broken = _cand("broken", float("nan"), 5.0)
        assert not dominates(broken, good)
        assert not dominates(good, broken)
        front = ParetoFront([good])
        assert not front.add(broken)
        assert [p.key for p in front.points] == ["good"]
        assert front.is_consistent()
        assert front.best_under(1e-3).key == "good"
        # any valid point beats a broken baseline
        assert front.covers(broken)

    def test_inf_error_is_ordered_normally(self):
        front = ParetoFront([_cand("a", 1e-7, 80.0)])
        assert not front.add(_cand("b", float("inf"), 90.0))
        assert front.add(_cand("c", float("inf"), 5.0))  # cheapest


class TestCandidateEvaluator:
    def test_empty_config_is_exact_reference(self):
        ev = CandidateEvaluator(ps_kernel, _points())
        res = ev.evaluate(PrecisionConfig(), "test")
        assert res.actual_error == 0.0
        assert res.cycles == res.cycles_reference
        assert res.speedup == 1.0
        assert res.estimated_error is None

    def test_demotion_trades_error_for_cycles(self):
        ev = CandidateEvaluator(ps_kernel, _points())
        res = ev.evaluate(
            PrecisionConfig.demote(["t", "s", "data", "h"]), "test"
        )
        assert res.actual_error > 0.0
        assert res.cycles < res.cycles_reference
        assert res.speedup > 1.0
        assert len(res.point_errors) == 2

    def test_memo_dedupes_across_strategies(self):
        ev = CandidateEvaluator(ps_kernel, _points())
        cfg = PrecisionConfig.demote(["t"])
        first = ev.evaluate(cfg, "alpha")
        again = ev.evaluate(PrecisionConfig.demote(["t"]), "beta")
        assert again is first
        assert again.strategy == "alpha"  # provenance: first proposer
        assert ev.n_computed == 1 and ev.n_memo_hits == 1
        assert len(ev.history) == 1

    def test_sweep_estimate_present_with_samples(self):
        ev = CandidateEvaluator(
            ps_kernel,
            _points(),
            samples={"h": np.linspace(0.2, 0.5, 8)},
            fixed={"n": 48, "data": _points()[0][2]},
        )
        res = ev.evaluate(PrecisionConfig.demote(["t"]), "test")
        assert res.estimated_error is not None
        assert res.estimated_error > 0.0
        # "worst" metric: objective is the max of the two measurements
        assert res.error == max(res.actual_error, res.estimated_error)

    def test_requires_points(self):
        with pytest.raises(ValueError, match="validation point"):
            CandidateEvaluator(ps_kernel, [])

    def test_bad_error_metric(self):
        with pytest.raises(ValueError, match="error metric"):
            CandidateEvaluator(ps_kernel, _points(), error_metric="bogus")
        with pytest.raises(ValueError, match="sweep"):
            CandidateEvaluator(
                ps_kernel, _points(), error_metric="estimate"
            )

    def test_config_key_canonical(self):
        a = PrecisionConfig({"b": DType.F32, "a": DType.F32})
        b = PrecisionConfig({"a": DType.F32, "b": DType.F32})
        assert config_key(a) == config_key(b) == "a:f32,b:f32"
        assert config_key(PrecisionConfig()) == ""


class TestSearch:
    def test_exhaustive_covers_space_and_is_consistent(self):
        res = search(
            ps_kernel,
            _points(),
            threshold=1e-7,
            candidates=("t", "s", "h"),
            strategies=("exhaustive",),
            budget=16,
        )
        assert res.n_evaluated == 8  # 2^3 subsets
        assert len(res.front) >= 1
        assert res.front.is_consistent()
        keys = {e.key for e in res.evaluations}
        assert "" in keys  # uniform f64 evaluated
        assert "h:f32,s:f32,t:f32" in keys

    def test_budget_is_a_hard_cap(self):
        res = search(
            ps_kernel,
            _points(),
            threshold=1e-7,
            candidates=("t", "s", "h", "data"),
            strategies=("exhaustive",),
            budget=5,
        )
        assert res.n_evaluated == 5

    def test_front_contains_threshold_feasible_point(self):
        res = search(
            ps_kernel,
            _points(),
            threshold=1e-6,
            candidates=("t", "s", "h"),
            strategies=("greedy", "delta", "anneal"),
            budget=16,
            seed=3,
        )
        best = res.best_under()
        assert best is not None
        assert best.error <= 1e-6

    def test_anneal_small_space_falls_back_to_exhaustive(self):
        res = search(
            ps_kernel,
            _points(),
            threshold=1e-7,
            candidates=("t", "s"),
            strategies=("anneal",),
            budget=16,
        )
        # 2^2 = 4 <= budget: the fallback enumerates everything
        assert res.n_evaluated == 4
        assert {e.strategy for e in res.evaluations} == {"exhaustive"}

    def test_candidate_autoderivation(self):
        res = search(
            ps_kernel,
            _points(),
            threshold=1e-7,
            strategies=("greedy",),
            budget=12,
        )
        assert set(res.candidates) >= {"t", "s"}
        assert not any(c.startswith("_") for c in res.candidates)

    def test_contributions_ranked_and_positive_total(self):
        res = search(
            ps_kernel,
            _points(),
            threshold=1e-7,
            candidates=("t", "s", "h"),
            strategies=("greedy",),
            budget=8,
        )
        assert set(res.contributions) == {"t", "s", "h"}
        assert all(v >= 0.0 for v in res.contributions.values())

    def test_to_dict_roundtrips_through_json(self):
        res = search(
            ps_kernel,
            _points(),
            threshold=1e-7,
            candidates=("t", "s"),
            strategies=("exhaustive",),
            budget=8,
        )
        blob = json.dumps(res.to_dict())
        loaded = json.loads(blob)
        assert loaded["kernel"] == "ps_kernel"
        assert len(loaded["front"]) == len(res.front)


class TestAcceptance:
    """ISSUE acceptance: the search front dominates-or-matches the
    greedy baseline on Black-Scholes and k-Means."""

    def _check(self, scen, **overrides):
        res = scen.run(**overrides)
        assert len(res.front) > 0
        assert res.front.is_consistent()
        assert res.baseline is not None
        assert res.front.covers(res.baseline), (
            f"front fails to dominate/match the greedy baseline: "
            f"{res.summary()}"
        )
        return res

    def test_blackscholes_front_covers_greedy_baseline(self):
        from repro.apps import blackscholes as bs

        scen = bs.search_scenario(n_points=2, n_samples=16)
        self._check(scen, budget=14, strategies=("greedy", "delta"))

    def test_kmeans_front_covers_greedy_baseline(self):
        from repro.apps import kmeans

        scen = kmeans.search_scenario(size=12, n_workloads=2)
        res = self._check(
            scen, budget=10, strategies=("greedy", "delta", "anneal")
        )
        # k-Means exact-representability story: attributes demote free
        by_key = {e.key: e for e in res.evaluations}
        attrs_only = by_key.get("attributes:f32")
        if attrs_only is not None:
            assert attrs_only.actual_error == 0.0


class TestParallel:
    def test_parallel_front_bit_identical_to_serial(self):
        kwargs = dict(
            points=_points(),
            threshold=1e-6,
            candidates=("t", "s", "h", "data"),
            strategies=("greedy", "delta", "anneal"),
            budget=14,
            seed=7,
        )
        serial = search(ps_kernel, **kwargs)
        parallel = search(ps_kernel, workers=2, **kwargs)
        assert parallel.parallel
        assert len(serial.evaluations) == len(parallel.evaluations)
        for a, b in zip(serial.evaluations, parallel.evaluations):
            assert a.key == b.key
            assert a.error == b.error  # bitwise float equality
            assert a.cycles == b.cycles
            assert a.point_errors == b.point_errors
            assert a.estimated_error == b.estimated_error
            assert a.strategy == b.strategy and a.index == b.index
        assert [
            (p.key, p.error, p.cycles) for p in serial.front.points
        ] == [(p.key, p.error, p.cycles) for p in parallel.front.points]

    def test_parallel_evaluator_close_is_idempotent(self):
        ev = ParallelEvaluator(ps_kernel, _points(), workers=2)
        ev.evaluate_many(
            [PrecisionConfig.demote([v]) for v in ("t", "s")], "x"
        )
        ev.close()
        ev.close()

    def test_worker_exception_recovers_serially_then_respawns(
        self, monkeypatch
    ):
        """Regression: a worker exception must not propagate — the
        block is recomputed serially bit-identically, and the pool
        *respawns* on the next evaluation instead of the old permanent
        serial fallback."""
        import repro.search.parallel as par

        configs = [
            PrecisionConfig.demote([v]) for v in ("t", "s", "h")
        ]
        expected = CandidateEvaluator(ps_kernel, _points()).evaluate_many(
            configs, "x"
        )
        ev = ParallelEvaluator(ps_kernel, _points(), workers=2)
        monkeypatch.setattr(par, "_worker_compute_block", _poisoned_block)
        try:
            got = ev.evaluate_many(configs, "x")
            assert ev._failures == 1 and not ev.exhausted
            assert ev._pool is None and not ev.parallel
            for a, b in zip(expected, got):
                assert a.key == b.key
                assert a.error == b.error  # bitwise
                assert a.cycles == b.cycles
                assert a.point_errors == b.point_errors
            # the pool respawns for the next evaluation and works again
            monkeypatch.undo()
            more = ev.evaluate_many(
                [PrecisionConfig.demote(["data", "t"]),
                 PrecisionConfig.demote(["s", "h"])],
                "x",
            )
            assert len(more) == 2
            assert ev.parallel and ev.n_respawns == 1
            assert ev.eval_stats()["pool_respawns"] == 1
        finally:
            ev.close()

    def test_respawn_budget_exhausts_to_permanent_serial(self, monkeypatch):
        """Past ``max_respawns`` failures the evaluator stays serial
        instead of thrashing spawn/crash cycles."""
        import repro.search.parallel as par

        ev = ParallelEvaluator(
            ps_kernel, _points(), workers=2, max_respawns=1
        )
        monkeypatch.setattr(par, "_worker_compute_block", _poisoned_block)
        # distinct configs per call: the evaluator memoizes scored
        # configs, so reusing a pair would never reach the pool again
        pairs = [
            [PrecisionConfig.demote(["t"]), PrecisionConfig.demote(["s"])],
            [PrecisionConfig.demote(["h"]), PrecisionConfig.demote(["data"])],
            [PrecisionConfig.demote(["t", "s"]),
             PrecisionConfig.demote(["s", "h"])],
        ]
        try:
            ev.evaluate_many(pairs[0], "x")   # failure 1 (initial pool)
            assert not ev.exhausted
            ev.evaluate_many(pairs[1], "x")   # failure 2 (respawn used)
            assert ev._failures == 2 and ev.n_respawns == 1
            assert ev.exhausted
            # budget spent: no further pool is built, serial still works
            out = ev.evaluate_many(pairs[2], "x")
            assert len(out) == 2 and not ev.parallel
            assert ev._failures == 2 and ev.n_respawns == 1
        finally:
            ev.close()

    def test_happy_path_close_drains_instead_of_terminating(self):
        """Regression: close() must let in-flight worker blocks finish
        (close+join), reserving terminate() for __del__/failures."""
        ev = ParallelEvaluator(ps_kernel, _points(), workers=2)
        ev.evaluate_many(
            [PrecisionConfig.demote([v]) for v in ("t", "s")], "x"
        )
        pool = ev._pool
        assert pool is not None
        calls = []
        orig_close, orig_term = pool.close, pool.terminate
        pool.close = lambda: (calls.append("close"), orig_close())[-1]
        pool.terminate = lambda: (calls.append("terminate"), orig_term())[-1]
        ev.close()
        assert calls == ["close"]
        assert ev._pool is None


class TestStrategyRegistry:
    def test_builtins_registered(self):
        assert {"greedy", "delta", "anneal", "exhaustive"} <= set(
            STRATEGIES
        )

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError, match="unknown search strategy"):
            get_strategy("nope")
        with pytest.raises(KeyError, match="unknown search strategy"):
            search(
                ps_kernel, _points(), 1e-6, strategies=("nope",),
                candidates=("t",),
            )

    def test_custom_strategy_runs(self):
        @register_strategy
        class EmptyOnly(SearchStrategy):
            name = "test-empty-only"

            def run(self, problem: SearchProblem) -> None:
                problem.evaluate(frozenset(), self.name)
                problem.evaluate(frozenset(problem.candidates), self.name)

        try:
            res = search(
                ps_kernel,
                _points(),
                threshold=1e-6,
                candidates=("t", "s"),
                strategies=("test-empty-only",),
                budget=4,
            )
            assert res.n_evaluated == 2
            assert {e.strategy for e in res.evaluations} == {
                "test-empty-only"
            }
        finally:
            del STRATEGIES["test-empty-only"]

    def test_nameless_strategy_rejected(self):
        with pytest.raises(ValueError, match="non-empty name"):

            @register_strategy
            class Nameless(SearchStrategy):
                pass


class TestCostDeltas:
    def test_empty_config_zero_delta(self):
        assert (
            config_cycle_delta(ps_kernel.ir, PrecisionConfig()) == 0.0
        )

    def test_demotion_reduces_static_cycles(self):
        cfg = PrecisionConfig.demote(["t", "s", "data", "h"])
        delta = config_cycle_delta(ps_kernel.ir, cfg)
        assert delta < 0.0
        ref = static_function_cost(ps_kernel.ir, {})
        assert static_config_cost(ps_kernel.ir, cfg) == ref + delta

    def test_trip_counts_scale_the_delta(self):
        cfg = PrecisionConfig.demote(["t", "s", "data", "h"])
        small = config_cycle_delta(ps_kernel.ir, cfg, {"i": 10.0})
        large = config_cycle_delta(ps_kernel.ir, cfg, {"i": 1000.0})
        assert large < small < 0.0


class TestCLI:
    def test_list(self, capsys):
        assert search_cli(["--list"]) == 0
        out = capsys.readouterr().out
        assert "blackscholes" in out and "kmeans" in out

    def test_unknown_kernel(self, capsys):
        assert search_cli(["--kernel", "nope"]) == 2

    def test_end_to_end_with_json(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = search_cli(
            [
                "--kernel", "kmeans",
                "--budget", "8",
                "--strategies", "greedy,anneal",
                "--json", str(out),
            ]
        )
        assert code == 0
        blob = json.loads(out.read_text())
        assert blob["kernel"] == "kmeans_cost"
        assert len(blob["front"]) >= 1
        text = capsys.readouterr().out
        assert "ParetoFront" in text


class TestExports:
    def test_top_level_surface(self):
        assert repro.search.search is search
        assert repro.ParetoFront is ParetoFront
        assert repro.STRATEGIES is STRATEGIES

    def test_tuning_reexports(self):
        import repro.tuning as tuning

        assert tuning.search is search
        assert tuning.ParetoFront is ParetoFront
        assert tuning.STRATEGIES is STRATEGIES
        with pytest.raises(AttributeError):
            tuning.not_a_thing
