"""Run-store / orchestrator tests: content-addressed persistence,
checkpointing, crash-safe bit-identical resume (serial and parallel,
including a real SIGKILL), warm restores, and multi-scenario plans."""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.frontend import kernel
from repro.interp.cost_model import DEFAULT_COST_MODEL
from repro.ir.types import DType
from repro.search import (
    PlanEntry,
    RunStore,
    SearchOrchestrator,
    search,
)
from repro.search.__main__ import main as search_cli
from repro.search.store import (
    candidate_of,
    record_of,
    run_id_of,
    run_key_components,
)

_SRC = Path(__file__).resolve().parents[1] / "src"


@kernel
def rs_kernel(n: int, h: float, data: "f64[]") -> float:
    s = 0.0
    t = 0.0
    for i in range(n):
        t = data[i] * h + t * 0.5
        s = s + sqrt(t * t + h)
    return s


def _points(n=32, seeds=(5, 6)):
    out = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        out.append((n, 1.0 / 3.0, rng.uniform(0.1, 1.0, n)))
    return out


_KWARGS = dict(
    threshold=1e-6,
    candidates=("t", "s", "h", "data"),
    strategies=("greedy", "delta", "anneal"),
    budget=12,
    seed=7,
)


def _trace(result):
    """The full evaluation history as exact-comparable tuples."""
    return [
        (
            c.key,
            c.error,
            c.cycles,
            c.point_errors,
            c.estimated_error,
            c.strategy,
            c.index,
        )
        for c in result.evaluations
    ]


def _front(result):
    return [(p.key, p.error, p.cycles) for p in result.front.points]


@pytest.fixture(scope="module")
def reference():
    """One uninterrupted, store-less reference run."""
    return search(rs_kernel, points=_points(), **_KWARGS)


@pytest.fixture(scope="module")
def stored(tmp_path_factory, reference):
    """The same run executed against a persistent store."""
    root = tmp_path_factory.mktemp("runstore")
    result = search(rs_kernel, points=_points(), store=root, **_KWARGS)
    assert _trace(result) == _trace(reference)
    return RunStore(root), result


class TestRunStore:
    def test_record_roundtrip_is_bit_exact(self, reference):
        for cand in reference.evaluations:
            back = candidate_of(record_of(cand))
            assert back.key == cand.key
            assert back.error == cand.error  # bitwise float equality
            assert back.cycles == cand.cycles
            assert back.point_errors == cand.point_errors
            assert back.estimated_error == cand.estimated_error
            assert back.strategy == cand.strategy
            assert back.index == cand.index
            assert back.config.demotions == cand.config.demotions

    def test_run_id_content_addressing(self):
        base = dict(
            points=_points(),
            threshold=1e-6,
            candidates=("t", "s"),
            samples=None,
            fixed=None,
            demote_to=DType.F32,
            strategies=("greedy",),
            budget=8,
            seed=0,
            aggregate="max",
            error_metric="worst",
            model_fingerprint="taylor",
            cost_model=DEFAULT_COST_MODEL,
            approx=None,
        )
        rid = run_id_of(run_key_components(rs_kernel.ir, **base))
        assert rid == run_id_of(run_key_components(rs_kernel.ir, **base))
        for change in (
            {"seed": 1},
            {"budget": 9},
            {"threshold": 1e-5},
            {"strategies": ("greedy", "delta")},
        ):
            other = run_id_of(
                run_key_components(rs_kernel.ir, **{**base, **change})
            )
            assert other != rid, change

    def test_manifest_and_records_persisted(self, stored):
        store, result = stored
        manifest = store.load_manifest(result.run_id)
        assert manifest is not None
        assert manifest["completed"]
        assert manifest["kernel"] == "rs_kernel"
        assert manifest["n_evaluations"] == result.n_evaluated
        assert manifest["candidates"] == list(_KWARGS["candidates"])
        assert manifest["baseline_key"] == result.baseline.key
        assert [f["key"] for f in manifest["front"]] == [
            p.key for p in result.front.points
        ]
        assert len(store.load_records(result.run_id)) == result.n_evaluated
        assert [m["run_id"] for m in store.list_runs()] == [result.run_id]

    def test_corrupt_records_degrade_to_empty(self, stored, tmp_path):
        store, result = stored
        other = RunStore(tmp_path)
        manifest = dict(store.load_manifest(result.run_id))
        other.save_manifest(result.run_id, manifest)
        (other.run_dir(result.run_id) / "evals.pkl").write_bytes(
            b"not a pickle"
        )
        assert other.load_records(result.run_id) == []

    def test_index_gap_truncates_to_prefix(self, stored, tmp_path):
        store, result = stored
        records = store.load_records(result.run_id)
        gapped = [r for r in records if r["index"] != 2]
        other = RunStore(tmp_path)
        other.checkpoint(result.run_id, gapped)
        assert [
            r["index"] for r in other.load_records(result.run_id)
        ] == [0, 1]

    def test_incompatible_format_ignored(self, stored, tmp_path):
        store, result = stored
        manifest = dict(store.load_manifest(result.run_id))
        manifest["format"] = 999
        other = RunStore(tmp_path)
        other.save_manifest(result.run_id, manifest)
        assert other.load_manifest(result.run_id) is None


class TestResume:
    def _truncated_store(self, stored, tmp_path, k):
        """A store snapshot as if the run had been killed after ``k``
        computed evaluations (checkpoints are prefixes, so this is
        exactly the state an interrupted run leaves behind)."""
        store, result = stored
        records = store.load_records(result.run_id)
        manifest = dict(store.load_manifest(result.run_id))
        manifest.update(
            completed=False, n_evaluations=k, baseline_key=None,
            front=None,
        )
        snap = RunStore(tmp_path)
        snap.save_run(manifest, records[:k])
        return snap, result.run_id

    @pytest.mark.parametrize("k", [1, 5, 9])
    def test_killed_run_resumes_bit_identical(
        self, stored, reference, tmp_path, k
    ):
        snap, run_id = self._truncated_store(stored, tmp_path, k)
        resumed = search(
            rs_kernel, points=_points(), store=snap, resume=True,
            **_KWARGS,
        )
        assert resumed.resumed and resumed.n_restored == k
        assert _trace(resumed) == _trace(reference)
        assert _front(resumed) == _front(reference)
        rs = resumed.stats["run_store"]
        assert rs["computed"] == reference.n_evaluated - k
        assert rs["replayed"] is True
        # the resumed run completed the stored run in place
        manifest = snap.load_manifest(run_id)
        assert manifest["completed"]
        assert manifest["n_evaluations"] == reference.n_evaluated

    def test_parallel_resume_bit_identical(
        self, stored, reference, tmp_path
    ):
        snap, _ = self._truncated_store(stored, tmp_path, 5)
        resumed = search(
            rs_kernel, points=_points(), store=snap, resume=True,
            workers=2, **_KWARGS,
        )
        assert resumed.parallel
        assert resumed.n_restored == 5
        assert _trace(resumed) == _trace(reference)
        assert _front(resumed) == _front(reference)

    def test_warm_resume_recomputes_nothing(self, stored, reference):
        store, result = stored
        warm = search(
            rs_kernel, points=_points(), store=store, resume=True,
            **_KWARGS,
        )
        assert warm.resumed
        assert warm.n_restored == reference.n_evaluated
        rs = warm.stats["run_store"]
        assert rs["computed"] == 0 and rs["replayed"] is False
        assert _trace(warm) == _trace(reference)
        assert _front(warm) == _front(reference)
        assert warm.baseline.key == reference.baseline.key
        assert warm.contributions == reference.contributions

    def test_resume_requires_store(self):
        with pytest.raises(ValueError, match="requires store="):
            search(
                rs_kernel, points=_points(), resume=True, **_KWARGS
            )

    def test_fresh_run_overwrites_stale_records(
        self, stored, reference, tmp_path
    ):
        snap, run_id = self._truncated_store(stored, tmp_path, 5)
        # resume=False: the stale partial run is truncated, not reused
        fresh = search(
            rs_kernel, points=_points(), store=snap, **_KWARGS
        )
        assert not fresh.resumed and fresh.n_restored == 0
        assert _trace(fresh) == _trace(reference)

    def test_resume_over_corrupt_records_restarts(
        self, stored, reference, tmp_path
    ):
        snap, run_id = self._truncated_store(stored, tmp_path, 5)
        (snap.run_dir(run_id) / "evals.pkl").write_bytes(b"\x80garbage")
        resumed = search(
            rs_kernel, points=_points(), store=snap, resume=True,
            **_KWARGS,
        )
        assert not resumed.resumed and resumed.n_restored == 0
        assert _trace(resumed) == _trace(reference)

    def test_version_mismatch_restarts_instead_of_mixing(
        self, stored, reference, tmp_path
    ):
        """Records computed by a different library release must never
        mix into a resumed run (the run key hashes parameters, not
        library behavior)."""
        snap, run_id = self._truncated_store(stored, tmp_path, 5)
        manifest = dict(snap.load_manifest(run_id))
        manifest["library_version"] = "0.0.0-other"
        snap.save_manifest(run_id, manifest)
        resumed = search(
            rs_kernel, points=_points(), store=snap, resume=True,
            **_KWARGS,
        )
        assert not resumed.resumed and resumed.n_restored == 0
        assert _trace(resumed) == _trace(reference)
        # the restarted run re-stamped the current version
        from repro.search.store import library_version

        assert (
            snap.load_manifest(run_id)["library_version"]
            == library_version()
        )

    def test_checkpoint_cadence(self, reference, tmp_path):
        result = search(
            rs_kernel, points=_points(), store=tmp_path,
            checkpoint_every=3, **_KWARGS,
        )
        assert _trace(result) == _trace(reference)
        # final completion checkpoint always lands
        store = RunStore(tmp_path)
        assert (
            len(store.load_records(result.run_id))
            == reference.n_evaluated
        )


class TestSigkillResume:
    """A run killed by a real SIGKILL resumes bit-identically."""

    CHILD = textwrap.dedent(
        """
        import sys
        import numpy as np
        from repro.frontend import kernel
        from repro.search import search

        @kernel
        def rs_kernel(n: int, h: float, data: "f64[]") -> float:
            s = 0.0
            t = 0.0
            for i in range(n):
                t = data[i] * h + t * 0.5
                s = s + sqrt(t * t + h)
            return s

        points = []
        for seed in (5, 6):
            rng = np.random.default_rng(seed)
            points.append((32, 1.0 / 3.0, rng.uniform(0.1, 1.0, 32)))
        search(
            rs_kernel, points=points, threshold=1e-6,
            candidates=("t", "s", "h", "data"),
            strategies=("greedy", "delta", "anneal"),
            budget=12, seed=7, store=sys.argv[1],
        )
        """
    )

    def test_sigkill_then_resume(self, reference, tmp_path):
        script = tmp_path / "child.py"
        script.write_text(self.CHILD)
        store_dir = tmp_path / "store"
        env = dict(
            os.environ,
            PYTHONPATH=str(_SRC),
            REPRO_SEARCH_CRASH_AFTER="5",
        )
        proc = subprocess.run(
            [sys.executable, str(script), str(store_dir)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        store = RunStore(store_dir)
        runs = store.list_runs()
        assert len(runs) == 1 and not runs[0]["completed"]
        n_stored = len(store.load_records(runs[0]["run_id"]))
        assert 0 < n_stored < reference.n_evaluated
        resumed = search(
            rs_kernel, points=_points(), store=store, resume=True,
            **_KWARGS,
        )
        assert resumed.n_restored == n_stored
        assert _trace(resumed) == _trace(reference)
        assert _front(resumed) == _front(reference)


class TestWarmStart:
    def test_warm_start_estimator_memo(self):
        from repro.core.api import warm_start_estimator_memo
        from repro.core.models import TaylorModel

        first = warm_start_estimator_memo(
            [rs_kernel], models=(TaylorModel(),)
        )
        again = warm_start_estimator_memo(
            [rs_kernel], models=(TaylorModel(),)
        )
        assert first in (0, 1)  # may already be memoized by prior tests
        assert again == 0


PLAN = {
    "defaults": {"seed": 0},
    "entries": [
        {
            "scenario": "blackscholes",
            "budget": 10,
            "strategies": ["greedy", "delta"],
            "scenario_args": {"n_points": 2, "n_samples": 16},
        },
        {
            "scenario": "kmeans",
            "budget": 8,
            "strategies": ["greedy", "delta"],
            "scenario_args": {"size": 12, "n_workloads": 2},
        },
    ],
}


class TestOrchestrator:
    @pytest.fixture(scope="class")
    def plan_store(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("plan-store")
        orch = SearchOrchestrator.from_plan(PLAN, store=root)
        runs = orch.run()
        assert orch.ok, [r.error for r in runs]
        return root, runs

    def test_plan_runs_all_entries(self, plan_store):
        _, runs = plan_store
        assert [r.entry.scenario for r in runs] == [
            "blackscholes", "kmeans",
        ]
        assert all(len(r.result.front) > 0 for r in runs)
        assert all(not r.result.resumed for r in runs)

    def test_plan_resume_restores_everything(self, plan_store):
        root, runs = plan_store
        orch = SearchOrchestrator.from_plan(PLAN, store=root)
        resumed = orch.run()
        assert orch.ok
        for first, second in zip(runs, resumed):
            res = second.result
            assert res.resumed
            assert res.stats["run_store"]["computed"] == 0
            assert _front(res) == _front(first.result)
        report = orch.report()
        assert "blackscholes" in report and "kmeans" in report
        assert "restored" in report

    def test_report_and_to_dict(self, plan_store):
        root, _ = plan_store
        orch = SearchOrchestrator.from_plan(PLAN, store=root)
        orch.run()
        d = orch.to_dict()
        assert d["ok"] and len(d["runs"]) == 2
        assert d["runs"][0]["result"]["resumed"]

    def test_failed_entry_is_reported_not_fatal(self, tmp_path):
        plan = {
            "entries": [
                {
                    "scenario": "kmeans",
                    "scenario_args": {"size": 12, "n_workloads": 2},
                    "budget": 4,
                    "strategies": ["greedy"],
                },
                {
                    "scenario": "kmeans",
                    "scenario_args": {"no_such_arg": 1},
                },
            ]
        }
        orch = SearchOrchestrator.from_plan(plan, store=tmp_path)
        runs = orch.run()
        assert not orch.ok
        assert runs[0].ok and runs[1].status == "failed"
        assert "FAILED" in orch.report()

    def test_reserved_and_unknown_override_keys_rejected(self, tmp_path):
        # 'resume' belongs to the orchestrator, not a plan entry
        with pytest.raises(ValueError, match="unknown override keys"):
            SearchOrchestrator.from_plan(
                {"entries": [{"scenario": "kmeans", "resume": False}]},
                store=tmp_path,
            )
        # a typo'd key fails at plan load, not as a runtime entry error
        with pytest.raises(ValueError, match=r"\['budgets'\]"):
            SearchOrchestrator.from_plan(
                {"entries": [{"scenario": "kmeans", "budgets": 4}]},
                store=tmp_path,
            )
        with pytest.raises(ValueError, match="plan defaults"):
            SearchOrchestrator.from_plan(
                {
                    "defaults": {"store": "elsewhere"},
                    "entries": [{"scenario": "kmeans"}],
                },
                store=tmp_path,
            )

    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(KeyError, match="unknown plan scenarios"):
            SearchOrchestrator.from_plan(
                {"entries": [{"scenario": "nope"}]}, store=tmp_path
            )

    def test_empty_plan_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no entries"):
            SearchOrchestrator.from_plan({"entries": []}, store=tmp_path)

    def test_over_all_apps_covers_every_scenario(self, tmp_path):
        orch = SearchOrchestrator.over_all_apps(tmp_path, budget=4)
        names = [e.scenario for e in orch.entries]
        assert names == sorted(names) and len(names) == 5

    def test_entry_roundtrip(self):
        entry = PlanEntry.from_dict(PLAN["entries"][0])
        assert entry.overrides["strategies"] == ("greedy", "delta")
        back = entry.to_dict()
        assert back["scenario"] == "blackscholes"
        assert back["strategies"] == ["greedy", "delta"]
        assert back["scenario_args"] == {"n_points": 2, "n_samples": 16}


class TestStoreCLI:
    def test_store_and_resume_roundtrip(self, tmp_path, capsys):
        store = tmp_path / "runs"
        args = [
            "--kernel", "kmeans", "--budget", "4",
            "--strategies", "greedy", "--store", str(store),
        ]
        assert search_cli(args) == 0
        out1 = capsys.readouterr().out
        assert "run store: run=" in out1
        assert "restored=0" in out1
        assert search_cli(args + ["--resume"]) == 0
        out2 = capsys.readouterr().out
        assert "computed=0" in out2

    def test_plan_cli(self, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(
            {"entries": [PLAN["entries"][1]], "defaults": {"seed": 0}}
        ))
        store = tmp_path / "runs"
        args = ["--plan", str(plan_file), "--store", str(store)]
        assert search_cli(args) == 0
        assert "kmeans" in capsys.readouterr().out
        assert search_cli(args + ["--resume"]) == 0
        assert "restored" in capsys.readouterr().out

    def test_plan_cli_strategies_flag_applies(self, tmp_path, capsys):
        """Regression: --strategies used to be dropped in --plan mode."""
        entry = dict(PLAN["entries"][1])
        del entry["strategies"]
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps({"entries": [entry]}))
        store = tmp_path / "runs"
        assert search_cli([
            "--plan", str(plan_file), "--store", str(store),
            "--strategies", "greedy",
        ]) == 0
        capsys.readouterr()
        (manifest,) = RunStore(store).list_runs()
        assert manifest["key"]["strategies"] == ["greedy"]

    def test_plan_requires_store(self, capsys):
        with pytest.raises(SystemExit):
            search_cli(["--plan", "x.json"])
        capsys.readouterr()

    def test_resume_requires_store(self, capsys):
        with pytest.raises(SystemExit):
            search_cli(["--kernel", "kmeans", "--resume"])
        capsys.readouterr()


class TestStoreListingRobustness:
    """list_runs / resolve_run_id against prefixes, half-written run
    directories, and a concurrent writer — the surfaces the job server
    polls while searches are being checkpointed."""

    @staticmethod
    def _manifest(run_id, created=0.0, completed=True):
        from repro.search.store import RUN_FORMAT, library_version

        return {
            "format": RUN_FORMAT,
            "run_id": run_id,
            "created": created,
            "completed": completed,
            "n_evaluations": 0,
            "label": "fabricated",
            "kernel": "k",
            "key": {"budget": 8},
            "library_version": library_version(),
        }

    def test_resolve_run_id_prefix_and_ambiguity(self, tmp_path):
        from repro.util.errors import UnknownNameError

        store = RunStore(tmp_path)
        id_a = "deadbeef" + "0" * 56
        id_b = "deadbe" + "ff" + "0" * 56
        store.save_run(self._manifest(id_a, created=1.0), [])
        store.save_run(self._manifest(id_b, created=2.0), [])

        assert store.resolve_run_id(id_a) == id_a
        assert store.resolve_run_id("deadbeef") == id_a
        assert store.resolve_run_id("deadbeff") == id_b
        with pytest.raises(UnknownNameError, match="ambiguous"):
            store.resolve_run_id("deadbe")
        with pytest.raises(UnknownNameError, match="no stored run"):
            store.resolve_run_id("f00f")

    def test_list_runs_skips_half_written_dirs(self, tmp_path):
        store = RunStore(tmp_path)
        good = "ab" * 32
        store.save_run(self._manifest(good), [])

        # the shapes a concurrent writer / crash can leave behind:
        (tmp_path / ("00" * 16)).mkdir()  # mkdir'd, nothing landed
        torn = tmp_path / ("11" * 16)
        torn.mkdir()
        (torn / "manifest.json").write_text('{"format":')  # torn JSON
        foreign = tmp_path / ("22" * 16)
        foreign.mkdir()
        (foreign / "manifest.json").write_text("[1, 2]")  # not a dict
        stale = tmp_path / ("33" * 16)
        stale.mkdir()
        (stale / "manifest.json").write_text('{"format": 999}')
        half = tmp_path / ("44" * 16)
        half.mkdir()
        (half / "records.pkl.tmp").write_bytes(b"partial")
        (tmp_path / "stray-file").write_text("not a run dir")

        runs = store.list_runs()
        assert [m["run_id"] for m in runs] == [good]
        assert store.resolve_run_id("abab") == good
        # and the polling surface degrades to exists=False, not a crash
        assert store.run_progress("00" * 32) == {
            "run_id": "00" * 32,
            "exists": False,
        }

    def test_list_runs_under_concurrent_writer(self, tmp_path):
        import threading

        store = RunStore(tmp_path)
        stop = threading.Event()
        errors = []

        def writer():
            i = 0
            try:
                while not stop.is_set():
                    run_id = f"{i:064x}"
                    run_dir = store.run_dir(run_id)
                    run_dir.mkdir(parents=True, exist_ok=True)
                    # a torn non-atomic write first, then the real
                    # manifest — the reader may observe either
                    (run_dir / "manifest.json").write_text('{"forma')
                    (run_dir / "manifest.json").write_text(
                        json.dumps(self._manifest(run_id, created=float(i)))
                    )
                    i += 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(300):
                for manifest in store.list_runs():
                    # every listed manifest is whole and well-formed
                    assert manifest["format"] is not None
                    assert len(str(manifest["run_id"])) == 64
        finally:
            stop.set()
            thread.join(30)
        assert not errors
        # once the writer is quiet, the listing is exact and sorted
        final = store.list_runs()
        assert [m["run_id"] for m in final] == sorted(
            (m["run_id"] for m in final),
            key=lambda r: int(r, 16),
            reverse=True,
        )
