"""Interpreter / generated-code equivalence and storage-rounding
semantics — the generated code must agree with the tree-walking
reference on every construct, including mixed storage precisions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.compile import compile_primal, compile_raw
from repro.fp.counters import CastCounter
from repro.frontend import kernel
from repro.interp.cost_model import DEFAULT_COST_MODEL
from repro.interp.interpreter import Interpreter, run_function
from repro.util.errors import ExecutionError

xs = st.floats(min_value=-100.0, max_value=100.0)


@kernel
def ic_mixed(x: float, y: float) -> float:
    lo: "f32" = x * y
    hi = x * y
    acc: "f16" = lo + hi
    return acc + hi


@kernel
def ic_control(x: float, n: int) -> float:
    s = 0.0
    for i in range(n):
        if i % 3 == 0:
            s = s + x
        else:
            s = s - 0.5 * x
    k = 0
    while k * k < n:
        s = s * 1.0001
        k = k + 1
    return s


@kernel
def ic_break(n: int) -> float:
    s = 0.0
    for i in range(n):
        if s > 40.0:
            break
        s = s + 1.5
    return s


@kernel
def ic_arrays(n: int, a: "f64[]", out: "f64[]") -> float:
    for i in range(n):
        out[i] = a[i] * a[i]
    s = 0.0
    for i in range(n):
        s = s + out[i]
    return s


@kernel
def ic_intrinsics(x: float) -> float:
    return sin(x) + exp(x / 50.0) * fmax(x, 1.0) - fmin(x, -1.0)


class TestEquivalence:
    @given(xs, xs)
    @settings(max_examples=100, deadline=None)
    def test_mixed_precision_rounding_agrees(self, x, y):
        assert ic_mixed(x, y) == ic_mixed.run_reference(x, y)

    @given(xs, st.integers(min_value=0, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_control_flow_agrees(self, x, n):
        assert ic_control(x, n) == ic_control.run_reference(x, n)

    def test_break_agrees(self):
        for n in (0, 5, 100):
            assert ic_break(n) == ic_break.run_reference(n)

    def test_arrays_agree_and_write_back(self):
        a = np.array([1.0, 2.0, 3.0])
        out1 = np.zeros(3)
        out2 = np.zeros(3)
        v1 = ic_arrays(3, a, out1)
        v2 = ic_arrays.run_reference(3, a, out2)
        assert v1 == v2
        np.testing.assert_array_equal(out1, a * a)
        np.testing.assert_array_equal(out2, a * a)

    @given(xs)
    @settings(max_examples=60, deadline=None)
    def test_intrinsics_agree(self, x):
        assert ic_intrinsics(x) == ic_intrinsics.run_reference(x)


class TestStorageSemantics:
    def test_f32_local_rounds(self):
        # lo is binary32, hi is binary64; they differ for generic inputs
        x, y = math.pi, math.e
        lo = float(np.float32(x * y))
        hi = x * y
        acc = float(np.float16(np.float16(lo + hi)))
        assert ic_mixed(x, y) == pytest.approx(
            float(acc + hi), rel=1e-15
        )

    def test_f32_param_rounds_input(self):
        @kernel
        def f32_param(x: "f32") -> float:
            return x * 2.0

        assert f32_param(math.pi) == 2.0 * float(np.float32(math.pi))


class TestCounting:
    def test_counting_variant_returns_cost(self):
        cf = compile_raw(ic_arrays.ir, counting=True)
        a = np.ones(4)
        value, extras = cf(4, a, np.zeros(4))
        assert value == 4.0
        assert extras["cost"] > 0

    def test_cost_scales_with_trip_count(self):
        cf = compile_raw(ic_arrays.ir, counting=True)
        _, e1 = cf(2, np.ones(8), np.zeros(8))
        _, e2 = cf(8, np.ones(8), np.zeros(8))
        assert e2["cost"] > e1["cost"] * 3

    def test_interpreter_cost_matches_codegen_cost(self):
        interp = Interpreter(
            ic_arrays.ir, cost_model=DEFAULT_COST_MODEL
        )
        interp.run([3, np.ones(3), np.zeros(3)])
        cf = compile_raw(ic_arrays.ir, counting=True)
        _, extras = cf(3, np.ones(3), np.zeros(3))
        # loop bookkeeping is charged slightly differently; costs agree
        # to within the per-iteration overhead
        assert extras["cost"] == pytest.approx(interp.cycles, rel=0.25)

    def test_demoted_variant_costs_less(self):
        from repro.tuning import PrecisionConfig, apply_precision

        mixed = apply_precision(
            ic_arrays.ir, PrecisionConfig.demote(["a", "out"])
        )
        cf64 = compile_raw(ic_arrays.ir, counting=True)
        cf32 = compile_raw(mixed, counting=True)
        _, e64 = cf64(64, np.ones(64), np.zeros(64))
        _, e32 = cf32(64, np.ones(64), np.zeros(64))
        assert e32["cost"] < e64["cost"]


class TestInterpreterDetails:
    def test_cast_counter(self):
        cc = CastCounter()
        run_function(ic_mixed.ir, [1.1, 2.2], cast_counter=cc)
        assert cc.total > 0

    def test_wrong_arity(self):
        with pytest.raises(ExecutionError, match="expected"):
            run_function(ic_mixed.ir, [1.0])

    def test_division_by_zero_message(self):
        @kernel
        def div0(x: float) -> float:
            return 1.0 / (x - x)

        with pytest.raises(ExecutionError, match="division"):
            run_function(div0.ir, [3.0])

    def test_approx_substitution(self):
        @kernel
        def uses_exp(x: float) -> float:
            return exp(x)

        exact = run_function(uses_exp.ir, [1.0])
        approx = run_function(uses_exp.ir, [1.0], approx={"exp"})
        assert exact == pytest.approx(math.e, rel=1e-12)
        assert approx != exact
        assert approx == pytest.approx(math.e, rel=1e-3)

    def test_compiled_approx_substitution(self):
        @kernel
        def uses_log(x: float) -> float:
            return log(x)

        c = compile_primal(uses_log.ir, approx={"log"})
        assert c(5.0) != math.log(5.0)
        assert c(5.0) == pytest.approx(math.log(5.0), rel=1e-3)
