"""Kernel registry, Kernel object API, the CENA extension model, and
interpreter/frontend corner cases not covered elsewhere."""

import math

import numpy as np
import pytest

import repro
from repro.frontend import get_kernel, kernel
from repro.frontend.intrinsics import INTRINSICS, get_intrinsic, intrinsic_names
from repro.tuning import PrecisionConfig, apply_precision
from repro.codegen.compile import compile_primal


@kernel
def rm_square(x: float) -> float:
    y = x * x
    return y


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_kernel("rm_square") is rm_square
        assert get_kernel("no_such_kernel") is None

    def test_repr_and_source(self):
        assert "rm_square" in repr(rm_square)
        assert "def rm_square(x: f64) -> f64:" in rm_square.source

    def test_callable_like_original(self):
        assert rm_square(3.0) == 9.0

    def test_run_reference_matches(self):
        assert rm_square.run_reference(2.5) == rm_square(2.5)

    def test_redefinition_replaces(self):
        @kernel
        def rm_temp(x: float) -> float:
            return x + 1.0

        first = get_kernel("rm_temp")

        @kernel  # noqa: F811
        def rm_temp(x: float) -> float:  # noqa: F811
            return x + 2.0

        second = get_kernel("rm_temp")
        assert second is not first
        assert second(1.0) == 3.0


class TestIntrinsicsRegistry:
    def test_all_have_impls(self):
        for name in intrinsic_names():
            info = get_intrinsic(name)
            assert callable(info.impl), name
            assert info.arity in (1, 2, 3), name

    def test_derivative_arity_matches(self):
        from repro.ir import builder as b
        from repro.ir.types import DType

        for name, info in INTRINSICS.items():
            if info.deriv is None:
                continue
            args = [b.name(f"a{i}", DType.F64) for i in range(info.arity)]
            partials = info.deriv(args)
            assert len(partials) == info.arity, name

    def test_fast_variants_registered(self):
        for base in ("exp", "log", "sqrt", "pow", "log2", "exp2"):
            info = get_intrinsic(f"fast_{base}")
            exact = get_intrinsic(base)
            # approximate versions are priced below libm
            assert (
                list(info.cost.values())[0]
                < exact.cost[repro.DType.F64]
            )

    def test_numeric_agreement_with_adapt_tables(self):
        """The registry's symbolic derivatives and ADAPT's numeric
        tables must agree (two implementations, one math)."""
        from repro.adapt.advalues import _NUMERIC_DERIVS
        from repro.core.pullback import pullback
        from repro.interp.interpreter import run_function
        from repro.ir import builder as b
        from repro.ir import nodes as N
        from repro.ir.types import DType, ScalarType
        from repro.ir.typecheck import infer_types

        test_points = {1: (0.37,), 2: (1.3, 0.7)}
        for name, info in INTRINSICS.items():
            if info.deriv is None or name.startswith("fast_"):
                continue
            if name == "user_err":
                continue
            args_v = test_points[info.arity]
            numeric = _NUMERIC_DERIVS[name](*args_v)
            # evaluate the symbolic partials at the same point
            params = [
                N.Param(f"a{i}", ScalarType(DType.F64))
                for i in range(info.arity)
            ]
            arg_exprs = [b.name(f"a{i}", DType.F64) for i in range(info.arity)]
            call = b.call(name, arg_exprs)
            contribs = pullback(call, b.fone())
            got = {}
            for lv, contrib in contribs:
                fn = N.Function("d", params, [N.Return(contrib)], DType.F64)
                infer_types(fn)
                got[lv.id] = got.get(lv.id, 0.0) + run_function(
                    fn, list(args_v)
                )
            for i, expected in enumerate(numeric):
                sym = got.get(f"_d_a{i}", 0.0)
                assert sym == pytest.approx(expected, rel=1e-12), name


class TestCenaModel:
    @kernel
    def cena_fn(x: float) -> float:  # noqa: N805
        a = x * 1.0000001
        c = a + x
        d = c * a - x
        return d

    def test_signed_total_tighter_than_abs_bound(self):
        x = math.pi
        cena = repro.estimate_error(
            self.cena_fn, model=repro.CenaModel()
        ).execute(x)
        adapt = repro.estimate_error(
            self.cena_fn, model=repro.AdaptModel()
        ).execute(x)
        assert abs(cena.total_error) <= adapt.total_error + 1e-300

    def test_signed_estimate_tracks_net_error(self):
        mixed = apply_precision(
            self.cena_fn.ir,
            PrecisionConfig.demote(["a", "c", "d", "x"]),
        )
        low = compile_primal(mixed)
        cena_errs, adapt_errs = [], []
        signs_right = 0
        points = (math.pi, 1.7, 0.123456789, 9.87654321, 0.777, 42.42)
        for x in points:
            actual = self.cena_fn(x) - low(x)
            cena = repro.estimate_error(
                self.cena_fn, model=repro.CenaModel()
            ).execute(x)
            adapt = repro.estimate_error(
                self.cena_fn, model=repro.AdaptModel()
            ).execute(x)
            if math.copysign(1.0, cena.total_error) == math.copysign(
                1.0, actual
            ):
                signs_right += 1
            cena_errs.append(abs(cena.total_error - actual))
            adapt_errs.append(abs(adapt.total_error - abs(actual)))
            # theorem: |signed sum| <= sum of absolutes, always
            assert abs(cena.total_error) <= adapt.total_error + 1e-300
        # first-order signed estimation gets the error's *direction*
        # right for most points (second-order effects may flip it when
        # the net error is tiny); per-point accuracy may favour either
        # estimator — that is exactly the CENA-versus-bound trade-off
        assert signs_right >= len(points) - 2
        assert min(c / a for c, a in zip(cena_errs, adapt_errs)) < 1.0

    def test_sign_information_preserved(self):
        # a pure subtraction of equal demotion errors cancels
        @kernel
        def cena_cancel(x: float) -> float:
            a = x * 1.0
            c = x * 1.0
            d = a - c
            return d

        rep = repro.estimate_error(
            cena_cancel, model=repro.CenaModel()
        ).execute(math.pi)
        assert rep.total_error == pytest.approx(0.0, abs=1e-300)


class TestInterpreterCorners:
    def test_while_with_guard_break(self):
        @kernel
        def rm_while_guard(x: float) -> float:
            s = 0.0
            while s < 100.0:
                if s > x:
                    break
                s = s + 1.0
            return s

        assert rm_while_guard(5.5) == 6.0
        g = repro.gradient(rm_while_guard).execute(5.5)
        assert g.grad("x") == 0.0  # piecewise-constant in x

    def test_integer_floor_div_and_mod(self):
        @kernel
        def rm_intops(n: int) -> float:
            a = n // 3
            c = n % 3
            return a * 10.0 + c

        for n in (0, 1, 7, 12):
            assert rm_intops(n) == (n // 3) * 10.0 + (n % 3)
            assert rm_intops.run_reference(n) == rm_intops(n)

    def test_boolean_operators(self):
        @kernel
        def rm_bool(x: float) -> float:
            y = 0.0
            if x > 0.0 and not (x > 10.0) or x < -100.0:
                y = 1.0
            return y

        for x, expected in [(5.0, 1.0), (20.0, 0.0), (-200.0, 1.0),
                            (-1.0, 0.0)]:
            assert rm_bool(x) == expected
            assert rm_bool.run_reference(x) == expected

    def test_f16_storage(self):
        @kernel
        def rm_half(x: "f16") -> float:
            y: "f16" = x * x
            return y

        v = rm_half(1.2345)
        h = np.float16
        assert v == float(h(float(h(1.2345)) ** 2))
