"""Reverse-mode AD correctness: gradients versus finite differences,
forward mode, and the ADAPT baseline, across the full control-flow
feature set (loops, branches, while, guarded break, arrays, indirect
indexing)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.adapt import AdaptAnalysis
from repro.frontend import kernel
from tests.conftest import finite_diff, finite_diff_array

xs = st.floats(min_value=-3.0, max_value=3.0)
pos = st.floats(min_value=0.1, max_value=3.0)


@kernel
def ra_poly(x: float, y: float) -> float:
    z = x * x * y + x / (y + 2.0) - y
    return z


@kernel
def ra_trig(x: float) -> float:
    return sin(x) * cos(x) + tan(x / 4.0)


@kernel
def ra_exp(x: float, y: float) -> float:
    return exp(x * 0.3) * log(y + 4.0) + pow(y + 4.0, x * 0.25)


@kernel
def ra_loop(x: float, n: int) -> float:
    acc = 1.0
    for i in range(n):
        acc = acc * (1.0 + x / (i + 1.0))
    return acc


@kernel
def ra_nested(x: float, n: int) -> float:
    s = 0.0
    for i in range(n):
        inner = 0.0
        for j in range(i + 1):
            inner = inner + x * j
        s = s + sin(inner) * 0.125
    return s


@kernel
def ra_branch(x: float) -> float:
    y = 0.0
    if x > 1.0:
        y = x * x
    else:
        y = 2.0 * x - 1.0
    return y


@kernel
def ra_while(x: float) -> float:
    s = 0.0
    k = 0
    while k < 8:
        s = s + x * x / (k + 1.0)
        k = k + 1
    return s


@kernel
def ra_guarded(x: float, n: int) -> float:
    s = 0.0
    for i in range(n):
        if s > 5.0:
            break
        s = s + exp(x / 10.0) * 0.25
    return s


@kernel
def ra_array(n: int, a: "f64[]", w: "f64[]") -> float:
    s = 0.0
    for i in range(n):
        s = s + w[i] * a[i] * a[i]
    return s


@kernel
def ra_indirect(n: int, a: "f64[]", idx: "i64[]") -> float:
    s = 0.0
    for i in range(n):
        s = s + a[idx[i]] * (i + 1.0)
    return s


@kernel
def ra_overwrite(n: int, a: "f64[]") -> float:
    # repeated in-place array updates force element pushes
    for i in range(n - 1):
        a[i + 1] = a[i + 1] + 0.5 * a[i] * a[i]
    return a[n - 1]


class TestScalarGradients:
    @given(xs, st.floats(min_value=-1.5, max_value=3.0))
    @settings(max_examples=40, deadline=None)
    def test_poly(self, x, y):
        g = repro.gradient(ra_poly).execute(x, y)
        assert g.grad("x") == pytest.approx(
            finite_diff(ra_poly, (x, y), 0), rel=1e-5, abs=1e-6
        )
        assert g.grad("y") == pytest.approx(
            finite_diff(ra_poly, (x, y), 1), rel=1e-5, abs=1e-6
        )

    @given(st.floats(min_value=-1.2, max_value=1.2))
    @settings(max_examples=40, deadline=None)
    def test_trig(self, x):
        g = repro.gradient(ra_trig).execute(x)
        expected = (
            math.cos(2 * x) + 0.25 / math.cos(x / 4.0) ** 2
        )
        assert g.grad("x") == pytest.approx(expected, rel=1e-9)

    @given(xs, pos)
    @settings(max_examples=40, deadline=None)
    def test_exp_log_pow(self, x, y):
        g = repro.gradient(ra_exp).execute(x, y)
        assert g.grad("x") == pytest.approx(
            finite_diff(ra_exp, (x, y), 0), rel=1e-4, abs=1e-5
        )
        assert g.grad("y") == pytest.approx(
            finite_diff(ra_exp, (x, y), 1), rel=1e-4, abs=1e-5
        )

    def test_value_is_primal(self):
        g = repro.gradient(ra_poly).execute(1.5, 2.5)
        assert g.value == ra_poly(1.5, 2.5)


class TestControlFlowGradients:
    @given(xs, st.integers(min_value=0, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_loop(self, x, n):
        g = repro.gradient(ra_loop).execute(x, n)
        assert g.grad("x") == pytest.approx(
            finite_diff(lambda a, m: ra_loop(a, m), (x, n), 0),
            rel=1e-4, abs=1e-6,
        )

    @given(xs, st.integers(min_value=1, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_nested_triangular_loops(self, x, n):
        g = repro.gradient(ra_nested).execute(x, n)
        assert g.grad("x") == pytest.approx(
            finite_diff(lambda a, m: ra_nested(a, m), (x, n), 0),
            rel=1e-4, abs=1e-6,
        )

    @pytest.mark.parametrize("x", [-2.0, 0.5, 0.999, 1.001, 3.0])
    def test_branch(self, x):
        g = repro.gradient(ra_branch).execute(x)
        expected = 2 * x if x > 1.0 else 2.0
        assert g.grad("x") == pytest.approx(expected)

    @given(xs)
    @settings(max_examples=25, deadline=None)
    def test_while(self, x):
        g = repro.gradient(ra_while).execute(x)
        h = sum(1.0 / (k + 1) for k in range(8))
        assert g.grad("x") == pytest.approx(2 * x * h, rel=1e-10)

    @given(xs, st.integers(min_value=0, max_value=40))
    @settings(max_examples=25, deadline=None)
    def test_guarded_break(self, x, n):
        from hypothesis import assume

        # the break makes the function piecewise: skip inputs where the
        # finite-difference probes land on different trip counts (the
        # function is discontinuous there and FD is meaningless)
        eps = 1e-6
        lo, hi = ra_guarded(x - eps, n), ra_guarded(x + eps, n)
        assume(abs(hi - lo) < 0.1)  # same branch on both probes
        g = repro.gradient(ra_guarded).execute(x, n)
        assert g.grad("x") == pytest.approx(
            (hi - lo) / (2 * eps), rel=1e-4, abs=1e-7
        )


class TestArrayGradients:
    def test_weighted_square_sum(self, rng):
        n = 6
        a = rng.normal(size=n)
        w = rng.normal(size=n)
        g = repro.gradient(ra_array).execute(n, a, w)
        np.testing.assert_allclose(g.grad("a"), 2 * w * a, rtol=1e-12)
        np.testing.assert_allclose(g.grad("w"), a * a, rtol=1e-12)

    def test_indirect_indexing(self, rng):
        n = 5
        a = rng.normal(size=8)
        idx = np.array([3, 1, 4, 1, 5], dtype=np.int64)
        g = repro.gradient(ra_indirect).execute(n, a, idx)
        expected = np.zeros(8)
        for i in range(n):
            expected[idx[i]] += i + 1.0
        np.testing.assert_allclose(g.grad("a"), expected)

    def test_inplace_overwrites(self, rng):
        n = 5
        a = rng.uniform(0.5, 1.5, size=n)
        g = repro.gradient(ra_overwrite).execute(n, a.copy())
        for j in range(n):
            fd = finite_diff_array(
                lambda m, arr: ra_overwrite(m, arr.copy()),
                (n, a), 1, j, eps=1e-7,
            )
            assert g.grad("a")[j] == pytest.approx(fd, rel=1e-5, abs=1e-8)


class TestCrossValidation:
    """Three independent oracles must agree: reverse, forward, ADAPT."""

    @given(xs, pos)
    @settings(max_examples=20, deadline=None)
    def test_reverse_vs_forward(self, x, y):
        rev = repro.gradient(ra_exp).execute(x, y)
        _, fwd_x = repro.forward_derivative(ra_exp, "x").execute(x, y)
        _, fwd_y = repro.forward_derivative(ra_exp, "y").execute(x, y)
        assert rev.grad("x") == pytest.approx(fwd_x, rel=1e-12)
        assert rev.grad("y") == pytest.approx(fwd_y, rel=1e-12)

    @given(xs, st.integers(min_value=1, max_value=10))
    @settings(max_examples=15, deadline=None)
    def test_reverse_vs_adapt(self, x, n):
        rev = repro.gradient(ra_loop).execute(x, n)
        ad = AdaptAnalysis(ra_loop).execute(x, n)
        assert rev.grad("x") == pytest.approx(ad.grad("x"), rel=1e-12)

    def test_array_adapt_agreement(self, rng):
        n = 6
        a = rng.normal(size=n)
        w = rng.normal(size=n)
        rev = repro.gradient(ra_array).execute(n, a, w)
        ad = AdaptAnalysis(ra_array).execute(n, a, w)
        np.testing.assert_allclose(rev.grad("a"), ad.grad("a"), rtol=1e-12)
        np.testing.assert_allclose(rev.grad("w"), ad.grad("w"), rtol=1e-12)


class TestTapeMinimization:
    def test_minimal_pushes_preserve_gradients(self):
        full = repro.gradient(ra_nested, minimal_pushes=False)
        mini = repro.gradient(ra_nested, minimal_pushes=True)
        for x in (0.3, -1.2):
            a = full.execute(x, 6)
            bb = mini.execute(x, 6)
            assert a.grad("x") == bb.grad("x")
            assert a.value == bb.value

    def test_minimal_source_has_fewer_pushes(self):
        full = repro.gradient(ra_array, minimal_pushes=False)
        mini = repro.gradient(ra_array, minimal_pushes=True)
        assert full.source.count(".append(") > mini.source.count(".append(")

    def test_opt_levels_preserve_gradients(self):
        for lvl in (0, 1, 2):
            g = repro.gradient(ra_exp, opt_level=lvl).execute(0.5, 1.5)
            assert g.grad("x") == pytest.approx(
                finite_diff(ra_exp, (0.5, 1.5), 0), rel=1e-5
            )
