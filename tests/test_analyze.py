"""Static-analysis tests: dataflow/range/sensitivity consistency, the
lint engine's stable diagnostic codes, IRConfigError on authored-kernel
mistakes, optimization passes preserving analysis facts, and the
search-space pruning contract (front no worse, strictly fewer
evaluations, bit-identity when analysis is off)."""

import copy
import json

import pytest

from repro.analyze import (
    AnalysisReport,
    analyze_dataflow,
    analyze_ranges,
    derive_domains,
    prune_candidates,
)
from repro.analyze.dataflow import index_statements
from repro.cli import main as cli
from repro.ir import builder as b
from repro.ir import nodes as N
from repro.ir.types import DType, ScalarType
from repro.ir.validate import validate_function
from repro.opt import cse_function, dce_function, fold_function, optimize
from repro.search.orchestrator import app_scenarios
from repro.session import Session, SessionConfig
from repro.util.errors import ConfigError, IRConfigError, ValidationError

APPS = ("simpsons", "arclength", "kmeans", "blackscholes", "hpccg")

#: stable RA code sets per app — the golden lint contract.  A change
#: here is a deliberate analysis-semantics change, not noise.
GOLDEN_CODES = {
    "simpsons": [],
    "arclength": ["RA105", "RA106", "RA107"],
    "kmeans": ["RA101", "RA105", "RA106"],
    "blackscholes": ["RA105"],
    "hpccg": ["RA104", "RA105", "RA106", "RA107"],
}

GOLDEN_PINNED = {
    "simpsons": ("s",),
    "arclength": ("s",),
    "kmeans": ("best", "total"),
    "blackscholes": (),
    "hpccg": (),
}


def _scenario(name):
    return app_scenarios()[name].search_scenario()


def _ir_of(name):
    return copy.deepcopy(_scenario(name).kernel.ir)


def _domains(name):
    scen = _scenario(name)
    return derive_domains(
        scen.kernel.ir,
        points=scen.points,
        samples=scen.samples,
        fixed=scen.fixed,
    )


# -- dataflow consistency -----------------------------------------------------


def _assert_dataflow_consistent(df):
    """Structural invariants every Dataflow must satisfy."""
    n = len(df.stmts)
    for var, sites in df.defs.items():
        for site in sites:
            assert -len(df.fn.params) - 1 <= site.index < n, (var, site)
    for var, uses in df.uses.items():
        for i in uses:
            assert 0 <= i < n, (var, i)
    for (i, var), def_sites in df.use_def.items():
        assert 0 <= i < n
        for d in def_sites:
            assert d < n
            if d >= 0:
                assert any(
                    s.index == d for s in df.defs.get(var, ())
                ), (var, d)
    for var in df.flows_to_return:
        assert var in df.defs or any(
            p.name == var for p in df.fn.params
        )


class TestDataflow:
    @pytest.mark.parametrize("app", APPS)
    def test_facts_consistent(self, app):
        _assert_dataflow_consistent(analyze_dataflow(_ir_of(app)))

    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize(
        "opt", [dce_function, cse_function, fold_function]
    )
    def test_facts_consistent_after_opt(self, app, opt):
        fn = _ir_of(app)
        opt(fn)
        _assert_dataflow_consistent(analyze_dataflow(fn))

    def test_statement_indexing_is_preorder(self):
        fn = _ir_of("kmeans")
        stmts = index_statements(fn)
        assert stmts, "kmeans has a body"
        assert all(s is stmts[i] for i, s in enumerate(stmts))


# -- opt passes preserve analysis facts ---------------------------------------


class TestOptPreservesFacts:
    @pytest.mark.parametrize("app", APPS)
    def test_opt_output_validates(self, app):
        """Satellite contract: dce/cse output is structurally valid."""
        for passes in (
            (dce_function,),
            (cse_function,),
            (fold_function,),
            (fold_function, cse_function, dce_function),
        ):
            fn = _ir_of(app)
            for p in passes:
                p(fn)
            validate_function(fn)

    @pytest.mark.parametrize("app", APPS)
    def test_optimize_pipeline_validates(self, app):
        validate_function(optimize(_ir_of(app)))

    @pytest.mark.parametrize("app", APPS)
    def test_ranges_only_tighten(self, app):
        """Optimizing a kernel may only *tighten* its value ranges:
        every variable surviving the pipeline has an interval contained
        in the unoptimized one (fewer def sites joined, exact constant
        folds — never a wider value set)."""
        domains = _domains(app)
        before = analyze_ranges(_ir_of(app), domains)
        fn = _ir_of(app)
        fold_function(fn)
        dce_function(fn)
        after = analyze_ranges(fn, domains)
        shared = set(before.ranges) & set(after.ranges)
        assert shared, "optimization must not rename every variable"
        for v in shared:
            lo_b, hi_b = before.ranges[v].lo, before.ranges[v].hi
            lo_a, hi_a = after.ranges[v].lo, after.ranges[v].hi
            assert lo_a >= lo_b or lo_a == pytest.approx(lo_b), v
            assert hi_a <= hi_b or hi_a == pytest.approx(hi_b), v

    @pytest.mark.parametrize("app", APPS)
    def test_def_use_survives_opt(self, app):
        """Variables flowing to the return value keep flowing to it
        across the full opt pipeline (the passes remove dead code, not
        live dependencies)."""
        before = analyze_dataflow(_ir_of(app))
        after = analyze_dataflow(optimize(_ir_of(app)))
        surviving = set(after.defs) | {
            p.name for p in after.fn.params
        }
        for var in before.flows_to_return & surviving:
            assert var in after.flows_to_return, var


# -- IRConfigError on authored mistakes ---------------------------------------


def _fn(params, body, ret=DType.F64):
    return N.Function(
        name="authored", params=params, body=body, ret_dtype=ret
    )


class TestIRConfigError:
    def test_duplicate_parameter(self):
        fn = _fn(
            [
                N.Param("x", ScalarType(DType.F64)),
                N.Param("x", ScalarType(DType.F64)),
            ],
            [N.Return(b.name("x", DType.F64))],
        )
        with pytest.raises(IRConfigError, match="duplicate parameter"):
            validate_function(fn)

    def test_use_before_definition(self):
        fn = _fn(
            [N.Param("x", ScalarType(DType.F64))],
            [
                N.VarDecl("tmp", DType.F64, None),
                N.Return(b.name("tmp", DType.F64)),
            ],
        )
        with pytest.raises(IRConfigError, match="before definition"):
            validate_function(fn)

    def test_assignment_defines(self):
        fn = _fn(
            [N.Param("x", ScalarType(DType.F64))],
            [
                N.VarDecl("tmp", DType.F64, None),
                N.Assign(b.name("tmp", DType.F64), b.name("x", DType.F64)),
                N.Return(b.name("tmp", DType.F64)),
            ],
        )
        validate_function(fn)  # no raise

    def test_branch_assignment_counts_as_defining(self):
        """The check is textual-order and branch-insensitive: an
        assignment inside an earlier If suffices (no false positives
        on path-dependent definitions)."""
        fn = _fn(
            [N.Param("x", ScalarType(DType.F64))],
            [
                N.VarDecl("tmp", DType.F64, None),
                N.If(
                    b.binop(
                        ">", b.name("x", DType.F64), b.const(0.0)
                    ),
                    [
                        N.Assign(
                            b.name("tmp", DType.F64),
                            b.name("x", DType.F64),
                        )
                    ],
                    [],
                ),
                N.Return(b.name("tmp", DType.F64)),
            ],
        )
        validate_function(fn)  # no raise

    def test_is_both_validation_and_config_error(self):
        assert issubclass(IRConfigError, ValidationError)
        assert issubclass(IRConfigError, ConfigError)

    @pytest.mark.parametrize("app", APPS)
    def test_apps_and_adjoints_stay_clean(self, app):
        """The use-before-definition check must never fire on real
        kernels or their generated adjoints (zero false positives)."""
        from repro.core.api import build_adjoint

        ir = _scenario(app).kernel.ir
        validate_function(ir)
        adj = build_adjoint(ir, extension=None)
        validate_function(adj, allow_adjoint_nodes=True)


# -- lint goldens -------------------------------------------------------------


class TestLintGolden:
    @pytest.mark.parametrize("app", APPS)
    def test_stable_codes(self, app):
        report = Session().analyze(app)
        assert (
            sorted({d.code for d in report.diagnostics})
            == GOLDEN_CODES[app]
        )

    @pytest.mark.parametrize("app", APPS)
    def test_pinned_sets(self, app):
        assert Session().analyze(app).pinned == GOLDEN_PINNED[app]

    def test_diagnostics_sorted_and_renderable(self):
        report = Session().analyze("hpccg")
        codes = [(d.code, d.var) for d in report.diagnostics]
        assert codes == sorted(codes)
        text = report.render()
        assert "hpccg" in text
        for d in report.diagnostics:
            assert d.code in text

    def test_digest_stable_across_runs(self):
        a = Session().analyze("simpsons")
        c = Session().analyze("simpsons")
        # wall-time and provenance are excluded from identity, so two
        # independent runs of the same pipeline agree exactly
        assert isinstance(a, AnalysisReport)
        assert a.digest() == c.digest()
        assert len(a.digest()) == 64


# -- pruning contract ---------------------------------------------------------


def _feasible_front_no_worse(unpruned, pruned, threshold):
    """Every threshold-feasible unpruned front point is weakly
    dominated by some pruned front point."""
    for u in unpruned.front.points:
        if u.error > threshold:
            continue
        assert any(
            p.error <= u.error and p.cycles <= u.cycles
            for p in pruned.front.points
        ), (u.key, u.error, u.cycles)


class TestPruning:
    @pytest.mark.parametrize(
        "app,overrides", [("simpsons", {}), ("arclength", {"budget": 80})]
    )
    def test_front_no_worse_with_fewer_evaluations(self, app, overrides):
        off = Session().search(app, **overrides)
        on = Session(config=SessionConfig(analyze=True)).search(
            app, **overrides
        )
        assert on.n_evaluated < off.n_evaluated
        assert set(on.candidates) < set(off.candidates)
        _feasible_front_no_worse(off, on, off.threshold)

    def test_prune_candidates_never_empties_the_space(self):
        report = Session().analyze("simpsons")
        kept, dropped = prune_candidates(report, ["s"])
        assert kept == ("s",) and dropped == ()
        kept, dropped = prune_candidates(report, ["s", "x"])
        assert kept == ("x",) and dropped == ("s",)

    def test_analyze_off_is_bit_identical(self, tmp_path):
        """The off-by-default contract: a session without analysis
        produces the same run identity and manifest as before the
        feature existed (no analysis component at all)."""
        base = Session(store=tmp_path / "a")
        run_id = base.search_run_id("simpsons")
        assert run_id == Session(store=tmp_path / "b").search_run_id(
            "simpsons"
        )
        result = base.search("simpsons")
        assert result.run_id == run_id
        manifest = base.store.load_manifest(run_id)
        assert manifest.get("analysis") is None

    def test_analyze_on_changes_run_identity(self):
        off = Session().search_run_id("simpsons")
        on = Session(config=SessionConfig(analyze=True)).search_run_id(
            "simpsons"
        )
        assert off != on

    def test_analysis_provenance_in_manifest(self, tmp_path):
        sess = Session(
            config=SessionConfig(analyze=True), store=tmp_path / "runs"
        )
        result = sess.search("simpsons")
        manifest = sess.store.load_manifest(result.run_id)
        assert manifest["analysis"]["pruned"] == ["s"]
        assert len(manifest["analysis"]["digest"]) == 64


# -- CLI ----------------------------------------------------------------------


class TestAnalyzeCLI:
    SCHEMA = {
        "amp", "demote_to", "diagnostics", "digest", "err_estimate",
        "ir_fingerprint", "kernel", "pinned", "provenance", "ranges",
        "safe", "threshold", "wall_time", "widened", "writes",
    }

    @pytest.mark.parametrize("app", APPS)
    def test_json_schema_stable(self, app, capsys):
        assert cli(["analyze", app, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload.keys()) == self.SCHEMA
        # the report names the IR function, not the scenario
        assert payload["kernel"] == _scenario(app).kernel.ir.name
        for iv in payload["ranges"].values():
            assert set(iv) == {"lo", "hi"}

    def test_text_render(self, capsys):
        assert cli(["analyze", "simpsons"]) == 0
        out = capsys.readouterr().out
        assert "analyze(simpson)" in out
        assert "pinned" in out

    def test_unknown_kernel_exits_2(self, capsys):
        assert cli(["analyze", "nope"]) == 2
        assert "unknown" in capsys.readouterr().err.lower()

    def test_list_scenarios(self, capsys):
        assert cli(["analyze", "--list"]) == 0
        out = capsys.readouterr().out
        for app in APPS:
            assert app in out

    def test_json_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert cli(["analyze", "kmeans", "--json", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["kernel"] == "kmeans_cost"
        assert payload["pinned"] == ["best", "total"]


# -- serve job ----------------------------------------------------------------


class TestAnalyzeJob:
    def test_analyze_job_kind(self, tmp_path):
        import time

        from repro.serve import JobRegistry, JobSpec

        sess = Session(store=tmp_path / "runs")
        reg = JobRegistry(sess)
        try:
            job, created = reg.submit(
                JobSpec.from_dict(
                    {"kind": "analyze", "kernel": "arclength"}
                )
            )
            assert created
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                done = reg.get(job.id)
                if done.state in ("completed", "failed", "cancelled"):
                    break
                time.sleep(0.05)
            assert done.state == "completed", done.error
            assert done.result["kernel"] == "arclength"
            assert done.result["pinned"] == ["s"]
            assert {d["code"] for d in done.result["diagnostics"]} == set(
                GOLDEN_CODES["arclength"]
            )
        finally:
            reg.close()
