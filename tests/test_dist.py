"""Distributed execution tests: the lease claim protocol (exclusive
acquire, TTL steal, heartbeat renewal, torn-lease recovery), store
union-merge with verification and shard provenance, lease-aware
pruning, ambiguity listings, the worker fleet's bit-identical
equivalence to a serial orchestrator run (including under SIGKILL),
and the serve/CLI surfaces over all of it."""

import json
import multiprocessing
import time

import pytest

from repro import ConfigError, Session, SessionConfig, UnknownNameError, faults
from repro.cli import main as cli
from repro.dist import (
    LeaseLostError,
    LeaseManager,
    merge_stores,
    run_fleet,
)
from repro.dist.fleet import elect_front
from repro.search.orchestrator import PlanEntry, app_scenarios, shard_entries
from repro.search.store import RunStore


@pytest.fixture(autouse=True)
def _faults_disabled():
    faults.disable()
    yield
    faults.disable()


# -- leases -------------------------------------------------------------------


class TestLease:
    def test_acquire_is_exclusive_then_released(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=30.0)
        b = LeaseManager(tmp_path, owner="b", ttl_s=30.0)
        lease = a.acquire("deadbeef", meta={"entry": 0})
        assert lease is not None and lease.owner == "a"
        assert b.acquire("deadbeef") is None  # live holder elsewhere
        holder = a.holder("deadbeef")
        assert holder is not None and holder["owner"] == "a"
        assert a.active_keys() == ["deadbeef"]
        assert a.release(lease) is True
        assert b.acquire("deadbeef") is not None

    def test_renew_advances_deadline(self, tmp_path):
        mgr = LeaseManager(tmp_path, ttl_s=30.0)
        lease = mgr.acquire("cafe")
        before = lease.deadline
        time.sleep(0.01)
        mgr.renew(lease)
        assert lease.deadline > before
        assert lease.renewals == 1

    def test_steal_after_ttl_expiry(self, tmp_path):
        dead = LeaseManager(tmp_path, owner="dead", ttl_s=0.1)
        lease = dead.acquire("feed")
        assert lease is not None
        time.sleep(0.15)
        thief = LeaseManager(tmp_path, owner="thief", ttl_s=30.0)
        stolen = thief.acquire("feed")
        assert stolen is not None and stolen.owner == "thief"
        # the dead holder's next heartbeat detects the theft
        with pytest.raises(LeaseLostError):
            dead.renew(lease)
        # ...and its release must not strand the new holder
        assert dead.release(lease) is False
        assert thief.holder("feed")["owner"] == "thief"

    def test_corrupt_lease_is_stealable(self, tmp_path):
        (tmp_path / "beef.lease").write_bytes(b"\x00not json\xff")
        mgr = LeaseManager(tmp_path, owner="x", ttl_s=30.0)
        assert mgr.acquire("beef") is not None

    def test_torn_acquire_leaves_stealable_lease(self, tmp_path):
        # a torn fault at lease.acquire truncates the payload: the
        # writer believes it holds the lease, every reader sees garbage
        faults.enable(
            faults.FaultPlan(
                specs=(
                    faults.FaultSpec(
                        site="lease.acquire", kind="torn", nth=(1,)
                    ),
                )
            )
        )
        writer = LeaseManager(tmp_path, owner="writer", ttl_s=30.0)
        torn = writer.acquire("f00d")
        assert torn is not None  # the writer cannot tell
        faults.disable()
        reader = LeaseManager(tmp_path, owner="reader", ttl_s=30.0)
        assert reader.holder("f00d") is None  # unreadable == no holder
        stolen = reader.acquire("f00d")  # ...and stealable
        assert stolen is not None and stolen.owner == "reader"
        with pytest.raises(LeaseLostError):
            writer.renew(torn)

    def test_renew_fault_aborts_conservatively(self, tmp_path):
        mgr = LeaseManager(tmp_path, ttl_s=30.0)
        lease = mgr.acquire("abad")
        faults.enable(
            faults.FaultPlan(
                specs=(
                    faults.FaultSpec(
                        site="lease.renew", kind="oserror", nth=(1,)
                    ),
                )
            )
        )
        with pytest.raises(LeaseLostError):
            mgr.renew(lease)

    def test_sweep_expired(self, tmp_path):
        mgr = LeaseManager(tmp_path, ttl_s=0.1)
        mgr.acquire("aaaa")
        mgr.acquire("bbbb")
        time.sleep(0.15)
        live = LeaseManager(tmp_path, ttl_s=30.0)
        live.acquire("cccc")
        assert live.sweep_expired() == 2
        assert live.active_keys() == ["cccc"]

    def test_unsafe_keys_rejected(self, tmp_path):
        mgr = LeaseManager(tmp_path)
        for key in ("", "../escape", "a/b", ".hidden"):
            with pytest.raises(ConfigError, match="filesystem-safe"):
                mgr.acquire(key)

    def test_bad_ttl_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="ttl"):
            LeaseManager(tmp_path, ttl_s=0.0)


def _contend(directory, barrier, queue, owner):
    mgr = LeaseManager(directory, owner=owner, ttl_s=30.0)
    barrier.wait()
    lease = mgr.acquire("feedface")
    queue.put((owner, lease is not None))


class TestClaimContention:
    def test_exactly_one_of_n_processes_wins(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        n = 4
        barrier = ctx.Barrier(n)
        queue = ctx.Queue()
        procs = [
            ctx.Process(
                target=_contend,
                args=(str(tmp_path), barrier, queue, f"p{i}"),
            )
            for i in range(n)
        ]
        for p in procs:
            p.start()
        results = [queue.get(timeout=30) for _ in range(n)]
        for p in procs:
            p.join(timeout=30)
        winners = [owner for owner, won in results if won]
        assert len(winners) == 1  # exclusive acquire: one link lands
        # the losers moved on; the winner's lease is live on disk
        mgr = LeaseManager(tmp_path, ttl_s=30.0)
        assert mgr.holder("feedface")["owner"] == winners[0]


# -- store merge --------------------------------------------------------------

_FAST = dict(budget=3, strategies=("greedy",))


def _store_with_run(path, seed):
    store = RunStore(path)
    sess = Session(SessionConfig(workers=0, seed=seed), store=store)
    sess.search("kmeans", **_FAST)
    return store


class TestStoreMerge:
    def test_union_import_and_idempotence(self, tmp_path):
        a = _store_with_run(tmp_path / "a", seed=0)
        b = _store_with_run(tmp_path / "b", seed=1)
        dest = RunStore(tmp_path / "merged")
        report = merge_stores(dest, [a, b])
        assert report.imported == 2 and report.conflicts == 0
        ids = {m["run_id"] for m in dest.list_runs()}
        assert ids == {
            m["run_id"] for s in (a, b) for m in s.list_runs()
        }
        # merged records are byte-for-byte the source records
        for rid in ids:
            src = a if a.load_manifest(rid) else b
            assert dest.load_records(rid) == src.load_records(rid)
        # merging again changes nothing
        again = dest.merge([a, b])
        assert again.imported == 0 and again.unchanged == 2

    def test_merged_manifest_carries_shard_provenance(self, tmp_path):
        a = _store_with_run(tmp_path / "a", seed=0)
        dest = RunStore(tmp_path / "merged")
        merge_stores(dest, [a])
        (manifest,) = dest.list_runs()
        (shard,) = manifest["shards"]
        assert shard["seed"] == 0
        assert shard["source"] == str(a.root)
        assert shard["host"] and shard["pid"]

    def test_completed_source_beats_partial_destination(self, tmp_path):
        src = _store_with_run(tmp_path / "src", seed=0)
        (manifest,) = src.list_runs()
        rid = manifest["run_id"]
        records = src.load_records(rid)
        assert len(records) >= 2
        dest = RunStore(tmp_path / "dest")
        partial = dict(manifest)
        partial["completed"] = False
        partial["n_evaluations"] = 1
        partial["front"] = None
        dest.save_run(partial, records[:1])
        report = merge_stores(dest, [src])
        assert report.updated == 1
        merged = dest.load_manifest(rid)
        assert merged["completed"]
        assert dest.load_records(rid) == records

    def test_longer_prefix_beats_shorter(self, tmp_path):
        full = _store_with_run(tmp_path / "full", seed=0)
        (manifest,) = full.list_runs()
        rid = manifest["run_id"]
        records = full.load_records(rid)
        partial = dict(manifest)
        partial["completed"] = False
        partial["front"] = None
        dest = RunStore(tmp_path / "dest")
        dest.save_run(dict(partial), records[:1])
        src = RunStore(tmp_path / "src")
        src.save_run(dict(partial), records[:2])
        report = merge_stores(dest, [src])
        assert report.updated == 1
        assert dest.load_records(rid) == records[:2]
        # the reverse direction is a no-op: shorter never wins
        back = merge_stores(src, [dest])
        assert back.updated == 0 and back.unchanged == 1

    def test_disagreeing_completed_runs_conflict(self, tmp_path):
        a = _store_with_run(tmp_path / "a", seed=0)
        (manifest,) = a.list_runs()
        rid = manifest["run_id"]
        records = a.load_records(rid)
        tampered = dict(manifest)
        tampered["n_evaluations"] = len(records) + 1
        tampered["front"] = []
        src = RunStore(tmp_path / "tampered")
        src.save_run(tampered, records + [dict(records[-1], index=len(records))])
        report = merge_stores(a, [src])
        assert report.conflicts == 1 and report.updated == 0
        # the destination was not clobbered
        assert a.load_manifest(rid)["n_evaluations"] == len(records)

    def test_corrupt_source_records_skipped(self, tmp_path):
        src = _store_with_run(tmp_path / "src", seed=0)
        (manifest,) = src.list_runs()
        rid = manifest["run_id"]
        src.run_dir(rid).joinpath("evals.pkl").write_bytes(b"\xde\xad")
        dest = RunStore(tmp_path / "dest")
        report = merge_stores(dest, [src])
        assert report.skipped_corrupt == 1 and report.imported == 0
        assert dest.list_runs() == []

    def test_merge_validation(self, tmp_path):
        store = RunStore(tmp_path / "s")
        with pytest.raises(ConfigError, match="at least one source"):
            merge_stores(store, [])
        with pytest.raises(ConfigError, match="is the destination"):
            merge_stores(store, [RunStore(tmp_path / "s")])


# -- lease-aware pruning and ambiguity listings -------------------------------


class TestStoreDistHygiene:
    def test_prune_spares_live_leased_runs(self, tmp_path):
        store = _store_with_run(tmp_path / "s", seed=0)
        (manifest,) = store.list_runs()
        rid = manifest["run_id"]
        partial = dict(manifest)
        partial["completed"] = False
        store.save_manifest(rid, partial)
        leases = LeaseManager(store.leases_dir(), ttl_s=30.0)
        lease = leases.acquire(rid)
        assert store.prune(incomplete=True, min_age_hours=0.0) == []
        leases.release(lease)
        pruned = store.prune(incomplete=True, min_age_hours=0.0)
        assert [m["run_id"] for m in pruned] == [rid]

    def test_prune_never_collects_infra_dirs(self, tmp_path):
        store = _store_with_run(tmp_path / "s", seed=0)
        LeaseManager(store.leases_dir(), ttl_s=30.0).acquire("aa")
        dist_dir = store.root / "_dist"
        dist_dir.mkdir()
        (dist_dir / "worker-0.json").write_text("{}")
        pruned = store.prune(incomplete=True, min_age_hours=0.0)
        assert pruned == []
        assert store.leases_dir().is_dir() and dist_dir.is_dir()

    def test_ambiguity_error_lists_shard_provenance(self, tmp_path):
        store = RunStore(tmp_path / "s")
        for rid, seed in ((f"aa{'1' * 62}", 3), (f"aa{'2' * 62}", 4)):
            manifest = store.new_manifest(
                rid, {"seed": seed}, kernel="k", label=f"seed{seed}"
            )
            store.save_manifest(rid, manifest)
        with pytest.raises(UnknownNameError) as exc:
            store.resolve_run_id("aa")
        message = str(exc.value)
        assert "ambiguous between 2 runs" in message
        assert "seed=3" in message and "seed=4" in message
        assert "in-flight" in message


# -- the worker fleet ---------------------------------------------------------

_FLEET_ENTRY = {"scenario": "kmeans", "scenario_args": {"size": 8}}
_FLEET_DEFAULTS = {"budget": 4, "strategies": ["greedy"]}


def _serial_reference(tmp_path, defaults, shards, seed=0):
    """Run the sharded plan serially; returns (store, manifests)."""
    cfg = SessionConfig(workers=0, seed=seed)
    store = RunStore(tmp_path / "ref")
    sess = Session(cfg, store=store)
    sharded = shard_entries(
        [PlanEntry.from_dict(_FLEET_ENTRY)], shards, default_seed=seed
    )
    for entry in sharded:
        merged = dict(defaults)
        merged.update(entry.overrides)
        merged["strategies"] = tuple(merged["strategies"])
        scen = app_scenarios()[entry.scenario].search_scenario(
            **entry.scenario_args
        )
        scen.run(session=sess, store=store, **merged)
    return store, store.list_runs()


class TestFleet:
    def test_fleet_matches_serial_reference_bit_for_bit(self, tmp_path):
        cfg = SessionConfig(workers=0, lease_ttl_s=5.0)
        fleet_store = RunStore(tmp_path / "fleet")
        result = run_fleet(
            [_FLEET_ENTRY],
            fleet_store,
            workers=2,
            shards=2,
            defaults=_FLEET_DEFAULTS,
            session_config=cfg,
        )
        assert result.completed, result.stats
        assert len(result.entries) == 2
        assert {e["seed"] for e in result.entries} == {0, 1}
        ref_store, ref_manifests = _serial_reference(
            tmp_path, _FLEET_DEFAULTS, shards=2
        )
        ref_ids = {m["run_id"] for m in ref_manifests}
        assert {m["run_id"] for m in fleet_store.list_runs()} == ref_ids
        # every shard run's evaluation history is bit-identical
        for rid in ref_ids:
            assert fleet_store.load_records(rid) == ref_store.load_records(
                rid
            )
        # ...and so is the elected winner front
        ref_front = elect_front(ref_manifests)
        assert [p.to_dict() for p in ref_front.points] == result.front
        # front provenance names the shard run that produced each point
        for point in result.front:
            assert point["provenance"]["run_id"] in ref_ids

    def test_sigkilled_worker_is_stolen_and_resumed(self, tmp_path):
        # worker 0 SIGKILLs itself after 2 computed candidates land
        # post-checkpoint; its lease expires and worker 1 resumes from
        # the checkpoint prefix.  The merged outcome must be
        # bit-identical to the uninterrupted serial reference.
        defaults = {"budget": 6, "strategies": ["greedy"]}
        cfg = SessionConfig(workers=0, lease_ttl_s=1.0)
        fleet_store = RunStore(tmp_path / "fleet")
        result = run_fleet(
            [_FLEET_ENTRY],
            fleet_store,
            workers=2,
            shards=2,
            defaults=defaults,
            session_config=cfg,
            worker_env={0: {"REPRO_SEARCH_CRASH_AFTER": "2"}},
        )
        assert result.completed, result.stats
        assert result.stats["steals"] >= 1
        ref_store, ref_manifests = _serial_reference(
            tmp_path, defaults, shards=2
        )
        ref_ids = {m["run_id"] for m in ref_manifests}
        assert {m["run_id"] for m in fleet_store.list_runs()} == ref_ids
        for rid in ref_ids:
            assert fleet_store.load_records(rid) == ref_store.load_records(
                rid
            )
        ref_front = elect_front(ref_manifests)
        assert [p.to_dict() for p in ref_front.points] == result.front

    def test_session_fleet_facade(self, tmp_path):
        sess = Session(
            SessionConfig(workers=0), store=tmp_path / "runs"
        )
        result = sess.fleet(
            ["kmeans"],
            defaults={"budget": 3, "strategies": ["greedy"]},
            workers=1,
        )
        assert result.completed
        assert result.front
        (manifest,) = RunStore(tmp_path / "runs").list_runs()
        assert manifest["completed"]

    def test_fleet_validation(self, tmp_path):
        store = RunStore(tmp_path / "s")
        with pytest.raises(ConfigError, match="workers"):
            run_fleet(["kmeans"], store, workers=0)
        with pytest.raises(ConfigError, match="no entries"):
            run_fleet([], store)
        with pytest.raises(UnknownNameError, match="kmeens"):
            run_fleet(["kmeens"], store)
        with pytest.raises(ConfigError, match="JSON-expressible"):
            run_fleet(
                ["kmeans"], store, defaults={"strategies": {"greedy"}}
            )


# -- serve integration --------------------------------------------------------


class TestServeFleet:
    def test_shard_fields_are_search_only_and_validated(self):
        from repro.serve.jobs import JobSpec

        with pytest.raises(ConfigError, match="shards"):
            JobSpec.from_dict(
                {"kind": "estimate", "kernel": "kmeans", "shards": 2}
            )
        with pytest.raises(ConfigError, match="shards"):
            JobSpec.from_dict(
                {"kind": "search", "kernel": "kmeans", "shards": 0}
            )
        with pytest.raises(ConfigError, match="fleet_workers"):
            JobSpec.from_dict(
                {"kind": "search", "kernel": "kmeans", "fleet_workers": -1}
            )
        spec = JobSpec.from_dict(
            {"kind": "search", "kernel": "kmeans", "shards": 2}
        )
        assert spec.shards == 2

    def test_budget_cap_covers_all_shards(self, tmp_path):
        from repro.serve.jobs import JobRegistry, JobSpec

        sess = Session(store=tmp_path / "runs")
        reg = JobRegistry(sess, workers=1, max_budget=8)
        try:
            with pytest.raises(ConfigError, match="exceeds the server cap"):
                reg.submit(
                    JobSpec.from_dict(
                        {
                            "kind": "search",
                            "kernel": "kmeans",
                            "budget": 3,
                            "shards": 4,
                        }
                    )
                )
            # the same per-shard budget fits unsharded
            job, created = reg.submit(
                JobSpec.from_dict(
                    {"kind": "search", "kernel": "kmeans", "budget": 3}
                )
            )
            assert created
        finally:
            reg.close()

    def test_sharded_search_requires_store(self):
        from repro.serve.jobs import JobRegistry, JobSpec

        reg = JobRegistry(Session(), workers=1)
        try:
            with pytest.raises(ConfigError, match="run store"):
                reg.submit(
                    JobSpec.from_dict(
                        {"kind": "search", "kernel": "kmeans", "shards": 2}
                    )
                )
        finally:
            reg.close()

    def test_sharded_search_job_end_to_end(self, tmp_path):
        from repro.serve.jobs import JobRegistry, JobSpec
        from repro.serve.metrics import ServiceMetrics

        sess = Session(store=tmp_path / "runs")
        reg = JobRegistry(sess, workers=1)
        metrics = ServiceMetrics(reg)
        try:
            job, _ = reg.submit(
                JobSpec.from_dict(
                    {
                        "kind": "search",
                        "kernel": "kmeans",
                        "budget": 3,
                        "strategies": ["greedy"],
                        "shards": 2,
                        "fleet_workers": 2,
                    }
                )
            )
            deadline = time.time() + 240
            while time.time() < deadline:
                done = reg.get(job.id)
                if done.state in ("completed", "failed"):
                    break
                time.sleep(0.1)
            assert done.state == "completed", done.error
            assert done.result["shards"] == 2
            assert len(done.result["entries"]) == 2
            assert all(e["completed"] for e in done.result["entries"])
            assert done.result["front"]
            snapshot = metrics.snapshot()
            assert snapshot["dist"]["repro_dist_fleet_runs_total"] >= 1
            assert (
                snapshot["dist"]["repro_dist_workers_spawned_total"] >= 2
            )
        finally:
            reg.close()


# -- CLI ----------------------------------------------------------------------


class TestDistCLI:
    def test_runs_merge_subcommand(self, tmp_path):
        a = _store_with_run(tmp_path / "a", seed=0)
        b = _store_with_run(tmp_path / "b", seed=1)
        dest = tmp_path / "merged"
        code = cli(
            ["runs", "--store", str(dest), "--merge", str(a.root),
             str(b.root)]
        )
        assert code == 0
        assert len(RunStore(dest).list_runs()) == 2

    def test_runs_merge_missing_source_exits_2(self, tmp_path):
        code = cli(
            ["runs", "--store", str(tmp_path / "dest"), "--merge",
             str(tmp_path / "nope")]
        )
        assert code == 2

    def test_dist_run_with_plan_file(self, tmp_path):
        plan = {
            "defaults": {"budget": 3, "strategies": ["greedy"]},
            "entries": [
                {"scenario": "kmeans", "scenario_args": {"size": 8}}
            ],
        }
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan))
        store = tmp_path / "runs"
        code = cli(
            ["dist", "run", "--plan", str(plan_path), "--store",
             str(store), "--workers", "2", "--shards", "2", "--ttl", "5"]
        )
        assert code == 0
        manifests = RunStore(store).list_runs()
        assert len(manifests) == 2
        assert all(m["completed"] for m in manifests)

    def test_dist_run_requires_a_plan_source(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            cli(["dist", "run", "--store", str(tmp_path / "runs")])
        assert exc.value.code == 2
        assert "--plan FILE or --all" in capsys.readouterr().err

    def test_bare_dist_prints_help(self, capsys):
        assert cli(["dist"]) == 2
