"""Error-estimation tests: models, the EE module, report plumbing,
and the bound-quality property (estimates track/bound actual demotion
errors)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.frontend import kernel
from repro.fp.precision import round_f32
from repro.tuning import PrecisionConfig, apply_precision
from repro.codegen.compile import compile_primal

xs = st.floats(min_value=0.1, max_value=10.0)


@kernel
def ee_listing1(x: "f32", y: "f32") -> float:
    z: "f32" = x + y
    return z


@kernel
def ee_chain(x: float) -> float:
    a = x * 1.000001
    c = a * a + 0.5
    d = sin(c) * c
    return d


@kernel
def ee_accum(n: int, x: float) -> float:
    s = 0.0
    for i in range(n):
        s = s + x / (i + 1.0)
    return s


@kernel
def ee_approx_target(x: float) -> float:
    login = x + 1.0
    y = log(login)
    return y * 2.0


class TestListing1:
    """The paper's minimal demonstrator (Listing 1)."""

    def test_estimate_error_runs(self):
        df = repro.estimate_error(ee_listing1)
        rep = df.execute(1.95e-5, 1.37e-7)
        assert rep.value == float(
            np.float32(np.float32(1.95e-5) + np.float32(1.37e-7))
        )
        assert rep.total_error > 0
        # gradients are exposed like Clad's dx/dy outputs
        assert rep.grad("x") == 1.0
        assert rep.grad("y") == 1.0

    def test_taylor_total_is_sum_of_deltas_plus_inputs(self):
        df = repro.estimate_error(ee_chain)
        rep = df.execute(1.7)
        assignment_sum = sum(rep.per_variable.values())
        assert rep.total_error == pytest.approx(assignment_sum, rel=1e-12)


class TestTaylorModel:
    @given(xs)
    @settings(max_examples=30, deadline=None)
    def test_scales_with_machine_eps(self, x):
        f64_est = repro.estimate_error(
            ee_chain, model=repro.TaylorModel()
        ).execute(x)
        f32_est = repro.estimate_error(
            ee_chain, model=repro.TaylorModel(precision=repro.DType.F32)
        ).execute(x)
        # same structure at eps_f32/eps_f64 ratio = 2^29
        assert f32_est.total_error == pytest.approx(
            f64_est.total_error * 2.0 ** 29, rel=1e-6
        )

    def test_zero_for_zero_values(self):
        rep = repro.estimate_error(ee_accum).execute(5, 0.0)
        assert rep.total_error == 0.0


class TestAdaptModel:
    @given(xs)
    @settings(max_examples=25, deadline=None)
    def test_estimate_bounds_actual_demotion(self, x):
        """The Eq. 2 estimate must upper-bound (to first order) the
        error of actually demoting everything to f32."""
        est = repro.estimate_error(
            ee_chain, model=repro.AdaptModel()
        ).execute(x)
        mixed = apply_precision(
            ee_chain.ir,
            PrecisionConfig.demote(["a", "c", "d", "x"]),
        )
        actual = abs(
            ee_chain(x) - compile_primal(mixed)(x)
        )
        # a first-order model: the compounded re-rounding of the real
        # f32 program can exceed the per-assignment sum by small
        # factors, so this is an order-of-magnitude bound, exactly the
        # paper's "loose upper bounds" framing
        assert actual <= 10.0 * est.total_error + 1e-12

    def test_zero_for_f32_representable(self):
        # 0.5 and 0.25 are exact in binary32 -> all deltas are zero
        rep = repro.estimate_error(
            ee_accum, model=repro.AdaptModel()
        ).execute(2, 0.5)
        assert rep.total_error == 0.0

    def test_per_variable_registers(self):
        rep = repro.estimate_error(
            ee_chain, model=repro.AdaptModel()
        ).execute(math.pi)
        assert set(rep.per_variable) >= {"a", "c", "d", "x"}
        assert rep.per_variable["x"] == pytest.approx(
            abs(rep.grad("x")) * abs(math.pi - round_f32(math.pi)),
            rel=1e-12,
        )


class TestApproxModel:
    def test_tracks_actual_substitution_error(self):
        """Algorithm 2 weights Δ by the adjoint of the function's
        *input* (paper-faithful), so the estimate differs from the
        actual error by a factor of f'(x) = 1/login here; near
        login ≈ 1 the two coincide."""
        model = repro.ApproxModel({"login": "log"})
        est = repro.estimate_error(ee_approx_target, model=model)
        exact = compile_primal(ee_approx_target.ir)
        approx = compile_primal(ee_approx_target.ir, approx={"log"})
        # near x=0 (login≈1): estimate ≈ actual
        for x in (0.01, 0.05):
            rep = est.execute(x)
            actual = abs(exact(x) - approx(x))
            assert rep.total_error == pytest.approx(actual, rel=0.12)
        # further out the known chain factor 1/login applies
        for x in (0.5, 4.2, 20.0):
            rep = est.execute(x)
            actual = abs(exact(x) - approx(x))
            assert rep.total_error * (x + 1.0) == pytest.approx(
                actual, rel=0.15, abs=1e-9
            )

    def test_unmapped_variables_skipped(self):
        model = repro.ApproxModel({"nonexistent": "exp"})
        rep = repro.estimate_error(ee_approx_target, model=model).execute(2.0)
        assert rep.total_error == 0.0

    def test_rejects_unsupported_intrinsic(self):
        with pytest.raises(ValueError, match="sin"):
            repro.ApproxModel({"v": "sin"})

    def test_inline_suffix_matching(self):
        model = repro.ApproxModel({"login": "log"})
        assert model._lookup("login_in1") == "log"
        assert model._lookup("login_in1_in3") == "log"
        assert model._lookup("loginx") is None


class TestExternalModel:
    def test_user_function_receives_names(self):
        seen = []

        def user_fn(dx, x, name):
            seen.append(name)
            return abs(dx * x) * 1e-9

        model = repro.ExternalModel(user_fn)
        rep = repro.estimate_error(ee_chain, model=model).execute(2.0)
        assert rep.total_error > 0
        assert "a" in seen and "c" in seen and "d" in seen

    def test_adapt_model_reimplementable_externally(self):
        """Listing 3: the ADAPT model expressed as a user callback must
        agree with the built-in AdaptModel."""

        def get_error_val(dx, x, name):
            return abs(dx * (x - round_f32(x)))

        ext = repro.estimate_error(
            ee_chain, model=repro.ExternalModel(get_error_val)
        ).execute(math.e)
        builtin = repro.estimate_error(
            ee_chain, model=repro.AdaptModel()
        ).execute(math.e)
        assert ext.total_error == pytest.approx(
            builtin.total_error, rel=1e-12
        )


class TestSensitivityTracking:
    def test_traces_collected_in_backward_order(self):
        est = repro.estimate_error(ee_accum, track=["s"])
        rep = est.execute(4, 1.0)
        # one trace sample per assignment to s: init + 4 loop iterations
        assert len(rep.traces["s"]) == 5
        # backward order: the *first* sample is the last assignment
        fwd = list(reversed(rep.traces["s"]))
        # s's sensitivity |s*ds| with ds=1 grows with the partial sums
        assert fwd[-1] >= fwd[1]

    def test_untracked_vars_have_no_traces(self):
        est = repro.estimate_error(ee_accum)
        rep = est.execute(3, 1.0)
        assert rep.traces == {}


class TestReportAPI:
    def test_dominant_variables_sorted(self):
        rep = repro.estimate_error(ee_chain).execute(2.5)
        dom = rep.dominant_variables(2)
        vals = [rep.per_variable[v] for v in dom]
        assert vals == sorted(vals, reverse=True)

    def test_str_contains_total(self):
        rep = repro.estimate_error(ee_chain).execute(2.5)
        assert "total_error" in str(rep)
