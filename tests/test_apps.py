"""Application correctness tests: each benchmark app must match an
independent reference (closed forms, numpy linear algebra, plain-Python
reimplementations)."""

import math

import numpy as np
import pytest

import repro
from repro.apps import arclength, blackscholes, hpccg, kmeans, simpsons
from repro.codegen.compile import compile_primal


class TestArclength:
    def test_converges_to_reference(self):
        ref = arclength.reference_value(20_000)
        v = arclength.arclength(*arclength.make_workload(20_000))
        assert v == pytest.approx(ref, rel=1e-12)

    def test_monotone_refinement(self):
        coarse = arclength.arclength(*arclength.make_workload(100))
        fine = arclength.arclength(*arclength.make_workload(10_000))
        # finer sampling cannot shorten a polyline approximation much
        assert fine >= coarse - 1e-9

    def test_fun_is_multiharmonic(self):
        x = 0.77
        expected = x + sum(
            math.sin(2.0 ** k * x) / 2.0 ** k for k in range(1, 7)
        )
        assert arclength.arclength_fun(x) == pytest.approx(expected)

    def test_gradient_wrt_h_nonzero(self):
        g = repro.gradient(arclength.arclength).execute(
            *arclength.make_workload(500)
        )
        assert abs(g.grad("h")) > 1.0


class TestSimpsons:
    def test_integral_of_x_sin_x(self):
        v = simpsons.simpson(*simpsons.make_workload(2_000))
        assert v == pytest.approx(simpsons.EXACT_VALUE, abs=1e-10)

    def test_fourth_order_convergence(self):
        def err(n):
            return abs(
                simpsons.simpson(*simpsons.make_workload(n))
                - simpsons.EXACT_VALUE
            )

        # doubling n should reduce the error by ~16x
        assert err(64) / err(128) == pytest.approx(16.0, rel=0.3)

    def test_weights_pattern(self):
        # n=1: single Simpson's rule: (h/3)(f(a) + 4 f(m) + f(b))
        lo, hi = 0.0, 1.0
        v = simpsons.simpson(1, lo, hi)
        h = 0.5
        f = lambda x: x * math.sin(x)  # noqa: E731
        expected = (f(lo) + 4 * f(0.5) + f(hi)) * h / 3.0
        assert v == pytest.approx(expected, rel=1e-14)


class TestKmeans:
    def test_cost_matches_numpy(self):
        args = kmeans.make_workload(200)
        npoints, k, nf, attrs, cl = args
        pts = attrs.reshape(npoints, nf)
        cents = cl.reshape(k, nf)
        d = np.linalg.norm(pts[:, None, :] - cents[None, :, :], axis=2)
        expected = d.min(axis=1).sum()
        assert kmeans.kmeans_cost(*args) == pytest.approx(
            expected, rel=1e-12
        )

    def test_attributes_exactly_representable(self):
        args = kmeans.make_workload(500)
        attrs = args[3]
        assert np.all(attrs == attrs.astype(np.float32).astype(np.float64))

    def test_clusters_not_representable(self):
        args = kmeans.make_workload(500)
        cl = args[4]
        assert np.any(cl != cl.astype(np.float32).astype(np.float64))

    def test_euclid_dist_kernel(self):
        args = kmeans.make_workload(50)
        _, k, nf, attrs, cl = args
        d = kmeans.euclid_dist(nf, 3, 1, attrs, cl)
        pts = attrs.reshape(50, nf)
        cents = cl.reshape(k, nf)
        assert d == pytest.approx(
            np.linalg.norm(pts[3] - cents[1]), rel=1e-12
        )

    def test_lloyd_reference_converges(self):
        args = kmeans.make_workload(300)
        cents = kmeans.lloyd_iterations(args[3], kmeans.NCLUSTERS)
        assert cents.shape == (kmeans.NCLUSTERS * kmeans.NFEATURES,)
        assert np.all(np.isfinite(cents))


class TestHPCCG:
    def test_matrix_structure(self):
        vals, inds, nnz, b = hpccg.generate_matrix(3, 3, 3)
        assert nnz.max() == 27  # interior node of a 3x3x3 cube
        assert nnz.min() == 8  # corner
        # diagonal dominance: 27 > 26 * 1
        assert vals.max() == 27.0 and vals.min() == -1.0

    def test_rhs_makes_ones_exact(self):
        x = hpccg.reference_solve(4)
        np.testing.assert_allclose(x, 1.0, atol=1e-10)

    def test_cg_converges_to_ones(self):
        args = hpccg.make_workload(6, max_iter=100, tol=1e-12)
        res = hpccg.hpccg_cg(*args)
        x = args[7]
        assert res < 1e-10
        np.testing.assert_allclose(x, 1.0, atol=1e-9)

    def test_guarded_tolerance_exit(self):
        # generous tolerance: exits early, still reduces residual
        args = hpccg.make_workload(6, max_iter=500, tol=1e-3)
        res = hpccg.hpccg_cg(*args)
        assert res <= 1e-3

    def test_split_kernel_matches_full_when_split_covers_all(self):
        full = hpccg.hpccg_cg(*hpccg.make_workload(5, max_iter=12))
        split = hpccg.hpccg_cg_split(
            *hpccg.make_split_workload(5, split=12, max_iter=12)
        )
        assert split == pytest.approx(full, rel=1e-12)

    def test_split_kernel_tail_runs_in_f32(self):
        full = hpccg.hpccg_cg(*hpccg.make_workload(5, max_iter=20))
        split = hpccg.hpccg_cg_split(
            *hpccg.make_split_workload(5, split=5, max_iter=20)
        )
        # f32 tail stalls above the f64 residual but stays small
        assert split != full
        assert split < 1e-2


class TestBlackScholes:
    def test_cndf_against_erf(self):
        for x in (-2.5, -0.5, 0.0, 0.7, 3.0):
            exact = 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))
            assert blackscholes.cndf(x) == pytest.approx(exact, abs=8e-8)

    def test_call_price_matches_closed_form(self):
        wl = blackscholes.make_workload(300)
        checked = 0
        for i in range(300):
            pa = blackscholes.point_args(wl, i)
            if pa[5] != 0:
                continue
            cf = blackscholes.closed_form_call(*pa[:5])
            assert blackscholes.bs_price(*pa) == pytest.approx(
                cf, rel=1e-5, abs=1e-5
            )
            checked += 1
        assert checked > 50

    def test_put_call_parity(self):
        wl = blackscholes.make_workload(40)
        for i in range(10):
            S, K, r, v, t, _ = blackscholes.point_args(wl, i)
            call = blackscholes.bs_price(S, K, r, v, t, 0)
            put = blackscholes.bs_price(S, K, r, v, t, 1)
            assert call - put == pytest.approx(
                S - K * math.exp(-r * t), rel=1e-6, abs=1e-6
            )

    def test_total_is_sum_of_points(self):
        wl = blackscholes.make_workload(25)
        total = blackscholes.bs_total(*wl)
        parts = sum(
            blackscholes.bs_price(*blackscholes.point_args(wl, i))
            for i in range(25)
        )
        assert total == pytest.approx(parts, rel=1e-12)

    def test_approx_config_changes_prices_slightly(self):
        wl = blackscholes.make_workload(50)
        exact = compile_primal(blackscholes.bs_total.ir)
        approx = compile_primal(
            blackscholes.bs_total.ir,
            approx=blackscholes.CONFIG_WITH_EXP,
        )
        ve, va = exact(*wl), approx(*wl)
        assert ve != va
        assert abs(ve - va) / abs(ve) < 0.01
