"""Property-based tests on the core invariants, via hypothesis.

Random straight-line programs are generated as IR, then checked for:

* interpreter/compiled-code agreement (the semantics contract),
* gradient linearity (grad of f+g = grad f + grad g on shared inputs),
* reverse-mode/forward-mode agreement on random expression trees,
* error estimates scaling linearly under the Taylor model's epsilon,
* tape discipline: adjoint execution leaves pushed stacks empty.
"""

from __future__ import annotations

import math
from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.codegen.compile import compile_primal, compile_raw
from repro.core.reverse import ReverseModeTransformer
from repro.frontend import kernel
from repro.interp.interpreter import run_function
from repro.ir import builder as b
from repro.ir import nodes as N
from repro.ir.typecheck import infer_types
from repro.ir.types import DType, ScalarType
from repro.ir.validate import validate_function
from repro.opt import optimize

# -- random straight-line program generator --------------------------------

_SAFE_UNARY = ["sin", "cos", "tanh", "erf", "atan"]


@st.composite
def straight_line_program(draw) -> N.Function:
    """A random function of (x, y) built from safe total operations."""
    n_stmts = draw(st.integers(min_value=1, max_value=6))
    names = ["x", "y"]
    body: List[N.Stmt] = []
    for k in range(n_stmts):
        op = draw(st.sampled_from(["+", "-", "*", "call", "mix"]))
        a = draw(st.sampled_from(names))
        c = draw(st.sampled_from(names))
        if op == "call":
            fn = draw(st.sampled_from(_SAFE_UNARY))
            rhs: N.Expr = b.call(fn, [b.name(a, DType.F64)])
        elif op == "mix":
            const = draw(
                st.floats(min_value=-2.0, max_value=2.0).map(
                    lambda v: round(v, 3)
                )
            )
            rhs = b.add(
                b.mul(b.name(a, DType.F64), b.const(const)),
                b.name(c, DType.F64),
            )
        else:
            rhs = b.binop(
                op, b.name(a, DType.F64), b.name(c, DType.F64)
            )
        new = f"v{k}"
        body.append(N.VarDecl(new, DType.F64, rhs))
        names.append(new)
    # bounded output: tanh keeps values in [-1, 1]
    body.append(
        N.Return(b.call("tanh", [b.name(names[-1], DType.F64)]))
    )
    fn = N.Function(
        name="prop_fn",
        params=[
            N.Param("x", ScalarType(DType.F64)),
            N.Param("y", ScalarType(DType.F64)),
        ],
        body=body,
        ret_dtype=DType.F64,
    )
    infer_types(fn)
    validate_function(fn)
    return fn


vals = st.floats(min_value=-3.0, max_value=3.0)


class TestProgramProperties:
    @given(straight_line_program(), vals, vals)
    @settings(max_examples=60, deadline=None)
    def test_interpreter_matches_compiled(self, fn, x, y):
        assert run_function(fn, [x, y]) == compile_primal(fn)(x, y)

    @given(straight_line_program(), vals, vals)
    @settings(max_examples=40, deadline=None)
    def test_optimizer_preserves_semantics(self, fn, x, y):
        opt = optimize(fn, level=2)
        assert compile_primal(fn)(x, y) == compile_primal(opt)(x, y)

    @given(straight_line_program(), vals, vals)
    @settings(max_examples=40, deadline=None)
    def test_reverse_matches_forward(self, fn, x, y):
        rev = repro.gradient(fn).execute(x, y)
        _, fx = repro.forward_derivative(fn, "x").execute(x, y)
        _, fy = repro.forward_derivative(fn, "y").execute(x, y)
        assert rev.grad("x") == pytest.approx(fx, rel=1e-10, abs=1e-12)
        assert rev.grad("y") == pytest.approx(fy, rel=1e-10, abs=1e-12)

    @given(straight_line_program(), vals, vals)
    @settings(max_examples=40, deadline=None)
    def test_adjoint_value_is_primal(self, fn, x, y):
        rev = repro.gradient(fn).execute(x, y)
        assert rev.value == compile_primal(fn)(x, y)

    @given(straight_line_program(), vals, vals)
    @settings(max_examples=30, deadline=None)
    def test_error_estimate_nonnegative_and_finite(self, fn, x, y):
        rep = repro.estimate_error(fn).execute(x, y)
        assert rep.total_error >= 0.0
        assert math.isfinite(rep.total_error)
        for v in rep.per_variable.values():
            assert v >= 0.0

    @given(straight_line_program(), vals, vals)
    @settings(max_examples=20, deadline=None)
    def test_taylor_error_scales_with_eps(self, fn, x, y):
        e64 = repro.estimate_error(
            fn, model=repro.TaylorModel(precision=repro.DType.F64)
        ).execute(x, y)
        e16 = repro.estimate_error(
            fn, model=repro.TaylorModel(precision=repro.DType.F16)
        ).execute(x, y)
        scale = 2.0 ** (52 - 10)
        assert e16.total_error == pytest.approx(
            e64.total_error * scale, rel=1e-6, abs=1e-280
        )


class TestTapeDiscipline:
    @given(straight_line_program(), vals, vals)
    @settings(max_examples=30, deadline=None)
    def test_stacks_drain_exactly(self, fn, x, y):
        """Every push must be popped: execute the raw adjoint and
        inspect the tape stacks via an instrumented runner."""
        adj = ReverseModeTransformer(fn).transform()
        compiled = compile_raw(adj)
        src = compiled.source
        # static symmetry check: appends == pops per stack variable
        for stack in ("_stk_tape", "_stk_ctrl", "_stk_idx"):
            pushes = src.count(f"{stack}.append(")
            pops = src.count(f"{stack}.pop()")
            assert pushes == pops
        compiled(x, y)  # must not raise (IndexError = pop of empty)


@kernel
def prop_loop(x: float, n: int) -> float:
    s = 0.0
    for i in range(n):
        s = s + tanh(x + i * 0.1)
    return s


class TestLoopProperties:
    @given(vals, st.integers(min_value=0, max_value=25))
    @settings(max_examples=40, deadline=None)
    def test_gradient_additivity_over_iterations(self, x, n):
        """grad of a sum of per-iteration terms equals the sum of
        per-term derivatives (linearity of differentiation)."""
        g = repro.gradient(prop_loop).execute(x, n)
        expected = sum(
            1.0 - math.tanh(x + i * 0.1) ** 2 for i in range(n)
        )
        assert g.grad("x") == pytest.approx(expected, rel=1e-9, abs=1e-12)

    @given(vals, st.integers(min_value=0, max_value=15))
    @settings(max_examples=30, deadline=None)
    def test_minimal_and_full_pushes_identical_results(self, x, n):
        a = repro.gradient(prop_loop, minimal_pushes=True).execute(x, n)
        c = repro.gradient(prop_loop, minimal_pushes=False).execute(x, n)
        assert a.value == c.value
        assert a.grad("x") == c.grad("x")
