"""Observability layer tests: span tracer, metrics registry, trace
profiling, and the guarantees the rest of the repo leans on — valid
JSONL under concurrent writers, zero-allocation disabled mode, exact
lock-guarded counters, and bit-identical search results with tracing
on vs off."""

import json
import threading
import tracemalloc

import numpy as np
import pytest

from repro.frontend import kernel
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    format_summary,
    load_trace,
    summarize_records,
)
from repro.search import search


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with the process-wide tracer off."""
    trace.disable()
    yield
    trace.disable()


# -- tracer -------------------------------------------------------------------


class TestTracer:
    def test_nested_spans_link_parents(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.enable(path)
        with trace.span("outer", run="r1") as outer:
            with trace.span("inner") as inner:
                with trace.span("leaf", k=3) as leaf:
                    pass
        trace.disable()
        records = load_trace(path)
        by_name = {r["name"]: r for r in records}
        assert set(by_name) == {"outer", "inner", "leaf"}
        assert by_name["leaf"]["parent"] == inner.span_id
        assert by_name["inner"]["parent"] == outer.span_id
        assert by_name["outer"]["parent"] is None
        assert by_name["outer"]["attrs"] == {"run": "r1"}
        assert by_name["leaf"]["attrs"] == {"k": 3}
        # children close before parents, so durations nest
        assert by_name["outer"]["dur_s"] >= by_name["inner"]["dur_s"]
        assert all(r["status"] == "ok" for r in records)
        assert leaf.span_id != inner.span_id != outer.span_id

    def test_exception_exit_sets_error_status_and_propagates(
        self, tmp_path
    ):
        path = tmp_path / "t.jsonl"
        trace.enable(path)
        with pytest.raises(ValueError, match="boom"):
            with trace.span("failing"):
                raise ValueError("boom")
        # the failed span still emitted, and the stack unwound: a
        # sibling opened afterwards must not parent onto the dead span
        with trace.span("after"):
            pass
        trace.disable()
        by_name = {r["name"]: r for r in load_trace(path)}
        assert by_name["failing"]["status"] == "error:ValueError"
        assert by_name["after"]["parent"] is None
        assert by_name["after"]["status"] == "ok"

    def test_concurrent_writers_emit_valid_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.enable(path)
        n_threads, n_spans = 8, 40
        start = threading.Barrier(n_threads)

        def work(tid):
            start.wait()
            for i in range(n_spans):
                with trace.span("work", tid=tid, i=i):
                    with trace.span("sub"):
                        pass

        threads = [
            threading.Thread(target=work, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        trace.disable()
        # every line parses (no interleaved partial writes), nothing
        # was lost, and span ids never collide
        records = load_trace(path)
        assert len(records) == n_threads * n_spans * 2
        assert len({r["span"] for r in records}) == len(records)
        # parents resolve within the same thread only
        by_id = {r["span"]: r for r in records}
        for r in records:
            if r["parent"] is not None:
                assert by_id[r["parent"]]["thread"] == r["thread"]

    def test_disabled_mode_is_zero_allocation(self):
        assert not trace.is_enabled()
        # identity: the no-op singleton, not a fresh object per call
        assert trace.span("x") is trace.NULL_SPAN
        assert trace.span("y").set(a=1) is trace.NULL_SPAN
        trace_file = trace.__file__
        tracemalloc.start()
        for _ in range(200):
            with trace.span("hot"):
                pass
        snap = tracemalloc.take_snapshot()
        tracemalloc.stop()
        mine = snap.filter_traces(
            [tracemalloc.Filter(True, trace_file)]
        ).statistics("filename")
        assert sum(s.size for s in mine) == 0

    def test_collect_gathers_records_in_memory(self):
        trace.enable(None)  # sinks only, no file
        with trace.collect() as records:
            with trace.span("a"):
                with trace.span("b"):
                    pass
        with trace.span("outside-collect"):
            pass
        trace.disable()
        assert [r["name"] for r in records] == ["b", "a"]

    def test_collect_is_safe_when_disabled(self):
        with trace.collect() as records:
            with trace.span("ignored"):
                pass
        assert records == []

    def test_enable_replaces_and_close_is_idempotent(self, tmp_path):
        first = trace.enable(tmp_path / "a.jsonl")
        second = trace.enable(tmp_path / "b.jsonl")
        assert trace.current() is second
        assert first is not second
        with trace.span("x"):
            pass
        trace.disable()
        trace.disable()
        assert load_trace(tmp_path / "b.jsonl")
        assert (tmp_path / "a.jsonl").read_text() == ""


# -- metrics registry ---------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_get_or_create(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", "x")
        assert reg.counter("repro_x_total") is c
        c.inc()
        c.inc(4)
        assert c.value == 5
        g = reg.gauge("repro_depth", "depth")
        g.set(7)
        g.inc(2)
        g.dec()
        assert g.value == 8

    def test_histogram_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", "latency")
        for v in range(1, 101):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 100
        assert snap["sum"] == pytest.approx(5050.0)
        assert snap["max"] == 100.0
        assert snap["p50"] == pytest.approx(50.0, abs=1.0)
        assert snap["p95"] == pytest.approx(95.0, abs=1.0)

    def test_type_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_thing", "t")
        with pytest.raises(ValueError, match="repro_thing"):
            reg.gauge("repro_thing")
        with pytest.raises(ValueError, match="repro_thing"):
            reg.histogram("repro_thing")

    def test_concurrent_increments_are_exact(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_hammer_total", "hammer")
        n_threads, n_incs = 16, 500

        def work():
            for _ in range(n_incs):
                c.inc()

        threads = [
            threading.Thread(target=work) for _ in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * n_incs

    def test_render_prom_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_a_total", "counts a").inc(3)
        reg.gauge("repro_b", "gauge b").set(2.5)
        h = reg.histogram("repro_c_seconds", "latency c")
        h.observe(0.25)
        text = reg.render_prom()
        lines = text.splitlines()
        assert "# HELP repro_a_total counts a" in lines
        assert "# TYPE repro_a_total counter" in lines
        assert "repro_a_total 3" in lines
        assert "# TYPE repro_b gauge" in lines
        assert "repro_b 2.5" in lines
        assert "# TYPE repro_c_seconds summary" in lines
        assert 'repro_c_seconds{quantile="0.5"} 0.25' in lines
        assert "repro_c_seconds_count 1" in lines
        assert "repro_c_seconds_sum 0.25" in lines
        # prometheus text format: every non-comment line is
        # "name{labels} value" with a float-parseable value
        for line in lines:
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name
            float(value)

    def test_reset_by_prefix(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_keep_total", "k")
        b = reg.counter("repro_drop_total", "d")
        a.inc(2)
        b.inc(3)
        reg.reset(prefix="repro_drop_")
        assert a.value == 2
        assert b.value == 0
        reg.reset()
        assert a.value == 0

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("repro_n_total", "n").inc()
        reg.gauge("repro_g", "g").set(4)
        reg.histogram("repro_h_seconds", "h").observe(1.0)
        snap = reg.snapshot()
        assert snap["counters"]["repro_n_total"] == 1
        assert snap["gauges"]["repro_g"] == 4
        assert snap["histograms"]["repro_h_seconds"]["count"] == 1


# -- serve counters (satellite: thread-safety audit) --------------------------


class TestServeCounterThreadSafety:
    def test_service_metrics_observe_response_is_exact(self):
        from repro.serve.metrics import ServiceMetrics

        metrics = ServiceMetrics(registry=None)
        n_threads, n_obs = 12, 300
        statuses = (200, 201, 404, 500)

        def work(tid):
            for i in range(n_obs):
                metrics.observe_response(
                    statuses[(tid + i) % len(statuses)],
                    duration_s=0.001,
                )

        threads = [
            threading.Thread(target=work, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * n_obs
        assert metrics._http["requests"] == total
        assert metrics._http["responses_2xx"] == total // 2
        assert metrics._http["responses_4xx"] == total // 4
        assert metrics._http["responses_5xx"] == total // 4

    def test_job_registry_count_is_exact(self):
        from repro.serve.jobs import JobRegistry

        reg = JobRegistry(object(), workers=1, max_queue=4)
        try:
            n_threads, n_incs = 12, 250

            def work():
                for _ in range(n_incs):
                    reg._count("submitted")

            threads = [
                threading.Thread(target=work)
                for _ in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert reg.counters["submitted"] == n_threads * n_incs
        finally:
            reg.close()


# -- profiling ----------------------------------------------------------------


def _rec(span, name, dur, parent=None, t_start=0.0, status="ok"):
    return {
        "name": name,
        "span": span,
        "parent": parent,
        "dur_s": dur,
        "t_start": t_start,
        "status": status,
    }


class TestProfile:
    def test_self_times_partition_the_root(self):
        records = [
            _rec("s2", "compile", 0.3, parent="s1"),
            _rec("s3", "evaluate", 0.5, parent="s1"),
            _rec("s4", "checkpoint", 0.1, parent="s3"),
            _rec("s1", "run", 1.0),
        ]
        out = summarize_records(records)
        assert out["spans"] == 4
        assert out["errors"] == 0
        assert out["total_s"] == pytest.approx(1.0)
        phases = out["phases"]
        assert phases["run"]["self_s"] == pytest.approx(0.2)
        assert phases["evaluate"]["self_s"] == pytest.approx(0.4)
        assert phases["compile"]["self_s"] == pytest.approx(0.3)
        assert phases["checkpoint"]["self_s"] == pytest.approx(0.1)
        self_sum = sum(p["self_s"] for p in phases.values())
        assert self_sum == pytest.approx(out["total_s"])

    def test_root_filter_selects_one_subtree(self):
        records = [
            _rec("a1", "run", 1.0),
            _rec("a2", "evaluate", 0.6, parent="a1"),
            _rec("b1", "other.run", 2.0),
            _rec("b2", "other.step", 1.5, parent="b1"),
        ]
        out = summarize_records(records, root="a1")
        assert out["spans"] == 2
        assert out["total_s"] == pytest.approx(1.0)
        assert "other.run" not in out["phases"]

    def test_error_spans_counted(self):
        out = summarize_records(
            [_rec("x", "boom", 0.1, status="error:ValueError")]
        )
        assert out["errors"] == 1

    def test_format_summary_mentions_phases(self):
        out = summarize_records(
            [
                _rec("s1", "run", 1.0),
                _rec("s2", "evaluate", 0.75, parent="s1"),
            ]
        )
        text = format_summary(out)
        assert "evaluate" in text
        assert "self-time sum" in text
        assert "1.0000" in text

    def test_load_trace_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"name": "a", "span": "s"}\nnot-json\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            load_trace(bad)  # line 1 lacks dur_s/t_start
        ok_line = json.dumps(_rec("s", "a", 0.1))
        bad.write_text(ok_line + "\nnot-json\n")
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trace(bad)


# -- search integration: tracing must not perturb results ---------------------


@kernel
def obs_kernel(n: int, h: float, data: "f64[]") -> float:
    s = 0.0
    t = 0.0
    for i in range(n):
        t = data[i] * h + t * 0.5
        s = s + sqrt(t * t + h)
    return s


def _obs_points(n=32, seeds=(5, 6)):
    out = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        out.append((n, 1.0 / 3.0, rng.uniform(0.1, 1.0, n)))
    return out


def _run_obs_search():
    return search(
        obs_kernel,
        _obs_points(),
        threshold=1e-6,
        candidates=("t", "s", "h"),
        strategies=("greedy", "delta"),
        budget=12,
        seed=3,
    )


def _scrub(obj):
    """Drop per-run identity (session ids) from a result payload."""
    if isinstance(obj, dict):
        return {
            k: _scrub(v)
            for k, v in obj.items()
            if k != "session_id"
        }
    if isinstance(obj, list):
        return [_scrub(v) for v in obj]
    return obj


def _comparable(result):
    out = result.to_dict()
    # stats carries process-wide cache occupancy and profile carries
    # timings — everything else must match bit for bit
    out.pop("stats", None)
    out.pop("profile", None)
    return json.dumps(_scrub(out), sort_keys=True)


class TestSearchTracingBitIdentity:
    def test_traced_search_matches_untraced(self, tmp_path):
        # traced run first (cold estimator memo → estimate.build spans
        # appear in the trace); warmth cannot change results, which is
        # exactly what the comparison asserts
        trace.enable(tmp_path / "search.jsonl")
        traced = _run_obs_search()
        trace.disable()

        untraced = _run_obs_search()
        assert untraced.profile is None

        assert _comparable(traced) == _comparable(untraced)

        # the traced run carries a profile whose phases cover the run
        prof = traced.profile
        assert prof is not None
        assert prof["spans"] > 0
        assert "search.batch" in prof["phases"]
        self_sum = sum(p["self_s"] for p in prof["phases"].values())
        assert self_sum == pytest.approx(prof["total_s"], rel=1e-6)

        # and the trace file itself holds the same span tree
        records = load_trace(tmp_path / "search.jsonl")
        names = {r["name"] for r in records}
        assert {"search.run", "search.batch", "estimate.build"} <= names
