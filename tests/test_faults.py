"""Robustness layer: fault injection, retries, atomic I/O, recovery.

Covers the PR-8 contracts end to end:

* fault plans are declarative, validated, JSON-round-trippable, and
  deterministic (same plan + same call sequence = same faults);
* the disabled fast path allocates nothing (tracemalloc-asserted);
* :mod:`repro.util.atomio` detects torn/corrupt payloads via the
  checksum frame, passes legacy unframed files through, and
  quarantines (never deletes) corrupt files;
* :mod:`repro.util.retry` retries only transient errnos, bounded by
  attempts *and* deadline, with uniform telemetry;
* run store / sweep cache / job journal degrade per contract under
  injected faults (recompute, quarantine-and-miss, skip-and-recover);
* the parallel evaluator survives killed workers via hang detection
  and bounded respawn;
* the serve layer reports ``degraded`` health and adaptive
  ``Retry-After`` hints, and the watchdog fails/requeues wedged jobs.
"""

import errno
import json
import time
import tracemalloc

import pytest

from repro import faults
from repro.obs import metrics as obs_metrics
from repro.util import atomio
from repro.util.retry import (
    DEFAULT_IO_POLICY,
    RetryPolicy,
    is_transient,
    retry_call,
)
from repro.util.errors import ConfigError


@pytest.fixture(autouse=True)
def _faults_disabled():
    """Every test starts and ends with fault injection off."""
    faults.disable()
    yield
    faults.disable()


def _counter(name):
    return obs_metrics.REGISTRY.counter(name).value


# -- plans ---------------------------------------------------------------------


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ConfigError, match="kind"):
            faults.FaultSpec(site="store.write", kind="meteor", nth=(1,))
        with pytest.raises(ConfigError, match="never fire"):
            faults.FaultSpec(site="store.write", kind="oserror")
        with pytest.raises(ConfigError, match="1-based"):
            faults.FaultSpec(site="store.write", kind="oserror", nth=(0,))
        with pytest.raises(ConfigError, match="probability"):
            faults.FaultSpec(
                site="store.write", kind="oserror", probability=1.5
            )
        with pytest.raises(ConfigError, match="max_fires"):
            faults.FaultSpec(
                site="store.write", kind="oserror", nth=(1,), max_fires=0
            )

    def test_plan_roundtrip_inline_and_file(self, tmp_path):
        plan = faults.FaultPlan(
            seed=42,
            specs=(
                faults.FaultSpec(
                    site="store.write", kind="enospc", nth=(2, 5)
                ),
                faults.FaultSpec(
                    site="cache.read",
                    kind="oserror",
                    probability=0.25,
                    max_fires=3,
                ),
            ),
        )
        again = faults.FaultPlan.load(plan.to_json())
        assert again == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert faults.FaultPlan.load(path) == plan
        assert plan.sites() == ["cache.read", "store.write"]

    def test_plan_rejects_garbage(self, tmp_path):
        with pytest.raises(ConfigError, match="not valid JSON"):
            faults.FaultPlan.load("{broken")
        with pytest.raises(ConfigError, match="cannot read"):
            faults.FaultPlan.load(tmp_path / "missing.json")
        with pytest.raises(ConfigError, match="unknown keys"):
            faults.FaultPlan.from_dict({"seed": 1, "bogus": []})
        with pytest.raises(ConfigError, match="unknown keys"):
            faults.FaultSpec.from_dict(
                {"site": "store.write", "kind": "oserror", "when": 3}
            )
        with pytest.raises(ConfigError, match="missing required"):
            faults.FaultSpec.from_dict({"site": "store.write"})
        with pytest.raises(ConfigError, match="missing required"):
            faults.FaultPlan.load('{"faults": [{"kind": "oserror"}]}')

    def test_nth_triggers_are_exact(self):
        state = faults.enable(
            faults.FaultPlan(
                specs=(
                    faults.FaultSpec(
                        site="store.write", kind="oserror", nth=(2,)
                    ),
                )
            )
        )
        assert faults.check("store.write") is None
        with pytest.raises(faults.InjectedFaultError) as exc:
            faults.check("store.write")
        assert exc.value.errno == errno.EIO
        assert exc.value.site == "store.write"
        assert faults.check("store.write") is None
        assert state.stats()["injected"] == 1
        assert state.stats()["calls"] == {"store.write": 3}

    def test_probability_is_seed_deterministic(self):
        def firing_pattern():
            state = faults.enable(
                faults.FaultPlan(
                    seed=7,
                    specs=(
                        faults.FaultSpec(
                            site="cache.read",
                            kind="torn",
                            probability=0.3,
                        ),
                    ),
                )
            )
            out = []
            for _ in range(50):
                out.append(faults.check("cache.read") is not None)
            return out, state.stats()["injected"]

        first, n1 = firing_pattern()
        second, n2 = firing_pattern()
        assert first == second and n1 == n2 > 0

    def test_max_fires_caps_firing(self):
        faults.enable(
            faults.FaultPlan(
                specs=(
                    faults.FaultSpec(
                        site="journal.append",
                        kind="torn",
                        nth=(1, 2, 3),
                        max_fires=2,
                    ),
                )
            )
        )
        fired = sum(
            faults.check("journal.append") is not None for _ in range(5)
        )
        assert fired == 2

    def test_enable_from_env_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "{not json")
        with pytest.raises(ConfigError):
            faults.enable_from_env()
        monkeypatch.setenv(
            "REPRO_FAULTS",
            '{"faults": [{"site": "store.write", "kind": "oserror", '
            '"nth": [1]}]}',
        )
        assert faults.enable_from_env() is not None
        assert faults.is_enabled()

    def test_disabled_check_allocates_nothing(self):
        """The NULL_SPAN discipline: with no plan active, a site probe
        must be one global read — no allocation anywhere in the faults
        module (the zero-overhead claim of the tentpole)."""
        import repro.faults as mod

        faults.disable()
        for _ in range(10):
            faults.check("store.write")  # warm any lazy interning
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            for _ in range(500):
                faults.check("store.write")
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        stats = after.filter_traces(
            (tracemalloc.Filter(True, mod.__file__),)
        ).compare_to(
            before.filter_traces(
                (tracemalloc.Filter(True, mod.__file__),)
            ),
            "lineno",
        )
        grown = [s for s in stats if s.size_diff > 0]
        assert not grown, f"disabled faults.check allocated: {grown}"


# -- atomio --------------------------------------------------------------------


class TestAtomio:
    def test_frame_roundtrip(self):
        data = b"payload \x00\xff bytes"
        assert atomio.unframe(atomio.frame(data)) == data

    def test_unframed_legacy_passthrough(self):
        blob = b'{"legacy": true}'
        assert atomio.unframe(blob) == blob

    def test_truncation_detected(self):
        framed = atomio.frame(b"x" * 100)
        with pytest.raises(
            atomio.CorruptPayloadError, match="truncated"
        ):
            atomio.unframe(framed[: len(framed) // 2])

    def test_header_tear_detected(self):
        torn = atomio.MAGIC + b"nonsense"
        with pytest.raises(
            atomio.CorruptPayloadError, match="torn frame header"
        ):
            atomio.unframe(torn)

    def test_bit_rot_detected(self):
        framed = bytearray(atomio.frame(b"sensitive-bytes"))
        framed[-1] ^= 0x01
        with pytest.raises(
            atomio.CorruptPayloadError, match="checksum mismatch"
        ):
            atomio.unframe(bytes(framed))

    def test_atomic_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomio.atomic_write(path, b"abc", checksum=True, fsync=True)
        assert atomio.read_bytes(path, checked=True) == b"abc"
        # no temp files left behind
        assert list(tmp_path.glob("*.tmp")) == []

    def test_injected_torn_write_caught_on_read(self, tmp_path):
        faults.enable(
            faults.FaultPlan(
                specs=(
                    faults.FaultSpec(
                        site="store.write", kind="torn", nth=(1,)
                    ),
                )
            )
        )
        path = tmp_path / "torn.bin"
        # the torn write itself completes silently — that is the point
        atomio.atomic_write(
            path, b"y" * 64, checksum=True, site="store.write"
        )
        with pytest.raises(atomio.CorruptPayloadError):
            atomio.read_bytes(path, checked=True)

    def test_injected_transient_write_retried(self, tmp_path):
        faults.enable(
            faults.FaultPlan(
                specs=(
                    faults.FaultSpec(
                        site="store.write", kind="enospc", nth=(1, 2)
                    ),
                )
            )
        )
        retries_before = _counter("repro_retries_total")
        path = tmp_path / "retried.bin"
        atomio.atomic_write(
            path,
            b"ok",
            checksum=True,
            site="store.write",
            retry=DEFAULT_IO_POLICY,
        )
        assert atomio.read_bytes(path, checked=True) == b"ok"
        assert _counter("repro_retries_total") - retries_before == 2

    def test_quarantine_moves_not_deletes(self, tmp_path):
        before = _counter("repro_quarantined_total")
        a = tmp_path / "bad.pkl"
        a.write_bytes(b"junk-1")
        first = atomio.quarantine(a, "test")
        b = tmp_path / "bad.pkl"
        b.write_bytes(b"junk-2")
        second = atomio.quarantine(b, "test")
        assert not a.exists()
        assert first == tmp_path / atomio.QUARANTINE_DIR / "bad.pkl"
        assert second == tmp_path / atomio.QUARANTINE_DIR / "bad.pkl.1"
        assert first.read_bytes() == b"junk-1"
        assert second.read_bytes() == b"junk-2"
        assert _counter("repro_quarantined_total") - before == 2


# -- retry ---------------------------------------------------------------------


class TestRetry:
    def test_transient_classification(self):
        assert is_transient(OSError(errno.EIO, "io"))
        assert is_transient(OSError(errno.ENOSPC, "full"))
        assert is_transient(
            faults.InjectedFaultError(errno.ENOSPC, "store.write", "enospc")
        )
        assert not is_transient(OSError(errno.ENOENT, "missing"))
        assert not is_transient(ValueError("nope"))

    def test_retries_then_succeeds(self):
        sleeps = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError(errno.EAGAIN, "busy")
            return "done"

        before = _counter("repro_retries_total")
        out = retry_call(flaky, op="test", sleep=sleeps.append)
        assert out == "done" and calls["n"] == 3
        assert len(sleeps) == 2
        policy = DEFAULT_IO_POLICY
        assert all(0 < s <= policy.cap_s for s in sleeps)
        assert _counter("repro_retries_total") - before == 2

    def test_non_transient_raises_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise OSError(errno.EROFS, "read-only")

        with pytest.raises(OSError):
            retry_call(broken, sleep=lambda s: None)
        assert calls["n"] == 1

    def test_attempt_bound_and_exhausted_counter(self):
        calls = {"n": 0}

        def hopeless():
            calls["n"] += 1
            raise OSError(errno.EIO, "io")

        before = _counter("repro_retry_exhausted_total")
        policy = RetryPolicy(attempts=3, deadline_s=60.0)
        with pytest.raises(OSError):
            retry_call(hopeless, policy=policy, sleep=lambda s: None)
        assert calls["n"] == 3
        assert _counter("repro_retry_exhausted_total") - before == 1

    def test_deadline_bound(self):
        """A tiny wall-clock deadline stops the loop before the attempt
        budget: a retried op can never wedge its caller."""
        calls = {"n": 0}

        def hopeless():
            calls["n"] += 1
            raise OSError(errno.EIO, "io")

        policy = RetryPolicy(
            attempts=1000, base_s=0.2, cap_s=0.2, deadline_s=0.05
        )
        t0 = time.monotonic()
        with pytest.raises(OSError):
            retry_call(hopeless, policy=policy, sleep=lambda s: None)
        assert time.monotonic() - t0 < 1.0
        assert calls["n"] < 5


# -- store / cache degradation -------------------------------------------------


class TestStoreDegradation:
    def _store(self, tmp_path):
        from repro.search.store import RunStore

        return RunStore(tmp_path / "runs")

    def test_corrupt_checkpoint_quarantined_not_trusted(self, tmp_path):
        store = self._store(tmp_path)
        from repro.search import search
        from repro.apps import kmeans

        scen = kmeans.search_scenario(size=12, n_workloads=2)
        res = search(
            scen.kernel,
            points=scen.points,
            threshold=scen.threshold,
            budget=6,
            store=store,
            label="victim",
        )
        records_path = store._records_path(res.run_id)
        assert store.load_records(res.run_id)
        # torn page after the fact: checksum must catch it, quarantine
        # must preserve it, and the caller sees a from-scratch resume
        blob = records_path.read_bytes()
        records_path.write_bytes(blob[: len(blob) // 2])
        before = _counter("repro_quarantined_total")
        assert store.load_records(res.run_id) == []
        assert not records_path.exists()
        qdir = records_path.parent / atomio.QUARANTINE_DIR
        assert list(qdir.iterdir())
        assert _counter("repro_quarantined_total") - before == 1

    def test_checkpoint_write_absorbs_transient_faults(self, tmp_path):
        faults.enable(
            faults.FaultPlan(
                specs=(
                    faults.FaultSpec(
                        site="store.write",
                        kind="enospc",
                        nth=(1,),
                        max_fires=1,
                    ),
                )
            )
        )
        from repro.search import search
        from repro.apps import kmeans

        store = self._store(tmp_path)
        retries_before = _counter("repro_retries_total")
        scen = kmeans.search_scenario(size=12, n_workloads=2)
        res = search(
            scen.kernel,
            points=scen.points,
            threshold=scen.threshold,
            budget=6,
            store=store,
        )
        assert res.evaluations
        assert store.load_records(res.run_id)
        assert _counter("repro_retries_total") - retries_before >= 1


class TestCacheDegradation:
    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path):
        import numpy as np

        from repro import kernel
        from repro.sweep.cache import SweepCache
        from repro.sweep.engine import run_sweep

        @kernel
        def toy(x: float) -> float:
            return x * x + 1.0

        cache = SweepCache(directory=tmp_path / "cache")
        samples = {"x": [0.0, 1.0, 2.0, 3.0]}
        first = run_sweep(toy, samples, cache=cache)
        entries = list((tmp_path / "cache").glob("*.pkl"))
        assert len(entries) == 1
        entries[0].write_bytes(b"\x00garbage")
        before = _counter("repro_quarantined_total")
        # a fresh cache over the same directory: the corrupt entry must
        # be read from disk, quarantined, and recomputed transparently
        cache = SweepCache(directory=tmp_path / "cache")
        second = run_sweep(toy, samples, cache=cache)
        # the garbage moved to quarantine; the recompute re-put a
        # fresh, valid (framed) entry at the original path
        qdir = tmp_path / "cache" / atomio.QUARANTINE_DIR
        quarantined = list(qdir.iterdir())
        assert [p.read_bytes() for p in quarantined] == [b"\x00garbage"]
        assert entries[0].read_bytes().startswith(atomio.MAGIC)
        assert cache.corrupt_evictions >= 1
        assert _counter("repro_quarantined_total") - before == 1
        assert np.array_equal(
            np.asarray(first.total_error), np.asarray(second.total_error)
        )

    def test_write_failure_degrades_to_uncached(self, tmp_path):
        import numpy as np

        from repro import kernel
        from repro.sweep.cache import SweepCache
        from repro.sweep.engine import run_sweep

        @kernel
        def toy2(x: float) -> float:
            return x + 0.5

        # every attempt at the first disk put fails: the put is
        # abandoned (write_failures), the sweep result still returns
        attempts = DEFAULT_IO_POLICY.attempts
        faults.enable(
            faults.FaultPlan(
                specs=(
                    faults.FaultSpec(
                        site="cache.write",
                        kind="enospc",
                        nth=tuple(range(1, attempts + 1)),
                    ),
                )
            )
        )
        cache = SweepCache(directory=tmp_path / "cache")
        samples = {"x": [0.0, 1.0, 2.0]}
        rep = run_sweep(toy2, samples, cache=cache)
        assert rep.n == 3
        assert cache.write_failures == 1
        assert cache.cache_stats()["write_failures"] == 1
        assert list((tmp_path / "cache").glob("*.pkl")) == []


# -- parallel workers ----------------------------------------------------------


class TestWorkerFaults:
    def test_worker_kill_detected_and_recomputed(self):
        import numpy as np

        from repro import kernel
        from repro.search.evaluate import CandidateEvaluator
        from repro.search.parallel import ParallelEvaluator
        from repro.tuning.config import PrecisionConfig

        @kernel
        def pk(t: float, s: float, h: float) -> float:
            return t * s + h * h

        points = [(0.5, 1.5, 0.25), (1.0, 2.0, 0.5)]
        configs = [
            PrecisionConfig.demote([v]) for v in ("t", "s", "h")
        ]
        expected = CandidateEvaluator(pk, points).evaluate_many(
            configs, "x"
        )
        faults.enable(
            faults.FaultPlan(
                specs=(
                    faults.FaultSpec(
                        site="worker.exec",
                        kind="worker-kill",
                        nth=(1,),
                        max_fires=1,
                    ),
                )
            )
        )
        respawns_before = _counter("repro_worker_respawns_total")
        with ParallelEvaluator(
            pk, points, workers=2, hang_timeout_s=10.0
        ) as ev:
            got = ev.evaluate_many(configs, "x")
            # the poisoned block killed its worker; hang detection
            # fired and the whole pool recomputed serially
            assert ev._failures == 1
            for a, b in zip(expected, got):
                assert a.key == b.key
                assert a.error == b.error  # bitwise
                assert a.cycles == b.cycles
            # next evaluation respawns the pool and runs parallel again
            more = ev.evaluate_many(
                [
                    PrecisionConfig.demote(["t", "s"]),
                    PrecisionConfig.demote(["s", "h"]),
                ],
                "x",
            )
            assert len(more) == 2
            assert ev.parallel and ev.n_respawns == 1
        assert (
            _counter("repro_worker_respawns_total") - respawns_before == 1
        )


# -- journal recovery (satellite: truncated / checksum-mismatch) --------------


class TestJournalRecovery:
    def _journal_with_jobs(self, tmp_path):
        from repro.serve.jobs import Job, JobJournal, JobSpec, COMPLETED

        journal = JobJournal(tmp_path / "jobs")
        recs = {}
        for i, kernel_name in enumerate(("kmeans", "blackscholes")):
            spec = JobSpec(kind="estimate", kernel=kernel_name, point=i % 2)
            job = Job(spec=spec, id=spec.job_id, state=COMPLETED)
            job.result = {"kind": "estimate", "value": float(i)}
            journal.record(job)
            recs[job.id] = job
        return journal, recs

    def test_truncated_record_quarantined_on_load(self, tmp_path):
        journal, recs = self._journal_with_jobs(tmp_path)
        victim_id, survivor_id = sorted(recs)
        victim = journal.path_of(victim_id)
        blob = victim.read_bytes()
        victim.write_bytes(blob[: len(blob) // 2])
        before = _counter("repro_quarantined_total")
        loaded = journal.load()
        assert [r["id"] for r in loaded] == [survivor_id]
        assert not victim.exists()
        qdir = journal.directory / atomio.QUARANTINE_DIR
        assert list(qdir.iterdir())
        assert _counter("repro_quarantined_total") - before == 1
        # a fresh load is clean: the corrupt file cannot re-poison
        assert [r["id"] for r in journal.load()] == [survivor_id]

    def test_checksum_mismatch_quarantined_on_load(self, tmp_path):
        journal, recs = self._journal_with_jobs(tmp_path)
        victim_id, survivor_id = sorted(recs)
        victim = journal.path_of(victim_id)
        blob = bytearray(victim.read_bytes())
        blob[-2] ^= 0x20  # flip a payload bit under the checksum
        victim.write_bytes(bytes(blob))
        loaded = journal.load()
        assert [r["id"] for r in loaded] == [survivor_id]
        assert not victim.exists()

    def test_registry_recover_skips_corrupt_rehydrates_intact(
        self, tmp_path
    ):
        from repro.serve.jobs import JobJournal, JobRegistry
        from repro.session import Session

        journal, recs = self._journal_with_jobs(tmp_path)
        victim_id, survivor_id = sorted(recs)
        victim = journal.path_of(victim_id)
        victim.write_bytes(victim.read_bytes()[:40])
        sess = Session(store=tmp_path / "runs")
        registry = JobRegistry(
            sess, workers=1, journal=JobJournal(tmp_path / "jobs")
        )
        try:
            requeued = registry.recover()
            assert requeued == 0  # both records were terminal
            assert registry.get(survivor_id).state == "completed"
            assert registry.get(survivor_id).result is not None
            with pytest.raises(Exception):
                registry.get(victim_id)
        finally:
            registry.close()

    def test_legacy_unframed_record_still_loads(self, tmp_path):
        from repro.serve.jobs import JobJournal, JobSpec

        journal = JobJournal(tmp_path / "jobs")
        spec = JobSpec(kind="estimate", kernel="kmeans")
        rec = {
            "id": spec.job_id,
            "state": "completed",
            "spec": spec.to_dict(),
            "submitted": 1.0,
        }
        journal.path_of(spec.job_id).write_text(json.dumps(rec))
        assert [r["id"] for r in journal.load()] == [spec.job_id]


# -- serve robustness ----------------------------------------------------------


class TestServeRobustness:
    @pytest.fixture
    def registry(self, tmp_path):
        from repro.serve.jobs import JobRegistry
        from repro.session import Session

        sess = Session(store=tmp_path / "runs")
        reg = JobRegistry(sess, workers=2)
        yield reg
        reg.close()

    def test_adaptive_retry_after(self, registry, monkeypatch):
        import repro.serve.jobs as jobs_mod

        # no history: the 2 s prior, one queue wave
        class _Stub:
            def __init__(self, count, p50):
                self._snap = {"count": count, "p50": p50}

            def snapshot(self):
                return self._snap

        monkeypatch.setattr(jobs_mod, "_JOB_SECONDS", _Stub(0, 0.0))
        assert registry.retry_after_s() == 1
        # median 30 s jobs, empty queue, 2 workers → ceil(0.5 * 30)
        monkeypatch.setattr(jobs_mod, "_JOB_SECONDS", _Stub(10, 30.0))
        assert registry.retry_after_s() == 15
        # pathological median clamps at 60
        monkeypatch.setattr(jobs_mod, "_JOB_SECONDS", _Stub(10, 1e4))
        assert registry.retry_after_s() == 60

    def test_healthz_degrades_on_robustness_events(self, registry):
        from repro.serve.app import ServeApp
        from repro.serve.http import HttpRequest
        from repro.serve.metrics import ServiceMetrics

        metrics = ServiceMetrics(registry)
        app = ServeApp(registry, metrics)
        req = HttpRequest("GET", "/v1/healthz", {}, b"")
        status, payload, _ = app.handle(req)
        assert status == 200 and payload["status"] == "ok"
        # a quarantine on this server's watch flips health, stays 200
        obs_metrics.REGISTRY.counter("repro_quarantined_total").inc()
        status, payload, _ = app.handle(req)
        assert status == 200 and payload["status"] == "degraded"
        assert payload["degraded_events"] == {
            "repro_quarantined_total": 1
        }
        # absorbed retries do NOT degrade health
        metrics2 = ServiceMetrics(registry)
        obs_metrics.REGISTRY.counter("repro_retries_total").inc(5)
        assert metrics2.health()["status"] == "ok"
        # and /v1/metrics itemizes the robustness counters
        mreq = HttpRequest("GET", "/v1/metrics", {}, b"")
        status, payload, _ = ServeApp(registry, metrics).handle(mreq)
        assert status == 200
        assert payload["robustness"]["health"] == "degraded"
        assert (
            payload["robustness"]["counters"]["repro_quarantined_total"]
            == 1
        )

    def test_watchdog_fails_wedged_job(self, registry):
        from repro.serve.jobs import (
            FAILED,
            Job,
            JobSpec,
            RUNNING,
        )

        spec = JobSpec(kind="estimate", kernel="kmeans")
        job = Job(spec=spec, id=spec.job_id, state=RUNNING)
        job.started = time.time() - 100
        with registry._lock:
            registry._jobs[job.id] = job
            registry._deadlines[job.id] = time.time() - 50
        aborted = registry.watchdog_sweep(grace_s=1.0)
        assert aborted == 1
        assert job.state == FAILED and "watchdog" in job.error
        assert job.cancel_event.is_set()
        assert registry.counters["watchdog_aborts"] == 1
        # non-search kinds are not requeued
        assert registry.counters["watchdog_requeues"] == 0
        # the sweep is idempotent on finished jobs
        assert registry.watchdog_sweep(grace_s=1.0) == 0

    def test_watchdog_requeues_search_once(self, registry):
        from repro.serve.jobs import (
            COMPLETED,
            FINISHED,
            Job,
            JobSpec,
            RUNNING,
        )

        spec = JobSpec(
            kind="search",
            kernel="kmeans",
            budget=6,
            strategies=("greedy",),
        )
        job = Job(spec=spec, id=spec.job_id, state=RUNNING)
        job.started = time.time() - 100
        with registry._lock:
            registry._jobs[job.id] = job
            registry._deadlines[job.id] = time.time() - 50
        assert registry.watchdog_sweep(grace_s=1.0) == 1
        assert registry.counters["watchdog_requeues"] == 1
        # the id now points at the requeued incarnation
        requeued = registry.get(spec.job_id)
        assert requeued is not job
        deadline = time.monotonic() + 120
        while requeued.state not in FINISHED:
            assert time.monotonic() < deadline, "requeued job wedged"
            time.sleep(0.05)
        assert requeued.state == COMPLETED
        # a second wedge of the same id is NOT requeued again
        with registry._lock:
            requeued.state = RUNNING
            registry._deadlines[requeued.id] = time.time() - 50
        registry.watchdog_sweep(grace_s=1.0)
        assert registry.counters["watchdog_requeues"] == 1


# -- session wiring ------------------------------------------------------------


class TestSessionWiring:
    def test_config_validates_new_fields(self):
        from repro.session import SessionConfig

        cfg = SessionConfig(fault_plan='{"faults": []}', fsync=1)
        assert cfg.fsync is True
        with pytest.raises(ConfigError, match="fault_plan"):
            SessionConfig(fault_plan=123)
        # new fields round-trip and alter the fingerprint
        again = SessionConfig.from_dict(cfg.to_dict())
        assert again == cfg
        assert cfg.fingerprint() != SessionConfig().fingerprint()

    def test_session_enables_faults_from_config(self, tmp_path):
        from repro.session import Session, SessionConfig

        plan = faults.FaultPlan(
            seed=3,
            specs=(
                faults.FaultSpec(
                    site="cache.read", kind="oserror", nth=(1,)
                ),
            ),
        )
        assert not faults.is_enabled()
        Session(SessionConfig(fault_plan=plan.to_json()))
        assert faults.is_enabled()
        assert faults.current().plan == plan

    def test_session_rejects_malformed_plan(self):
        from repro.session import Session, SessionConfig

        with pytest.raises(ConfigError):
            Session(SessionConfig(fault_plan="{broken"))

    def test_session_threads_fsync_to_stores(self, tmp_path):
        from repro.session import Session, SessionConfig

        sess = Session(
            SessionConfig(fsync=True),
            cache=tmp_path / "cache",
            store=tmp_path / "runs",
        )
        assert sess.cache.fsync is True
        assert sess.store.fsync is True
