"""Unit tests for IR nodes, builder helpers, printer, and validator."""

import pytest

from repro.ir import builder as b
from repro.ir import nodes as N
from repro.ir.printer import format_expr, format_function, format_stmt
from repro.ir.types import ArrayType, DType, ScalarType
from repro.ir.validate import validate_function
from repro.ir.visitor import walk_expr, walk_stmts
from repro.util.errors import ValidationError


def _fn(body, params=None, ret=DType.F64):
    return N.Function(
        name="t",
        params=params or [N.Param("x", ScalarType(DType.F64))],
        body=body,
        ret_dtype=ret,
    )


class TestBuilder:
    def test_const_dtypes(self):
        assert b.const(1).dtype is DType.I64
        assert b.const(1.5).dtype is DType.F64
        assert b.const(True).dtype is DType.B1

    def test_binop_promotion(self):
        e = b.add(b.name("x", DType.F32), b.const(1))
        assert e.dtype is DType.F32
        e2 = b.div(b.const(1), b.const(2))
        assert e2.dtype is DType.F64  # '/' always floats

    def test_comparison_dtype(self):
        e = b.binop("<", b.const(1.0), b.const(2.0))
        assert e.dtype is DType.B1

    def test_accumulate_reads_target(self):
        st = b.accumulate(b.name("s", DType.F64), b.const(1.0))
        assert isinstance(st.value, N.BinOp) and st.value.op == "+"
        assert isinstance(st.value.left, N.Name)
        assert st.value.left.id == "s"

    def test_accumulate_array_clones_index(self):
        tgt = b.index("a", b.name("i", DType.I64))
        st = b.accumulate(tgt, b.const(1.0))
        read = st.value.left
        assert isinstance(read, N.Index)
        assert read.index is not st.target.index  # independent clones

    def test_clone_is_deep(self):
        e = b.add(b.name("x"), b.const(1.0))
        c = b.clone(e)
        c.left.id = "y"
        assert e.left.id == "x"


class TestPrinter:
    def test_expr_precedence(self):
        e = b.mul(b.add(b.name("a"), b.name("b")), b.name("c"))
        assert format_expr(e) == "(a + b) * c"

    def test_no_redundant_parens(self):
        e = b.add(b.name("a"), b.mul(b.name("b"), b.name("c")))
        assert format_expr(e) == "a + b * c"

    def test_call_and_cast(self):
        e = b.call("sin", [b.cast(DType.F32, b.name("x"))])
        assert format_expr(e) == "sin(cast[f32](x))"

    def test_stmt_roundtrip_shapes(self):
        loop = N.For(
            "i", b.const(0), b.name("n", DType.I64), b.const(1),
            [b.assign(b.name("s"), b.add(b.name("s"), b.name("x")))],
        )
        lines = format_stmt(loop)
        assert lines[0] == "for i in range(0, n, 1):"
        assert lines[1].strip() == "s = s + x"

    def test_function_header(self):
        fn = _fn([N.Return(b.name("x", DType.F64))])
        text = format_function(fn)
        assert text.startswith("def t(x: f64) -> f64:")


class TestValidator:
    def test_valid_function_passes(self):
        fn = _fn([
            N.VarDecl("y", DType.F64, b.mul(b.name("x"), b.const(2.0))),
            N.Return(b.name("y")),
        ])
        validate_function(fn)

    def test_undeclared_read_rejected(self):
        fn = _fn([N.Return(b.name("zz"))])
        with pytest.raises(ValidationError, match="zz"):
            validate_function(fn)

    def test_redeclaration_rejected(self):
        fn = _fn([
            N.VarDecl("y", DType.F64, b.const(0.0)),
            N.VarDecl("y", DType.F32, b.const(0.0)),
            N.Return(b.name("y")),
        ])
        with pytest.raises(ValidationError, match="redeclaration"):
            validate_function(fn)

    def test_return_must_be_last(self):
        fn = _fn([
            N.Return(b.name("x")),
            N.VarDecl("y", DType.F64, b.const(0.0)),
        ])
        with pytest.raises(ValidationError, match="final"):
            validate_function(fn)

    def test_break_outside_loop_rejected(self):
        fn = _fn([N.Break(), N.Return(b.name("x"))])
        with pytest.raises(ValidationError, match="break"):
            validate_function(fn)

    def test_adjoint_nodes_rejected_in_primal(self):
        fn = _fn([
            N.Push("tape", b.name("x")),
            N.Return(b.name("x")),
        ])
        with pytest.raises(ValidationError, match="Push"):
            validate_function(fn)
        validate_function(fn, allow_adjoint_nodes=True)

    def test_indexed_store_requires_array(self):
        fn = _fn([
            N.Assign(b.index("x", b.const(0)), b.const(1.0)),
            N.Return(b.name("x")),
        ])
        with pytest.raises(ValidationError, match="non-array"):
            validate_function(fn)

    def test_array_param_indexing_ok(self):
        fn = _fn(
            [
                N.Assign(b.index("a", b.const(0)), b.const(1.0)),
                N.Return(b.index("a", b.const(0))),
            ],
            params=[N.Param("a", ArrayType(DType.F64))],
        )
        validate_function(fn)


class TestVisitors:
    def test_walk_expr_preorder(self):
        e = b.add(b.mul(b.name("a"), b.name("b")), b.const(1.0))
        kinds = [type(n).__name__ for n in walk_expr(e)]
        assert kinds == ["BinOp", "BinOp", "Name", "Name", "Const"]

    def test_walk_stmts_recurses(self):
        inner = b.assign(b.name("s"), b.const(0.0))
        loop = N.For("i", b.const(0), b.const(3), b.const(1), [inner])
        found = list(walk_stmts([loop]))
        assert loop in found and inner in found
