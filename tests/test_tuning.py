"""Mixed-precision tuning tests: precision rewriting, the greedy
threshold search, configuration validation, and the loop-split
(perforation) analysis."""


import numpy as np
import pytest

from repro.frontend import kernel
from repro.ir.types import ArrayType, DType
from repro.ir.visitor import walk_stmts
from repro.ir import nodes as N
from repro.tuning import (
    PrecisionConfig,
    apply_precision,
    estimate_split_speedup,
    find_split_iteration,
    greedy_tune,
    iteration_sensitivity,
    validate_config,
)


@kernel
def tu_kernel(n: int, h: float, data: "f64[]") -> float:
    s = 0.0
    t = 0.0
    for i in range(n):
        t = data[i] * h + t * 0.5
        s = s + sqrt(t * t + h)
    return s


def _workload(n=64, seed=5):
    rng = np.random.default_rng(seed)
    return (n, 1.0 / 3.0, rng.uniform(0.1, 1.0, n))


class TestPrecisionConfig:
    def test_demote_builder(self):
        c = PrecisionConfig.demote(["a", "b"])
        assert c.demotions == {"a": DType.F32, "b": DType.F32}
        assert c.demoted_names == ["a", "b"]
        assert bool(c)
        assert not PrecisionConfig()

    def test_describe(self):
        c = PrecisionConfig.demote(["t"], to=DType.F16)
        assert "t->f16" in c.describe()
        assert PrecisionConfig().describe() == "(uniform f64)"


class TestApplyPrecision:
    def test_rewrites_local_dtype(self):
        mixed = apply_precision(
            tu_kernel.ir, PrecisionConfig.demote(["t"])
        )
        decls = {
            s.name: s.dtype
            for s in walk_stmts(mixed.body)
            if isinstance(s, N.VarDecl)
        }
        assert decls["t"] is DType.F32
        assert decls["s"] is DType.F64

    def test_rewrites_array_param(self):
        mixed = apply_precision(
            tu_kernel.ir, PrecisionConfig.demote(["data"])
        )
        assert mixed.param("data").type == ArrayType(DType.F32)

    def test_original_untouched(self):
        apply_precision(tu_kernel.ir, PrecisionConfig.demote(["t"]))
        decls = {
            s.name: s.dtype
            for s in walk_stmts(tu_kernel.ir.body)
            if isinstance(s, N.VarDecl)
        }
        assert decls["t"] is DType.F64

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="nope"):
            apply_precision(
                tu_kernel.ir, PrecisionConfig.demote(["nope"])
            )

    def test_demotion_changes_result(self):
        args = _workload()
        mixed = apply_precision(
            tu_kernel.ir, PrecisionConfig.demote(["t", "s", "data", "h"])
        )
        from repro.codegen.compile import compile_primal

        ref = tu_kernel(*args)
        low = compile_primal(mixed)(*_workload())
        assert ref != low
        assert abs(ref - low) / abs(ref) < 1e-5  # still close


class TestGreedy:
    def test_respects_threshold(self):
        args = _workload()
        result = greedy_tune(tu_kernel, args, threshold=1e-7)
        assert result.estimated_error <= 1e-7
        # the ranking covers every error register
        assert len(result.ranking) >= 3

    def test_zero_threshold_demotes_nothing_inexact(self):
        args = _workload()
        result = greedy_tune(tu_kernel, args, threshold=0.0)
        # only exactly-zero-contribution variables may be demoted
        for v in result.demoted:
            assert dict(result.ranking)[v] == 0.0

    def test_huge_threshold_demotes_everything(self):
        args = _workload()
        result = greedy_tune(tu_kernel, args, threshold=1e6)
        assert set(result.demoted) == {v for v, _ in result.ranking}

    def test_candidates_filter(self):
        args = _workload()
        result = greedy_tune(
            tu_kernel, args, threshold=1e6, candidates=["t"]
        )
        assert result.demoted == ["t"]

    def test_monotone_in_threshold(self):
        args = _workload()
        small = greedy_tune(tu_kernel, args, threshold=1e-9)
        large = greedy_tune(tu_kernel, args, threshold=1e-3)
        assert set(small.demoted) <= set(large.demoted)


class TestValidate:
    def test_actual_error_within_estimate_ballpark(self):
        args = _workload()
        tuning = greedy_tune(tu_kernel, args, threshold=1e-6)
        v = validate_config(tu_kernel, tuning.config, _workload())
        # first-order estimates: actual within ~10x of the bound
        assert v.actual_error <= 10.0 * max(tuning.estimated_error, 1e-300)

    def test_empty_config_identity(self):
        v = validate_config(tu_kernel, PrecisionConfig(), _workload())
        assert v.actual_error == 0.0
        assert v.speedup == 1.0

    def test_demotion_gives_model_speedup(self):
        config = PrecisionConfig.demote(["t", "s", "data", "h"])
        v = validate_config(tu_kernel, config, _workload(256))
        assert v.speedup > 1.05
        assert v.cost_mixed < v.cost_reference

    def test_arrays_not_clobbered_between_runs(self):
        args = _workload()
        data_before = args[2].copy()
        validate_config(
            tu_kernel, PrecisionConfig.demote(["data"]), args
        )
        np.testing.assert_array_equal(args[2], data_before)


class TestPerforation:
    def test_iteration_sensitivity_reshapes_and_reverses(self):
        # 3 iterations x 2 samples, backward order
        trace = [6.0, 5.0, 4.0, 3.0, 2.0, 1.0]
        s = iteration_sensitivity(trace, 3)
        # iteration 0 (executed first) is at the trace's *end*
        np.testing.assert_array_equal(s, [3.0, 7.0, 11.0])

    def test_iteration_sensitivity_validates(self):
        with pytest.raises(ValueError, match="divisible"):
            iteration_sensitivity([1.0, 2.0, 3.0], 2)
        with pytest.raises(ValueError, match="positive"):
            iteration_sensitivity([1.0], 0)

    def test_find_split_iteration(self):
        a = np.array([1.0, 0.5, 1e-9, 1e-10, 1e-12])
        b = np.array([0.8, 0.2, 1e-8, 1e-11, 1e-12])
        split = find_split_iteration({"a": a, "b": b}, threshold=1e-6)
        assert split == 2

    def test_no_safe_split(self):
        a = np.array([1.0, 0.9, 1.0])
        assert find_split_iteration({"a": a}, threshold=0.5) == 3

    def test_split_at_zero_when_all_quiet(self):
        a = np.zeros(4)
        assert find_split_iteration({"a": a}, threshold=0.5) == 0

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            find_split_iteration(
                {"a": np.zeros(3), "b": np.zeros(4)}, 0.5
            )

    def test_split_speedup_formula(self):
        # all-low is the upper bound on the split speedup
        full = estimate_split_speedup(10.0, 5.0, 0, 100)
        assert full == pytest.approx(2.0)
        none = estimate_split_speedup(10.0, 5.0, 100, 100)
        assert none == pytest.approx(1.0)
        half = estimate_split_speedup(10.0, 5.0, 50, 100)
        assert half == pytest.approx(10.0 / 7.5)
