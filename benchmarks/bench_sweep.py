"""Sweep-engine benchmark: batched adjoint evaluation vs the naive loop.

Times an N-point error sweep through the vectorized batch backend
against a Python loop of single-input ``ErrorEstimator.execute`` calls
— the workflow the paper's Discussion asks callers to run — and checks
per-point agreement between the two backends at the same time.

Run as a script to (re)generate ``BENCH_sweep.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_sweep.py            # N=1000
    PYTHONPATH=src python benchmarks/bench_sweep.py --n 100    # quick

Under pytest the module runs a scaled-down smoke version of the same
comparison (agreement is asserted tightly; the speedup assertion is
conservative to stay robust on loaded CI machines).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Dict, List

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.apps import blackscholes as bs  # noqa: E402
from repro.apps import simpsons  # noqa: E402
from repro.experiments.sweep_bench import (  # noqa: E402
    SweepBenchResult,
    blackscholes_sweep,
    run_sweep_benchmark,
)

#: per-point agreement bound between the batched and scalar backends
MATCH_RTOL = 1e-12


#: historical default — the sweep the PR-1 numbers were measured on
DEFAULT_SEED = 404


def run_blackscholes(n: int, seed: int = DEFAULT_SEED) -> SweepBenchResult:
    return run_sweep_benchmark(
        "blackscholes", bs.bs_price, blackscholes_sweep(n, seed=seed)
    )


def run_simpsons(n: int, seed: int = DEFAULT_SEED) -> SweepBenchResult:
    rng = np.random.default_rng(seed)
    samples = {
        "lo": rng.uniform(0.0, 0.5, n),
        "hi": rng.uniform(math.pi / 2, math.pi, n),
    }
    return run_sweep_benchmark(
        "simpsons", simpsons.simpson, samples, fixed={"n": 100}
    )


def build_report(n: int, seed: int = DEFAULT_SEED) -> Dict[str, object]:
    results: List[SweepBenchResult] = [
        run_blackscholes(n, seed),
        run_simpsons(max(n // 5, 10), seed),
    ]
    return {
        "benchmark": "sweep",
        "description": (
            "batched input-sweep error estimation vs a Python loop of "
            "single-input ErrorEstimator.execute calls"
        ),
        "match_rtol": MATCH_RTOL,
        "seed": seed,
        "results": [r.to_dict() for r in results],
    }


def main(argv: List[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--n", type=int, default=1000,
                    help="batch size for the Black-Scholes sweep")
    ap.add_argument("--seed", type=int, default=DEFAULT_SEED,
                    help="input-sweep sampling seed (recorded in the "
                         "report for reproducible trajectories)")
    ap.add_argument("--out", type=Path,
                    default=_REPO_ROOT / "BENCH_sweep.json")
    args = ap.parse_args(argv)
    from _provenance import with_timing

    report = with_timing(build_report, args.n, args.seed)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    for r in report["results"]:  # type: ignore[union-attr]
        print(
            f"{r['app']:14s} n={r['n']:5d}  loop {r['loop_s']*1e3:8.1f} ms"
            f"  batched {r['batched_s']*1e3:7.1f} ms"
            f"  speedup {r['speedup']:6.1f}x"
            f"  max_rel_diff {r['max_rel_diff']:.3g}"
            f"  [{r['backend']}]"
        )
    print(f"wrote {args.out}")
    ok = all(
        r["max_rel_diff"] <= MATCH_RTOL
        for r in report["results"]  # type: ignore[union-attr]
    )
    return 0 if ok else 1


# -- pytest smoke version -----------------------------------------------------


def test_sweep_blackscholes_matches_and_beats_loop():
    r = run_blackscholes(200)
    assert r.backend == "vectorized"
    assert r.max_rel_diff <= MATCH_RTOL
    # the full benchmark shows >>10x; keep CI robust on noisy machines
    assert r.speedup > 2.0


def test_sweep_simpsons_matches():
    r = run_simpsons(30)
    assert r.backend == "vectorized"
    assert r.max_rel_diff <= MATCH_RTOL


if __name__ == "__main__":
    raise SystemExit(main())
