"""Ablation benches (DESIGN.md A1/A2): the design choices behind
CHEF-FP's performance claims, isolated.

A1 — optimization pipeline on the generated adjoint+EE code (the
paper's "generated code ... becomes a candidate for better compiler
optimizations").

A2 — TBR tape minimization (push only backward-needed values) versus
push-everything.
"""

import pytest

from repro.apps import arclength, simpsons
from repro.core.api import ErrorEstimator
from repro.core.models import AdaptModel


@pytest.mark.parametrize("level", [0, 2], ids=["O0", "O2"])
@pytest.mark.parametrize(
    "app", [arclength, simpsons], ids=lambda a: a.NAME
)
def test_ablation_opt_pipeline(benchmark, app, level, bench_sizes):
    est = ErrorEstimator(
        app.INSTRUMENTED, model=AdaptModel(), opt_level=level
    )
    args = app.make_workload(bench_sizes[app.NAME])
    benchmark.group = f"ablation-opt:{app.NAME}"
    rep = benchmark(lambda: est.execute(*args))
    assert rep.total_error >= 0


@pytest.mark.parametrize(
    "minimal", [False, True], ids=["push-all", "tbr-minimal"]
)
@pytest.mark.parametrize(
    "app", [arclength, simpsons], ids=lambda a: a.NAME
)
def test_ablation_tbr(benchmark, app, minimal, bench_sizes):
    est = ErrorEstimator(
        app.INSTRUMENTED, model=AdaptModel(), minimal_pushes=minimal
    )
    args = app.make_workload(bench_sizes[app.NAME])
    benchmark.group = f"ablation-tbr:{app.NAME}"
    rep = benchmark(lambda: est.execute(*args))
    assert rep.total_error >= 0


def test_tbr_reduces_pushes_statically(bench_sizes):
    full = ErrorEstimator(
        simpsons.INSTRUMENTED, model=AdaptModel(), minimal_pushes=False
    )
    mini = ErrorEstimator(
        simpsons.INSTRUMENTED, model=AdaptModel(), minimal_pushes=True
    )
    assert mini.source.count(".append(") <= full.source.count(".append(")
