"""End-to-end observability smoke: traced search, traced serve, prom lint.

The CI-facing proof that the tracing layer tells the truth and stays
out of the way:

1. run ``python -m repro search --trace`` and the same search without
   ``--trace``; assert the trace file parses as valid span records
   (:func:`repro.obs.profile.load_trace`), every parent id resolves
   (spans nest), the per-phase self-times sum to the root span's
   duration within 10% of the traced wall-clock, and the search
   *result* is bit-identical with tracing on vs off;
2. start ``python -m repro serve --trace``, submit a tune job over
   HTTP, and assert the job's ``serve.job`` root span lands in the
   trace carrying the submission's ``X-Request-Id``;
3. fetch ``/v1/metrics?format=prom`` and lint it against the
   Prometheus text exposition format (every sample line is
   ``name[{labels}] value`` with a float-parseable value, every
   ``# TYPE`` names a known instrument type).

Run as a script (exit 0 = pass)::

    PYTHONPATH=src python benchmarks/trace_smoke.py

or under pytest, which wraps the same flow in test functions.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path
from typing import Optional, Tuple

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.obs.profile import load_trace, summarize_records  # noqa: E402

_ENV = dict(os.environ, PYTHONPATH=str(_REPO_ROOT / "src"))


def _run_cli(*args: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=_ENV,
        timeout=300,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"repro {' '.join(args)} failed "
            f"({proc.returncode}):\n{proc.stderr}"
        )
    return proc.stdout


def _scrub(obj):
    if isinstance(obj, dict):
        return {
            k: _scrub(v) for k, v in obj.items() if k != "session_id"
        }
    if isinstance(obj, list):
        return [_scrub(v) for v in obj]
    return obj


def _comparable(payload: dict) -> str:
    payload = dict(payload)
    payload.pop("stats", None)
    payload.pop("profile", None)
    return json.dumps(_scrub(payload), sort_keys=True)


def check_traced_search(tmp_path: Path, say) -> None:
    trace_path = tmp_path / "search.trace.jsonl"
    traced_json = tmp_path / "traced.json"
    plain_json = tmp_path / "plain.json"
    args = ("search", "--kernel", "blackscholes", "--budget", "16")
    _run_cli(*args, "--trace", str(trace_path), "--json", str(traced_json))
    _run_cli(*args, "--json", str(plain_json))

    traced = json.loads(traced_json.read_text())
    plain = json.loads(plain_json.read_text())
    assert _comparable(traced) == _comparable(plain), (
        "tracing perturbed the search result"
    )
    assert traced.get("profile"), "traced run carries no profile"

    records = load_trace(trace_path)  # raises on malformed lines
    assert records, "trace file is empty"
    by_id = {r["span"]: r for r in records}
    dangling = [
        r["span"]
        for r in records
        if r["parent"] is not None and r["parent"] not in by_id
    ]
    assert not dangling, f"unresolvable parent ids: {dangling}"
    roots = [r for r in records if r["parent"] is None]
    assert roots, "no root spans"

    # per-phase self-times must sum to the root duration (within 10%
    # of the traced wall-clock — the tracer's accounting contract)
    summary = summarize_records(records)
    self_sum = sum(p["self_s"] for p in summary["phases"].values())
    total = summary["total_s"]
    assert total > 0
    assert abs(self_sum - total) <= 0.10 * total, (
        f"self-time sum {self_sum:.4f}s vs wall-clock {total:.4f}s"
    )
    names = {r["name"] for r in records}
    assert "search.run" in names and "search.batch" in names
    say(
        f"traced search ok: {len(records)} spans, "
        f"{len(summary['phases'])} phases, total {total:.3f}s, "
        f"self-sum {self_sum:.3f}s, results bit-identical"
    )


class _Client:
    def __init__(self, port: int) -> None:
        self.base = f"http://127.0.0.1:{port}"

    def json(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict]:
        req = urllib.request.Request(
            self.base + path,
            data=None if body is None else json.dumps(body).encode(),
            method=method,
        )
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())

    def text(self, path: str) -> Tuple[str, str]:
        with urllib.request.urlopen(self.base + path, timeout=60) as resp:
            return resp.headers.get("Content-Type", ""), resp.read().decode()

    def wait_result(self, job_id: str, timeout: float = 180.0) -> dict:
        deadline = time.monotonic() + timeout
        while True:
            status, payload = self.json(
                "GET", f"/v1/jobs/{job_id}/result"
            )
            if status == 200:
                return payload
            if status != 202 or time.monotonic() > deadline:
                raise RuntimeError(f"job {job_id}: {status} {payload}")
            time.sleep(0.05)


def lint_prom(text: str) -> int:
    """Prometheus text-format lint; returns the number of samples."""
    samples = 0
    typed = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            assert parts[3] in (
                "counter", "gauge", "summary", "histogram", "untyped"
            ), f"line {lineno}: bad TYPE {line!r}"
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            assert line.startswith("# HELP "), (
                f"line {lineno}: unknown comment {line!r}"
            )
            continue
        match = re.fullmatch(
            r'([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)', line
        )
        assert match, f"line {lineno}: unparseable sample {line!r}"
        float(match.group(3))  # value must be numeric
        samples += 1
    assert samples > 0, "no samples in prom output"
    assert typed, "no # TYPE comments in prom output"
    return samples


def check_traced_serve(tmp_path: Path, say) -> None:
    trace_path = tmp_path / "serve.trace.jsonl"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--store", str(tmp_path / "runs"), "--port", "0",
            "--workers", "1", "--trace", str(trace_path),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=_ENV,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"listening on http://[^:]+:(\d+)", banner)
        if match is None:
            raise RuntimeError(
                f"no banner: {banner!r}\n{proc.stderr.read()}"
            )
        client = _Client(int(match.group(1)))

        status, job = client.json(
            "POST", "/v1/jobs",
            {"kind": "tune", "kernel": "kmeans", "threshold": 1e-6},
        )
        assert status == 201, (status, job)
        request_id = job["request_id"]
        assert request_id, "submission carries no request id"
        result = client.wait_result(job["id"])
        assert result["result"]["configuration"] is not None

        content_type, prom = client.text("/v1/metrics?format=prom")
        assert content_type.startswith("text/plain"), content_type
        samples = lint_prom(prom)
        assert "repro_jobs_completed_total 1" in prom.splitlines()
        assert "repro_http_requests_total" in prom

        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    records = load_trace(trace_path)
    jobs = [r for r in records if r["name"] == "serve.job"]
    assert jobs, "no serve.job span in the serve trace"
    attrs = jobs[0].get("attrs", {})
    assert attrs.get("request_id") == request_id, (
        f"serve.job span not linked to the submission: {attrs}"
    )
    assert attrs.get("kind") == "tune"
    say(
        f"traced serve ok: {len(records)} spans, serve.job linked to "
        f"{request_id}, prom lint passed ({samples} samples)"
    )


def run_smoke(verbose: bool = True) -> None:
    def say(msg: str) -> None:
        if verbose:
            print(f"trace-smoke: {msg}", flush=True)

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        check_traced_search(tmp_path, say)
        check_traced_serve(tmp_path, say)
    say("PASS")


# -- pytest wrappers ----------------------------------------------------------


def test_traced_search_smoke(tmp_path):
    check_traced_search(tmp_path, lambda msg: None)


def test_traced_serve_smoke(tmp_path):
    check_traced_serve(tmp_path, lambda msg: None)


if __name__ == "__main__":
    run_smoke()
    raise SystemExit(0)
