"""Static-analysis benchmark: analysis cost and search-space payoff.

Measures, per app scenario: the wall-clock of the full static-analysis
pipeline (dataflow + ranges + sensitivity + lint), and the candidate-
space reduction its pinned/safe sets give the precision search.  Then
runs the pruned-vs-unpruned search comparison on the two scenarios
where pruning bites (``simpsons``, ``arclength``) and records the
evaluations saved — asserting, via the exit code, that the pruned
front is never worse on the threshold-feasible region.

Run as a script to (re)generate ``BENCH_analyze.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_analyze.py
    PYTHONPATH=src python benchmarks/bench_analyze.py --repeat 5

Under pytest the module runs the analysis phase only (the search
comparison is covered by ``tests/test_analyze.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.analyze import prune_candidates  # noqa: E402
from repro.search.orchestrator import app_scenarios  # noqa: E402
from repro.session import Session, SessionConfig  # noqa: E402

APPS = ("simpsons", "arclength", "kmeans", "blackscholes", "hpccg")

#: scenarios where pruning removes candidates, with search overrides
SEARCH_CASES = (("simpsons", {}), ("arclength", {"budget": 80}))


def analysis_rows(repeat: int) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    sess = Session()
    for app in APPS:
        best = float("inf")
        report = None
        for _ in range(repeat):
            t0 = time.perf_counter()
            report = sess.analyze(app)
            best = min(best, time.perf_counter() - t0)
        scen = app_scenarios()[app].search_scenario()
        kept, dropped = prune_candidates(report, scen.candidates)
        rows.append(
            {
                "app": app,
                "analysis_s": best,
                "diagnostics": len(report.diagnostics),
                "pinned": list(report.pinned),
                "safe": list(report.safe),
                "candidates": len(scen.candidates),
                "candidates_pruned": len(kept),
                "space_before": 2 ** len(scen.candidates),
                "space_after": 2 ** len(kept),
                "digest": report.digest(),
            }
        )
    return rows


def search_rows() -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for app, overrides in SEARCH_CASES:
        off = Session().search(app, **overrides)
        on = Session(config=SessionConfig(analyze=True)).search(
            app, **overrides
        )
        front_no_worse = all(
            any(
                p.error <= u.error and p.cycles <= u.cycles
                for p in on.front.points
            )
            for u in off.front.points
            if u.error <= off.threshold
        )
        rows.append(
            {
                "app": app,
                "overrides": dict(overrides),
                "evaluations_unpruned": off.n_evaluated,
                "evaluations_pruned": on.n_evaluated,
                "evaluations_saved": off.n_evaluated - on.n_evaluated,
                "front_unpruned": len(off.front.points),
                "front_pruned": len(on.front.points),
                "front_no_worse": front_no_worse,
            }
        )
    return rows


def build_report(repeat: int) -> Dict[str, object]:
    return {
        "benchmark": "static-analysis cost and search-space pruning",
        "repeat": repeat,
        "analysis": analysis_rows(repeat),
        "search": search_rows(),
    }


# -- pytest smoke -------------------------------------------------------------


def test_analysis_smoke() -> None:
    rows = analysis_rows(repeat=1)
    assert [r["app"] for r in rows] == list(APPS)
    for r in rows:
        assert r["analysis_s"] < 5.0, (r["app"], r["analysis_s"])
        assert r["candidates_pruned"] <= r["candidates"]


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        description="static-analysis cost / pruning-payoff benchmark"
    )
    ap.add_argument("--repeat", type=int, default=3,
                    help="timing repetitions per app (best-of)")
    ap.add_argument("--out", type=Path,
                    default=_REPO_ROOT / "BENCH_analyze.json")
    args = ap.parse_args(argv)
    from _provenance import with_timing

    report = with_timing(build_report, args.repeat)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    for r in report["analysis"]:  # type: ignore[union-attr]
        print(
            f"{r['app']:14s} analyze {r['analysis_s']*1e3:7.1f} ms"
            f"  findings {r['diagnostics']:2d}"
            f"  candidates {r['candidates']}->{r['candidates_pruned']}"
            f"  space {r['space_before']}->{r['space_after']}"
        )
    for r in report["search"]:  # type: ignore[union-attr]
        print(
            f"{r['app']:14s} search evals "
            f"{r['evaluations_unpruned']}->{r['evaluations_pruned']}"
            f"  saved {r['evaluations_saved']}"
            f"  front_no_worse={r['front_no_worse']}"
        )
    print(f"wrote {args.out}")
    ok = all(
        r["front_no_worse"] and r["evaluations_saved"] > 0
        for r in report["search"]  # type: ignore[union-attr]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
