"""Figures 4–8 bench: per-benchmark analysis time for the three series.

One benchmark case per (figure, tool) pair at the suite's default size.
pytest-benchmark's grouped report reproduces each figure's bars; the
memory lines are asserted through tape/stack sizes (see
``test_memory_shape``).  The full multi-size sweeps are produced by
``python -m repro.experiments.run_all --figure N``.
"""

import pytest

from repro.adapt import AdaptAnalysis
from repro.apps import ALL_APPS, hpccg
from repro.codegen.compile import compile_primal
from repro.core.api import ErrorEstimator
from repro.core.models import AdaptModel
from repro.experiments.measure import measure_adapt, measure_chef

_FIG_OF = {
    "arclength": 4,
    "simpsons": 5,
    "kmeans": 6,
    "blackscholes": 8,
}


def _args(name, bench_sizes):
    if name == "hpccg":
        return hpccg.make_workload(bench_sizes["hpccg_nz"], max_iter=15)
    app = ALL_APPS[name]
    return app.make_workload(bench_sizes[name])


def _kernel(name):
    return ALL_APPS[name].INSTRUMENTED


_ALL = ["arclength", "simpsons", "kmeans", "hpccg", "blackscholes"]


@pytest.mark.parametrize("name", _ALL)
def test_fig_chef_series(benchmark, name, bench_sizes):
    est = ErrorEstimator(_kernel(name), model=AdaptModel())
    args = _args(name, bench_sizes)
    benchmark.group = f"fig{_FIG_OF.get(name, 7)}:{name}"
    benchmark(lambda: est.execute(*args))


@pytest.mark.parametrize("name", _ALL)
def test_fig_adapt_series(benchmark, name, bench_sizes):
    analysis = AdaptAnalysis(_kernel(name))
    args = _args(name, bench_sizes)
    benchmark.group = f"fig{_FIG_OF.get(name, 7)}:{name}"
    benchmark(lambda: analysis.execute(*args))


@pytest.mark.parametrize("name", _ALL)
def test_fig_app_series(benchmark, name, bench_sizes):
    compiled = compile_primal(_kernel(name).ir)
    args = _args(name, bench_sizes)
    benchmark.group = f"fig{_FIG_OF.get(name, 7)}:{name}"
    benchmark(lambda: compiled(*args))


@pytest.mark.parametrize("name", ["arclength", "simpsons"])
def test_memory_shape(name, bench_sizes):
    """The figures' memory lines: ADAPT's peak dominates CHEF-FP's."""
    app = ALL_APPS[name]
    args = app.make_workload(bench_sizes[name])
    chef = measure_chef(app.INSTRUMENTED, args)
    adapt = measure_adapt(
        app.INSTRUMENTED, app.make_workload(bench_sizes[name])
    )
    assert adapt.peak_bytes > chef.peak_bytes
