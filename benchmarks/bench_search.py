"""Precision-search benchmark: Pareto search vs the greedy baseline.

Runs the app search scenarios (Black-Scholes, k-Means) end-to-end,
serial and parallel, and records: the Pareto front, whether it
dominates or matches the paper's greedy choice, the evaluation count,
and the serial/parallel wall-clock — asserting along the way that the
front is non-empty, dominance-consistent, and bit-identical between the
serial and parallel evaluators.

The serial run executes against a persistent :class:`RunStore`; a
subsequent warm resume of the same run is timed too, asserting it
re-evaluates **zero** candidates and reproduces the front bit-for-bit
(the ``warm_resume_speedup`` column).

Run as a script to (re)generate ``BENCH_search.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_search.py               # full
    PYTHONPATH=src python benchmarks/bench_search.py --budget 16   # smoke

Under pytest (``pytest benchmarks/``) the module runs a scaled-down
version of the same checks.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.codegen.compile import clear_config_kernel_cache  # noqa: E402
from repro.core.api import (  # noqa: E402
    clear_estimator_memo,
    estimator_memo_stats,
)
from repro.search import SearchResult  # noqa: E402


def _scenario(app: str, budget: Optional[int]):
    if app == "blackscholes":
        from repro.apps import blackscholes as mod

        scen = mod.search_scenario(n_points=4, n_samples=48)
    elif app == "kmeans":
        from repro.apps import kmeans as mod

        scen = mod.search_scenario(size=16, n_workloads=2)
    else:
        raise KeyError(app)
    if budget is not None:
        scen.budget = min(scen.budget, budget)
    return scen


def _front_fingerprint(res: SearchResult) -> List[tuple]:
    return [(p.key, p.error, p.cycles) for p in res.front.points]


def run_app(
    app: str, budget: Optional[int], workers: int, seed: int = 0
) -> Dict[str, object]:
    scen = _scenario(app, budget)
    # cold start for both timed runs: the process-wide estimator memo
    # and config-kernel cache would otherwise hand the second run the
    # first run's compiles
    clear_estimator_memo()
    clear_config_kernel_cache()
    with tempfile.TemporaryDirectory() as store_dir:
        t0 = time.perf_counter()
        serial = scen.run(seed=seed, store=store_dir)
        serial_s = time.perf_counter() - t0
        # how much compiled-estimator reuse the serial run enjoyed
        # (forked workers inherit whatever is memoized pre-fork)
        memo_after_serial = estimator_memo_stats()
        # warm resume: the completed run restores straight from the
        # store — zero candidates re-evaluated, front bit-identical
        t0 = time.perf_counter()
        warm = scen.run(seed=seed, store=store_dir, resume=True)
        warm_s = time.perf_counter() - t0
    clear_estimator_memo()
    clear_config_kernel_cache()
    t0 = time.perf_counter()
    parallel = scen.run(seed=seed, workers=workers)
    parallel_s = time.perf_counter() - t0

    assert len(serial.front) > 0, f"{app}: empty Pareto front"
    assert serial.front.is_consistent(), f"{app}: inconsistent front"
    assert _front_fingerprint(serial) == _front_fingerprint(parallel), (
        f"{app}: parallel front differs from serial"
    )
    assert _front_fingerprint(serial) == _front_fingerprint(warm), (
        f"{app}: warm-resumed front differs from the stored run"
    )
    warm_recomputed = (warm.stats or {}).get("run_store", {}).get(
        "computed"
    )
    assert warm_recomputed == 0, (
        f"{app}: warm resume recomputed {warm_recomputed} candidates"
    )
    baseline_covered = serial.baseline is not None and serial.front.covers(
        serial.baseline
    )
    assert baseline_covered, f"{app}: front does not cover greedy baseline"

    best = serial.best_under()
    return {
        "app": app,
        "budget": scen.budget,
        "seed": seed,
        "n_evaluated": serial.n_evaluated,
        "eval_stats": serial.stats["evaluator"] if serial.stats else None,
        "front_size": len(serial.front),
        "dominance_consistent": serial.front.is_consistent(),
        "baseline_covered": baseline_covered,
        "parallel_identical": True,
        "workers": workers,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "warm_resume_s": warm_s,
        "warm_recomputed": warm_recomputed,
        "warm_resume_speedup": (
            serial_s / warm_s if warm_s > 0 else None
        ),
        "estimator_memo": memo_after_serial,
        "baseline": serial.baseline.to_dict() if serial.baseline else None,
        "best_under_threshold": best.to_dict() if best else None,
        "front": serial.front.to_dicts(),
    }


def build_report(
    budget: Optional[int], workers: int, seed: int = 0
) -> Dict[str, object]:
    import os

    return {
        "benchmark": "search",
        "seed": seed,
        "description": (
            "cost-aware Pareto precision search (greedy ladder + "
            "delta debugging + annealing) vs the paper's one-shot "
            "greedy pass; serial vs forked parallel evaluation "
            "(parallel wall-clock only improves with cpu_count > 1 — "
            "correctness is asserted bit-identical regardless); the "
            "serial run persists to a RunStore and a warm resume is "
            "timed (zero candidates re-evaluated, bit-identical front)"
        ),
        "cpu_count": os.cpu_count(),
        "results": [
            run_app("blackscholes", budget, workers, seed),
            run_app("kmeans", budget, workers, seed),
        ],
    }


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--budget", type=int, default=None,
        help="cap the per-scenario evaluation budget (CI smoke)",
    )
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument(
        "--seed", type=int, default=0,
        help="strategy RNG seed (recorded in the report for "
             "reproducible search trajectories)",
    )
    ap.add_argument(
        "--out", type=Path, default=_REPO_ROOT / "BENCH_search.json"
    )
    args = ap.parse_args(argv)
    from _provenance import with_timing

    report = with_timing(build_report, args.budget, args.workers, args.seed)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    for r in report["results"]:  # type: ignore[union-attr]
        best = r["best_under_threshold"]
        speedup = best["speedup"] if best else None
        print(
            f"{r['app']:14s} evals={r['n_evaluated']:3d} "
            f"front={r['front_size']:2d} "
            f"baseline_covered={r['baseline_covered']} "
            f"serial {r['serial_s']:6.2f}s parallel {r['parallel_s']:6.2f}s "
            f"warm-resume {r['warm_resume_s']:5.2f}s"
            + (
                f"  best@threshold {speedup:.3f}x"
                if speedup is not None
                else "  (no feasible point)"
            )
        )
    print(f"wrote {args.out}")
    ok = all(
        r["front_size"] > 0
        and r["dominance_consistent"]
        and r["baseline_covered"]
        and r["parallel_identical"]
        and r["warm_recomputed"] == 0
        for r in report["results"]  # type: ignore[union-attr]
    )
    return 0 if ok else 1


# -- pytest smoke version -----------------------------------------------------


def test_search_blackscholes_smoke():
    r = run_app("blackscholes", budget=12, workers=2)
    assert r["front_size"] > 0
    assert r["dominance_consistent"] and r["baseline_covered"]


def test_search_kmeans_smoke():
    r = run_app("kmeans", budget=8, workers=2)
    assert r["front_size"] > 0
    assert r["dominance_consistent"] and r["baseline_covered"]


if __name__ == "__main__":
    raise SystemExit(main())
