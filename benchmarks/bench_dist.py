"""Distributed-fleet benchmark: 4-worker speedup over a serial run.

Quantifies what the lease-claiming worker fleet buys over executing
the same sharded plan serially in one process.  The workload is a
4-shard search whose per-entry latency is dominated by **deterministic
injected I/O stalls** (``delay`` faults on every ``store.write``):
stall-dominated entries parallelize across worker processes on any
machine, so the measured quantity is the *coordination* speedup — how
well claim/heartbeat/steal overhead stays out of the way — rather
than raw CPU scaling, which a shared CI box cannot promise.  (The
fault layer's chaos contract guarantees the stalls change timing
only: the benchmark re-verifies that the fleet's stored records and
elected winner front are bit-identical to the serial reference.)

Run as a script to (re)generate ``BENCH_dist.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_dist.py

Exit code asserts the 4-worker fleet is at least 2x faster than the
serial execution and that the results match bit-for-bit.  Under
pytest (``pytest benchmarks/``) a scaled-down version of the same
flow runs as a test with the same assertions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

ENTRY = {"scenario": "kmeans", "scenario_args": {"size": 8}}
DEFAULTS = {"budget": 6, "strategies": ["greedy"]}
SHARDS = 4
WORKERS = 4
MIN_SPEEDUP = 2.0


def _stall_plan(delay_s: float) -> str:
    """Every store write stalls ``delay_s`` — deterministic, seeded."""
    return json.dumps(
        {
            "seed": 7,
            "faults": [
                {
                    "site": "store.write",
                    "kind": "delay",
                    "probability": 1.0,
                    "delay_s": delay_s,
                }
            ],
        }
    )


def run_bench(
    delay_s: float = 0.15, verbose: bool = True
) -> Dict[str, object]:
    from repro import RunStore, Session, SessionConfig, faults
    from repro.dist.fleet import elect_front, run_fleet
    from repro.search.orchestrator import (
        PlanEntry,
        app_scenarios,
        shard_entries,
    )

    def say(msg: str) -> None:
        if verbose:
            print(f"bench-dist: {msg}", flush=True)

    faults.disable()
    config = SessionConfig(
        workers=0, lease_ttl_s=10.0, fault_plan=_stall_plan(delay_s)
    )
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)

        # ---- serial reference: same stalls, one process -----------------
        ref_store = RunStore(tmp_path / "ref")
        ref_sess = Session(config, store=ref_store)
        sharded = shard_entries(
            [PlanEntry.from_dict(ENTRY)], SHARDS, default_seed=0
        )
        t0 = time.perf_counter()
        for entry in sharded:
            merged = dict(DEFAULTS)
            merged.update(entry.overrides)
            merged["strategies"] = tuple(merged["strategies"])
            scen = app_scenarios()[entry.scenario].search_scenario(
                **entry.scenario_args
            )
            scen.run(session=ref_sess, store=ref_store, **merged)
        serial_s = time.perf_counter() - t0
        faults.disable()
        ref_manifests = ref_store.list_runs()
        ref_front = [
            p.to_dict() for p in elect_front(ref_manifests).points
        ]
        say(
            f"serial: {SHARDS} shard runs in {serial_s:.2f}s "
            f"(stall {delay_s * 1000:.0f}ms/write)"
        )

        # ---- the same plan under a 4-worker fleet -----------------------
        fleet_store = RunStore(tmp_path / "fleet")
        t0 = time.perf_counter()
        result = run_fleet(
            [ENTRY],
            fleet_store,
            workers=WORKERS,
            shards=SHARDS,
            defaults=DEFAULTS,
            session_config=config,
            deadline_s=300.0,
        )
        fleet_s = time.perf_counter() - t0
        assert result.completed, result.entries
        speedup = serial_s / fleet_s
        say(
            f"fleet:  {WORKERS} workers in {fleet_s:.2f}s — "
            f"{speedup:.2f}x"
        )

        # ---- bit-identity: stalls and parallelism changed nothing -------
        ref_ids = {m["run_id"] for m in ref_manifests}
        assert {m["run_id"] for m in fleet_store.list_runs()} == ref_ids
        for rid in sorted(ref_ids):
            assert fleet_store.load_records(rid) == ref_store.load_records(
                rid
            ), f"records of shard run {rid[:12]} drifted"
        assert result.front == ref_front, "elected front drifted"
        assert speedup >= MIN_SPEEDUP, (
            f"4-worker fleet speedup {speedup:.2f}x is below the "
            f"{MIN_SPEEDUP:.1f}x bar"
        )
        return {
            "entry": ENTRY,
            "defaults": DEFAULTS,
            "shards": SHARDS,
            "workers": WORKERS,
            "stall_per_write_s": delay_s,
            "serial_s": serial_s,
            "fleet_s": fleet_s,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
            "bit_identical": True,
            "front_size": len(result.front),
            "fleet_stats": {
                k: v
                for k, v in result.stats.items()
                if isinstance(v, int)
            },
        }


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--out",
        default=str(_REPO_ROOT / "BENCH_dist.json"),
        help="output JSON path (default: repo root BENCH_dist.json)",
    )
    ap.add_argument(
        "--delay",
        type=float,
        default=0.15,
        help="injected stall per store write, seconds",
    )
    ap.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress progress lines",
    )
    args = ap.parse_args(argv)
    results = run_bench(delay_s=args.delay, verbose=not args.quiet)
    payload = {
        "benchmark": "dist",
        "description": (
            "4-worker lease-claiming fleet vs serial execution of the "
            "same 4-shard plan over stall-dominated entries "
            "(deterministic delay faults on store writes) — measures "
            "coordination speedup with bit-identical results"
        ),
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"bench-dist: OK — {results['speedup']:.2f}x at "
        f"{WORKERS} workers, wrote {args.out}",
        flush=True,
    )
    return 0


# -- pytest version -----------------------------------------------------------


def test_bench_dist(tmp_path):
    results = run_bench(delay_s=0.1, verbose=False)
    assert results["speedup"] >= MIN_SPEEDUP
    assert results["bit_identical"]


if __name__ == "__main__":
    raise SystemExit(main())
