"""Deterministic chaos smoke: a seeded fault schedule, zero drift.

The robustness layer's contract is that faults change *timing and
telemetry, never results*: every injected failure is either absorbed
(retry, recompute, respawn, quarantine-and-miss) or surfaced as a
structured error — and an absorbed fault leaves the converged output
bit-identical to a fault-free run.  This smoke proves it in three
phases:

1. **Reference** — a fault-free serial search, fronts and stored
   records captured;
2. **Chaos search** — the same search under a seeded
   :class:`repro.faults.FaultPlan` (torn checkpoint write, ENOSPC
   bursts on store and cache, a hard-killed parallel worker) —
   asserted bit-identical to the reference, with nonzero
   ``repro_faults_injected_total`` and ``repro_retries_total``;
3. **Chaos serve** — an in-process serve round-trip (tune + search
   jobs through :meth:`ServeApp.handle`) with journal-append faults
   absorbed, then a restart over a journal with one torn record: the
   corrupt record is quarantined, recovery proceeds, and
   ``/v1/healthz`` reports ``degraded`` with the quarantine itemized.

Every wait is deadline-bounded — the smoke fails structurally, it
never hangs.  Run as a script (exit 0 = pass)::

    PYTHONPATH=src python benchmarks/chaos_smoke.py

or under pytest, which wraps the same flow in a test function.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

SEARCH = {
    "kernel": "kmeans",
    "budget": 12,
    "strategies": ("greedy", "delta", "anneal"),
    "seed": 0,
}

#: the seeded fault schedule (kept declarative so a failure report can
#: name exactly what was injected)
CHAOS_PLAN = {
    "seed": 1234,
    "faults": [
        # a torn checkpoint early in the run: silently half-written,
        # self-healed by the next atomic whole-file checkpoint
        {"site": "store.write", "kind": "torn", "nth": [2]},
        # transient disk-full bursts, absorbed by the retry schedule
        {"site": "store.write", "kind": "enospc", "nth": [4, 7]},
        # a hard-killed parallel worker: hang detection + respawn
        {
            "site": "worker.exec",
            "kind": "worker-kill",
            "nth": [1],
            "max_fires": 1,
        },
    ],
}

SERVE_PLAN = {
    "seed": 1234,
    "faults": [
        # one transient journal failure, absorbed by the retry layer
        {"site": "journal.append", "kind": "enospc", "nth": [2]},
    ],
}


def _counter(name: str) -> int:
    from repro.obs import metrics as obs_metrics

    return obs_metrics.REGISTRY.counter(name).value


def _drain_registry(registry, timeout_s: float = 300.0) -> None:
    if not registry.drain(timeout_s):
        raise TimeoutError("job registry did not drain")


def _wait_result(app, job_id: str, timeout_s: float = 300.0) -> dict:
    """Poll ``GET /v1/jobs/{id}/result`` until terminal (bounded)."""
    from repro.serve.http import HttpRequest

    deadline = time.monotonic() + timeout_s
    while True:
        status, payload, _ = app.handle(
            HttpRequest("GET", f"/v1/jobs/{job_id}/result", {}, b"")
        )
        if status == 200:
            return payload["result"]
        if status != 202:
            raise AssertionError(
                f"job {job_id} failed: {status} {payload}"
            )
        if time.monotonic() > deadline:
            raise TimeoutError(f"job {job_id} still pending")
        time.sleep(0.05)


def run_smoke(verbose: bool = True) -> None:
    from repro import RunStore, Session, SessionConfig, faults

    def say(msg: str) -> None:
        if verbose:
            print(f"chaos-smoke: {msg}", flush=True)

    # killed workers must be detected in seconds, not the production
    # default — set before any evaluator is constructed
    os.environ["REPRO_WORKER_TIMEOUT"] = "15"

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)

        # ---- phase 1: fault-free reference -----------------------------
        faults.disable()
        ref_store = RunStore(tmp_path / "ref-runs")
        reference = Session(store=ref_store).search("kmeans", **{
            k: v for k, v in SEARCH.items() if k != "kernel"
        })
        ref_front = reference.to_dict()["front"]
        ref_records = ref_store.load_records(reference.run_id)
        assert ref_records, "reference produced no records"
        say(
            f"reference: {reference.n_evaluated} evaluations, "
            f"front size {len(ref_front)}"
        )

        # ---- phase 2: the same search under chaos ----------------------
        injected_before = _counter("repro_faults_injected_total")
        retries_before = _counter("repro_retries_total")
        chaos_store = RunStore(tmp_path / "chaos-runs")
        chaos_sess = Session(
            SessionConfig(
                workers=2, fault_plan=json.dumps(CHAOS_PLAN)
            ),
            store=chaos_store,
        )
        assert faults.is_enabled()
        chaos = chaos_sess.search("kmeans", **{
            k: v for k, v in SEARCH.items() if k != "kernel"
        })
        stats = faults.stats()
        faults.disable()

        assert chaos.run_id == reference.run_id
        assert chaos.to_dict()["front"] == ref_front, (
            "chaos front drifted from the fault-free reference"
        )
        assert chaos.n_evaluated == reference.n_evaluated
        chaos_records = chaos_store.load_records(chaos.run_id)
        assert chaos_records == ref_records, (
            "stored chaos records are not bit-identical to reference"
        )
        injected = _counter("repro_faults_injected_total") - injected_before
        retried = _counter("repro_retries_total") - retries_before
        assert injected > 0, "chaos run injected nothing"
        assert retried > 0, "no fault exercised the retry layer"
        assert stats["fired"]["store.write:enospc"] >= 1, stats
        assert stats["fired"]["store.write:torn"] >= 1, stats
        say(
            f"chaos search bit-identical: {injected} faults injected "
            f"({stats['fired']}), {retried} retries absorbed"
        )

        # ---- phase 3: serve round-trip under journal chaos --------------
        from repro.serve.app import ServeApp
        from repro.serve.http import HttpRequest
        from repro.serve.jobs import JobJournal, JobRegistry
        from repro.serve.metrics import ServiceMetrics

        serve_store = tmp_path / "serve-runs"
        journal_dir = tmp_path / "journal"
        session = Session(store=serve_store)
        registry = JobRegistry(
            session, workers=2, journal=JobJournal(journal_dir)
        )
        app = ServeApp(registry, ServiceMetrics(registry))
        faults.enable(faults.FaultPlan.load(json.dumps(SERVE_PLAN)))
        try:
            status, tune, _ = app.handle(HttpRequest(
                "POST", "/v1/jobs", {},
                json.dumps(
                    {"kind": "tune", "kernel": "kmeans",
                     "threshold": 1e-6}
                ).encode(),
            ))
            assert status == 201, (status, tune)
            status, srch, _ = app.handle(HttpRequest(
                "POST", "/v1/jobs", {},
                json.dumps(
                    {"kind": "search", "kernel": SEARCH["kernel"],
                     "budget": SEARCH["budget"],
                     "strategies": list(SEARCH["strategies"]),
                     "seed": SEARCH["seed"]}
                ).encode(),
            ))
            assert status == 201, (status, srch)
            assert srch["run_id"] == reference.run_id
            tune_result = _wait_result(app, tune["id"])
            assert tune_result["configuration"]
            search_result = _wait_result(app, srch["id"])
            assert search_result["front"] == ref_front, (
                "served chaos search drifted from reference"
            )
            serve_stats = faults.stats()
            assert serve_stats["fired"]["journal.append:enospc"] >= 1
            # absorbed journal faults do not degrade health
            status, health, _ = app.handle(
                HttpRequest("GET", "/v1/healthz", {}, b"")
            )
            assert status == 200 and health["status"] == "ok", health
            say(
                "serve round-trip OK under journal faults "
                f"({serve_stats['fired']}); health still 'ok'"
            )
        finally:
            faults.disable()
            _drain_registry(registry)
            registry.close()

        # ---- phase 3b: restart over a torn journal record ---------------
        victim = journal_dir / f"{srch['id']}.json"
        blob = victim.read_bytes()
        victim.write_bytes(blob[: len(blob) // 2])
        session2 = Session(store=serve_store)
        registry2 = JobRegistry(
            session2, workers=2, journal=JobJournal(journal_dir)
        )
        metrics2 = ServiceMetrics(registry2)  # baseline pre-recovery
        app2 = ServeApp(registry2, metrics2)
        try:
            registry2.recover()
            # the torn record was quarantined, not trusted or deleted
            qdir = journal_dir / "_quarantine"
            assert list(qdir.iterdir()), "torn record not quarantined"
            assert not victim.exists()
            # the intact tune record still answers without re-running
            status, payload, _ = app2.handle(HttpRequest(
                "GET", f"/v1/jobs/{tune['id']}/result", {}, b""
            ))
            assert status == 200, (status, payload)
            assert payload["result"] == tune_result
            # health is degraded, with the quarantine itemized
            status, health, _ = app2.handle(
                HttpRequest("GET", "/v1/healthz", {}, b"")
            )
            assert status == 200 and health["status"] == "degraded", (
                health
            )
            assert (
                health["degraded_events"]["repro_quarantined_total"] >= 1
            )
            status, metrics_payload, _ = app2.handle(
                HttpRequest("GET", "/v1/metrics", {}, b"")
            )
            rb = metrics_payload["robustness"]
            assert rb["health"] == "degraded"
            assert rb["counters"]["repro_quarantined_total"] >= 1
            say(
                "restart quarantined the torn journal record; "
                "health degraded with evidence: "
                f"{health['degraded_events']}"
            )
        finally:
            _drain_registry(registry2)
            registry2.close()


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress progress lines",
    )
    args = ap.parse_args(argv)
    run_smoke(verbose=not args.quiet)
    print("chaos-smoke: OK", flush=True)
    return 0


# -- pytest smoke version -----------------------------------------------------


def test_chaos_smoke():
    run_smoke(verbose=False)


if __name__ == "__main__":
    raise SystemExit(main())
