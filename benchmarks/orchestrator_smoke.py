"""Orchestrator crash/resume smoke: kill a plan mid-run, resume it.

The end-to-end durability check behind the run store:

1. run a small two-scenario plan uninterrupted (the reference);
2. launch the *same* plan against a fresh store in a subprocess with
   ``REPRO_SEARCH_CRASH_AFTER=N`` — the search SIGKILLs its own process
   after ``N`` computed candidate evaluations (right after their
   checkpoint lands), simulating an OOM kill / CI timeout at the worst
   possible moment;
3. resume the killed plan in-process and assert every scenario's Pareto
   front **and full evaluation history** are bit-identical to the
   reference, with strictly fewer candidates recomputed than the
   reference evaluated.

Run as a script (CI job)::

    PYTHONPATH=src python benchmarks/orchestrator_smoke.py --crash-after 5

Under ``pytest benchmarks/`` the same flow runs as a test.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.search import SearchOrchestrator  # noqa: E402

#: two scenarios, sized so the smoke stays fast while the kill lands
#: mid-plan with real checkpointed state behind it
PLAN = {
    "defaults": {"seed": 0},
    "entries": [
        {
            "scenario": "blackscholes",
            "budget": 10,
            "strategies": ["greedy", "delta"],
            "scenario_args": {"n_points": 2, "n_samples": 16},
        },
        {
            "scenario": "kmeans",
            "budget": 8,
            "strategies": ["greedy", "delta"],
            "scenario_args": {"size": 12, "n_workloads": 2},
        },
    ],
}


def _front(result) -> List[tuple]:
    return [(p.key, p.error, p.cycles) for p in result.front.points]


def _trace(result) -> List[tuple]:
    return [
        (c.key, c.error, c.cycles, c.point_errors, c.strategy, c.index)
        for c in result.evaluations
    ]


def run_crash_resume(crash_after: int) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        ref_store = tmp_path / "ref-store"
        crash_store = tmp_path / "crash-store"
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(PLAN))

        # 1. uninterrupted reference
        ref = SearchOrchestrator.from_plan(PLAN, store=ref_store)
        ref_runs = ref.run()
        assert ref.ok, [r.error for r in ref_runs]

        # 2. the same plan, SIGKILLed after `crash_after` evaluations
        env = dict(
            os.environ,
            PYTHONPATH=str(_REPO_ROOT / "src"),
            REPRO_SEARCH_CRASH_AFTER=str(crash_after),
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.search",
                "--plan", str(plan_file), "--store", str(crash_store),
            ],
            env=env, capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == -signal.SIGKILL, (
            f"expected the child to be SIGKILLed, got rc="
            f"{proc.returncode}\n{proc.stderr}"
        )
        from repro.search import RunStore

        partial = RunStore(crash_store).list_runs()
        assert partial and not any(m["completed"] for m in partial), (
            "the killed plan left no partial run behind"
        )
        n_checkpointed = sum(
            len(RunStore(crash_store).load_records(m["run_id"]))
            for m in partial
        )
        assert n_checkpointed >= crash_after

        # 3. resume and compare
        res = SearchOrchestrator.from_plan(PLAN, store=crash_store)
        res_runs = res.run()
        assert res.ok, [r.error for r in res_runs]
        total_recomputed = 0
        for a, b in zip(ref_runs, res_runs):
            assert _front(a.result) == _front(b.result), (
                f"{a.entry.scenario}: resumed front differs"
            )
            assert _trace(a.result) == _trace(b.result), (
                f"{a.entry.scenario}: resumed history differs"
            )
            total_recomputed += b.result.stats["run_store"]["computed"]
        total_ref = sum(r.result.n_evaluated for r in ref_runs)
        assert total_recomputed < total_ref, (
            "resume recomputed the whole plan"
        )
        return {
            "crash_after": crash_after,
            "checkpointed_before_kill": n_checkpointed,
            "reference_evaluations": total_ref,
            "resumed_recomputed": total_recomputed,
            "fronts_bit_identical": True,
        }


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--crash-after", type=int, default=5,
        help="SIGKILL the child plan after this many computed "
             "candidate evaluations",
    )
    args = ap.parse_args(argv)
    summary = run_crash_resume(args.crash_after)
    print(
        f"killed after {summary['checkpointed_before_kill']} "
        f"checkpointed evaluations; resume recomputed "
        f"{summary['resumed_recomputed']}/"
        f"{summary['reference_evaluations']} — fronts bit-identical"
    )
    return 0


# -- pytest smoke version -----------------------------------------------------


def test_orchestrator_crash_resume():
    summary = run_crash_resume(crash_after=4)
    assert summary["fronts_bit_identical"]
    assert (
        summary["resumed_recomputed"] < summary["reference_evaluations"]
    )


if __name__ == "__main__":
    raise SystemExit(main())
