"""Distributed-fleet smoke: SIGKILL a worker, steal its lease, finish.

The fleet's contract is that worker death and lease-layer corruption
change *who* computes, never *what* is computed: shard runs are
content-addressed, checkpoints are atomic prefixes of a deterministic
order, and leases only minimize duplicate work.  This smoke proves it
in three phases:

1. **Reference** — the 3-shard plan executed serially in one process,
   fault-free; stored records and the elected winner front captured;
2. **Fleet under fire** — the same plan under a 3-worker fleet where
   worker 0 ``SIGKILL``s itself mid-entry (two computed candidates
   after its last checkpoint, via the ``REPRO_SEARCH_CRASH_AFTER``
   seam) and every worker runs a seeded fault plan tearing its second
   lease acquire — the torn lease is unreadable to everyone, so it is
   stolen like an expired one;
3. **Verdict** — the fleet completed, at least one lease was stolen,
   and every shard run's records *and* the elected front are
   bit-identical to the uninterrupted serial reference.

Every wait is deadline-bounded — the smoke fails structurally, it
never hangs.  Run as a script (exit 0 = pass)::

    PYTHONPATH=src python benchmarks/dist_smoke.py

or under pytest, which wraps the same flow in a test function.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

ENTRY = {"scenario": "kmeans", "scenario_args": {"size": 8}}
DEFAULTS = {"budget": 6, "strategies": ["greedy"]}
SHARDS = 3
WORKERS = 3

#: each worker tears its second lease acquire: the worker that "wins"
#: that claim holds an unreadable lease every contender treats as
#: stealable — the claim layer's own corruption mode, injected
LEASE_CHAOS = {
    "seed": 99,
    "faults": [
        {"site": "lease.acquire", "kind": "torn", "nth": [2]},
    ],
}


def run_smoke(verbose: bool = True) -> None:
    from repro import RunStore, Session, SessionConfig, faults
    from repro.dist.fleet import elect_front, run_fleet
    from repro.search.orchestrator import (
        PlanEntry,
        app_scenarios,
        shard_entries,
    )

    def say(msg: str) -> None:
        if verbose:
            print(f"dist-smoke: {msg}", flush=True)

    faults.disable()
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)

        # ---- phase 1: serial single-process reference -------------------
        t0 = time.perf_counter()
        ref_store = RunStore(tmp_path / "ref")
        ref_sess = Session(SessionConfig(workers=0), store=ref_store)
        sharded = shard_entries(
            [PlanEntry.from_dict(ENTRY)], SHARDS, default_seed=0
        )
        for entry in sharded:
            merged = dict(DEFAULTS)
            merged.update(entry.overrides)
            merged["strategies"] = tuple(merged["strategies"])
            scen = app_scenarios()[entry.scenario].search_scenario(
                **entry.scenario_args
            )
            scen.run(session=ref_sess, store=ref_store, **merged)
        ref_manifests = ref_store.list_runs()
        assert len(ref_manifests) == SHARDS
        ref_front = [
            p.to_dict() for p in elect_front(ref_manifests).points
        ]
        say(
            f"reference: {SHARDS} shard runs in "
            f"{time.perf_counter() - t0:.2f}s, winner front "
            f"{len(ref_front)} point(s)"
        )

        # ---- phase 2: 3-worker fleet, one SIGKILLed mid-entry -----------
        fleet_store = RunStore(tmp_path / "fleet")
        t0 = time.perf_counter()
        result = run_fleet(
            [ENTRY],
            fleet_store,
            workers=WORKERS,
            shards=SHARDS,
            defaults=DEFAULTS,
            session_config=SessionConfig(
                workers=0,
                lease_ttl_s=1.0,
                fault_plan=json.dumps(LEASE_CHAOS),
            ),
            deadline_s=240.0,
            worker_env={0: {"REPRO_SEARCH_CRASH_AFTER": "2"}},
        )
        say(
            f"fleet: completed={result.completed} in "
            f"{time.perf_counter() - t0:.2f}s  stats={result.stats}"
        )

        # ---- phase 3: verdict -------------------------------------------
        assert result.completed, (
            f"fleet left work incomplete: {result.entries}"
        )
        steals = result.stats.get("steals", 0)
        assert steals >= 1, (
            f"no lease was stolen despite a SIGKILLed worker and a "
            f"torn claim: {result.stats}"
        )
        ref_ids = {m["run_id"] for m in ref_manifests}
        fleet_ids = {m["run_id"] for m in fleet_store.list_runs()}
        assert fleet_ids == ref_ids, (
            f"fleet produced different runs: {fleet_ids} != {ref_ids}"
        )
        for rid in sorted(ref_ids):
            assert fleet_store.load_records(rid) == ref_store.load_records(
                rid
            ), f"records of shard run {rid[:12]} drifted"
        assert result.front == ref_front, (
            "elected winner front drifted from the serial reference"
        )
        say(
            f"bit-identical under fire: {steals} steal(s), "
            f"{result.stats.get('claims')} claim(s), front "
            f"{len(result.front)} point(s) unchanged"
        )


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress progress lines",
    )
    args = ap.parse_args(argv)
    run_smoke(verbose=not args.quiet)
    print("dist-smoke: OK", flush=True)
    return 0


# -- pytest smoke version -----------------------------------------------------


def test_dist_smoke():
    run_smoke(verbose=False)


if __name__ == "__main__":
    raise SystemExit(main())
