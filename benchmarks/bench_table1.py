"""Table I bench: the mixed-precision tuning pipeline per benchmark.

Regenerates the analysis → greedy tuning → validation flow whose outputs
populate Table I (threshold, actual error, estimated error, speedup).
The assertions pin the paper's qualitative results: the estimate
respects the threshold, bounds the actual error, and k-Means finds no
speedup.
"""

import pytest

from repro.apps import arclength, kmeans, simpsons
from repro.tuning import validate_config
from repro.tuning.greedy import run_greedy_tune


@pytest.mark.parametrize(
    "app", [arclength, simpsons, kmeans], ids=lambda a: a.NAME
)
def test_table1_tune_and_validate(benchmark, app, bench_sizes):
    size = bench_sizes[app.NAME]
    args = app.make_workload(size)

    def flow():
        tuning = run_greedy_tune(
            app.INSTRUMENTED, args, app.DEFAULT_THRESHOLD
        )
        validation = validate_config(
            app.INSTRUMENTED, tuning.config, app.make_workload(size)
        )
        return tuning, validation

    tuning, validation = benchmark(flow)
    assert tuning.estimated_error <= app.DEFAULT_THRESHOLD
    assert validation.actual_error <= max(
        10.0 * tuning.estimated_error, 1e-12
    )
    if app is kmeans:
        # paper: "identified mixed precision configuration ... showed
        # no speedup"
        assert validation.speedup == pytest.approx(1.0, abs=0.15)


def test_table1_hpccg_split_flow(benchmark, bench_sizes):
    from repro.experiments.tables import _hpccg_row

    nz = bench_sizes["hpccg_nz"]
    actual, est, speedup = benchmark.pedantic(
        lambda: _hpccg_row(nz, 1e-10, max_iter=25),
        rounds=1, iterations=1,
    )
    assert speedup > 1.0  # the paper's 8% loop-split win, modelled
