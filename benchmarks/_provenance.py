"""Timing provenance for the ``BENCH_*.json`` writers.

Every benchmark report records *where its wall-clock went*: the total
build time plus the per-phase breakdown the observability tracer saw
(compile vs estimate vs sweep vs checkpoint ...).  A benchmark number
without provenance is hard to trust six months later — the ``timing``
block makes each ``BENCH_*.json`` self-describing about what was
actually measured.

Usage (from a ``bench_*`` writer's ``main``)::

    from _provenance import with_timing

    report = with_timing(build_report, args.k, args.seed)
    # report["timing"] == {"total_s": ..., "traced_s": ..., "phases": ...}

The helper enables an in-memory tracer (no trace file) only when the
process doesn't already have one, so a benchmark run under
``--trace``-style instrumentation keeps its own tracer.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Callable, Dict

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.obs import trace  # noqa: E402
from repro.obs.profile import summarize_records  # noqa: E402


def with_timing(
    build: Callable[..., Dict[str, object]], *args, **kwargs
) -> Dict[str, object]:
    """Run ``build(*args, **kwargs)`` under the tracer and attach a
    ``timing`` block to the returned report dict.

    ``total_s`` is the wall-clock of the whole build; ``traced_s`` is
    the portion attributed to traced root spans, and ``phases`` the
    per-span-name self/total seconds (see
    :func:`repro.obs.profile.summarize_records`).
    """
    owned = not trace.is_enabled()
    if owned:
        trace.enable(None)  # in-memory: sinks only, no trace file
    t0 = time.perf_counter()
    try:
        with trace.collect() as records:
            report = build(*args, **kwargs)
    finally:
        total_s = time.perf_counter() - t0
        if owned:
            trace.disable()
    summary = summarize_records(records)
    report["timing"] = {
        "total_s": total_s,
        "traced_s": summary["total_s"],
        "phases": summary["phases"],
    }
    return report
