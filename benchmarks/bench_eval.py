"""Candidate-evaluation benchmark: config-batched pools vs per-candidate.

Times scoring a pool of K precision configurations — K configs × N
validation points, the hot path of ``repro.search`` — through the
compile-once config-batched lane engine against the PR-2 per-candidate
path (one ``apply_precision`` + compile + scalar point loop per
config), asserting along the way that every per-candidate number
(actual error, point errors, modelled cycles, the Pareto error axis)
matches the scalar path **bit for bit** (``max_rel_diff == 0``).

Run as a script to (re)generate ``BENCH_eval.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_eval.py              # K=256
    PYTHONPATH=src python benchmarks/bench_eval.py --k 64       # smaller pool
    PYTHONPATH=src python benchmarks/bench_eval.py --seed 7     # new pool draw

Under pytest (``pytest benchmarks/``) the module runs a scaled-down
version of the same checks (agreement is asserted exactly; the speedup
assertion is conservative to stay robust on loaded CI machines).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.codegen.compile import clear_config_kernel_cache  # noqa: E402
from repro.ir.types import DType  # noqa: E402
from repro.search.evaluate import (  # noqa: E402
    CandidateEvaluator,
    EvaluatedCandidate,
    config_key,
)
from repro.tuning.config import PrecisionConfig  # noqa: E402

#: default pool size (the acceptance bar is a >= 64-candidate pool;
#: larger pools amortize the numpy per-op overhead further, which is
#: the point of config-batching)
DEFAULT_K = 384


def _scenario(app: str):
    """Kernel, validation points, and demotion candidates per app."""
    if app == "blackscholes":
        from repro.apps import blackscholes as bs

        wl = bs.make_workload(8)
        return (
            bs.bs_price.ir,
            [bs.point_args(wl, i) for i in range(4)],
            bs.SEARCH_CANDIDATES,
        )
    if app == "kmeans":
        from repro.apps import kmeans as km

        # the Table III candidates plus every other float local, so
        # the pool can exceed 64 distinct configurations
        return (
            km.kmeans_cost.ir,
            [km.make_workload(16, seed=2023 + 7 * i) for i in range(2)],
            ("attributes", "clusters", "sum", "total", "best", "d"),
        )
    raise KeyError(app)


def make_pool(
    candidates: Sequence[str], k: int, seed: int
) -> List[PrecisionConfig]:
    """Deterministic pool of ``k`` distinct configurations.

    Mimics real proposal pools: the greedy ladder prefixes first, then
    random subsets with per-variable f32/f16 mixes.
    """
    names = sorted(candidates)
    rng = np.random.default_rng(seed)
    pool: List[PrecisionConfig] = []
    seen = set()

    def admit(cfg: PrecisionConfig) -> None:
        key = config_key(cfg)
        if cfg and key not in seen and len(pool) < k:
            seen.add(key)
            pool.append(cfg)

    for i in range(1, len(names) + 1):
        admit(PrecisionConfig.demote(names[:i]))
    limit = 0
    while len(pool) < k and limit < 100 * k:
        limit += 1
        demotions = {
            n: (DType.F32 if rng.random() < 0.75 else DType.F16)
            for n in names
            if rng.random() < 0.5
        }
        admit(PrecisionConfig(demotions))
    if len(pool) < k:
        raise ValueError(
            f"only {len(pool)} distinct configs possible for {names}"
        )
    return pool


def _rel_diff(a: float, b: float) -> float:
    if a == b:
        return 0.0
    denom = max(abs(a), abs(b))
    if denom == 0.0:
        return 0.0
    return abs(a - b) / denom


def compare_candidates(
    xs: Sequence[EvaluatedCandidate], ys: Sequence[EvaluatedCandidate]
) -> float:
    """Worst relative difference across every scored axis."""
    worst = 0.0
    for x, y in zip(xs, ys):
        assert x.key == y.key
        worst = max(worst, _rel_diff(x.actual_error, y.actual_error))
        worst = max(worst, _rel_diff(x.error, y.error))
        worst = max(worst, _rel_diff(x.cycles, y.cycles))
        for pe_x, pe_y in zip(x.point_errors, y.point_errors):
            worst = max(worst, _rel_diff(pe_x, pe_y))
    return worst


def run_app(app: str, k: int, seed: int) -> Dict[str, object]:
    fn, points, candidates = _scenario(app)
    pool = make_pool(candidates, k, seed)

    # per-candidate path (the PR-2 hot path): apply_precision + compile
    # + scalar point loop, once per configuration
    scalar_ev = CandidateEvaluator(fn, points, config_batch=False)
    scalar_ev.prepare()
    t0 = time.perf_counter()
    scalar = scalar_ev.evaluate_many(pool)
    scalar_s = time.perf_counter() - t0

    # config-batched path, cold: the timed region includes generating
    # and compiling the lane kernel (it happens once per kernel
    # fingerprint; later pools are pure lowering + execution)
    clear_config_kernel_cache()
    batched_ev = CandidateEvaluator(fn, points, config_batch=True)
    t0 = time.perf_counter()
    batched_ev.prepare()
    batched = batched_ev.evaluate_many(pool)
    batched_s = time.perf_counter() - t0

    assert batched_ev.pool_mode is not None, f"{app}: lane engine unused"
    assert batched_ev.n_pool_lanes >= len(pool), (
        f"{app}: pool not scored on lanes "
        f"({batched_ev.n_pool_lanes} < {len(pool)})"
    )
    max_rel_diff = compare_candidates(scalar, batched)
    return {
        "app": app,
        "k": len(pool),
        "n_points": len(points),
        "candidates": len(candidates),
        "seed": seed,
        "mode": batched_ev.pool_mode,
        "per_candidate_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s if batched_s > 0 else 0.0,
        "max_rel_diff": max_rel_diff,
        "pool_lanes": batched_ev.n_pool_lanes,
        "pool_runs": batched_ev.n_pool_runs,
    }


def build_report(k: int, seed: int) -> Dict[str, object]:
    return {
        "benchmark": "eval",
        "description": (
            "config-batched candidate evaluation (compile-once "
            "precision-parameterized lane kernel; K configs x N "
            "validation points per execution) vs the per-candidate "
            "apply_precision + compile + scalar-loop path"
        ),
        "k": k,
        "seed": seed,
        "results": [
            run_app("blackscholes", k, seed),
            run_app("kmeans", k, seed),
        ],
    }


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--k", type=int, default=DEFAULT_K,
        help="configurations per pool (acceptance bar: >= 64)",
    )
    ap.add_argument(
        "--seed", type=int, default=0,
        help="pool-generation seed (recorded in the report)",
    )
    ap.add_argument(
        "--out", type=Path, default=_REPO_ROOT / "BENCH_eval.json"
    )
    args = ap.parse_args(argv)
    from _provenance import with_timing

    report = with_timing(build_report, args.k, args.seed)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    for r in report["results"]:  # type: ignore[union-attr]
        print(
            f"{r['app']:14s} k={r['k']:4d} n={r['n_points']}  "
            f"per-candidate {r['per_candidate_s']*1e3:8.1f} ms  "
            f"batched {r['batched_s']*1e3:7.1f} ms  "
            f"speedup {r['speedup']:6.1f}x  "
            f"max_rel_diff {r['max_rel_diff']:.3g}  [{r['mode']}]"
        )
    print(f"wrote {args.out}")
    ok = all(
        r["max_rel_diff"] == 0.0
        and (r["speedup"] >= 10.0 or r["k"] < 64)
        for r in report["results"]  # type: ignore[union-attr]
    )
    return 0 if ok else 1


# -- pytest smoke version -----------------------------------------------------


def test_eval_blackscholes_matches_and_beats_per_candidate():
    r = run_app("blackscholes", k=24, seed=0)
    assert r["max_rel_diff"] == 0.0
    assert r["mode"] == "grid"
    # the full benchmark shows >>10x; keep CI robust on noisy machines
    assert r["speedup"] > 2.0


def test_eval_kmeans_matches():
    r = run_app("kmeans", k=24, seed=0)
    assert r["max_rel_diff"] == 0.0
    assert r["mode"] == "perpoint"


if __name__ == "__main__":
    raise SystemExit(main())
