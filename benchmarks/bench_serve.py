"""Job-server benchmark: cold vs warm latency over real HTTP.

Quantifies what one shared :class:`repro.session.Session` buys a
stream of service requests:

* **cold** — first search submission on a fresh server: compiles,
  evaluates, checkpoints;
* **warm dedupe** — the identical spec resubmitted to the same server:
  answered by the content-hash dedup, no execution at all;
* **warm restart** — a *new* server life over the same store: the
  journal rehydrates the finished job (dedupe across restarts), and a
  job with the same search identity but a distinct job id resumes
  from the run store with **zero** candidate evaluations;
* **threshold-varied** — submissions that differ only in threshold:
  new runs, but the estimator memo and config-kernel cache absorb the
  compile cost (hit counters read back from ``/v1/metrics``).

Run as a script to (re)generate ``BENCH_serve.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_serve.py

Under pytest (``pytest benchmarks/``) a scaled-down version of the
same flow runs as a test.  Exit code asserts the dedupe answered
without execution, the warm restart recomputed nothing, and the
caches took hits.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, List, Optional, Tuple

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

SEARCH_SPEC = {
    "kind": "search",
    "kernel": "kmeans",
    "budget": 12,
    "strategies": ["greedy", "delta", "anneal"],
}


class Client:
    def __init__(self, port: int) -> None:
        self.base = f"http://127.0.0.1:{port}"

    def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict]:
        req = urllib.request.Request(
            self.base + path,
            data=None if body is None else json.dumps(body).encode(),
            method=method,
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def run_job(self, spec: dict) -> Tuple[float, bool, dict]:
        """Submit and wait; returns (latency_s, created, result)."""
        t0 = time.perf_counter()
        status, payload = self.request("POST", "/v1/jobs", spec)
        assert status in (200, 201), payload
        job_id, created = payload["id"], payload["created"]
        while True:
            status, payload = self.request(
                "GET", f"/v1/jobs/{job_id}/result"
            )
            if status != 202:
                break
            time.sleep(0.02)
        assert status == 200, payload
        return time.perf_counter() - t0, created, payload["result"]


def spawn_server(store: Path) -> Tuple[subprocess.Popen, Client]:
    env = dict(os.environ, PYTHONPATH=str(_REPO_ROOT / "src"))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--store", str(store), "--port", "0", "--workers", "2",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env,
    )
    banner = proc.stdout.readline()
    match = re.search(r"listening on http://[^:]+:(\d+)", banner)
    if match is None:
        proc.kill()
        raise RuntimeError(f"no banner: {banner!r}\n{proc.stderr.read()}")
    return proc, Client(int(match.group(1)))


def stop_server(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGTERM)
    proc.wait(timeout=60)


def run_flow(n_thresholds: int = 3) -> Dict[str, object]:
    out: Dict[str, object] = {"search_spec": SEARCH_SPEC}
    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "runs"

        # life 1: cold, dedupe, threshold sweep
        proc, client = spawn_server(store)
        try:
            cold_s, created, cold = client.run_job(SEARCH_SPEC)
            assert created and cold["front"]
            out["cold_s"] = cold_s
            out["n_evaluated"] = cold["n_evaluated"]
            out["front_size"] = len(cold["front"])

            dedupe_s, created, deduped = client.run_job(SEARCH_SPEC)
            assert not created
            assert deduped["front"] == cold["front"]
            out["warm_dedupe_s"] = dedupe_s
            out["dedupe_executed"] = False

            _, metrics_before = client.request("GET", "/v1/metrics")
            varied = []
            for i in range(n_thresholds):
                spec = dict(SEARCH_SPEC, threshold=10.0 ** -(3 + i))
                lat, created, result = client.run_job(spec)
                assert created and result["front"]
                varied.append(lat)
            _, metrics_after = client.request("GET", "/v1/metrics")
            memo_b = metrics_before["session"]["estimator_memo"]
            memo_a = metrics_after["session"]["estimator_memo"]
            kern_b = metrics_before["session"]["config_kernel_cache"]
            kern_a = metrics_after["session"]["config_kernel_cache"]
            out["threshold_varied_s"] = varied
            out["threshold_varied_memo_hits"] = (
                memo_a["hits"] - memo_b["hits"]
            )
            out["threshold_varied_memo_misses"] = (
                memo_a["misses"] - memo_b["misses"]
            )
            out["threshold_varied_kernel_hits"] = (
                kern_a["hits"] - kern_b["hits"]
            )
            out["threshold_varied_kernel_misses"] = (
                kern_a["misses"] - kern_b["misses"]
            )
            out["jobs_counters_life1"] = metrics_after["jobs"]["counters"]
        finally:
            stop_server(proc)

        # life 2: a fresh process over the same store
        proc, client = spawn_server(store)
        try:
            # identical spec: answered by the journal-rehydrated job
            restart_dedupe_s, created, rehydrated = client.run_job(
                SEARCH_SPEC
            )
            assert not created
            assert rehydrated["front"] == cold["front"]
            out["restart_dedupe_s"] = restart_dedupe_s

            # distinct job id (timeout knob), same search identity:
            # actually executes, resuming everything from the store
            warm_spec = dict(SEARCH_SPEC, timeout_s=3600.0)
            warm_s, created, warm = client.run_job(warm_spec)
            assert created
            assert warm["resumed"]
            assert warm["n_restored"] == warm["n_evaluated"]
            assert warm["stats"]["run_store"]["computed"] == 0
            assert warm["front"] == cold["front"]
            out["warm_restart_run_s"] = warm_s
            out["warm_restart_recomputed"] = warm["stats"]["run_store"][
                "computed"
            ]
        finally:
            stop_server(proc)
    out["cold_over_warm_dedupe"] = out["cold_s"] / max(
        out["warm_dedupe_s"], 1e-9
    )
    out["cold_over_warm_restart"] = out["cold_s"] / max(
        out["warm_restart_run_s"], 1e-9
    )
    return out


def build_report(n_thresholds: int) -> Dict[str, object]:
    return {
        "benchmark": "serve",
        "description": (
            "HTTP job-server latency: cold search vs content-hash "
            "dedupe vs restart-resume from the run store (zero "
            "candidates recomputed), plus estimator-memo/config-"
            "kernel-cache hit counts across threshold-varied "
            "submissions — all over one shared Session"
        ),
        "cpu_count": os.cpu_count(),
        "results": run_flow(n_thresholds),
    }


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--thresholds", type=int, default=3,
        help="threshold-varied submissions (default 3)",
    )
    ap.add_argument(
        "--out", type=Path, default=_REPO_ROOT / "BENCH_serve.json"
    )
    args = ap.parse_args(argv)
    from _provenance import with_timing

    report = with_timing(build_report, args.thresholds)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    r = report["results"]
    print(
        f"cold {r['cold_s']:6.2f}s  "
        f"dedupe {r['warm_dedupe_s']*1e3:6.1f}ms "
        f"({r['cold_over_warm_dedupe']:.0f}x)  "
        f"restart-dedupe {r['restart_dedupe_s']*1e3:6.1f}ms  "
        f"warm-run {r['warm_restart_run_s']*1e3:6.1f}ms "
        f"({r['cold_over_warm_restart']:.0f}x, recomputed="
        f"{r['warm_restart_recomputed']})"
    )
    print(
        f"threshold-varied: memo hits +{r['threshold_varied_memo_hits']} "
        f"misses +{r['threshold_varied_memo_misses']}, "
        f"kernel cache hits +{r['threshold_varied_kernel_hits']} "
        f"misses +{r['threshold_varied_kernel_misses']}"
    )
    print(f"wrote {args.out}")
    ok = (
        r["warm_restart_recomputed"] == 0
        and not r["dedupe_executed"]
        and r["threshold_varied_memo_hits"] > 0
        and r["threshold_varied_kernel_hits"] > 0
    )
    return 0 if ok else 1


# -- pytest smoke version -----------------------------------------------------


def test_serve_bench_smoke():
    r = run_flow(n_thresholds=1)
    assert r["warm_restart_recomputed"] == 0
    assert r["front_size"] > 0
    assert r["threshold_varied_memo_hits"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
