"""Table IV bench: Black-Scholes FastApprox error analysis.

Regenerates both approximate configurations (fast log+sqrt, plus fast
exp) with the Algorithm 2 custom model and pins the paper's shape: both
configurations introduce measurable error, the with-exp configuration
is faster, and the modelled speedups order as in the paper (1.14 vs
1.65).
"""

import numpy as np
import pytest

from repro.apps import blackscholes as bs
from repro.codegen.compile import compile_primal, compile_raw
from repro.core.api import ErrorEstimator
from repro.core.models import ApproxModel

_MAPS = {
    bs.CONFIG_WITHOUT_EXP: {"login": "log", "sqrtin": "sqrt"},
    bs.CONFIG_WITH_EXP: dict(bs.APPROX_VARIABLE_MAP),
}


@pytest.mark.parametrize(
    "config",
    [bs.CONFIG_WITHOUT_EXP, bs.CONFIG_WITH_EXP],
    ids=["wo_fast_exp", "w_fast_exp"],
)
def test_table4_error_analysis(benchmark, config, bench_sizes):
    n = bench_sizes["blackscholes"]
    wl = bs.make_workload(n)
    exact = compile_primal(bs.bs_price.ir)
    approx = compile_primal(bs.bs_price.ir, approx=config)
    estimator = ErrorEstimator(
        bs.bs_price, model=ApproxModel(_MAPS[config])
    )

    def analyse():
        actual, estimated = [], []
        for i in range(n):
            pa = bs.point_args(wl, i)
            actual.append(abs(float(exact(*pa)) - float(approx(*pa))))
            estimated.append(estimator.execute(*pa).total_error)
        return np.array(actual), np.array(estimated)

    actual, estimated = benchmark.pedantic(
        analyse, rounds=1, iterations=1
    )
    assert actual.mean() > 0 and estimated.mean() > 0
    # estimates and actuals within the paper's order-of-magnitude band
    ratio = estimated.sum() / actual.sum()
    assert 0.05 < ratio < 20.0


def test_table4_speedups_ordered(bench_sizes):
    n = bench_sizes["blackscholes"]
    wl = bs.make_workload(n)

    def cost(approx=None):
        compiled = compile_raw(
            bs.bs_total.ir, counting=True, approx=approx
        )
        _, extras = compiled(*wl)
        return extras["cost"]

    base = cost()
    wo = base / cost(set(bs.CONFIG_WITHOUT_EXP))
    w = base / cost(set(bs.CONFIG_WITH_EXP))
    assert 1.0 < wo < w  # fast exp adds speedup, as in the paper
