"""Shared benchmark configuration.

Each ``bench_*`` file regenerates the computation behind one paper
table/figure at laptop-scaled sizes (see DESIGN.md's per-experiment
index).  pytest-benchmark groups CHEF-FP / ADAPT / application series so
the relative shapes — who wins and by what factor — are directly visible
in the report.  Run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest


@pytest.fixture(scope="session")
def bench_sizes():
    """Per-benchmark sizes used by the benchmark suite (kept small so a
    full --benchmark-only run finishes in minutes)."""
    return {
        "arclength": 2_000,
        "simpsons": 2_000,
        "kmeans": 400,
        "hpccg_nz": 6,
        "blackscholes": 400,
    }
