"""Table II bench: CHEF-FP analysis versus ADAPT analysis per benchmark.

Benchmarks both tools' *analysis time* on the same workloads (grouped
per benchmark so pytest-benchmark's report shows the ratio — the paper's
'times improved' column).  Memory shape is asserted via the tape/stack
byte counts.
"""

import pytest

from repro.adapt import AdaptAnalysis
from repro.apps import ALL_APPS, hpccg
from repro.core.api import ErrorEstimator
from repro.core.models import AdaptModel

_CASES = ["arclength", "simpsons", "kmeans", "blackscholes"]


def _workload(name, bench_sizes):
    app = ALL_APPS[name]
    return app, app.make_workload(bench_sizes[name])


@pytest.mark.parametrize("name", _CASES)
def test_chef_analysis(benchmark, name, bench_sizes):
    app, args = _workload(name, bench_sizes)
    est = ErrorEstimator(app.INSTRUMENTED, model=AdaptModel())
    benchmark.group = f"table2:{name}"
    rep = benchmark(lambda: est.execute(*args))
    assert rep.total_error >= 0


@pytest.mark.parametrize("name", _CASES)
def test_adapt_analysis(benchmark, name, bench_sizes):
    app, args = _workload(name, bench_sizes)
    analysis = AdaptAnalysis(app.INSTRUMENTED)
    benchmark.group = f"table2:{name}"
    rep = benchmark(lambda: analysis.execute(*args))
    assert rep.tape_nodes > 0


def test_chef_analysis_hpccg(benchmark, bench_sizes):
    args = hpccg.make_workload(bench_sizes["hpccg_nz"], max_iter=15)
    est = ErrorEstimator(hpccg.INSTRUMENTED, model=AdaptModel())
    benchmark.group = "table2:hpccg"
    benchmark(lambda: est.execute(*args))


def test_adapt_analysis_hpccg(benchmark, bench_sizes):
    analysis = AdaptAnalysis(hpccg.INSTRUMENTED)
    benchmark.group = "table2:hpccg"
    benchmark(
        lambda: analysis.execute(
            *hpccg.make_workload(bench_sizes["hpccg_nz"], max_iter=15)
        )
    )
