"""End-to-end crash/recovery smoke for ``python -m repro serve``.

Exercises the service's survival story over real HTTP, the way CI
wants it told:

1. compute an uninterrupted **reference** search in-process;
2. start a server over a fresh store, submit a **tune** job and wait
   for it, then submit the matching **search** job with
   ``REPRO_SEARCH_CRASH_AFTER`` armed so the whole process SIGKILLs
   itself after 4 computed evaluations (post-checkpoint);
3. verify the store holds a strict prefix of the reference run;
4. restart the server over the same store: the job journal requeues
   the interrupted search, which resumes from the checkpoint; the
   finished tune job is rehydrated without re-running;
5. assert the resumed Pareto front — and every stored evaluation
   record — is **bit-identical** to the reference, then SIGTERM and
   expect a clean drain.

Run as a script (exit 0 = pass)::

    PYTHONPATH=src python benchmarks/serve_smoke.py

or under pytest, which wraps the same flow in a test function.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import List, Optional, Tuple

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

SEARCH_SPEC = {
    "kind": "search",
    "kernel": "kmeans",
    "budget": 12,
    "strategies": ["greedy", "delta", "anneal"],
}
TUNE_SPEC = {"kind": "tune", "kernel": "kmeans", "threshold": 1e-6}
CRASH_AFTER = 4


class Client:
    def __init__(self, port: int) -> None:
        self.base = f"http://127.0.0.1:{port}"

    def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict]:
        req = urllib.request.Request(
            self.base + path,
            data=None if body is None else json.dumps(body).encode(),
            method=method,
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def wait_result(
        self, job_id: str, timeout: float = 180.0
    ) -> Tuple[int, dict]:
        deadline = time.monotonic() + timeout
        while True:
            status, payload = self.request(
                "GET", f"/v1/jobs/{job_id}/result"
            )
            if status != 202:
                return status, payload
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still pending")
            time.sleep(0.05)


def spawn_server(
    store: Path, crash_after: Optional[int] = None
) -> Tuple[subprocess.Popen, Client]:
    env = dict(os.environ, PYTHONPATH=str(_REPO_ROOT / "src"))
    env.pop("REPRO_SEARCH_CRASH_AFTER", None)
    if crash_after is not None:
        env["REPRO_SEARCH_CRASH_AFTER"] = str(crash_after)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--store", str(store), "--port", "0", "--workers", "1",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env,
    )
    banner = proc.stdout.readline()
    match = re.search(r"listening on http://[^:]+:(\d+)", banner)
    if match is None:
        proc.kill()
        raise RuntimeError(f"no banner: {banner!r}\n{proc.stderr.read()}")
    return proc, Client(int(match.group(1)))


def run_smoke(verbose: bool = True) -> None:
    from repro import RunStore, Session

    def say(msg: str) -> None:
        if verbose:
            print(f"serve-smoke: {msg}", flush=True)

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)

        # uninterrupted reference, computed in-process
        ref_sess = Session(store=tmp_path / "ref-runs")
        reference = ref_sess.search(
            "kmeans",
            budget=SEARCH_SPEC["budget"],
            strategies=tuple(SEARCH_SPEC["strategies"]),
            seed=0,
        )
        ref_front = reference.to_dict()["front"]
        assert reference.n_evaluated > CRASH_AFTER
        say(
            f"reference run {reference.run_id[:12]}: "
            f"{reference.n_evaluated} evaluations, "
            f"front size {len(ref_front)}"
        )

        # life 1: tune completes, search SIGKILLs the server mid-run
        store = tmp_path / "runs"
        proc, client = spawn_server(store, crash_after=CRASH_AFTER)
        status, tune = client.request("POST", "/v1/jobs", TUNE_SPEC)
        assert status == 201, tune
        status, tune_done = client.wait_result(tune["id"])
        assert status == 200, tune_done
        assert tune_done["result"]["configuration"]
        say(f"tune job {tune['id']} completed")

        status, search = client.request("POST", "/v1/jobs", SEARCH_SPEC)
        assert status == 201, search
        job_id, run_id = search["id"], search["run_id"]
        assert run_id == reference.run_id, (run_id, reference.run_id)
        exit_code = proc.wait(timeout=180)
        assert exit_code == -signal.SIGKILL, exit_code
        say(
            f"server SIGKILLed itself mid-search "
            f"(crash_after={CRASH_AFTER})"
        )

        killed = RunStore(store)
        n_partial = len(killed.load_records(run_id))
        assert 0 < n_partial < len(reference.evaluations), n_partial
        manifest = killed.load_manifest(run_id)
        assert manifest is not None and not manifest["completed"]
        say(
            f"store holds a strict prefix: {n_partial}/"
            f"{len(reference.evaluations)} records, incomplete manifest"
        )

        # life 2: journal recovery requeues + resumes; tune rehydrates
        proc2, client2 = spawn_server(store)
        try:
            status, payload = client2.request(
                "GET", f"/v1/jobs/{job_id}"
            )
            assert status == 200 and payload["recovered"], payload
            status, payload = client2.wait_result(job_id)
            assert status == 200, payload
            result = payload["result"]
            assert result["resumed"], result
            assert result["n_restored"] >= n_partial
            assert result["front"] == ref_front
            say(
                f"recovered search resumed: {result['n_restored']} "
                f"restored, front matches reference"
            )

            status, payload = client2.request(
                "GET", f"/v1/jobs/{tune['id']}"
            )
            assert status == 200, payload
            assert payload["state"] == "completed"
            status, payload = client2.request(
                "GET", f"/v1/jobs/{tune['id']}/result"
            )
            assert status == 200, payload
            assert payload["result"] == tune_done["result"]
            say("finished tune job rehydrated without re-running")

            status, payload = client2.request(
                "POST", "/v1/jobs", SEARCH_SPEC
            )
            assert status == 200 and not payload["created"], payload
            status, metrics = client2.request("GET", "/v1/metrics")
            assert metrics["jobs"]["counters"]["recovered"] >= 1
            assert metrics["jobs"]["counters"]["deduped"] >= 1
        finally:
            proc2.send_signal(signal.SIGTERM)
        assert proc2.wait(timeout=60) == 0
        say("SIGTERM drained cleanly")

        # the resumed run is bit-identical to the reference
        assert len(killed.load_records(run_id)) == len(
            reference.evaluations
        )
        ref_store = RunStore(tmp_path / "ref-runs")
        assert killed.load_records(run_id) == ref_store.load_records(
            run_id
        )
        say("stored records are bit-identical to the reference run")


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress progress lines",
    )
    args = ap.parse_args(argv)
    run_smoke(verbose=not args.quiet)
    print("serve-smoke: OK", flush=True)
    return 0


# -- pytest smoke version -----------------------------------------------------


def test_serve_crash_recovery_smoke():
    run_smoke(verbose=False)


if __name__ == "__main__":
    raise SystemExit(main())
