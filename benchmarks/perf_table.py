"""Render the README performance table from the recorded BENCH files.

Reads ``BENCH_sweep.json``, ``BENCH_search.json``, and
``BENCH_eval.json`` at the repo root and prints the GitHub-markdown
table embedded in README's *Performance* section — rerun after
regenerating any of the benchmarks and paste the output over the old
table::

    PYTHONPATH=src python benchmarks/perf_table.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List

_REPO_ROOT = Path(__file__).resolve().parents[1]


def _load(name: str) -> dict:
    path = _REPO_ROOT / name
    if not path.exists():
        raise SystemExit(
            f"{name} not found — regenerate it first "
            f"(see benchmarks/bench_*.py)"
        )
    return json.loads(path.read_text())


def rows() -> List[List[str]]:
    out: List[List[str]] = []
    sweep = _load("BENCH_sweep.json")
    for r in sweep["results"]:
        out.append(
            [
                "input sweep",
                r["app"],
                f"N={r['n']} points",
                f"{r['loop_s'] * 1e3:.1f} ms",
                f"{r['batched_s'] * 1e3:.1f} ms",
                f"**{r['speedup']:.1f}×**",
                f"{r['max_rel_diff']:g}",
            ]
        )
    ev = _load("BENCH_eval.json")
    for r in ev["results"]:
        out.append(
            [
                "candidate eval",
                r["app"],
                f"K={r['k']} configs × N={r['n_points']}",
                f"{r['per_candidate_s'] * 1e3:.1f} ms",
                f"{r['batched_s'] * 1e3:.1f} ms",
                f"**{r['speedup']:.1f}×**",
                f"{r['max_rel_diff']:g}",
            ]
        )
    search = _load("BENCH_search.json")
    for r in search["results"]:
        best = r.get("best_under_threshold")
        speed = (
            f"{best['speedup']:.3f}× @ threshold"
            if best and best.get("speedup") is not None
            else "—"
        )
        out.append(
            [
                "full search",
                r["app"],
                f"budget {r['budget']}, front {r['front_size']}",
                f"{r['serial_s']:.2f} s serial",
                f"{r['parallel_s']:.2f} s ×{r['workers']} workers",
                speed,
                "bit-identical",
            ]
        )
        warm = r.get("warm_resume_s")
        if warm is not None:
            out.append(
                [
                    "warm resume",
                    r["app"],
                    f"{r['n_evaluated']} stored evals",
                    f"{r['serial_s']:.2f} s cold",
                    f"{warm * 1e3:.1f} ms resume",
                    f"**{r['warm_resume_speedup']:.0f}×** "
                    f"({r['warm_recomputed']} recomputed)",
                    "bit-identical",
                ]
            )
    return out


def main() -> int:
    header = [
        "benchmark",
        "app",
        "workload",
        "scalar / per-candidate",
        "batched",
        "speedup",
        "max_rel_diff",
    ]
    table = [header, ["---"] * len(header)] + rows()
    for row in table:
        print("| " + " | ".join(row) + " |")
    return 0


if __name__ == "__main__":
    sys.exit(main())
