"""Table III bench: k-Means per-configuration error measurement.

Regenerates the demote-one-variable-at-a-time experiment and pins the
paper's qualitative rows: attributes contribute exactly zero (dyadic
inputs), clusters and sum do not, and estimates bound actuals.
"""

import pytest

from repro.apps import kmeans
from repro.core.api import ErrorEstimator
from repro.core.models import AdaptModel
from repro.tuning import PrecisionConfig, validate_config
from repro.tuning.config import matches_inlined

CONFIGS = [
    ("attributes",),
    ("clusters",),
    ("sum",),
    ("attributes", "clusters", "sum"),
]


@pytest.mark.parametrize(
    "config_vars", CONFIGS, ids=lambda c: "+".join(c)
)
def test_table3_config(benchmark, config_vars, bench_sizes):
    npoints = bench_sizes["kmeans"]
    args = kmeans.make_workload(npoints)
    report = ErrorEstimator(
        kmeans.INSTRUMENTED, model=AdaptModel()
    ).execute(*args)
    estimated = sum(
        e
        for v, e in report.per_variable.items()
        if any(matches_inlined(v, key) for key in config_vars)
    )
    validation = benchmark(
        lambda: validate_config(
            kmeans.INSTRUMENTED,
            PrecisionConfig.demote(config_vars),
            kmeans.make_workload(npoints),
        )
    )
    if config_vars == ("attributes",):
        assert estimated == 0.0
        assert validation.actual_error == 0.0
    else:
        assert estimated > 0.0
        # first-order estimate bounds the measured error (with slack)
        assert validation.actual_error <= 10.0 * estimated
