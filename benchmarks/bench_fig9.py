"""Figure 9 bench: the HPCCG tracked sensitivity analysis.

Benchmarks the error-estimation run with sensitivity tracing enabled
(the Fig. 9 data source) and pins the qualitative result: per-iteration
sensitivity of r/p/Ap decays, yielding a proper loop-split point.
"""


from repro.experiments.tables import hpccg_sensitivity


def test_fig9_sensitivity_analysis(benchmark, bench_sizes):
    nz = bench_sizes["hpccg_nz"]
    split, series, report = benchmark.pedantic(
        lambda: hpccg_sensitivity(nz=nz, max_iter=30),
        rounds=1,
        iterations=1,
    )
    assert set(series) == {"r", "p", "x", "Ap"}
    # residual-driven series decay toward the tail (the Fig. 9 shape)
    for var in ("r", "p", "Ap"):
        s = series[var]
        assert s[:5].sum() > s[-5:].sum()
    assert 0 < split <= 30


def test_fig9_split_speedup_model(bench_sizes):
    from repro.experiments.tables import _counting_cost
    from repro.apps import hpccg

    nz = bench_sizes["hpccg_nz"]
    split, _, _ = hpccg_sensitivity(nz=nz, max_iter=25)
    cost_full = _counting_cost(
        hpccg.hpccg_cg.ir, hpccg.make_workload(nz, max_iter=25)
    )
    cost_split = _counting_cost(
        hpccg.hpccg_cg_split.ir,
        hpccg.make_split_workload(nz, split, max_iter=25),
    )
    if split < 25:
        assert cost_split < cost_full  # the paper's 8%-style win
