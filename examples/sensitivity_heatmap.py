"""HPCCG sensitivity heat map and loop split — the paper's Fig. 9 study.

Run the CG solver's error-estimating adjoint with sensitivity tracking
on the four work vectors, fold the traces into per-iteration profiles,
print the heat map, and derive the high/low-precision loop split with
its modelled speedup (the paper's 8% result).

Run:  python examples/sensitivity_heatmap.py
"""

import numpy as np

from repro.apps import hpccg
from repro.experiments.render import ascii_heatmap
from repro.experiments.tables import _counting_cost, hpccg_sensitivity
from repro.tuning.perforation import normalize

NZ = 8
MAX_ITER = 50


def main() -> None:
    print(
        f"HPCCG {hpccg.NX}x{hpccg.NY}x{NZ} domain, "
        f"{MAX_ITER} CG iterations\n"
    )
    split, series, report = hpccg_sensitivity(nz=NZ, max_iter=MAX_ITER)

    names = list(series)
    mat = np.vstack([normalize(series[v]) for v in names])
    print(ascii_heatmap(
        mat, names,
        title="Normalized per-iteration sensitivity (Fig. 9)",
    ))

    print(f"\nSplit point: keep {split}/{MAX_ITER} iterations in f64, "
          f"demote the tail to f32")

    cost_full = _counting_cost(
        hpccg.hpccg_cg.ir, hpccg.make_workload(NZ, max_iter=MAX_ITER)
    )
    cost_split = _counting_cost(
        hpccg.hpccg_cg_split.ir,
        hpccg.make_split_workload(NZ, split, max_iter=MAX_ITER),
    )
    print(f"Modelled cycles: full f64 = {cost_full:.3e}, "
          f"split = {cost_split:.3e}  "
          f"(speedup {cost_full / cost_split:.3f}x)")

    full = hpccg.hpccg_cg(*hpccg.make_workload(NZ, max_iter=MAX_ITER))
    mixed = hpccg.hpccg_cg_split(
        *hpccg.make_split_workload(NZ, split, max_iter=MAX_ITER)
    )
    print(f"Final residual: full f64 = {full:.3e}, split = {mixed:.3e}")


if __name__ == "__main__":
    main()
