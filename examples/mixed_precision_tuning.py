"""Mixed-precision tuning — the paper's Table I workflow, end to end.

Analyze the Simpsons benchmark with the ADAPT error model (Eq. 2),
greedily demote the least-sensitive variables under the error threshold,
then validate: the actual error of the demoted program and its modelled
speedup.

Run:  python examples/mixed_precision_tuning.py
"""

from repro.apps import simpsons
from repro.tuning import greedy_tune, validate_config

THRESHOLD = 1e-6  # Table I's Simpsons threshold
SIZE = 10_000


def main() -> None:
    args = simpsons.make_workload(SIZE)
    print(f"Tuning {simpsons.NAME} at n={SIZE}, threshold={THRESHOLD}\n")

    # 1. error analysis + greedy selection
    tuning = greedy_tune(simpsons.INSTRUMENTED, args, THRESHOLD)
    print("Per-variable estimated demotion errors (ascending):")
    for var, err in tuning.ranking:
        mark = "demote" if var in tuning.demoted else "keep f64"
        print(f"  {var:12s} {err:12.4g}   -> {mark}")
    print(f"\nChosen configuration : {tuning.config.describe()}")
    print(f"Estimated total error: {tuning.estimated_error:.4g}")

    # 2. validation: run the demoted program for real
    validation = validate_config(
        simpsons.INSTRUMENTED, tuning.config, simpsons.make_workload(SIZE)
    )
    print(f"\nReference value      : {validation.reference_value:.15g}")
    print(f"Mixed value          : {validation.mixed_value:.15g}")
    print(f"Actual error         : {validation.actual_error:.4g}")
    print(f"Modelled speedup     : {validation.speedup:.3f}x")

    assert validation.actual_error <= THRESHOLD, (
        "the threshold must hold for the validated configuration"
    )
    print("\nThreshold satisfied  ✓")


if __name__ == "__main__":
    main()
