"""Distribution-robust mixed-precision tuning — the paper's Table I
workflow, upgraded with the input-sweep engine.

The paper tunes from ONE representative input and concedes (Discussion)
that the resulting configuration is input-dependent.  This example does
what the paper defers to callers: sweep a distribution of integration
domains, aggregate each variable's demotion-error contribution across
the whole sweep (worst case), and pick a configuration whose estimated
error stays under the threshold at EVERY swept point.  The single-point
choice is shown alongside for contrast, and the robust configuration is
validated by actually executing the demoted program.

Run:  python examples/mixed_precision_tuning.py
"""

import numpy as np

from repro.apps import simpsons
from repro.sweep import random_sweep
import repro
from repro.tuning import validate_config

THRESHOLD = 1e-6  # Table I's Simpsons threshold
SIZE = 2_000      # iteration pairs per integration
N_SAMPLES = 200   # swept integration domains


def main() -> None:
    # sweep the integration domain [lo, hi] instead of fixing [0, pi]
    samples = random_sweep(
        {"lo": (0.0, 0.5), "hi": (np.pi / 2, np.pi)},
        n=N_SAMPLES,
        seed=404,
    )
    print(
        f"Tuning {simpsons.NAME} at n={SIZE}, threshold={THRESHOLD}, "
        f"sweeping {N_SAMPLES} integration domains\n"
    )

    # one session shares the estimator memo and sweep cache between
    # the single-point and the robust pass
    sess = repro.Session()

    # 1. single-point tuning (the paper's workflow) for contrast
    point = sess.tune(
        simpsons.INSTRUMENTED, THRESHOLD,
        args=simpsons.make_workload(SIZE),
    )
    print(f"Single-point choice  : {point.config.describe()}")
    print(f"  estimated error    : {point.estimated_error:.4g}")

    # 2. distribution-robust tuning: aggregated (max-over-samples)
    #    contributions feed the same greedy demotion loop
    robust = sess.tune(
        simpsons.INSTRUMENTED,
        THRESHOLD,
        samples=samples,
        fixed={"n": SIZE},
    )
    assert robust.sweep is not None
    print(f"\nRobust choice        : {robust.config.describe()}")
    print(f"  sweep backend      : {robust.sweep.backend}")
    print("\nPer-variable worst-case demotion errors (ascending):")
    for var, err in robust.ranking:
        mark = "demote" if var in robust.demoted else "keep f64"
        print(f"  {var:12s} {err:12.4g}   -> {mark}")
    print(
        f"\nWorst estimated error over the sweep: "
        f"{robust.estimated_error:.4g} (threshold {THRESHOLD})"
    )
    assert robust.estimated_error <= THRESHOLD

    # 3. validation: run the demoted program for real at the sweep's
    #    worst-case point
    worst = robust.sweep.worst()
    worst_args = (
        SIZE,
        float(samples["lo"][worst]),
        float(samples["hi"][worst]),
    )
    validation = validate_config(
        simpsons.INSTRUMENTED, robust.config, worst_args
    )
    print(f"\nWorst-case domain    : [{worst_args[1]:.4f}, {worst_args[2]:.4f}]")
    print(f"Reference value      : {validation.reference_value:.15g}")
    print(f"Mixed value          : {validation.mixed_value:.15g}")
    print(f"Actual error         : {validation.actual_error:.4g}")
    print(f"Modelled speedup     : {validation.speedup:.3f}x")

    assert validation.actual_error <= THRESHOLD, (
        "the threshold must hold for the validated configuration"
    )
    print("\nThreshold satisfied at the worst swept point  ✓")


if __name__ == "__main__":
    main()
