"""Approximate-function error analysis — the paper's Black-Scholes +
FastApprox study (Algorithm 2 / Table IV).

Swap libm calls for FastApprox variants and let CHEF-FP's custom model
bound the error each substitution introduces, per option and per
configuration.

Run:  python examples/approximate_functions.py
"""

import numpy as np

import repro
from repro.apps import blackscholes as bs
from repro.codegen.compile import compile_primal, compile_raw

N_OPTIONS = 200


SESSION = repro.Session()


def analyse(config, label):
    wl = bs.make_workload(N_OPTIONS)
    exact = compile_primal(bs.bs_price.ir)
    approx = compile_primal(bs.bs_price.ir, approx=config)
    # Algorithm 2: map the variables feeding approximated functions
    var_map = {
        v: f for v, f in bs.APPROX_VARIABLE_MAP.items() if f in config
    }
    estimator = SESSION.estimate(
        bs.bs_price, model=repro.ApproxModel(var_map)
    )

    actual, estimated = [], []
    for i in range(N_OPTIONS):
        pa = bs.point_args(wl, i)
        actual.append(abs(exact(*pa) - approx(*pa)))
        estimated.append(estimator.execute(*pa).total_error)
    a, e = np.array(actual), np.array(estimated)

    # modelled speedup of the whole portfolio pricing
    base = compile_raw(bs.bs_total.ir, counting=True)
    fast = compile_raw(bs.bs_total.ir, counting=True, approx=set(config))
    _, cb = base(*bs.make_workload(N_OPTIONS))
    _, cf = fast(*bs.make_workload(N_OPTIONS))
    speedup = cb["cost"] / cf["cost"]

    print(f"{label}")
    print(f"  actual    error: avg={a.mean():.3e} max={a.max():.3e} "
          f"acc={a.sum():.3e}")
    print(f"  estimated error: avg={e.mean():.3e} max={e.max():.3e} "
          f"acc={e.sum():.3e}")
    print(f"  modelled speedup: {speedup:.3f}x\n")


def main() -> None:
    print(f"Black-Scholes FastApprox analysis over {N_OPTIONS} options\n")
    analyse(bs.CONFIG_WITHOUT_EXP, "FastApprox w/o fast exp (log, sqrt)")
    analyse(bs.CONFIG_WITH_EXP, "FastApprox w/  fast exp (log, sqrt, exp)")


if __name__ == "__main__":
    main()
