"""Quickstart — the paper's Listing 1, in Python.

Estimate the floating-point error of a tiny binary32 function: annotate
the kernel, call ``estimate_error``, execute, and read the total.

Run:  python examples/quickstart.py
"""

import repro


@repro.kernel
def func(x: "f32", y: "f32") -> float:
    """A single binary32 addition — catastrophic for tiny magnitudes."""
    z: "f32" = x + y
    return z


def main() -> None:
    # Call estimate_error on the target function (Listing 1's
    # `clad::estimate_error(func)`); the result is a compiled,
    # error-estimating adjoint.
    df = repro.estimate_error(func)

    # Declare the inputs and execute the generated code.
    x, y = 1.95e-5, 1.37e-7
    report = df.execute(x, y)

    print(f"func({x}, {y})      = {report.value:.17g}")
    print(f"Error in func        = {report.total_error:.6g}")
    print(f"d func / d x         = {report.grad('x')}")
    print(f"d func / d y         = {report.grad('y')}")
    print()
    print("Per-variable error contributions:")
    for var, err in sorted(report.per_variable.items()):
        print(f"  delta[{var:>4}] = {err:.6g}")
    print()
    print("Generated error-estimating adjoint (EE code inlined):")
    print(df.source)


if __name__ == "__main__":
    main()
