"""Quickstart — the paper's Listing 1, through the session facade.

Estimate the floating-point error of a tiny binary32 function: annotate
the kernel, open a :class:`repro.Session`, call ``estimate``, execute,
and read the total.  The session owns the shared resources (estimator
memo, sweep cache, run store), so every later call in the same program
reuses what this one compiled.

Run:  python examples/quickstart.py
"""

import repro


@repro.kernel
def func(x: "f32", y: "f32") -> float:
    """A single binary32 addition — catastrophic for tiny magnitudes."""
    z: "f32" = x + y
    return z


def main() -> None:
    # One session for the whole program: it owns the estimator memo,
    # sweep cache, and (optionally) a persistent run store.
    sess = repro.Session()

    # Build the error-estimating adjoint (Listing 1's
    # `clad::estimate_error(func)`); repeated builds of the same
    # kernel/model pair are served from the session's memo.
    df = sess.estimate(func)

    # Declare the inputs and execute the generated code.
    x, y = 1.95e-5, 1.37e-7
    report = df.execute(x, y)

    print(f"func({x}, {y})      = {report.value:.17g}")
    print(f"Error in func        = {report.total_error:.6g}")
    print(f"d func / d x         = {report.grad('x')}")
    print(f"d func / d y         = {report.grad('y')}")
    print()
    print("Per-variable error contributions:")
    for var, err in sorted(report.per_variable.items()):
        print(f"  delta[{var:>4}] = {err:.6g}")
    print()
    print("Shared-resource telemetry (the memo the session owns):")
    memo = sess.estimator_memo_stats()
    print(f"  estimator memo: entries={memo['entries']} hits={memo['hits']}")
    print()
    print("Generated error-estimating adjoint (EE code inlined):")
    print(df.source)


if __name__ == "__main__":
    main()
