"""Cost-aware Pareto precision search on Black-Scholes.

The paper's workflow picks ONE mixed-precision configuration with a
single greedy pass over estimated error contributions.  This example
runs the search subsystem instead: three strategies (the greedy ladder,
Precimonious-style delta debugging, simulated annealing) explore the
demotion space of the option-pricing kernel, every candidate is scored
on BOTH axes — worst-case error over a swept input distribution plus
actual validation error, and modelled cycles — and the result is the
whole error/performance Pareto front, not one point.

The greedy baseline is printed alongside: the front always contains a
configuration that dominates or matches it.

Run:  python examples/precision_search.py
"""

import repro
from repro.apps import blackscholes as bs

BUDGET = 48
WORKERS = 0  # set >= 2 to evaluate candidate pools in worker processes


def bar(value: float, lo: float, hi: float, width: int = 28) -> str:
    """Crude text gauge for the cycles axis."""
    if hi <= lo:
        return "#" * width
    frac = (value - lo) / (hi - lo)
    n = max(1, round(frac * width))
    return "#" * n + "." * (width - n)


def main() -> None:
    # one Session owns the sweep cache + estimator memo the search
    # shares with any other work in this process
    sess = repro.Session(cache=repro.SweepCache())
    scenario = bs.search_scenario()
    print(
        f"Searching {scenario.kernel.ir.name}: "
        f"{len(scenario.candidates)} demotion candidates, "
        f"threshold {scenario.threshold:g}, budget {BUDGET}\n"
    )
    result = sess.search(scenario, budget=BUDGET, workers=WORKERS, seed=0)

    points = result.front.points
    lo = min(p.cycles for p in points)
    hi = max(p.cycles for p in points)
    print(
        f"{result.n_evaluated} configurations evaluated -> "
        f"Pareto front of {len(points)} points "
        f"(error vs modelled cycles):\n"
    )
    header = f"{'cycles':>10s}  {'speedup':>8s}  {'error':>10s}  "
    print(header + "cost gauge / configuration")
    for p in points:
        print(
            f"{p.cycles:10.1f}  {p.speedup:7.3f}x  {p.error:10.3g}  "
            f"{bar(p.cycles, lo, hi)}"
        )
        print(f"{'':34s}{p.config.describe()}  [{p.strategy}]")

    assert result.front.is_consistent(), "dominance violated"

    baseline = result.baseline
    assert baseline is not None
    print(
        f"\nGreedy baseline (paper workflow): error={baseline.error:.3g} "
        f"cycles={baseline.cycles:.1f} speedup={baseline.speedup:.3f}x"
    )
    print(f"  {baseline.config.describe()}")
    assert result.front.covers(baseline), (
        "the front must dominate or match the greedy baseline"
    )
    print("Front dominates or matches the greedy baseline  ✓")

    best = result.best_under()
    if best is not None:
        print(
            f"\nCheapest configuration within the {result.threshold:g} "
            f"threshold: {best.config.describe() or '(uniform f64)'}"
            f" — {best.speedup:.3f}x at error {best.error:.3g}"
        )
        # the analytic screen agrees in sign with the exact counted
        # delta, without compiling or running anything
        from repro.interp.cost_model import config_cycle_delta

        static_delta = config_cycle_delta(
            scenario.kernel.ir, best.config
        )
        counted_delta = best.cycles - best.cycles_reference
        print(
            f"  cycle delta vs reference: counted {counted_delta:+.1f},"
            f" static screen {static_delta:+.1f}"
        )


if __name__ == "__main__":
    main()
