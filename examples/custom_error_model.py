"""Custom error models — the paper's Listings 2 and 3.

Two ways to customize the analysis:

1. ``ExternalModel`` — synthesize calls to *your* Python function
   ``(dx, x, name) -> float`` (the analogue of Listing 3's
   ``clad::getErrorVal``).  Here we reimplement the ADAPT model and a
   ULP-counting model, and show they plug straight in.
2. Subclassing ``ErrorModel`` — build the error expression as IR, so it
   is inlined and optimized with the adjoint (the Listing 2 path).

Run:  python examples/custom_error_model.py
"""

import math

import repro
from repro.fp import round_f32, ulp
from repro.ir import builder as b
from repro.ir.types import DType


@repro.kernel
def payoff(s: float, k: float, r: float) -> float:
    """A small option-payoff-flavoured kernel with mixed operations."""
    m = s / k
    g = log(m) + r * r * 0.5
    disc = exp(0.0 - r)
    v = fmax(s - k * disc, 0.0) + g * 1e-3
    return v


# -- 1a. Listing 3 verbatim: the ADAPT model as a user function ------------

def get_error_val(dx: float, x: float, name: str) -> float:
    """err = dx * (x - (float)x) — the paper's getErrorVal."""
    return abs(dx * (x - round_f32(x)))


# -- 1b. a different user model: half-ULP worst-case rounding ---------------

def ulp_error_val(dx: float, x: float, name: str) -> float:
    """Each store may be off by half an ULP of its value."""
    return abs(dx) * 0.5 * ulp(x)


# -- 2. an IR-building model subclass (inlined + optimized) -----------------

class RelativeBudgetModel(repro.ErrorModel):
    """Charges a fixed relative budget per assignment: err = c·|x·dx|.

    Because the expression is built as IR, it is inlined into the
    adjoint and goes through constant folding / CSE / DCE like the
    built-in models.
    """

    name = "relative-budget"

    def __init__(self, budget: float) -> None:
        self.budget = budget

    def error_expr(self, ctx, target, adjoint, stmt):
        if not (target.dtype and target.dtype.is_float):
            return None
        x = (
            b.name(target.id, target.dtype)
            if hasattr(target, "id")
            else b.index(target.base, b.clone(target.index), target.dtype)
        )
        return b.fabs(
            b.mul(b.const(self.budget), b.mul(x, b.clone(adjoint)))
        )

    def input_error(self, name, value, adjoint):
        import numpy as np

        return float(
            np.sum(np.abs(self.budget * np.asarray(value) * np.asarray(adjoint)))
        )


def main() -> None:
    args = (105.0, 100.0, 0.05)

    print(f"payoff{args} = {payoff(*args):.10f}\n")
    sess = repro.Session()

    for label, model in [
        ("built-in Taylor (Eq. 1)", repro.TaylorModel()),
        ("built-in ADAPT (Eq. 2)", repro.AdaptModel()),
        ("ExternalModel: getErrorVal", repro.ExternalModel(get_error_val)),
        ("ExternalModel: half-ULP", repro.ExternalModel(ulp_error_val)),
        ("subclass: 1e-10 relative", RelativeBudgetModel(1e-10)),
    ]:
        rep = sess.estimate(payoff, model=model).execute(*args)
        print(f"{label:30s} total = {rep.total_error:.6g}")

    # the external re-implementation matches the built-in exactly
    ext = sess.estimate(
        payoff, model=repro.ExternalModel(get_error_val)
    ).execute(*args)
    builtin = sess.estimate(
        payoff, model=repro.AdaptModel()
    ).execute(*args)
    assert math.isclose(
        ext.total_error, builtin.total_error, rel_tol=1e-12
    )
    print("\nExternalModel(getErrorVal) == AdaptModel  ✓")


if __name__ == "__main__":
    main()
