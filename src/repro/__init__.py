"""repro — a Python reproduction of CHEF-FP (IPDPS 2023).

Fast, automatic floating-point error analysis via source-transformation
reverse-mode AD with inline error-estimation code.

Quickstart (paper Listing 1, through the session facade)::

    import repro

    @repro.kernel
    def func(x: "f32", y: "f32") -> float:
        z: "f32" = x + y
        return z

    sess = repro.Session()
    df = sess.estimate(func)
    report = df.execute(1.95e-5, 1.37e-7)
    print("Error in func:", report.total_error)

One :class:`~repro.session.Session` owns the shared resources
(estimator memo, sweep cache, run store, default models) and exposes
the whole workflow — ``estimate`` / ``sweep`` / ``tune`` / ``search`` /
``plan`` / ``runs`` — as methods; ``python -m repro`` is the matching
CLI, and ``python -m repro serve`` exposes the same workflow as a
long-lived HTTP/JSON job service over one shared session
(:mod:`repro.serve`).  The historical free functions (``estimate_error``,
``sweep_error``, ``greedy_tune``, ``robust_tune``,
``repro.search.search``) remain as deprecated wrappers over a default
session and disappear in 2.0.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.frontend.registry import kernel, Kernel, get_kernel
from repro.core.api import estimate_error, gradient, ErrorEstimator, Gradient
from repro.core.models import (
    ErrorModel,
    TaylorModel,
    AdaptModel,
    ApproxModel,
    CenaModel,
    ExternalModel,
)
from repro.core.report import ErrorReport, GradientResult
from repro.core.forward import forward_derivative, ForwardDerivative
from repro.ir.types import DType
from repro.sweep import (
    BatchReport,
    SweepCache,
    explicit_sweep,
    grid_sweep,
    random_sweep,
    summarize,
    sweep_error,
)
from repro.tuning import greedy_tune, robust_tune

# the Pareto precision-search subsystem: `repro.search` is the package
# (so `repro.search.search(...)` and `python -m repro.search` work);
# its front/result/registry types are re-exported at top level
from repro import search  # noqa: E402  (subsystem module, kept last)
from repro.search import (
    ParetoFront,
    RunStore,
    SearchOrchestrator,
    SearchResult,
    SearchScenario,
    STRATEGIES,
    get_strategy,
    register_strategy,
)

# the session facade: shared resources (estimator memo, sweep cache,
# run store, default models) + the whole workflow as methods — the
# canonical API; the free functions above are deprecated wrappers
from repro.session import RunsView, Session, SessionConfig  # noqa: E402

# the observability layer: span tracing, the process-wide metrics
# registry, and trace profiling (see README "Observability")
from repro import obs  # noqa: E402

# deterministic fault injection (see README "Failure semantics");
# importing it also honours the REPRO_FAULTS environment variable
from repro import faults  # noqa: E402

# distributed sharded search: lease-claiming worker fleets, store
# union-merge, winner-front election (see README "Distributed search")
from repro import dist  # noqa: E402
from repro.util.errors import (  # noqa: E402
    ConfigError,
    InputError,
    InvalidRecordError,
    ReproError,
    StoreError,
    UnknownNameError,
)

__version__ = "1.5.0"

__all__ = [
    "kernel",
    "Kernel",
    "get_kernel",
    "estimate_error",
    "gradient",
    "ErrorEstimator",
    "Gradient",
    "ErrorModel",
    "TaylorModel",
    "AdaptModel",
    "ApproxModel",
    "CenaModel",
    "ExternalModel",
    "ErrorReport",
    "GradientResult",
    "forward_derivative",
    "ForwardDerivative",
    "DType",
    "BatchReport",
    "SweepCache",
    "explicit_sweep",
    "grid_sweep",
    "random_sweep",
    "summarize",
    "sweep_error",
    "greedy_tune",
    "robust_tune",
    "search",
    "ParetoFront",
    "SearchResult",
    "SearchScenario",
    "STRATEGIES",
    "get_strategy",
    "register_strategy",
    "Session",
    "SessionConfig",
    "RunsView",
    "RunStore",
    "SearchOrchestrator",
    "obs",
    "dist",
    "ReproError",
    "InputError",
    "ConfigError",
    "UnknownNameError",
    "StoreError",
    "InvalidRecordError",
    "__version__",
]
