"""Shared retry policy: bounded backoff with decorrelated jitter.

One retry discipline for every durable I/O path (run store, sweep
cache, job journal, serve handlers) instead of ad-hoc ``except
OSError: pass`` blocks:

* only **transient** failures are retried (:func:`is_transient`
  classifies by errno — ``EIO``, ``EAGAIN``, ``EINTR``, ``EBUSY``,
  ``ETIMEDOUT``, ``ENOSPC``, ...; everything else propagates on the
  first throw);
* backoff uses *decorrelated jitter* (each delay drawn uniformly from
  ``[base, 3 * previous]``, capped) — the schedule that avoids both
  thundering-herd resonance and the long fixed tails of plain
  exponential backoff;
* every retry loop is bounded twice: by ``attempts`` and by a
  wall-clock ``deadline_s`` — a retried operation can never wedge its
  caller;
* telemetry is uniform: every sleep-then-retry increments
  ``repro_retries_total`` and emits a ``retry`` span (op, attempt,
  error type); giving up after a transient failure increments
  ``repro_retry_exhausted_total``.

The first successful call pays nothing beyond the ``try`` frame — no
span, no counter, no clock read beyond one ``monotonic()``.
"""

from __future__ import annotations

import errno
import random
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = [
    "RetryPolicy",
    "DEFAULT_IO_POLICY",
    "TRANSIENT_ERRNOS",
    "is_transient",
    "retry_call",
]

T = TypeVar("T")

#: errnos worth retrying: interruptions, contention, timeouts — and
#: ENOSPC, which log rotation or tempdir GC can clear within the
#: deadline (hopeless full disks exhaust the bounded schedule fast)
TRANSIENT_ERRNOS = frozenset(
    {
        errno.EIO,
        errno.EINTR,
        errno.EAGAIN,
        errno.EBUSY,
        errno.ETIMEDOUT,
        errno.ENOSPC,
        errno.ESTALE,
    }
)

_RETRIES = obs_metrics.REGISTRY.counter(
    "repro_retries_total", "transient-failure retries (all ops)"
)
_EXHAUSTED = obs_metrics.REGISTRY.counter(
    "repro_retry_exhausted_total",
    "retried ops that still failed at the attempt/deadline bound",
)

#: jitter source — schedule timing only, never results (retries return
#: the wrapped call's value unchanged), so this needs no seeding
_JITTER = random.Random()


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds of one retry schedule.

    Defaults suit local-filesystem I/O: four attempts inside two
    seconds, sleeping milliseconds.  Derive stricter/looser policies
    with ``dataclasses.replace``.
    """

    #: total call attempts (1 = no retries)
    attempts: int = 4
    #: minimum sleep between attempts
    base_s: float = 0.005
    #: maximum sleep between attempts
    cap_s: float = 0.25
    #: wall-clock budget across all attempts and sleeps
    deadline_s: float = 2.0


#: the shared default for store/cache/journal writes
DEFAULT_IO_POLICY = RetryPolicy()


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` is a retry-worthy transient ``OSError``."""
    return (
        isinstance(exc, OSError) and exc.errno in TRANSIENT_ERRNOS
    )


def retry_call(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy = DEFAULT_IO_POLICY,
    op: str = "io",
    classify: Callable[[BaseException], bool] = is_transient,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` with bounded transient-failure retries.

    Non-transient exceptions (per ``classify``) propagate immediately;
    transient ones are retried with decorrelated jitter until the
    attempt count or the deadline runs out, at which point the last
    exception propagates (after counting it exhausted).

    ``op`` labels the ``retry`` spans and should name the site
    (``"store.write"``); ``sleep`` is injectable for tests.
    """
    start = time.monotonic()
    prev = policy.base_s
    for attempt in range(1, policy.attempts + 1):
        try:
            return fn()
        except BaseException as exc:  # noqa: BLE001 - classified below
            if not classify(exc):
                raise
            delay = min(
                policy.cap_s, _JITTER.uniform(policy.base_s, prev * 3)
            )
            prev = delay
            out_of_budget = (
                attempt >= policy.attempts
                or time.monotonic() - start + delay > policy.deadline_s
            )
            if out_of_budget:
                _EXHAUSTED.inc()
                raise
            _RETRIES.inc()
            with obs_trace.span(
                "retry",
                op=op,
                attempt=attempt,
                error=type(exc).__name__,
                delay_s=round(delay, 6),
            ):
                sleep(delay)
    raise AssertionError("unreachable: loop returns or raises")


def retry_stats() -> dict:
    """Process-wide retry counters (views over the registry)."""
    return {
        "retries": _RETRIES.value,
        "exhausted": _EXHAUSTED.value,
    }
