"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can ``except ReproError`` to distinguish
library-level failures from genuine bugs.

User-facing validation errors additionally derive from the builtin
exception they historically were, so existing ``except ValueError`` /
``except TypeError`` / ``except KeyError`` callers keep working:

=========================  ===================  =========================
class                      also a               raised for
=========================  ===================  =========================
:class:`InputError`        ``TypeError``        undigestible/malformed
                                                user data (``digest_inputs``,
                                                validation-point shapes)
:class:`ConfigError`       ``ValueError``       invalid options or
                                                configuration (search knobs,
                                                plan validation, aggregator
                                                and sampler specs, prune
                                                criteria, ``SessionConfig``)
:class:`UnknownNameError`  ``ConfigError`` +    unknown registered names
                           ``KeyError``         (strategies, app scenarios,
                                                stored run ids)
:class:`StoreError`        ``RuntimeError``     run-store misuse (restore
                                                onto a warm evaluator,
                                                diffing incomplete runs)
:class:`InvalidRecordError` ``StoreError`` +    structurally invalid
                           ``ValueError``       stored records (history
                                                not a contiguous prefix)
=========================  ===================  =========================
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FrontendError(ReproError):
    """The Python-subset frontend rejected the input program.

    Raised when a ``@kernel`` function uses a construct outside the
    supported DSL (e.g. nested function definitions, unsupported operators,
    early returns inside control flow).
    """


class TypeCheckError(ReproError):
    """Static type inference/checking of an IR function failed."""


class DifferentiationError(ReproError):
    """The AD transformation could not differentiate a construct."""


class ValidationError(ReproError):
    """Structural validation of an IR function failed.

    Indicates a malformed IR tree — usually a bug in a transformation pass
    rather than a user error.  User-facing surfaces report definite
    input mistakes (duplicate parameters, use before definition) as
    :class:`IRConfigError`, which is also a :class:`ConfigError`.
    """


class ExecutionError(ReproError):
    """Executing generated or interpreted code failed."""


class InputError(ReproError, TypeError):
    """User-supplied data could not be interpreted.

    Raised for undigestible argument tuples (ragged nesting, ``None``
    or non-numeric elements, unsupported types) and malformed
    validation-point sequences.  Also a :class:`TypeError` for
    backwards compatibility.
    """


class ConfigError(ReproError, ValueError):
    """An option or configuration value is invalid.

    Covers search/tune knobs (error metrics, aggregator and sampler
    specs), plan validation, and :class:`repro.session.SessionConfig`
    construction.  Also a :class:`ValueError` for backwards
    compatibility.
    """


class IRConfigError(ValidationError, ConfigError):
    """An IR validation failure that is a user input mistake.

    Duplicate parameters and use-before-definition are errors in the
    *authored* kernel, not transformation bugs: deriving from both
    :class:`ValidationError` and :class:`ConfigError` keeps existing
    ``except ValidationError`` callers working while user-facing
    surfaces (CLI exit codes, serve HTTP status) treat them as
    invalid configuration.
    """


class UnknownNameError(ConfigError, KeyError):
    """A name was not found in a registry.

    Unknown search strategies, app scenarios, or stored run ids.  Also
    a :class:`KeyError` (and, via :class:`ConfigError`, a
    :class:`ValueError`) for backwards compatibility.
    """

    def __str__(self) -> str:  # KeyError quotes its repr; keep prose
        return Exception.__str__(self)


class StoreError(ReproError, RuntimeError):
    """A persistent run store was misused or is inconsistent.

    Restoring history onto a non-fresh evaluator, diffing runs that
    never completed.  (Invalid *option* values — a prune call without
    a criterion, a negative ``max_runs`` — are :class:`ConfigError`.)
    Also a :class:`RuntimeError` for backwards compatibility.
    """


class InvalidRecordError(StoreError, ValueError):
    """Stored evaluation records are structurally invalid.

    E.g. a restored history that is not a contiguous prefix of the
    deterministic evaluation order.  Also a :class:`ValueError` (this
    site historically raised one) on top of :class:`StoreError`.
    """


class AnalysisOutOfMemory(ReproError):
    """An analysis exceeded its configured memory budget.

    Used by the ADAPT baseline to emulate the paper's cluster OOM at large
    problem sizes without actually exhausting host memory.
    """

    def __init__(self, used_bytes: int, budget_bytes: int) -> None:
        super().__init__(
            f"analysis exceeded memory budget: used ~{used_bytes} bytes "
            f"of a {budget_bytes} byte budget"
        )
        self.used_bytes = used_bytes
        self.budget_bytes = budget_bytes
