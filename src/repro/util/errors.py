"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can ``except ReproError`` to distinguish
library-level failures from genuine bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FrontendError(ReproError):
    """The Python-subset frontend rejected the input program.

    Raised when a ``@kernel`` function uses a construct outside the
    supported DSL (e.g. nested function definitions, unsupported operators,
    early returns inside control flow).
    """


class TypeCheckError(ReproError):
    """Static type inference/checking of an IR function failed."""


class DifferentiationError(ReproError):
    """The AD transformation could not differentiate a construct."""


class ValidationError(ReproError):
    """Structural validation of an IR function failed.

    Indicates a malformed IR tree — usually a bug in a transformation pass
    rather than a user error.
    """


class ExecutionError(ReproError):
    """Executing generated or interpreted code failed."""


class AnalysisOutOfMemory(ReproError):
    """An analysis exceeded its configured memory budget.

    Used by the ADAPT baseline to emulate the paper's cluster OOM at large
    problem sizes without actually exhausting host memory.
    """

    def __init__(self, used_bytes: int, budget_bytes: int) -> None:
        super().__init__(
            f"analysis exceeded memory budget: used ~{used_bytes} bytes "
            f"of a {budget_bytes} byte budget"
        )
        self.used_bytes = used_bytes
        self.budget_bytes = budget_bytes
