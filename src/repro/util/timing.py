"""Lightweight wall-clock timing helpers."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring wall-clock time with ``perf_counter``.

    Example::

        with Timer() as t:
            run_analysis()
        print(t.elapsed_s)
    """

    def __init__(self) -> None:
        self.start: float = 0.0
        self.elapsed_s: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed_s = time.perf_counter() - self.start

    @property
    def elapsed_ms(self) -> float:
        """Elapsed time in milliseconds."""
        return self.elapsed_s * 1e3
