"""Shared utilities: error types, timing, and peak-memory measurement."""

from repro.util.errors import (
    ReproError,
    FrontendError,
    TypeCheckError,
    DifferentiationError,
    ValidationError,
    ExecutionError,
    AnalysisOutOfMemory,
)
from repro.util.timing import Timer
from repro.util.memory import measure_time_and_peak_memory

__all__ = [
    "ReproError",
    "FrontendError",
    "TypeCheckError",
    "DifferentiationError",
    "ValidationError",
    "ExecutionError",
    "AnalysisOutOfMemory",
    "Timer",
    "measure_time_and_peak_memory",
]
