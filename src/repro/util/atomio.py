"""Unified atomic file I/O: checksums, durability policy, quarantine.

Three subsystems (run store, sweep cache, job journal) grew three
copies of the same ``mkstemp`` + ``os.replace`` discipline.  This
module is the one implementation, extended with the robustness layers
the copies lacked:

* **checksummed framing** — :func:`atomic_write` with
  ``checksum=True`` wraps the payload in a small header (magic,
  SHA-256, length) that :func:`read_bytes` verifies, so a torn page or
  bit rot that survives the atomic rename is *detected* instead of
  deserialized; unframed legacy files still read (the frame is
  recognized by its magic, not assumed), so stores written before this
  layer keep working;
* **durability policy** — ``fsync=True`` fsyncs the temp file before
  the rename and the directory after it, turning "atomic against
  crashes of this process" into "atomic against power loss" where the
  caller wants to pay for it;
* **quarantine** — corrupt files move into a ``_quarantine/`` sibling
  directory (never deleted), preserving the forensic evidence while
  guaranteeing the bad entry cannot shadow a fresh write;
* **fault sites** — every helper probes :mod:`repro.faults` (sites
  like ``store.write``/``cache.read``) *inside* the retried callable,
  so injected transient errors exercise the same
  :mod:`repro.util.retry` schedule organic ones would, and injected
  ``torn`` faults truncate the payload mid-write while completing the
  rename silently — exactly the failure the checksum exists to catch.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro import faults
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.util.retry import RetryPolicy, retry_call

__all__ = [
    "CorruptPayloadError",
    "MAGIC",
    "frame",
    "unframe",
    "atomic_write",
    "publish_exclusive",
    "read_bytes",
    "quarantine",
    "QUARANTINE_DIR",
]

#: frame header magic; the trailing version digit gates format bumps
MAGIC = b"%RPIO1\n"

#: quarantine subdirectory name (sibling of the corrupt file)
QUARANTINE_DIR = "_quarantine"

_QUARANTINED = obs_metrics.REGISTRY.counter(
    "repro_quarantined_total", "corrupt files moved to quarantine"
)


class CorruptPayloadError(ValueError):
    """A framed payload failed its checksum/length verification."""


def frame(data: bytes) -> bytes:
    """Wrap ``data`` in the checksummed frame.

    Layout: ``MAGIC`` + 64 hex sha256 chars + ``\\n`` + decimal length
    + ``\\n`` + payload.  The digest covers the payload bytes only.
    """
    digest = hashlib.sha256(data).hexdigest().encode("ascii")
    return b"%s%s\n%d\n%s" % (MAGIC, digest, len(data), data)


def unframe(blob: bytes, *, source: Optional[Path] = None) -> bytes:
    """Verify and strip the frame; pass unframed payloads through.

    Blobs that do not start with :data:`MAGIC` are returned unchanged
    — the legacy-compatibility path for files written before framing.

    :raises CorruptPayloadError: framed blobs whose length or digest
        does not match (truncation, torn page, bit rot).
    """
    if not blob.startswith(MAGIC):
        return blob
    where = f" in {source}" if source is not None else ""
    head = blob[len(MAGIC):]
    try:
        digest_line, _, rest = head.partition(b"\n")
        length_line, _, payload = rest.partition(b"\n")
        expected_len = int(length_line)
    except ValueError:
        raise CorruptPayloadError(
            f"torn frame header{where}"
        ) from None
    if len(payload) != expected_len:
        raise CorruptPayloadError(
            f"truncated payload{where}: "
            f"{len(payload)} of {expected_len} bytes"
        )
    actual = hashlib.sha256(payload).hexdigest().encode("ascii")
    if actual != digest_line:
        raise CorruptPayloadError(f"checksum mismatch{where}")
    return payload


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a completed rename survives power loss."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return  # platform without directory fds: best effort
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(
    path: Union[str, Path],
    data: bytes,
    *,
    checksum: bool = False,
    fsync: bool = False,
    site: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
) -> None:
    """Write ``data`` to ``path`` atomically (tempfile + rename).

    A reader (or a crash) can only ever observe the old content or the
    new content, never a torn file.  ``checksum=True`` frames the
    payload for read-side verification; ``fsync=True`` makes the write
    durable against power loss; ``site`` names the fault-injection
    point probed on every attempt; ``retry`` retries transient
    ``OSError`` failures under the given policy (``None``: one
    attempt, failures propagate).
    """
    path = Path(path)
    payload = frame(data) if checksum else data

    def _write() -> None:
        body = payload
        spec = faults.check(site) if site is not None else None
        if spec is not None and spec.kind == "torn":
            # a torn write is *silent*: half the payload lands and the
            # rename completes, simulating the post-crash page tear
            # that only the read-side checksum can detect
            body = payload[: len(payload) // 2]
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(body)
                if fsync:
                    f.flush()
                    os.fsync(f.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if fsync:
            _fsync_dir(path.parent)

    if retry is None:
        _write()
    else:
        retry_call(_write, policy=retry, op=site or "atomic_write")


def publish_exclusive(
    path: Union[str, Path],
    data: bytes,
    *,
    checksum: bool = False,
    fsync: bool = False,
    site: Optional[str] = None,
) -> bool:
    """Atomically create ``path`` with ``data`` iff it does not exist.

    The compare-and-swap half of the lease protocol: the payload is
    written to a tempfile and published with ``os.link``, which fails
    with ``EEXIST`` when ``path`` already exists — so when N processes
    race to create the same file, exactly one wins.  Returns ``True``
    on publish, ``False`` when the path already existed (the caller
    lost the race).  Unlike :func:`atomic_write` this never replaces
    existing content.

    ``site`` probes fault injection like :func:`atomic_write` does:
    raising kinds propagate, and a ``torn`` fault truncates the
    payload while still publishing — leaving a corrupt file the
    read side must detect and treat as reclaimable.
    """
    path = Path(path)
    payload = frame(data) if checksum else data
    body = payload
    spec = faults.check(site) if site is not None else None
    if spec is not None and spec.kind == "torn":
        body = payload[: len(payload) // 2]
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(body)
            if fsync:
                f.flush()
                os.fsync(f.fileno())
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        if fsync:
            _fsync_dir(path.parent)
        return True
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def read_bytes(
    path: Union[str, Path],
    *,
    checked: bool = False,
    site: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
) -> bytes:
    """Read ``path`` with optional frame verification and retries.

    ``checked=True`` verifies and strips the checksum frame (legacy
    unframed files pass through).  ``FileNotFoundError`` always
    propagates immediately (ENOENT is not transient).

    :raises CorruptPayloadError: a framed payload failed verification.
    """
    path = Path(path)

    def _read() -> bytes:
        if site is not None:
            faults.check(site)
        return path.read_bytes()

    if retry is None:
        blob = _read()
    else:
        blob = retry_call(_read, policy=retry, op=site or "read")
    return unframe(blob, source=path) if checked else blob


def quarantine(
    path: Union[str, Path], reason: str = "corrupt"
) -> Optional[Path]:
    """Move a corrupt file into its directory's ``_quarantine/``.

    Preserves the evidence (nothing is deleted) while guaranteeing the
    bad file cannot shadow the fresh rewrite; repeated quarantines of
    the same name get numeric suffixes.  Returns the new location, or
    ``None`` when the move failed (the file is then unlinked as a last
    resort — a corrupt entry must never keep poisoning reads).
    """
    path = Path(path)
    qdir = path.parent / QUARANTINE_DIR
    try:
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        n = 0
        while target.exists() and n < 1000:
            n += 1
            target = qdir / f"{path.name}.{n}"
        os.replace(path, target)
    except OSError:
        try:
            path.unlink()
        except OSError:
            pass
        return None
    _QUARANTINED.inc()
    with obs_trace.span(
        "quarantine", path=str(path), reason=reason
    ):
        pass  # span carries the record; the move already happened
    return target
