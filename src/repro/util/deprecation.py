"""Deprecation plumbing for the legacy free-function entry points.

The PR-5 API redesign routes the whole workflow through
:class:`repro.session.Session`; the historical free functions
(``estimate_error``, ``sweep_error``, ``greedy_tune``, ``robust_tune``,
``repro.search.search``) and the ``python -m repro.search`` CLI remain
as thin wrappers over a default session, but warn on use and are
scheduled for removal in repro 2.0.

The warning fires **once per callsite** (the default Python
``__warningregistry__`` behaviour: one entry per message/category/
module/line), so a tuning loop calling a wrapper a thousand times warns
a single time.
"""

from __future__ import annotations

import warnings

#: the release in which the deprecated wrappers disappear
REMOVAL_VERSION = "2.0"


def warn_legacy(name: str, replacement: str, stacklevel: int = 3) -> None:
    """Warn that ``name`` is a legacy wrapper; point at ``replacement``.

    ``stacklevel=3`` attributes the warning to the *caller of the
    wrapper* (helper -> wrapper -> callsite), which is what makes the
    once-per-callsite dedup meaningful.
    """
    warnings.warn(
        f"{name} is deprecated and will be removed in repro "
        f"{REMOVAL_VERSION}; use {replacement} instead (see "
        f"repro.session.Session)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
