"""Peak-memory measurement for analysis runs.

The paper measures peak RSS with GNU ``time``; we use :mod:`tracemalloc`,
which tracks Python-level allocations.  Relative comparisons between
CHEF-FP (small push/pop stacks) and the ADAPT baseline (full tape) are
faithfully preserved; absolute numbers are Python-heap bytes, not RSS.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Any, Callable, Tuple


def measure_time_and_peak_memory(
    fn: Callable[[], Any],
) -> Tuple[Any, float, int]:
    """Run ``fn`` and return ``(result, elapsed_seconds, peak_bytes)``.

    Peak bytes are the tracemalloc peak *delta* attributable to the call
    (the counter is reset immediately before the call).  Nested use is not
    supported — tracemalloc keeps global state.
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    start = time.perf_counter()
    try:
        result = fn()
    finally:
        elapsed = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        if not was_tracing:
            tracemalloc.stop()
    return result, elapsed, peak
