"""Distributed sharded search: lease claims, store merge, worker fleet.

The content-addressed :class:`~repro.search.store.RunStore` (run ids
and record keys are content hashes) makes evaluation records mergeable
by construction — union-merge over run directories is conflict-free.
This package is the layer that exploits it:

* :mod:`repro.dist.lease` — a coordinator-free claim protocol over
  plan entries: atomic lease files with TTL expiry, heartbeat renewal
  and steal-after-expiry, so any number of processes can pull
  ``PlanEntry`` work from one plan;
* :mod:`repro.dist.store_merge` — union-dedup merge of run stores
  with record-level content verification and shard provenance stamped
  into merged manifests;
* :mod:`repro.dist.fleet` — a single-host multi-process worker fleet
  (``python -m repro dist run --plan P --workers N``): workers claim
  entries, fold per-shard seeds into the run key, checkpoint through
  the existing store contract, and survive ``SIGKILL`` (the lease
  expires, another worker resumes from the checkpoint prefix), ending
  in a winner-front election over the per-shard Pareto fronts.

Leases minimize duplicate work; they do not gate correctness.  The
store is content-addressed and checkpoints are atomic prefixes of a
deterministic evaluation order, so the rare double-execution a lost
lease permits converges on bit-identical records.
"""

from repro.dist.lease import Lease, LeaseLostError, LeaseManager
from repro.dist.store_merge import MergeReport, merge_stores
from repro.dist.fleet import FleetResult, run_fleet

__all__ = [
    "Lease",
    "LeaseLostError",
    "LeaseManager",
    "MergeReport",
    "merge_stores",
    "FleetResult",
    "run_fleet",
]
