"""Lock-free work claiming over shared storage: atomic lease files.

Many worker processes pull entries from one plan without a
coordinator.  The claim protocol needs exactly three properties, all
built from atomic filesystem primitives (the only shared medium the
run store assumes):

* **exclusive acquire** — a lease is published with
  :func:`repro.util.atomio.publish_exclusive` (tempfile +
  ``os.link``), which fails when the file exists: when N processes
  race to claim one key, exactly one link lands;
* **TTL + heartbeat** — a lease carries an absolute expiry deadline
  and the holder renews it (atomic rewrite) from the search's
  ``on_batch`` checkpoint hook; a worker that stops checkpointing —
  hung, OOM-killed, ``SIGKILL``-ed — stops renewing;
* **steal-after-expiry** — an expired (or unreadable/torn) lease is
  reclaimed by first *renaming it away* (``os.rename`` to a
  holder-unique tombstone: of N racing stealers exactly one rename
  succeeds, the rest get ``ENOENT`` and move on), then re-acquiring
  through the same exclusive publish.

Losing a lease is detected at the next renewal: the holder's token no
longer matches (or the file is gone) and :class:`LeaseLostError` tells
the worker to abandon the entry — its checkpoints remain a valid
prefix for whoever stole it.  Leases minimize duplicate work; they do
not gate correctness (the store is content-addressed and checkpoints
are deterministic prefixes, so double execution converges).

Fault sites ``lease.acquire`` and ``lease.renew`` inject here: raising
kinds (``oserror``/``enospc``) surface as claim failures the fleet
tolerates, and ``torn`` truncates the published payload — leaving a
corrupt lease the next reader treats as expired and steals.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.util import atomio
from repro.util.errors import ConfigError, ReproError

__all__ = [
    "Lease",
    "LeaseLostError",
    "LeaseManager",
    "DEFAULT_TTL_S",
]

#: default lease time-to-live; a holder renews well inside this from
#: its checkpoint heartbeat, so expiry means the holder is gone
DEFAULT_TTL_S = 30.0

_CLAIMS = obs_metrics.REGISTRY.counter(
    "repro_dist_claims_total", "lease claims granted"
)
_CONFLICTS = obs_metrics.REGISTRY.counter(
    "repro_dist_claim_conflicts_total",
    "lease claims refused (live holder elsewhere)",
)
_STEALS = obs_metrics.REGISTRY.counter(
    "repro_dist_lease_steals_total",
    "expired/corrupt leases reclaimed from a dead holder",
)
_RENEWALS = obs_metrics.REGISTRY.counter(
    "repro_dist_lease_renewals_total", "lease heartbeat renewals"
)
_LOST = obs_metrics.REGISTRY.counter(
    "repro_dist_leases_lost_total",
    "renewals that found the lease stolen or expired",
)


class LeaseLostError(ReproError):
    """The holder's lease is gone: stolen, expired, or unreadable.

    The worker must abandon the entry immediately — another process
    may already be executing it.  Its checkpoints stay behind as a
    valid resumable prefix, so no work is wasted."""


@dataclass
class Lease:
    """A granted claim (mutable: renewals advance the deadline)."""

    key: str
    owner: str
    token: str
    acquired: float
    deadline: float
    renewals: int = 0
    meta: Dict[str, object] = field(default_factory=dict)

    def to_record(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "owner": self.owner,
            "token": self.token,
            "acquired": self.acquired,
            "deadline": self.deadline,
            "renewals": self.renewals,
            "meta": dict(self.meta),
        }


def _parse_record(blob: bytes) -> Optional[Dict[str, object]]:
    """Decode a lease file; ``None`` for torn/foreign payloads."""
    try:
        rec = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if not isinstance(rec, dict):
        return None
    try:
        float(rec["deadline"])
        str(rec["token"])
    except (KeyError, TypeError, ValueError):
        return None
    return rec


class LeaseManager:
    """Claim protocol over one lease directory (see module docstring).

    ``directory`` is shared by all contenders — for run-store work it
    is :meth:`RunStore.leases_dir` (``<store_root>/_leases``).  Keys
    must be filesystem-safe; run ids (hex digests) are.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        owner: Optional[str] = None,
        ttl_s: float = DEFAULT_TTL_S,
    ) -> None:
        if float(ttl_s) <= 0:
            raise ConfigError(f"lease ttl_s must be > 0, got {ttl_s!r}")
        self.directory = Path(directory)
        self.ttl_s = float(ttl_s)
        self.owner = owner or f"{socket.gethostname()}:{os.getpid()}"
        # tombstone names are holder-unique so racing stealers never
        # rename onto each other's tombstones
        self._nonce = uuid.uuid4().hex[:12]

    # -- paths ---------------------------------------------------------------
    def _path(self, key: str) -> Path:
        if not key or any(c in key for c in "/\\\0") or key.startswith("."):
            raise ConfigError(f"lease key not filesystem-safe: {key!r}")
        return self.directory / f"{key}.lease"

    # -- claim ---------------------------------------------------------------
    def acquire(
        self, key: str, meta: Optional[Dict[str, object]] = None
    ) -> Optional[Lease]:
        """Try to claim ``key``; ``None`` when a live holder has it.

        Expired and unreadable (torn) leases are stolen.  Injected
        ``lease.acquire`` faults of a raising kind propagate as
        ``OSError`` — callers treat a failed claim attempt like a
        lost one and move on.
        """
        path = self._path(key)
        with obs_trace.span("dist.claim", key=key[:12], owner=self.owner):
            self.directory.mkdir(parents=True, exist_ok=True)
            now = time.time()
            existing: Optional[bytes]
            try:
                existing = path.read_bytes()
            except OSError:
                existing = None
            if existing is not None:
                rec = _parse_record(existing)
                if rec is not None and float(rec["deadline"]) > now:
                    _CONFLICTS.inc()
                    return None
                # expired or torn: steal via rename-away (exactly one
                # of N racing stealers wins the rename)
                tomb = self.directory / (
                    f".{key}.{self._nonce}.tomb"
                )
                try:
                    os.rename(path, tomb)
                except OSError:
                    _CONFLICTS.inc()
                    return None  # someone else stole it first
                try:
                    os.unlink(tomb)
                except OSError:
                    pass
                _STEALS.inc()
            lease = Lease(
                key=key,
                owner=self.owner,
                token=uuid.uuid4().hex,
                acquired=now,
                deadline=now + self.ttl_s,
                meta=dict(meta or {}),
            )
            payload = (
                json.dumps(lease.to_record(), indent=2) + "\n"
            ).encode("utf-8")
            if not atomio.publish_exclusive(
                path, payload, site="lease.acquire"
            ):
                _CONFLICTS.inc()
                return None  # lost the re-create race to another stealer
            _CLAIMS.inc()
            return lease

    def renew(self, lease: Lease) -> Lease:
        """Heartbeat: push the deadline out by one TTL (in place).

        :raises LeaseLostError: the on-disk lease is missing, owned by
            a different token, unreadable, or already expired — in
            every case a stealer may be running, so the holder must
            abandon the entry.  A ``torn`` fault at ``lease.renew``
            corrupts the file silently; the *next* renewal (or any
            contender's read) detects it.
        """
        path = self._path(lease.key)
        now = time.time()
        try:
            rec = _parse_record(path.read_bytes())
        except OSError:
            rec = None
        if (
            rec is None
            or rec.get("token") != lease.token
            or float(rec["deadline"]) <= now
        ):
            _LOST.inc()
            raise LeaseLostError(
                f"lease on {lease.key[:12]} lost by {lease.owner} "
                f"(stolen, expired, or unreadable)"
            )
        lease.deadline = now + self.ttl_s
        lease.renewals += 1
        payload = (
            json.dumps(lease.to_record(), indent=2) + "\n"
        ).encode("utf-8")
        try:
            atomio.atomic_write(path, payload, site="lease.renew")
        except OSError as exc:
            # a heartbeat that cannot land is indistinguishable (to
            # everyone else) from a dead holder: abandon conservatively
            _LOST.inc()
            raise LeaseLostError(
                f"lease renewal on {lease.key[:12]} failed: {exc}"
            ) from exc
        _RENEWALS.inc()
        return lease

    def release(self, lease: Lease) -> bool:
        """Drop a held lease; returns whether we still owned it.

        Only unlinks when the on-disk record carries our token *and*
        is unexpired — an expired lease may already have been stolen
        and re-published, and unlinking that would strand the new
        holder.  (The read-then-unlink window is a benign race: it
        could only remove our own still-live lease.)
        """
        path = self._path(lease.key)
        try:
            rec = _parse_record(path.read_bytes())
        except OSError:
            return False
        if rec is None or rec.get("token") != lease.token:
            return False
        if float(rec["deadline"]) <= time.time():
            return False
        try:
            os.unlink(path)
        except OSError:
            return False
        return True

    # -- inspection ----------------------------------------------------------
    def holder(self, key: str) -> Optional[Dict[str, object]]:
        """The live lease record for ``key``, or ``None``."""
        try:
            rec = _parse_record(self._path(key).read_bytes())
        except OSError:
            return None
        if rec is None or float(rec["deadline"]) <= time.time():
            return None
        return rec

    def active_keys(self) -> List[str]:
        """Keys currently under a live (unexpired, readable) lease."""
        try:
            entries = sorted(self.directory.iterdir())
        except OSError:
            return []
        now = time.time()
        out: List[str] = []
        for p in entries:
            if not p.name.endswith(".lease"):
                continue
            try:
                rec = _parse_record(p.read_bytes())
            except OSError:
                continue
            if rec is not None and float(rec["deadline"]) > now:
                out.append(p.name[: -len(".lease")])
        return out

    def sweep_expired(self) -> int:
        """Remove expired/torn lease files; returns how many."""
        removed = 0
        try:
            entries = sorted(self.directory.iterdir())
        except OSError:
            return 0
        now = time.time()
        for p in entries:
            if not p.name.endswith(".lease"):
                continue
            try:
                rec = _parse_record(p.read_bytes())
            except OSError:
                continue
            if rec is None or float(rec["deadline"]) <= now:
                tomb = self.directory / f".{p.name}.{self._nonce}.tomb"
                try:
                    os.rename(p, tomb)
                    os.unlink(tomb)
                except OSError:
                    continue
                removed += 1
        return removed
