"""Union-dedup merge of run stores, with verification and provenance.

Run ids are content hashes over everything that determines a run's
results, and evaluation records are keyed by candidate content — so
two stores never disagree about what a run id *means*, and merging is
a union with dedup rather than a reconciliation problem.  The only
judgment calls are freshness (a completed run beats a partial one; a
longer checkpoint prefix beats a shorter one — prefixes of the same
deterministic order never conflict) and hygiene (records re-verify
through the checksummed :mod:`repro.util.atomio` framing plus a
structural round-trip before they are imported; corrupt sources are
skipped, never propagated).

Merged manifests carry **shard provenance**: a ``shards`` list of
``{host, pid, seed, source}`` entries naming every process/store that
contributed, which :meth:`RunStore.resolve_run_id` surfaces in
ambiguity errors so merged stores stay debuggable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.search.store import RunStore, StoreLike, candidate_of
from repro.util.errors import ConfigError

__all__ = ["MergeReport", "merge_stores"]

_MERGED = obs_metrics.REGISTRY.counter(
    "repro_dist_merged_runs_total",
    "runs imported or updated by store merges",
)
_SKIPPED = obs_metrics.REGISTRY.counter(
    "repro_dist_merge_skipped_total",
    "source runs skipped by merges (corrupt or conflicting)",
)


@dataclass
class MergeReport:
    """What one merge did, per run and in aggregate."""

    dest: str
    sources: List[str]
    imported: int = 0
    updated: int = 0
    unchanged: int = 0
    skipped_corrupt: int = 0
    conflicts: int = 0
    runs: List[Dict[str, object]] = field(default_factory=list)

    def note(self, action: str, run_id: str, source: str, **extra: object) -> None:
        row: Dict[str, object] = {
            "run_id": run_id,
            "action": action,
            "source": source,
        }
        row.update(extra)
        self.runs.append(row)

    def to_dict(self) -> Dict[str, object]:
        return {
            "dest": self.dest,
            "sources": list(self.sources),
            "imported": self.imported,
            "updated": self.updated,
            "unchanged": self.unchanged,
            "skipped_corrupt": self.skipped_corrupt,
            "conflicts": self.conflicts,
            "runs": list(self.runs),
        }


def _as_store(store: StoreLike) -> RunStore:
    if isinstance(store, RunStore):
        return store
    if store is None:
        raise ConfigError("merge requires a store path")
    return RunStore(store)


def _provenance_entries(
    manifest: Mapping[str, object], source: str
) -> List[Dict[str, object]]:
    """The shard entries a manifest contributes to a merged one."""
    shards = manifest.get("shards")
    if isinstance(shards, list) and shards:
        return [dict(s) for s in shards if isinstance(s, Mapping)]
    key = manifest.get("key")
    origin = manifest.get("origin")
    entry: Dict[str, object] = {
        "host": origin.get("host") if isinstance(origin, Mapping) else None,
        "pid": origin.get("pid") if isinstance(origin, Mapping) else None,
        "seed": key.get("seed") if isinstance(key, Mapping) else None,
        "source": source,
    }
    return [entry]


def _union_shards(
    *entry_lists: Sequence[Mapping[str, object]],
) -> List[Dict[str, object]]:
    seen = set()
    out: List[Dict[str, object]] = []
    for entries in entry_lists:
        for e in entries:
            fp = tuple(sorted((str(k), str(v)) for k, v in e.items()))
            if fp in seen:
                continue
            seen.add(fp)
            out.append(dict(e))
    out.sort(key=lambda e: sorted((str(k), str(v)) for k, v in e.items()))
    return out


def _verified_records(
    src: RunStore, manifest: Mapping[str, object], verify: bool
) -> Optional[List[Dict[str, object]]]:
    """The source run's records, or ``None`` when unsafe to import.

    ``load_records`` already enforces the checksum frame and the index
    -prefix property; ``verify=True`` additionally round-trips every
    record through :func:`candidate_of` (structural content check) and
    refuses completed runs whose record count no longer matches their
    manifest — either means the source run dir is damaged.
    """
    run_id = str(manifest.get("run_id"))
    records = src.load_records(run_id)
    if not verify:
        return records
    for rec in records:
        try:
            candidate_of(rec)
        except Exception:
            return None
    if manifest.get("completed"):
        declared = int(manifest.get("n_evaluations", 0))  # type: ignore[arg-type]
        if declared != len(records):
            return None
    return records


def merge_stores(
    dest: StoreLike,
    sources: Sequence[StoreLike],
    *,
    verify: bool = True,
) -> MergeReport:
    """Union-merge every run in ``sources`` into ``dest``.

    Dedup is by content-addressed run id.  Per run: absent in the
    destination → imported wholesale; present but incomplete → the
    completed (or longer-prefix) version wins; both completed → kept
    as-is, with a disagreement in declared results counted as a
    ``conflict`` (the destination is never clobbered).  Every imported
    or updated manifest gains ``shards`` provenance naming the
    contributing origins.  Sources are read-only throughout.
    """
    dst = _as_store(dest)
    srcs = [_as_store(s) for s in sources]
    if not srcs:
        raise ConfigError("merge requires at least one source store")
    dst_root = dst.root.resolve()
    for s in srcs:
        if s.root.resolve() == dst_root:
            raise ConfigError(
                f"merge source {s.root} is the destination store"
            )
    report = MergeReport(
        dest=str(dst.root), sources=[str(s.root) for s in srcs]
    )
    with obs_trace.span(
        "dist.merge", dest=str(dst.root), sources=len(srcs)
    ):
        for src in srcs:
            _merge_one_source(dst, src, report, verify)
    return report


def _merge_one_source(
    dst: RunStore, src: RunStore, report: MergeReport, verify: bool
) -> None:
    source = str(src.root)
    manifests = sorted(
        src.list_runs(), key=lambda m: str(m.get("run_id"))
    )
    for manifest in manifests:
        run_id = str(manifest.get("run_id"))
        records = _verified_records(src, manifest, verify)
        if records is None:
            report.skipped_corrupt += 1
            _SKIPPED.inc()
            report.note(
                "skipped_corrupt", run_id, source,
                reason="records failed content verification",
            )
            continue
        provenance = _provenance_entries(manifest, source)
        existing = dst.load_manifest(run_id)
        if existing is None:
            merged = dict(manifest)
            merged["shards"] = _union_shards(provenance)
            dst.save_manifest(run_id, merged)
            if records:
                dst.checkpoint(run_id, records)
            report.imported += 1
            _MERGED.inc()
            report.note(
                "imported", run_id, source, n_records=len(records)
            )
            continue
        if existing.get("completed"):
            if manifest.get("completed") and (
                existing.get("n_evaluations")
                != manifest.get("n_evaluations")
                or existing.get("front") != manifest.get("front")
            ):
                # two *completed* runs under one content-addressed id
                # must agree; a mismatch means one side is damaged.
                # Keep the destination, flag it loudly.
                report.conflicts += 1
                _SKIPPED.inc()
                report.note(
                    "conflict", run_id, source,
                    reason="completed runs disagree on results",
                )
                continue
            report.unchanged += 1
            report.note("unchanged", run_id, source)
            continue
        # destination holds a partial run: completed source wins;
        # otherwise the longer checkpoint prefix does (prefixes of the
        # same deterministic order, so "longer" strictly supersedes)
        dst_records = dst.load_records(run_id)
        if manifest.get("completed"):
            merged = dict(manifest)
            merged["shards"] = _union_shards(
                _provenance_entries(existing, str(dst.root)), provenance
            )
            dst.save_manifest(run_id, merged)
            dst.checkpoint(run_id, records)
            report.updated += 1
            _MERGED.inc()
            report.note(
                "updated", run_id, source,
                reason="source completed",
                n_records=len(records),
            )
        elif len(records) > len(dst_records):
            merged = dict(existing)
            merged["shards"] = _union_shards(
                _provenance_entries(existing, str(dst.root)), provenance
            )
            dst.save_manifest(run_id, merged)
            dst.checkpoint(run_id, records)
            report.updated += 1
            _MERGED.inc()
            report.note(
                "updated", run_id, source,
                reason="longer checkpoint prefix",
                n_records=len(records),
            )
        else:
            report.unchanged += 1
            report.note("unchanged", run_id, source)
