"""Single-host multi-process worker fleet over one shared run store.

``run_fleet`` turns a (possibly sharded) search plan into a pool of
worker processes that coordinate through the store alone:

* every worker independently resolves each plan entry to its
  content-addressed run id and claims entries through
  :class:`~repro.dist.lease.LeaseManager` — no queue, no coordinator;
* per-shard seeds (see
  :func:`repro.search.orchestrator.shard_entries`) fold into the run
  key, so shard runs never collide and any serial
  :class:`~repro.search.orchestrator.SearchOrchestrator` execution of
  the same sharded entries is the bit-identical reference;
* execution goes through the ordinary
  :meth:`SearchScenario.run` → :meth:`Session.search` path with
  ``resume=True``, checkpointing through the existing store contract;
  the lease heartbeat rides the search's ``on_batch`` checkpoint hook;
* a ``SIGKILL``-ed worker stops renewing, its lease expires, and any
  surviving worker steals the entry and resumes from the checkpoint
  prefix — completing to results bit-identical to the uninterrupted
  run;
* the fleet ends with a **winner-front election**: the per-shard
  Pareto fronts stored in the run manifests are unioned with dominance
  pruning (:func:`repro.search.pareto.union_fronts`), each surviving
  point tagged with the shard that produced it.

Workers are ordinary ``multiprocessing`` processes (fork-started where
available, so the parent's warm estimator memo is inherited); each
writes a JSON summary into the store's ``_dist/`` directory that the
parent folds into :class:`FleetResult.stats`.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.search.orchestrator import (
    PlanEntry,
    _check_overrides,
    app_scenarios,
    shard_entries,
)
from repro.search.pareto import ParetoFront, union_fronts
from repro.search.store import DIST_DIRNAME, RunStore, StoreLike
from repro.session.config import SessionConfig
from repro.util import atomio
from repro.util.errors import ConfigError, UnknownNameError

from repro.dist.lease import LeaseLostError, LeaseManager

__all__ = ["FleetResult", "run_fleet", "elect_front"]

_WORKERS_SPAWNED = obs_metrics.REGISTRY.counter(
    "repro_dist_workers_spawned_total", "fleet worker processes started"
)
_ENTRIES_DONE = obs_metrics.REGISTRY.counter(
    "repro_dist_entries_completed_total",
    "plan entries completed by fleet workers",
)
_FLEETS = obs_metrics.REGISTRY.counter(
    "repro_dist_fleet_runs_total", "fleet executions"
)

#: override keys that participate in run identity — the subset of
#: plan overrides forwarded to :meth:`Session.search_run_id` when a
#: worker resolves an entry to the run id it must claim
_IDENTITY_OVERRIDES = (
    "budget",
    "strategies",
    "seed",
    "aggregate",
    "error_metric",
)

#: worker-summary counters aggregated into ``FleetResult.stats``
_SUMMARY_KEYS = (
    "completed",
    "abandoned",
    "failed",
    "claims",
    "claim_conflicts",
    "steals",
    "renewals",
)


@dataclass
class FleetResult:
    """Outcome of one fleet execution."""

    workers: int
    shards: int
    completed: bool
    entries: List[Dict[str, object]]
    front: List[Dict[str, object]]
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.completed

    def to_dict(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "shards": self.shards,
            "completed": self.completed,
            "entries": list(self.entries),
            "front": list(self.front),
            "stats": dict(self.stats),
        }

    def report(self) -> str:
        """Human-readable fleet summary (the CLI's default output)."""
        done = sum(1 for e in self.entries if e.get("completed"))
        lines = [
            f"fleet: {self.workers} worker(s), {len(self.entries)} "
            f"entr{'y' if len(self.entries) == 1 else 'ies'} "
            f"({self.shards} shard(s)/entry), "
            f"{done}/{len(self.entries)} completed"
        ]
        for e in self.entries:
            state = "completed" if e.get("completed") else "INCOMPLETE"
            lines.append(
                f"  {e.get('scenario')} seed={e.get('seed')} "
                f"run={str(e.get('run_id'))[:12]} {state} "
                f"evals={e.get('n_evaluations')}"
            )
        stats = self.stats
        lines.append(
            "  claims={claims} conflicts={claim_conflicts} "
            "steals={steals} renewals={renewals} "
            "abandoned={abandoned} failed={failed}".format(
                **{k: stats.get(k, 0) for k in _SUMMARY_KEYS}
            )
        )
        lines.append(
            f"winner front: {len(self.front)} point(s)"
        )
        for p in self.front:
            prov = p.get("provenance") or {}
            lines.append(
                f"  cycles={p.get('cycles'):12.1f}  "
                f"error={p.get('error'):.4g}  {p.get('key')}  "
                f"<{str(prov.get('run_id'))[:12]} "
                f"seed={prov.get('seed')}>"
            )
        return "\n".join(lines)


def _normalize_entries(entries: Sequence[object]) -> List[PlanEntry]:
    out: List[PlanEntry] = []
    for entry in entries:
        if isinstance(entry, PlanEntry):
            out.append(entry)
        elif isinstance(entry, str):
            out.append(PlanEntry(scenario=entry))
        elif isinstance(entry, Mapping):
            out.append(PlanEntry.from_dict(entry))
        else:
            raise ConfigError(
                f"fleet entries must be scenario names, dicts, or "
                f"PlanEntry — got {type(entry).__name__}"
            )
    if not out:
        raise ConfigError("fleet has no entries")
    known = app_scenarios()
    unknown = sorted({e.scenario for e in out if e.scenario not in known})
    if unknown:
        raise UnknownNameError(
            f"unknown fleet scenarios {unknown} "
            f"(available: {sorted(known)})"
        )
    return out


def _entry_run_id(session, scen, merged: Mapping[str, object]) -> str:
    """The run id an entry resolves to (identity overrides only)."""
    kwargs = {
        k: merged[k] for k in _IDENTITY_OVERRIDES if k in merged
    }
    return session.search_run_id(
        scen, None, merged.get("threshold"), **kwargs
    )


def _resolve_plan(session, defaults, entries):
    """(entry, scenario, merged overrides, run_id) per plan entry."""
    resolved = []
    for entry in entries:
        merged = dict(defaults)
        merged.update(entry.overrides)
        scen = app_scenarios()[entry.scenario].search_scenario(
            **entry.scenario_args
        )
        resolved.append(
            (entry, scen, merged, _entry_run_id(session, scen, merged))
        )
    return resolved


def _make_heartbeat(leases: LeaseManager, lease, every_s: float):
    """An ``on_batch`` hook renewing the lease at most every
    ``every_s`` seconds; raises :class:`LeaseLostError` (aborting the
    search resumably) the moment the lease is gone."""
    last = [time.monotonic()]

    def on_batch(_n: int) -> None:
        now = time.monotonic()
        if now - last[0] >= every_s:
            leases.renew(lease)
            last[0] = now

    return on_batch


def _worker_main(
    worker_index: int,
    store_root: str,
    config_json: str,
    plan_json: str,
    ttl_s: float,
    poll_s: float,
    deadline_epoch: Optional[float],
    env: Optional[Dict[str, str]],
) -> None:
    """One fleet worker: claim, run/resume, heartbeat, repeat.

    Coordination is store-only; the worker never talks to the parent
    (its end-of-life summary lands in ``<store>/_dist/``).  ``env`` is
    the deterministic failure seam the smoke tests use (for example
    ``REPRO_SEARCH_CRASH_AFTER`` to ``SIGKILL`` this worker after N
    computed candidates land post-checkpoint).
    """
    if env:
        os.environ.update({str(k): str(v) for k, v in env.items()})
    from repro.session import Session  # after env, before faults enable

    config = SessionConfig.from_json(config_json)
    store = RunStore(store_root, fsync=config.fsync)
    session = Session(config, store=store)
    payload = json.loads(plan_json)
    defaults = payload.get("defaults") or {}
    entries = [PlanEntry.from_dict(raw) for raw in payload["entries"]]
    owner = f"worker-{worker_index}:{os.getpid()}"
    leases = LeaseManager(store.leases_dir(), owner=owner, ttl_s=ttl_s)
    resolved = _resolve_plan(session, defaults, entries)
    n = len(resolved)
    # start each worker at a different offset so an idle fleet spreads
    # over the plan instead of stampeding entry 0
    order = [(worker_index + i) % n for i in range(n)]
    pending = set(range(n))
    summary: Dict[str, object] = {
        "worker": worker_index,
        "pid": os.getpid(),
        "completed": 0,
        "abandoned": 0,
        "failed": 0,
        "errors": [],
    }
    with obs_trace.span("dist.worker", worker=worker_index, entries=n):
        while pending:
            if (
                deadline_epoch is not None
                and time.time() >= deadline_epoch
            ):
                break
            progress = False
            for i in order:
                if i not in pending:
                    continue
                entry, scen, merged, run_id = resolved[i]
                manifest = store.load_manifest(run_id)
                if manifest is not None and manifest.get("completed"):
                    pending.discard(i)
                    continue
                try:
                    lease = leases.acquire(
                        run_id,
                        meta={
                            "scenario": entry.scenario,
                            "worker": worker_index,
                        },
                    )
                except OSError:
                    continue  # injected/transient claim fault: retry later
                if lease is None:
                    continue  # live holder elsewhere: move on
                progress = True
                try:
                    scen.run(
                        session=session,
                        store=store,
                        resume=True,
                        on_batch=_make_heartbeat(
                            leases, lease, ttl_s / 3.0
                        ),
                        **merged,
                    )
                    pending.discard(i)
                    summary["completed"] = int(summary["completed"]) + 1
                    _ENTRIES_DONE.inc()
                except LeaseLostError:
                    # stolen mid-run: our checkpoints remain a valid
                    # prefix for the thief; try other entries
                    summary["abandoned"] = int(summary["abandoned"]) + 1
                except Exception as exc:  # noqa: BLE001 - recorded, not fatal
                    pending.discard(i)
                    summary["failed"] = int(summary["failed"]) + 1
                    summary["errors"].append(  # type: ignore[union-attr]
                        {
                            "scenario": entry.scenario,
                            "run_id": run_id[:12],
                            "error": str(exc),
                        }
                    )
                finally:
                    leases.release(lease)
            if pending and not progress:
                time.sleep(poll_s)
    reg = obs_metrics.REGISTRY
    summary["claims"] = reg.counter("repro_dist_claims_total").value
    summary["claim_conflicts"] = reg.counter(
        "repro_dist_claim_conflicts_total"
    ).value
    summary["steals"] = reg.counter(
        "repro_dist_lease_steals_total"
    ).value
    summary["renewals"] = reg.counter(
        "repro_dist_lease_renewals_total"
    ).value
    dist_dir = store.root / DIST_DIRNAME
    dist_dir.mkdir(parents=True, exist_ok=True)
    atomio.atomic_write(
        dist_dir / f"worker-{worker_index}.json",
        (json.dumps(summary, indent=2) + "\n").encode("utf-8"),
    )


def elect_front(
    manifests: Sequence[Optional[Mapping[str, object]]],
) -> ParetoFront:
    """Union the manifests' stored fronts into the winner front.

    Dominance pruning and deterministic tie-breaking are
    :func:`repro.search.pareto.union_fronts`'s; this wrapper builds
    the per-shard provenance tags from the manifests.
    """
    staged = []
    for m in manifests:
        if not isinstance(m, Mapping):
            continue
        key = m.get("key")
        # provenance is the run identity (id, label, seed) only — not
        # the creator's host/pid (those live in the manifest "origin")
        # — so the elected front is bit-identical across executions of
        # the same sharded plan, no matter which process ran a shard
        provenance: Dict[str, object] = {
            "run_id": m.get("run_id"),
            "label": m.get("label"),
            "seed": key.get("seed") if isinstance(key, Mapping) else None,
        }
        staged.append((m.get("front") or [], provenance))
    return union_fronts(staged)


def run_fleet(
    entries: Sequence[object],
    store: StoreLike,
    *,
    workers: int = 2,
    shards: int = 1,
    defaults: Optional[Mapping[str, object]] = None,
    session_config: Optional[SessionConfig] = None,
    ttl_s: Optional[float] = None,
    poll_s: float = 0.05,
    deadline_s: Optional[float] = None,
    worker_env: Optional[Mapping[int, Mapping[str, str]]] = None,
    warm_start: bool = True,
) -> FleetResult:
    """Execute a (sharded) plan with ``workers`` claiming processes.

    ``entries`` mixes scenario names, dicts and
    :class:`~repro.search.orchestrator.PlanEntry`; ``shards > 1``
    expands them with per-shard seeds first.  ``defaults`` must be
    JSON-expressible (they are shipped to the workers).  ``ttl_s``
    falls back to ``session_config.lease_ttl_s``.  ``worker_env`` maps
    a worker index to extra environment variables for that worker —
    the deterministic failure seam the SIGKILL smoke tests use.

    Returns a :class:`FleetResult`; ``completed`` is ``False`` when
    any entry's run never finished (all workers crashed, a scenario
    failed deterministically, or ``deadline_s`` elapsed).  Completed
    fleets end with the winner-front election over the per-shard
    stored fronts.
    """
    if int(workers) < 1:
        raise ConfigError(f"workers must be >= 1, got {workers!r}")
    config = (
        session_config if session_config is not None else SessionConfig()
    )
    run_store = (
        store if isinstance(store, RunStore)
        else RunStore(store, fsync=config.fsync)  # type: ignore[arg-type]
    )
    plan_entries = _normalize_entries(entries)
    fleet_defaults = dict(defaults or {})
    _check_overrides(fleet_defaults, "fleet defaults")
    if int(shards) > 1:
        plan_entries = shard_entries(
            plan_entries,
            int(shards),
            default_seed=int(
                fleet_defaults.get("seed", config.seed)  # type: ignore[arg-type]
            ),
        )
    try:
        plan_json = json.dumps(
            {
                "defaults": fleet_defaults,
                "entries": [e.to_dict() for e in plan_entries],
            }
        )
    except TypeError as exc:
        raise ConfigError(
            f"fleet defaults must be JSON-expressible "
            f"(they are shipped to worker processes): {exc}"
        ) from None
    ttl = float(ttl_s if ttl_s is not None else config.lease_ttl_s)
    if ttl <= 0:
        raise ConfigError(f"ttl_s must be > 0, got {ttl_s!r}")
    _FLEETS.inc()

    # the parent resolves run ids for result assembly with faults
    # disabled — injection targets the workers (which enable the plan
    # from their own config), not the election bookkeeping
    from repro.session import Session

    parent_session = Session(
        config.with_options(fault_plan=None, store_dir=None),
        store=run_store,
    )
    resolved = _resolve_plan(
        parent_session, fleet_defaults, plan_entries
    )
    if warm_start:
        # fork-started workers inherit the compiled estimator memo,
        # so the per-worker compile cost is paid once
        from repro.core.api import warm_start_estimator_memo
        from repro.core.models import AdaptModel, TaylorModel
        from repro.ir.types import DType

        warm_start_estimator_memo(
            [scen.kernel for _, scen, _, _ in resolved],
            models=(TaylorModel(), AdaptModel(DType.F32)),
        )

    # stale summaries from a previous fleet over the same store must
    # not fold into this fleet's stats
    dist_dir = run_store.root / DIST_DIRNAME
    if dist_dir.is_dir():
        for path in dist_dir.glob("worker-*.json"):
            try:
                path.unlink()
            except OSError:
                pass

    deadline_epoch = (
        time.time() + float(deadline_s) if deadline_s is not None else None
    )
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork: spawn still works
        ctx = multiprocessing.get_context()
    procs = []
    for w in range(int(workers)):
        env = dict((worker_env or {}).get(w) or {})
        proc = ctx.Process(
            target=_worker_main,
            args=(
                w,
                str(run_store.root),
                config.to_json(),
                plan_json,
                ttl,
                float(poll_s),
                deadline_epoch,
                env or None,
            ),
            name=f"repro-dist-worker-{w}",
        )
        proc.start()
        _WORKERS_SPAWNED.inc()
        procs.append(proc)
    for proc in procs:
        if deadline_epoch is None:
            proc.join()
        else:
            proc.join(timeout=max(0.0, deadline_epoch - time.time()) + ttl)
            if proc.is_alive():
                proc.terminate()
                proc.join()

    # -- result assembly ----------------------------------------------------
    entry_rows: List[Dict[str, object]] = []
    manifests = []
    for entry, _scen, merged, run_id in resolved:
        manifest = run_store.load_manifest(run_id)
        manifests.append(manifest)
        completed = bool(manifest and manifest.get("completed"))
        entry_rows.append(
            {
                "scenario": entry.scenario,
                "seed": merged.get("seed"),
                "run_id": run_id,
                "completed": completed,
                "n_evaluations": (
                    run_store.stored_evaluation_count(manifest)
                    if manifest is not None
                    else 0
                ),
            }
        )
    with obs_trace.span(
        "dist.merge", entries=len(resolved), workers=int(workers)
    ):
        front = elect_front(manifests)
    stats: Dict[str, object] = {k: 0 for k in _SUMMARY_KEYS}
    errors: List[object] = []
    if dist_dir.is_dir():
        for path in sorted(dist_dir.glob("worker-*.json")):
            try:
                summary = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if not isinstance(summary, dict):
                continue
            for k in _SUMMARY_KEYS:
                if isinstance(summary.get(k), int):
                    stats[k] = int(stats[k]) + summary[k]  # type: ignore[arg-type]
            errors.extend(summary.get("errors") or [])
    if errors:
        stats["errors"] = errors
    # worker counters increment in the forked subprocesses — fold the
    # summary totals back into this process's registry so a serving
    # parent's /v1/metrics reflects the fleet's lease traffic
    for key, counter_name in (
        ("completed", "repro_dist_entries_completed_total"),
        ("claims", "repro_dist_claims_total"),
        ("claim_conflicts", "repro_dist_claim_conflicts_total"),
        ("steals", "repro_dist_lease_steals_total"),
        ("renewals", "repro_dist_lease_renewals_total"),
    ):
        count = stats.get(key)
        if isinstance(count, int) and count > 0:
            obs_metrics.REGISTRY.counter(counter_name).inc(count)
    return FleetResult(
        workers=int(workers),
        shards=int(shards),
        completed=all(r["completed"] for r in entry_rows),
        entries=entry_rows,
        front=[p.to_dict() for p in front.points],  # type: ignore[union-attr]
        stats=stats,
    )
