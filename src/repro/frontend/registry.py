"""Kernel registry and the ``@kernel`` decorator.

A :class:`Kernel` owns the IR of one DSL function, plus lazily-built
execution artifacts (compiled primal, cost-counting variant).  Kernels
register globally by name so that other kernels can call (and inline)
them, mirroring how Clad resolves calls through Clang's symbol table.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.frontend.parser import parse_kernel
from repro.ir import nodes as N
from repro.ir.printer import format_function
from repro.ir.validate import validate_function

_REGISTRY: Dict[str, "Kernel"] = {}
_REGISTRY_LOCK = threading.Lock()


def get_kernel(name: str) -> Optional["Kernel"]:
    """Look up a registered kernel by name (``None`` if absent)."""
    return _REGISTRY.get(name)


def _resolve_ir(name: str) -> Optional[N.Function]:
    k = _REGISTRY.get(name)
    return k.ir if k is not None else None


class Kernel:
    """A DSL function lowered to IR, executable as a plain Python callable.

    Calling a kernel runs the *compiled primal* (generated Python code),
    so ``k(1.0, 2.0)`` behaves exactly like the original function, modulo
    the declared storage precisions of its locals.
    """

    def __init__(self, pyfunc: Callable, ir: N.Function) -> None:
        self.pyfunc = pyfunc
        self.ir = ir
        self.__name__ = ir.name
        self.__doc__ = pyfunc.__doc__
        self._compiled: Optional[Callable] = None

    # -- execution -----------------------------------------------------------
    def __call__(self, *args: object) -> object:
        if self._compiled is None:
            from repro.codegen.compile import compile_primal

            self._compiled = compile_primal(self.ir)
        return self._compiled(*args)

    def run_reference(self, *args: object) -> object:
        """Run via the tree-walking interpreter (semantic reference)."""
        from repro.interp.interpreter import run_function

        return run_function(self.ir, list(args))

    # -- introspection ---------------------------------------------------------
    @property
    def source(self) -> str:
        """Pretty-printed IR."""
        return format_function(self.ir)

    def __repr__(self) -> str:
        params = ", ".join(f"{p.name}: {p.type}" for p in self.ir.params)
        return f"<kernel {self.ir.name}({params})>"


def kernel(fn: Callable) -> Kernel:
    """Decorator: lower a restricted-Python function to a :class:`Kernel`.

    Usage::

        @kernel
        def func(x: float, y: float) -> float:
            z = x + y
            return z

    The decorated object is a :class:`Kernel`; call it like the original
    function, or hand it to :func:`repro.estimate_error` /
    :func:`repro.gradient`.

    :raises FrontendError: if the function falls outside the DSL.
    """
    ir = parse_kernel(fn, resolve_kernel=_resolve_ir)
    validate_function(ir)
    k = Kernel(fn, ir)
    with _REGISTRY_LOCK:
        if ir.name in _REGISTRY:
            # Redefinition (e.g. re-running a notebook cell) replaces the
            # old kernel.
            pass
        _REGISTRY[ir.name] = k
    return k


def clear_registry() -> None:
    """Drop all registered kernels (test isolation helper)."""
    with _REGISTRY_LOCK:
        _REGISTRY.clear()
