"""Python-subset → IR lowering.

This is the analogue of Clad consuming Clang's AST: we parse the source
of a ``@kernel``-decorated function with :mod:`ast` and lower it to
:mod:`repro.ir`.  The supported subset (checked, with line-numbered
errors):

* typed parameters (``float``, ``int``, ``"f32"``, ``"f64[]"``, ...),
* scalar locals (first assignment declares; ``x: "f32" = e`` pins storage
  precision — the hook the mixed-precision tuner rewrites),
* ``for i in range(...)``, ``while``, ``if/elif/else``, ``break``,
* a single ``return`` as the function's final statement,
* arithmetic, comparisons, ``and``/``or``/``not``, array indexing,
* calls to registered intrinsics (``sin``, ``sqrt``, ``math.exp``,
  ``abs`` → ``fabs``, precision casts ``f32(x)``/``f64(x)``/``float(x)``),
* calls to other ``@kernel`` functions — inlined at parse time, so the IR
  that reaches the differentiator is always call-free except for
  intrinsics (Clad instead recurses; inlining is the classic alternative
  and keeps the adjoint generator single-function).
"""

from __future__ import annotations

import ast
import inspect
import math
import textwrap
from typing import Callable, Dict, List, Optional, Tuple

from repro.frontend.intrinsics import INTRINSICS
from repro.ir import builder as b
from repro.ir import nodes as N
from repro.ir.types import (
    ArrayType,
    DType,
    ScalarType,
    Type,
    parse_annotation,
)
from repro.util.errors import FrontendError

#: names accepted as explicit precision casts
_CAST_NAMES = {
    "f16": DType.F16,
    "f32": DType.F32,
    "f64": DType.F64,
    "float": DType.F64,
}

#: attribute constants usable in kernels
_NAMED_CONSTANTS = {
    ("math", "pi"): math.pi,
    ("math", "e"): math.e,
    ("math", "tau"): math.tau,
    ("math", "inf"): math.inf,
}

_BINOP_MAP = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
}

_CMP_MAP = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
}


def parse_kernel(
    pyfunc: Callable,
    resolve_kernel: Optional[Callable[[str], Optional[N.Function]]] = None,
) -> N.Function:
    """Parse a Python function into an IR :class:`~repro.ir.Function`.

    :param pyfunc: the function to lower; its source must be retrievable
        via :func:`inspect.getsource`.
    :param resolve_kernel: optional callback mapping a called name to an
        already-parsed kernel IR, enabling cross-kernel inlining.
    :raises FrontendError: on any construct outside the DSL.
    """
    try:
        src = textwrap.dedent(inspect.getsource(pyfunc))
    except (OSError, TypeError) as exc:
        raise FrontendError(
            f"cannot retrieve source of {pyfunc!r}: {exc}"
        ) from exc
    tree = ast.parse(src)
    fndefs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(fndefs) != 1:
        raise FrontendError("expected exactly one function definition")
    parser = _KernelParser(fndefs[0], resolve_kernel)
    return parser.parse()


class _KernelParser:
    def __init__(
        self,
        fndef: ast.FunctionDef,
        resolve_kernel: Optional[Callable[[str], Optional[N.Function]]],
    ) -> None:
        self.fndef = fndef
        self.resolve_kernel = resolve_kernel or (lambda _name: None)
        self.types: Dict[str, Type] = {}
        self.ret_dtype: Optional[DType] = None
        self._tmp_counter = 0
        self._inline_counter = 0

    # -- helpers -------------------------------------------------------------
    def _err(self, node: ast.AST, msg: str) -> FrontendError:
        line = getattr(node, "lineno", "?")
        return FrontendError(
            f"{self.fndef.name}:{line}: {msg}"
        )

    def _fresh_tmp(self) -> str:
        self._tmp_counter += 1
        return f"_t{self._tmp_counter}"

    def _dtype_of(self, name: str, node: ast.AST) -> Type:
        if name not in self.types:
            raise self._err(node, f"use of undefined variable {name!r}")
        return self.types[name]

    # -- entry ---------------------------------------------------------------
    def parse(self) -> N.Function:
        params = self._parse_params()
        for p in params:
            self.types[p.name] = p.type
        if self.fndef.returns is not None:
            try:
                rt = parse_annotation(_annotation_value(self.fndef.returns))
            except KeyError as exc:
                raise self._err(
                    self.fndef.returns, f"bad return annotation: {exc}"
                ) from exc
            if isinstance(rt, ArrayType):
                raise self._err(
                    self.fndef.returns, "array returns are not supported"
                )
            self.ret_dtype = rt.dtype
        body = self._parse_body(self.fndef.body)
        if self.ret_dtype is None and any(
            isinstance(s, N.Return) for s in body
        ):
            # infer from the return expression
            last = body[-1]
            if isinstance(last, N.Return):
                self.ret_dtype = last.value.dtype
        fn = N.Function(
            name=self.fndef.name,
            params=params,
            body=body,
            ret_dtype=self.ret_dtype,
        )
        fn.locals = [
            s.name
            for s in _walk_all(body)
            if isinstance(s, N.VarDecl)
        ]
        return fn

    def _parse_params(self) -> List[N.Param]:
        args = self.fndef.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
            raise self._err(
                self.fndef, "only plain positional parameters are supported"
            )
        if args.defaults:
            raise self._err(self.fndef, "parameter defaults are not supported")
        params: List[N.Param] = []
        for a in args.args:
            if a.annotation is None:
                ptype: Type = ScalarType(DType.F64)
            else:
                try:
                    ptype = parse_annotation(_annotation_value(a.annotation))
                except KeyError as exc:
                    raise self._err(
                        a, f"bad annotation for parameter {a.arg!r}: {exc}"
                    ) from exc
            diff = ptype.dtype.is_float
            params.append(N.Param(a.arg, ptype, differentiable=diff))
        return params

    # -- statements ----------------------------------------------------------
    def _parse_body(self, stmts: List[ast.stmt]) -> List[N.Stmt]:
        out: List[N.Stmt] = []
        for s in stmts:
            out.extend(self._parse_stmt(s))
        return out

    def _parse_stmt(self, s: ast.stmt) -> List[N.Stmt]:
        if isinstance(s, ast.Assign):
            return self._parse_assign(s)
        if isinstance(s, ast.AnnAssign):
            return self._parse_ann_assign(s)
        if isinstance(s, ast.AugAssign):
            return self._parse_aug_assign(s)
        if isinstance(s, ast.For):
            return self._parse_for(s)
        if isinstance(s, ast.While):
            return self._parse_while(s)
        if isinstance(s, ast.If):
            return self._parse_if(s)
        if isinstance(s, ast.Break):
            stmt = N.Break()
            stmt.loc = s.lineno
            return [stmt]
        if isinstance(s, ast.Return):
            return self._parse_return(s)
        if isinstance(s, ast.Pass):
            return []
        if isinstance(s, ast.Expr):
            if isinstance(s.value, ast.Constant) and isinstance(
                s.value.value, str
            ):
                return []  # docstring
            raise self._err(s, "bare expression statements are not supported")
        raise self._err(
            s, f"unsupported statement: {type(s).__name__}"
        )

    def _declare_or_assign(
        self,
        name: str,
        value: N.Expr,
        node: ast.AST,
        explicit_dtype: Optional[DType] = None,
    ) -> N.Stmt:
        """First assignment declares a local; later ones are plain stores."""
        if name.startswith("_"):
            raise self._err(
                node,
                f"variable names starting with '_' are reserved: {name!r}",
            )
        if name in self.types:
            if explicit_dtype is not None:
                raise self._err(
                    node, f"re-annotation of existing variable {name!r}"
                )
            t = self.types[name]
            if isinstance(t, ArrayType):
                raise self._err(
                    node, f"cannot assign scalar to array {name!r}"
                )
            stmt: N.Stmt = N.Assign(b.name(name, t.dtype), value)
        else:
            dtype = explicit_dtype
            if dtype is None:
                dtype = value.dtype if value.dtype is not None else DType.F64
                if dtype is DType.B1:
                    pass  # boolean locals are allowed
            self.types[name] = ScalarType(dtype)
            stmt = N.VarDecl(name, dtype, value)
        stmt.loc = getattr(node, "lineno", None)
        return stmt

    def _parse_assign(self, s: ast.Assign) -> List[N.Stmt]:
        if len(s.targets) != 1:
            raise self._err(s, "multiple assignment targets not supported")
        target = s.targets[0]
        pre: List[N.Stmt] = []
        value = self._parse_expr(s.value, pre)
        if isinstance(target, ast.Name):
            return pre + [self._declare_or_assign(target.id, value, s)]
        if isinstance(target, ast.Subscript):
            lv = self._parse_subscript_target(target, pre)
            st = N.Assign(lv, value)
            st.loc = s.lineno
            return pre + [st]
        raise self._err(s, "unsupported assignment target")

    def _parse_ann_assign(self, s: ast.AnnAssign) -> List[N.Stmt]:
        if not isinstance(s.target, ast.Name):
            raise self._err(s, "annotated target must be a plain name")
        if s.value is None:
            raise self._err(s, "annotated declaration requires an initializer")
        try:
            t = parse_annotation(_annotation_value(s.annotation))
        except KeyError as exc:
            raise self._err(s, f"bad annotation: {exc}") from exc
        if isinstance(t, ArrayType):
            raise self._err(s, "cannot declare local arrays")
        pre: List[N.Stmt] = []
        value = self._parse_expr(s.value, pre)
        return pre + [
            self._declare_or_assign(
                s.target.id, value, s, explicit_dtype=t.dtype
            )
        ]

    def _parse_aug_assign(self, s: ast.AugAssign) -> List[N.Stmt]:
        if type(s.op) not in _BINOP_MAP:
            raise self._err(s, "unsupported augmented operator")
        op = _BINOP_MAP[type(s.op)]
        pre: List[N.Stmt] = []
        rhs = self._parse_expr(s.value, pre)
        if isinstance(s.target, ast.Name):
            name = s.target.id
            t = self._dtype_of(name, s)
            if isinstance(t, ArrayType):
                raise self._err(s, "augmented assign to whole array")
            read = b.name(name, t.dtype)
            st: N.Stmt = N.Assign(
                b.name(name, t.dtype), b.binop(op, read, rhs)
            )
            st.loc = s.lineno
            return pre + [st]
        if isinstance(s.target, ast.Subscript):
            lv = self._parse_subscript_target(s.target, pre)
            read = b.index(lv.base, b.clone(lv.index), lv.dtype or DType.F64)
            st = N.Assign(lv, b.binop(op, read, rhs))
            st.loc = s.lineno
            return pre + [st]
        raise self._err(s, "unsupported augmented assignment target")

    def _parse_for(self, s: ast.For) -> List[N.Stmt]:
        if s.orelse:
            raise self._err(s, "for/else is not supported")
        if not isinstance(s.target, ast.Name):
            raise self._err(s, "loop target must be a plain name")
        if not (
            isinstance(s.iter, ast.Call)
            and isinstance(s.iter.func, ast.Name)
            and s.iter.func.id == "range"
        ):
            raise self._err(s, "only 'for ... in range(...)' loops supported")
        pre: List[N.Stmt] = []
        rargs = [self._parse_expr(a, pre) for a in s.iter.args]
        if len(rargs) == 1:
            lo, hi, step = b.const(0), rargs[0], b.const(1)
        elif len(rargs) == 2:
            lo, hi, step = rargs[0], rargs[1], b.const(1)
        elif len(rargs) == 3:
            lo, hi, step = rargs
        else:
            raise self._err(s, "range() takes 1-3 arguments")
        var = s.target.id
        if var.startswith("_"):
            raise self._err(s, f"reserved loop variable name {var!r}")
        prev = self.types.get(var)
        self.types[var] = ScalarType(DType.I64)
        body = self._parse_body(s.body)
        if prev is not None:
            self.types[var] = prev
        loop = N.For(var, lo, hi, step, body)
        loop.loc = s.lineno
        return pre + [loop]

    def _parse_while(self, s: ast.While) -> List[N.Stmt]:
        if s.orelse:
            raise self._err(s, "while/else is not supported")
        pre: List[N.Stmt] = []
        cond = self._parse_expr(s.test, pre)
        if pre:
            raise self._err(
                s, "while conditions may not contain kernel calls"
            )
        body = self._parse_body(s.body)
        loop = N.While(cond, body)
        loop.loc = s.lineno
        return [loop]

    def _parse_if(self, s: ast.If) -> List[N.Stmt]:
        pre: List[N.Stmt] = []
        cond = self._parse_expr(s.test, pre)
        then = self._parse_body(s.body)
        orelse = self._parse_body(s.orelse)
        st = N.If(cond, then, orelse)
        st.loc = s.lineno
        return pre + [st]

    def _parse_return(self, s: ast.Return) -> List[N.Stmt]:
        if s.value is None:
            raise self._err(s, "bare return is not supported")
        pre: List[N.Stmt] = []
        value = self._parse_expr(s.value, pre)
        if self.ret_dtype is None:
            self.ret_dtype = value.dtype
        st = N.Return(value)
        st.loc = s.lineno
        return pre + [st]

    def _parse_subscript_target(
        self, t: ast.Subscript, pre: List[N.Stmt]
    ) -> N.Index:
        if not isinstance(t.value, ast.Name):
            raise self._err(t, "only direct array names may be indexed")
        base = t.value.id
        bt = self._dtype_of(base, t)
        if not isinstance(bt, ArrayType):
            raise self._err(t, f"{base!r} is not an array")
        idx = self._parse_expr(t.slice, pre)
        return b.index(base, idx, bt.dtype)

    # -- expressions ----------------------------------------------------------
    def _parse_expr(self, e: ast.expr, pre: List[N.Stmt]) -> N.Expr:
        if isinstance(e, ast.Constant):
            if isinstance(e.value, bool):
                return b.const(e.value)
            if isinstance(e.value, (int, float)):
                return b.const(e.value)
            raise self._err(e, f"unsupported literal {e.value!r}")
        if isinstance(e, ast.Name):
            t = self._dtype_of(e.id, e)
            if isinstance(t, ArrayType):
                raise self._err(
                    e, f"whole-array value use of {e.id!r} is not supported"
                )
            return b.name(e.id, t.dtype)
        if isinstance(e, ast.Subscript):
            lv = self._parse_subscript_target(e, pre)
            return lv
        if isinstance(e, ast.UnaryOp):
            if isinstance(e.op, ast.USub):
                return b.neg(self._parse_expr(e.operand, pre))
            if isinstance(e.op, ast.UAdd):
                return self._parse_expr(e.operand, pre)
            if isinstance(e.op, ast.Not):
                inner = self._parse_expr(e.operand, pre)
                u = N.UnaryOp("not", inner)
                u.dtype = DType.B1
                return u
            raise self._err(e, "unsupported unary operator")
        if isinstance(e, ast.BinOp):
            if isinstance(e.op, ast.Pow):
                left = self._parse_expr(e.left, pre)
                right = self._parse_expr(e.right, pre)
                return b.call("pow", [left, right], dtype=DType.F64)
            if type(e.op) not in _BINOP_MAP:
                raise self._err(e, "unsupported binary operator")
            left = self._parse_expr(e.left, pre)
            right = self._parse_expr(e.right, pre)
            return b.binop(_BINOP_MAP[type(e.op)], left, right)
        if isinstance(e, ast.Compare):
            if len(e.ops) != 1:
                raise self._err(e, "chained comparisons are not supported")
            if type(e.ops[0]) not in _CMP_MAP:
                raise self._err(e, "unsupported comparison operator")
            left = self._parse_expr(e.left, pre)
            right = self._parse_expr(e.comparators[0], pre)
            return b.binop(_CMP_MAP[type(e.ops[0])], left, right)
        if isinstance(e, ast.BoolOp):
            op = "and" if isinstance(e.op, ast.And) else "or"
            parts = [self._parse_expr(v, pre) for v in e.values]
            expr = parts[0]
            for p in parts[1:]:
                expr = b.binop(op, expr, p)
            return expr
        if isinstance(e, ast.Attribute):
            return self._parse_attribute_const(e)
        if isinstance(e, ast.Call):
            return self._parse_call(e, pre)
        raise self._err(e, f"unsupported expression: {type(e).__name__}")

    def _parse_attribute_const(self, e: ast.Attribute) -> N.Expr:
        if isinstance(e.value, ast.Name):
            key = (e.value.id, e.attr)
            if key in _NAMED_CONSTANTS:
                return b.const(_NAMED_CONSTANTS[key])
        raise self._err(e, "unsupported attribute access")

    def _parse_call(self, e: ast.Call, pre: List[N.Stmt]) -> N.Expr:
        if e.keywords:
            raise self._err(e, "keyword arguments are not supported")
        fname = self._call_name(e)
        # precision casts --------------------------------------------------
        if fname in _CAST_NAMES:
            if len(e.args) != 1:
                raise self._err(e, f"{fname}() takes exactly one argument")
            inner = self._parse_expr(e.args[0], pre)
            return b.cast(_CAST_NAMES[fname], inner)
        if fname == "abs":
            fname = "fabs"
        # intrinsics ---------------------------------------------------------
        if fname in INTRINSICS:
            info = INTRINSICS[fname]
            if len(e.args) != info.arity:
                raise self._err(
                    e,
                    f"{fname}() expects {info.arity} argument(s), got "
                    f"{len(e.args)}",
                )
            args = [self._parse_expr(a, pre) for a in e.args]
            out_dtype = DType.F64
            if fname in ("fmax", "fmin", "fabs", "copysign"):
                out_dtype = args[0].dtype or DType.F64
            return b.call(fname, args, dtype=out_dtype)
        # kernel inlining ------------------------------------------------------
        callee = self.resolve_kernel(fname)
        if callee is not None:
            args = [
                self._parse_call_arg(a, pre) for a in e.args
            ]
            return self._inline_call(callee, args, e, pre)
        raise self._err(e, f"unknown function {fname!r}")

    def _parse_call_arg(self, a: ast.expr, pre: List[N.Stmt]):
        """Array arguments are passed as bare names; others as expressions."""
        if isinstance(a, ast.Name) and isinstance(
            self.types.get(a.id), ArrayType
        ):
            return ("array", a.id)
        return ("expr", self._parse_expr(a, pre))

    def _call_name(self, e: ast.Call) -> str:
        f = e.func
        if isinstance(f, ast.Name):
            return f.id
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
            # math.sin, np.sqrt, ... — take the attribute name
            return f.attr
        raise self._err(e, "unsupported call target")

    # -- kernel inlining -------------------------------------------------------
    def _inline_call(
        self,
        callee: N.Function,
        args: List[Tuple[str, object]],
        node: ast.Call,
        pre: List[N.Stmt],
    ) -> N.Expr:
        if len(args) != len(callee.params):
            raise self._err(
                node,
                f"{callee.name}() expects {len(callee.params)} argument(s), "
                f"got {len(args)}",
            )
        self._inline_counter += 1
        suffix = f"_in{self._inline_counter}"
        rename: Dict[str, str] = {}
        # bind parameters
        for p, (kind, val) in zip(callee.params, args):
            if isinstance(p.type, ArrayType):
                if kind != "array":
                    raise self._err(
                        node,
                        f"argument for array parameter {p.name!r} must be "
                        "an array variable",
                    )
                rename[p.name] = str(val)  # alias the caller's array
            else:
                if kind != "expr":
                    raise self._err(
                        node,
                        f"array passed for scalar parameter {p.name!r}",
                    )
                new = f"{p.name}{suffix}"
                rename[p.name] = new
                self.types[new] = p.type
                decl = N.VarDecl(p.name + suffix, p.type.dtype, val)  # type: ignore[arg-type]
                decl.loc = node.lineno
                pre.append(decl)
        # rename locals and loop vars
        for s in _walk_all(callee.body):
            if isinstance(s, N.VarDecl) and s.name not in rename:
                rename[s.name] = s.name + suffix
            if isinstance(s, N.For) and s.var not in rename:
                rename[s.var] = s.var + suffix
        result_name = f"_r{self._inline_counter}"
        ret_dtype = callee.ret_dtype or DType.F64
        body = [_rename_stmt(b.clone(s), rename) for s in callee.body]
        # register renamed locals so later statements may not collide
        for s in _walk_all(body):
            if isinstance(s, N.VarDecl):
                self.types[s.name] = ScalarType(s.dtype)
        if not body or not isinstance(body[-1], N.Return):
            raise self._err(
                node,
                f"inlined kernel {callee.name!r} must end with a return",
            )
        ret = body.pop()
        assert isinstance(ret, N.Return)
        pre.extend(body)
        decl = N.VarDecl(result_name, ret_dtype, ret.value)
        decl.loc = node.lineno
        pre.append(decl)
        self.types[result_name] = ScalarType(ret_dtype)
        return b.name(result_name, ret_dtype)


# --------------------------------------------------------------------------
# Renaming helpers for inlining
# --------------------------------------------------------------------------


def _rename_expr(e: N.Expr, rename: Dict[str, str]) -> N.Expr:
    if isinstance(e, N.Name):
        e.id = rename.get(e.id, e.id)
    elif isinstance(e, N.Index):
        e.base = rename.get(e.base, e.base)
        _rename_expr(e.index, rename)
    elif isinstance(e, N.BinOp):
        _rename_expr(e.left, rename)
        _rename_expr(e.right, rename)
    elif isinstance(e, N.UnaryOp):
        _rename_expr(e.operand, rename)
    elif isinstance(e, N.Call):
        for a in e.args:
            _rename_expr(a, rename)
    elif isinstance(e, N.Cast):
        _rename_expr(e.operand, rename)
    return e


def _rename_stmt(s: N.Stmt, rename: Dict[str, str]) -> N.Stmt:
    if isinstance(s, N.VarDecl):
        s.name = rename.get(s.name, s.name)
        if s.init is not None:
            _rename_expr(s.init, rename)
    elif isinstance(s, N.Assign):
        _rename_expr(s.target, rename)
        _rename_expr(s.value, rename)
    elif isinstance(s, N.For):
        s.var = rename.get(s.var, s.var)
        _rename_expr(s.lo, rename)
        _rename_expr(s.hi, rename)
        _rename_expr(s.step, rename)
        s.body = [_rename_stmt(c, rename) for c in s.body]
    elif isinstance(s, N.While):
        _rename_expr(s.cond, rename)
        s.body = [_rename_stmt(c, rename) for c in s.body]
    elif isinstance(s, N.If):
        _rename_expr(s.cond, rename)
        s.then = [_rename_stmt(c, rename) for c in s.then]
        s.orelse = [_rename_stmt(c, rename) for c in s.orelse]
    elif isinstance(s, N.Return):
        _rename_expr(s.value, rename)
    elif isinstance(s, N.ExprStmt):
        _rename_expr(s.value, rename)
    return s


def _walk_all(body: List[N.Stmt]):
    from repro.ir.visitor import walk_stmts

    return walk_stmts(body)


def _annotation_value(node: ast.expr) -> object:
    """Extract the annotation payload from its AST form."""
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        return {"float": float, "int": int, "bool": bool}.get(
            node.id, node.id
        )
    if isinstance(node, ast.Str):  # pragma: no cover - py<3.8 form
        return node.s
    raise KeyError(ast.dump(node))
