"""Frontend: compiles a restricted Python subset into the repro IR.

The public entry point is the :func:`repro.frontend.registry.kernel`
decorator (re-exported as ``repro.kernel``), which parses the decorated
function's source with :mod:`ast` and lowers it — mirroring how Clad
consumes Clang's AST in the paper.
"""

from repro.frontend.registry import kernel, Kernel, get_kernel
from repro.frontend.parser import parse_kernel
from repro.frontend.intrinsics import INTRINSICS, IntrinsicInfo, intrinsic_names

__all__ = [
    "kernel",
    "Kernel",
    "get_kernel",
    "parse_kernel",
    "INTRINSICS",
    "IntrinsicInfo",
    "intrinsic_names",
]
