"""The intrinsic function registry.

Intrinsics are the leaf math operations of the DSL — everything a kernel
may call that is not another ``@kernel``.  Each entry bundles what the
rest of the system needs:

* a Python implementation (used by the interpreter and generated code),
* a symbolic derivative builder (used by the AD transformations),
* per-precision cycle costs (used by the performance cost model),
* an optional approximate variant (used by the FastApprox analysis).

The derivative builder receives the argument expressions (already bound
to cheap references by the AD engine) and returns one partial-derivative
expression per argument, following the same convention as Clad's
pushforward/pullback tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.ir import builder as b
from repro.ir import nodes as N
from repro.ir.types import DType
from repro.fp import fastapprox

DerivBuilder = Callable[[Sequence[N.Expr]], List[N.Expr]]


@dataclass
class IntrinsicInfo:
    """Metadata for one intrinsic."""

    name: str
    arity: int
    impl: Callable[..., float]
    #: builds the partial derivatives wrt each argument; ``None`` marks a
    #: non-differentiable intrinsic whose partials are identically zero
    #: (floor, ceil, comparisons-as-floats).
    deriv: Optional[DerivBuilder]
    #: simulated cycle cost by precision (defaults filled for f16/f32/f64)
    cost: Dict[DType, float] = field(default_factory=dict)
    #: approximate ("fast") variant, if FastApprox provides one
    approx_impl: Optional[Callable[..., float]] = None
    #: cycle cost of the approximate variant
    approx_cost: float = 0.0
    #: exact reference used to compute Δ in the approximation error model
    exact_ref: Optional[Callable[..., float]] = None


def _costs(f64: float, f32: Optional[float] = None, f16: Optional[float] = None) -> Dict[DType, float]:
    """Cost table helper: f32 defaults to half of f64, f16 to a third."""
    c32 = f32 if f32 is not None else f64 / 2.0
    c16 = f16 if f16 is not None else f64 / 3.0
    return {DType.F64: f64, DType.F32: c32, DType.F16: c16}


# -- derivative builders ------------------------------------------------------

def _d_sin(a: Sequence[N.Expr]) -> List[N.Expr]:
    return [b.call("cos", [b.clone(a[0])])]


def _d_cos(a: Sequence[N.Expr]) -> List[N.Expr]:
    return [b.neg(b.call("sin", [b.clone(a[0])]))]


def _d_tan(a: Sequence[N.Expr]) -> List[N.Expr]:
    c = b.call("cos", [b.clone(a[0])])
    return [b.div(b.fone(), b.mul(c, b.clone(c)))]


def _d_asin(a: Sequence[N.Expr]) -> List[N.Expr]:
    x = b.clone(a[0])
    return [
        b.div(
            b.fone(),
            b.call("sqrt", [b.sub(b.fone(), b.mul(x, b.clone(x)))]),
        )
    ]


def _d_acos(a: Sequence[N.Expr]) -> List[N.Expr]:
    return [b.neg(_d_asin(a)[0])]


def _d_atan(a: Sequence[N.Expr]) -> List[N.Expr]:
    x = b.clone(a[0])
    return [b.div(b.fone(), b.add(b.fone(), b.mul(x, b.clone(x))))]


def _d_exp(a: Sequence[N.Expr]) -> List[N.Expr]:
    return [b.call("exp", [b.clone(a[0])])]


def _d_log(a: Sequence[N.Expr]) -> List[N.Expr]:
    return [b.div(b.fone(), b.clone(a[0]))]


def _d_log2(a: Sequence[N.Expr]) -> List[N.Expr]:
    return [b.div(b.const(1.0 / math.log(2.0)), b.clone(a[0]))]


def _d_exp2(a: Sequence[N.Expr]) -> List[N.Expr]:
    return [
        b.mul(b.call("exp2", [b.clone(a[0])]), b.const(math.log(2.0)))
    ]


def _d_sqrt(a: Sequence[N.Expr]) -> List[N.Expr]:
    return [b.div(b.const(0.5), b.call("sqrt", [b.clone(a[0])]))]


def _d_fabs(a: Sequence[N.Expr]) -> List[N.Expr]:
    return [b.call("copysign", [b.fone(), b.clone(a[0])])]


def _d_copysign(a: Sequence[N.Expr]) -> List[N.Expr]:
    # d/dmag copysign(mag, sgn) = copysign(1, mag)*copysign(1, sgn); treat
    # as sign-transfer on the magnitude, zero wrt the sign argument.
    return [
        b.mul(
            b.call("copysign", [b.fone(), b.clone(a[0])]),
            b.call("copysign", [b.fone(), b.clone(a[1])]),
        ),
        b.fzero(),
    ]


def _d_pow(a: Sequence[N.Expr]) -> List[N.Expr]:
    base, expo = a
    d_base = b.mul(
        b.clone(expo),
        b.call("pow", [b.clone(base), b.sub(b.clone(expo), b.fone())]),
    )
    d_expo = b.mul(
        b.call("pow", [b.clone(base), b.clone(expo)]),
        b.call("log", [b.clone(base)]),
    )
    return [d_base, d_expo]


_TWO_OVER_SQRT_PI = 2.0 / math.sqrt(math.pi)


def _d_erf(a: Sequence[N.Expr]) -> List[N.Expr]:
    x = b.clone(a[0])
    return [
        b.mul(
            b.const(_TWO_OVER_SQRT_PI),
            b.call("exp", [b.neg(b.mul(x, b.clone(x)))]),
        )
    ]


def _d_erfc(a: Sequence[N.Expr]) -> List[N.Expr]:
    return [b.neg(_d_erf(a)[0])]


def _d_tanh(a: Sequence[N.Expr]) -> List[N.Expr]:
    t = b.call("tanh", [b.clone(a[0])])
    return [b.sub(b.fone(), b.mul(t, b.clone(t)))]


def _d_sinh(a: Sequence[N.Expr]) -> List[N.Expr]:
    return [b.call("cosh", [b.clone(a[0])])]


def _d_cosh(a: Sequence[N.Expr]) -> List[N.Expr]:
    return [b.call("sinh", [b.clone(a[0])])]


def _step_ge(x: float, y: float) -> float:
    """1.0 where x >= y else 0.0 — the subgradient selector for fmax."""
    return 1.0 if x >= y else 0.0


def _d_fmax(a: Sequence[N.Expr]) -> List[N.Expr]:
    sel = b.call("step_ge", [b.clone(a[0]), b.clone(a[1])])
    return [b.clone(sel), b.sub(b.fone(), sel)]


def _d_fmin(a: Sequence[N.Expr]) -> List[N.Expr]:
    sel = b.call("step_ge", [b.clone(a[1]), b.clone(a[0])])
    return [b.clone(sel), b.sub(b.fone(), sel)]


# -- the registry -------------------------------------------------------------

INTRINSICS: Dict[str, IntrinsicInfo] = {}


def _register(info: IntrinsicInfo) -> None:
    INTRINSICS[info.name] = info


for _name, _impl, _deriv, _c64 in [
    ("sin", math.sin, _d_sin, 50.0),
    ("cos", math.cos, _d_cos, 50.0),
    ("tan", math.tan, _d_tan, 60.0),
    ("asin", math.asin, _d_asin, 60.0),
    ("acos", math.acos, _d_acos, 60.0),
    ("atan", math.atan, _d_atan, 60.0),
    ("tanh", math.tanh, _d_tanh, 55.0),
    ("sinh", math.sinh, _d_sinh, 55.0),
    ("cosh", math.cosh, _d_cosh, 55.0),
    ("erf", math.erf, _d_erf, 60.0),
    ("erfc", math.erfc, _d_erfc, 60.0),
    ("copysign", math.copysign, _d_copysign, 2.0),
]:
    _register(
        IntrinsicInfo(
            _name,
            2 if _name == "copysign" else 1,
            _impl,
            _deriv,
            _costs(_c64),
        )
    )

_register(
    IntrinsicInfo(
        "exp", 1, math.exp, _d_exp, _costs(50.0),
        approx_impl=fastapprox.fastexp, approx_cost=9.0,
        exact_ref=math.exp,
    )
)
_register(
    IntrinsicInfo(
        "log", 1, math.log, _d_log, _costs(50.0),
        approx_impl=fastapprox.fastlog, approx_cost=8.0,
        exact_ref=math.log,
    )
)
_register(
    IntrinsicInfo(
        "log2", 1, math.log2, _d_log2, _costs(50.0),
        approx_impl=fastapprox.fastlog2, approx_cost=7.0,
        exact_ref=math.log2,
    )
)
_register(
    IntrinsicInfo(
        "exp2", 1, lambda p: 2.0 ** p, _d_exp2, _costs(50.0),
        approx_impl=fastapprox.fastpow2, approx_cost=8.0,
        exact_ref=lambda p: 2.0 ** p,
    )
)
_register(
    IntrinsicInfo(
        "sqrt", 1, math.sqrt, _d_sqrt, _costs(30.0, 14.0),
        approx_impl=fastapprox.fastsqrt, approx_cost=7.0,
        exact_ref=math.sqrt,
    )
)
_register(
    IntrinsicInfo(
        "pow", 2, math.pow, _d_pow, _costs(80.0),
        approx_impl=fastapprox.fastpow, approx_cost=16.0,
        exact_ref=math.pow,
    )
)
_register(IntrinsicInfo("fabs", 1, math.fabs, _d_fabs, _costs(1.0, 1.0, 1.0)))
_register(
    IntrinsicInfo("fmax", 2, lambda x, y: max(x, y), _d_fmax, _costs(2.0, 1.0, 1.0))
)
_register(
    IntrinsicInfo("fmin", 2, lambda x, y: min(x, y), _d_fmin, _costs(2.0, 1.0, 1.0))
)
_register(IntrinsicInfo("floor", 1, math.floor, None, _costs(2.0, 1.0, 1.0)))
_register(IntrinsicInfo("ceil", 1, math.ceil, None, _costs(2.0, 1.0, 1.0)))
_register(IntrinsicInfo("step_ge", 2, _step_ge, None, _costs(2.0, 1.0, 1.0)))


# FastApprox variants are first-class intrinsics too: error models embed
# expressions like ``exp(x) - fast_exp(x)`` (Algorithm 2), and approximate
# program configurations are expressed by rewriting call names.  Their
# derivative builders reuse the exact derivatives (first-order in the
# approximation error).
for _base in ("exp", "log", "log2", "exp2", "sqrt", "pow"):
    _info = INTRINSICS[_base]
    assert _info.approx_impl is not None
    _register(
        IntrinsicInfo(
            f"fast_{_base}",
            _info.arity,
            _info.approx_impl,
            _info.deriv,
            {d: _info.approx_cost for d in (DType.F64, DType.F32, DType.F16)},
            exact_ref=_info.exact_ref,
        )
    )

# Hook intrinsic for external (user-defined) error models — the analogue
# of CHEF-FP synthesizing a call to a user's ``getErrorVal``.  The real
# callable is bound per-compilation via extra runtime bindings; the
# default implementation returns 0 so accidentally-unbound calls are
# conservative no-ops.
_register(
    IntrinsicInfo(
        "user_err",
        3,
        lambda dx, x, site: 0.0,
        None,
        _costs(10.0),
    )
)


def intrinsic_names() -> List[str]:
    """Sorted list of all registered intrinsic names."""
    return sorted(INTRINSICS)


def get_intrinsic(name: str) -> IntrinsicInfo:
    """Look up an intrinsic.

    :raises KeyError: if not registered.
    """
    return INTRINSICS[name]
