"""Mixed-precision tuning driven by CHEF-FP error profiles (paper §III).

The tuner consumes per-variable error contributions from an
error-estimation run, greedily demotes the least-sensitive variables
while the accumulated estimated error stays below the user threshold,
then validates the configuration by actually executing the demoted
program (actual error) and costing it with the performance model
(speedup) — the workflow behind Tables I and III.  The loop-split
("perforation") analysis of the HPCCG study (Fig. 9) lives in
:mod:`repro.tuning.perforation`.
"""

from repro.tuning.config import PrecisionConfig, apply_precision
from repro.tuning.greedy import greedy_select, greedy_tune, TuningResult
from repro.tuning.robust import robust_tune
from repro.tuning.validate import validate_config, ConfigValidation
from repro.tuning.perforation import (
    iteration_sensitivity,
    find_split_iteration,
    estimate_split_speedup,
)

__all__ = [
    "PrecisionConfig",
    "apply_precision",
    "greedy_select",
    "greedy_tune",
    "robust_tune",
    "TuningResult",
    "validate_config",
    "ConfigValidation",
    "iteration_sensitivity",
    "find_split_iteration",
    "estimate_split_speedup",
]
