"""Mixed-precision tuning driven by CHEF-FP error profiles (paper §III).

The tuner consumes per-variable error contributions from an
error-estimation run, greedily demotes the least-sensitive variables
while the accumulated estimated error stays below the user threshold,
then validates the configuration by actually executing the demoted
program (actual error) and costing it with the performance model
(speedup) — the workflow behind Tables I and III.  The loop-split
("perforation") analysis of the HPCCG study (Fig. 9) lives in
:mod:`repro.tuning.perforation`.

Beyond the single greedy pass, the multi-objective search subsystem
(:mod:`repro.search`: Pareto fronts over error × modelled cycles,
delta-debugging and annealing strategies, parallel candidate
evaluation) is re-exported here — ``repro.tuning.search`` is
``repro.search.search``.
"""

from repro.tuning.config import PrecisionConfig, apply_precision
from repro.tuning.greedy import greedy_select, greedy_tune, TuningResult
from repro.tuning.robust import robust_tune
from repro.tuning.validate import validate_config, ConfigValidation
from repro.tuning.perforation import (
    iteration_sensitivity,
    find_split_iteration,
    estimate_split_speedup,
)

__all__ = [
    "PrecisionConfig",
    "apply_precision",
    "greedy_select",
    "greedy_tune",
    "robust_tune",
    "TuningResult",
    "validate_config",
    "ConfigValidation",
    "measure_reference",
    "ReferencePoint",
    "iteration_sensitivity",
    "find_split_iteration",
    "estimate_split_speedup",
    # lazy re-exports of the Pareto search subsystem (see __getattr__)
    "search",
    "ParetoFront",
    "SearchResult",
    "STRATEGIES",
    "get_strategy",
    "register_strategy",
]

from repro.tuning.validate import measure_reference, ReferencePoint  # noqa: E402

#: names forwarded to :mod:`repro.search` on attribute access — lazy
#: because the search subsystem imports the tuning submodules (config,
#: greedy) and an eager import here would be circular
_SEARCH_EXPORTS = (
    "search",
    "ParetoFront",
    "SearchResult",
    "STRATEGIES",
    "get_strategy",
    "register_strategy",
)


def __getattr__(name: str):
    if name in _SEARCH_EXPORTS:
        from repro import search as _search

        return getattr(_search, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
