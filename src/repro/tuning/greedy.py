"""Greedy threshold-driven mixed-precision selection (paper §III).

    "An effective way ... is by analyzing the sensitivity of all input
    and intermediate variables and selecting the ones with lower
    sensitivity to be demoted.  The FP error contributions of the
    demoted variables are accumulated and compared to the threshold
    value.  A mixed precision configuration is reached when the
    accumulated error meets the threshold value."

Exactly that: variables are sorted by their estimated demotion-error
contribution (the ``_delta_<var>`` registers under the ADAPT model) and
demoted greedily while the running sum stays within the threshold.

:func:`greedy_tune` decides from **one** input point — the paper's
workflow.  Its Discussion concedes the result is input-dependent;
:func:`repro.tuning.robust.robust_tune` is the distribution-robust
variant that feeds *aggregated* contributions from a whole input sweep
through the same greedy core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.api import cached_error_estimator
from repro.core.models import AdaptModel, ErrorModel
from repro.core.report import ErrorReport
from repro.frontend.registry import Kernel
from repro.ir import nodes as N
from repro.ir.types import DType
from repro.tuning.config import PrecisionConfig
from repro.util.deprecation import warn_legacy

if TYPE_CHECKING:  # pragma: no cover
    from repro.sweep.batch import BatchReport

#: registers that are analysis artifacts, never demotion candidates
_EXCLUDED = {"_ret"}


@dataclass
class TuningResult:
    """Outcome of a greedy mixed-precision search."""

    config: PrecisionConfig
    #: estimated total error of the chosen configuration
    estimated_error: float
    #: the full error report the decision was based on — for
    #: ``robust_tune`` this is the report of the worst-case sample
    report: Optional[ErrorReport] = field(repr=False, default=None)
    #: per-candidate estimated contributions, ascending
    ranking: List = field(default_factory=list)
    threshold: float = 0.0
    #: the per-point sweep results behind a ``robust_tune`` decision
    sweep: Optional["BatchReport"] = field(repr=False, default=None)
    #: session provenance (session/config identity, method, sequence
    #: number) — stamped by :class:`repro.session.Session`
    provenance: Optional[Dict[str, object]] = field(
        repr=False, default=None
    )

    @property
    def demoted(self) -> List[str]:
        return self.config.demoted_names


def greedy_select(
    contrib: Dict[str, float],
    threshold: float,
    candidates: Optional[Sequence[str]] = None,
    sensitivity: Optional[Dict[str, float]] = None,
) -> Tuple[List[Tuple[str, float]], List[str], float]:
    """The greedy demotion core shared by point and sweep tuning.

    Filters analysis artifacts, restricts to ``candidates`` when given,
    ranks ascending by contribution, and demotes while the accumulated
    estimate stays within ``threshold``.

    ``sensitivity`` (static per-variable amplification bounds from
    :mod:`repro.analyze`) refines the ladder order: contribution ties
    are broken least-amplifying-first, so the most-sensitive variables
    are demoted last.  Without it the historical ordering is preserved
    exactly (bit-identical results).

    :returns: ``(ranking, chosen, accumulated_error)``.
    """
    filtered = {
        v: e
        for v, e in contrib.items()
        if v not in _EXCLUDED
        and (candidates is None or v in candidates)
    }
    if sensitivity is None:
        ranking = sorted(filtered.items(), key=lambda kv: kv[1])
    else:
        ranking = sorted(
            filtered.items(),
            key=lambda kv: (
                kv[1], sensitivity.get(kv[0], 0.0), kv[0]
            ),
        )
    chosen: List[str] = []
    acc = 0.0
    for var, err in ranking:
        if acc + err <= threshold:
            chosen.append(var)
            acc += err
    return ranking, chosen, acc


def run_greedy_tune(
    k: Union[Kernel, N.Function],
    args: Sequence[object],
    threshold: float,
    model: Optional[ErrorModel] = None,
    candidates: Optional[Sequence[str]] = None,
    demote_to: DType = DType.F32,
    opt_level: int = 2,
    minimal_pushes: bool = True,
    sensitivity: Optional[Dict[str, float]] = None,
) -> TuningResult:
    """The single-point greedy tuner proper — see
    :meth:`repro.session.Session.tune`.

    Non-deprecated implementation shared by the session facade;
    :func:`greedy_tune` is the legacy wrapper around it.
    """
    est = cached_error_estimator(
        k, model=model or AdaptModel(demote_to),
        opt_level=opt_level, minimal_pushes=minimal_pushes,
    )
    report = est.execute(*args)
    ranking, chosen, acc = greedy_select(
        report.per_variable, threshold, candidates,
        sensitivity=sensitivity,
    )
    return TuningResult(
        config=PrecisionConfig.demote(chosen, to=demote_to),
        estimated_error=acc,
        report=report,
        ranking=ranking,
        threshold=threshold,
    )


def greedy_tune(
    k: Union[Kernel, N.Function],
    args: Sequence[object],
    threshold: float,
    model: Optional[ErrorModel] = None,
    candidates: Optional[Sequence[str]] = None,
    demote_to: DType = DType.F32,
) -> TuningResult:
    """Find a mixed-precision configuration under an error threshold.

    .. deprecated:: 1.1
        Legacy wrapper, removed in 2.0 — use
        :meth:`repro.session.Session.tune` (``session.tune(k,
        threshold, args=args)``).

    :param k: the kernel to tune.
    :param args: representative inputs (the paper's Discussion notes the
        result is input-dependent; sweep inputs with
        :func:`~repro.tuning.robust.robust_tune` instead of relying on
        one point).
    :param threshold: maximum acceptable accumulated estimated error.
    :param model: error model; default is the ADAPT demotion model
        (Eq. 2), as in the paper's mixed-precision benchmarks.
    :param candidates: restrict demotion candidates (default: every
        variable with an error register).
    :param demote_to: target precision (binary32 by default).
    """
    warn_legacy("repro.greedy_tune()", "Session.tune(k, threshold, args=...)")
    from repro.session import Session

    return Session().tune(
        k, threshold, args=args, robust=False, model=model,
        candidates=candidates, demote_to=demote_to,
    )
