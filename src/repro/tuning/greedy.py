"""Greedy threshold-driven mixed-precision selection (paper §III).

    "An effective way ... is by analyzing the sensitivity of all input
    and intermediate variables and selecting the ones with lower
    sensitivity to be demoted.  The FP error contributions of the
    demoted variables are accumulated and compared to the threshold
    value.  A mixed precision configuration is reached when the
    accumulated error meets the threshold value."

Exactly that: variables are sorted by their estimated demotion-error
contribution (the ``_delta_<var>`` registers under the ADAPT model) and
demoted greedily while the running sum stays within the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.api import estimate_error
from repro.core.models import AdaptModel, ErrorModel
from repro.core.report import ErrorReport
from repro.frontend.registry import Kernel
from repro.ir import nodes as N
from repro.ir.types import DType
from repro.tuning.config import PrecisionConfig

#: registers that are analysis artifacts, never demotion candidates
_EXCLUDED = {"_ret"}


@dataclass
class TuningResult:
    """Outcome of a greedy mixed-precision search."""

    config: PrecisionConfig
    #: estimated total error of the chosen configuration
    estimated_error: float
    #: the full error report the decision was based on
    report: ErrorReport = field(repr=False, default=None)  # type: ignore[assignment]
    #: per-candidate estimated contributions, ascending
    ranking: List = field(default_factory=list)
    threshold: float = 0.0

    @property
    def demoted(self) -> List[str]:
        return self.config.demoted_names


def greedy_tune(
    k: Union[Kernel, N.Function],
    args: Sequence[object],
    threshold: float,
    model: Optional[ErrorModel] = None,
    candidates: Optional[Sequence[str]] = None,
    demote_to: DType = DType.F32,
) -> TuningResult:
    """Find a mixed-precision configuration under an error threshold.

    :param k: the kernel to tune.
    :param args: representative inputs (the paper's Discussion notes the
        result is input-dependent; callers should sweep inputs).
    :param threshold: maximum acceptable accumulated estimated error.
    :param model: error model; default is the ADAPT demotion model
        (Eq. 2), as in the paper's mixed-precision benchmarks.
    :param candidates: restrict demotion candidates (default: every
        variable with an error register).
    :param demote_to: target precision (binary32 by default).
    """
    est = estimate_error(k, model=model or AdaptModel(demote_to))
    report = est.execute(*args)
    contrib = {
        v: e
        for v, e in report.per_variable.items()
        if v not in _EXCLUDED
        and (candidates is None or v in candidates)
    }
    ranking = sorted(contrib.items(), key=lambda kv: kv[1])
    chosen: List[str] = []
    acc = 0.0
    for var, err in ranking:
        if acc + err <= threshold:
            chosen.append(var)
            acc += err
    return TuningResult(
        config=PrecisionConfig.demote(chosen, to=demote_to),
        estimated_error=acc,
        report=report,
        ranking=ranking,
        threshold=threshold,
    )
