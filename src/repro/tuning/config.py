"""Precision configurations and program rewriting.

A :class:`PrecisionConfig` maps variable names to storage precisions.
:func:`apply_precision` rewrites a kernel's IR accordingly — the
automated equivalent of the manual source rewriting the paper performs
(its Discussion section names Typeforge as the automation they defer
to; our IR makes the rewrite trivial).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Union

from repro.frontend.registry import Kernel
from repro.ir import builder as b
from repro.ir import nodes as N
from repro.ir.types import ArrayType, DType, ScalarType
from repro.ir.typecheck import infer_types
from repro.ir.visitor import walk_stmts


def matches_inlined(name: str, key: str) -> bool:
    """True if ``name`` is ``key`` or an inlined copy of it.

    Kernel inlining renames callee locals by appending ``_in<k>``
    (possibly stacked), so the source-level variable ``sum`` appears as
    ``sum_in1`` in the caller's IR.  Configurations and error-register
    lookups use source-level names and match through this predicate.
    """
    return name == key or name.startswith(key + "_in")


@dataclass
class PrecisionConfig:
    """Storage precisions for a set of variables (defaults elsewhere)."""

    demotions: Dict[str, DType] = field(default_factory=dict)

    @classmethod
    def demote(cls, names: Iterable[str], to: DType = DType.F32) -> "PrecisionConfig":
        """Demote every name in ``names`` to precision ``to``."""
        return cls({n: to for n in names})

    @property
    def demoted_names(self) -> list:
        return sorted(self.demotions)

    def __bool__(self) -> bool:
        return bool(self.demotions)

    def describe(self) -> str:
        if not self.demotions:
            return "(uniform f64)"
        return ", ".join(
            f"{n}->{dt.value}" for n, dt in sorted(self.demotions.items())
        )


def resolve_targets(
    k: Union[Kernel, N.Function], config: PrecisionConfig
) -> Dict[str, DType]:
    """Map each IR variable/parameter name to its configured precision.

    The single source of truth for configuration-name semantics: exact
    keys win over inlined-prefix matches (a config may name both ``x``
    and its inlined copy ``x_in1`` with different targets), and a key
    matching nothing is an error.  :func:`apply_precision` rewrites IR
    with this map; the config-batched lowering derives per-lane
    selectors from it — both therefore demote exactly the same storage.

    :raises KeyError: if a configured name does not exist in the kernel.
    """
    fn = k.ir if isinstance(k, Kernel) else k
    matched = set()
    out: Dict[str, DType] = {}

    def lookup(name: str):
        if name in config.demotions:
            matched.add(name)
            return config.demotions[name]
        for key, dt in config.demotions.items():
            if matches_inlined(name, key):
                matched.add(key)
                return dt
        return None

    names = [p.name for p in fn.params] + [
        s.name for s in walk_stmts(fn.body) if isinstance(s, N.VarDecl)
    ]
    for name in names:
        dt = lookup(name)
        if dt is not None:
            out[name] = dt
    missing = set(config.demotions) - matched
    if missing:
        raise KeyError(
            f"{fn.name}: unknown variables in precision config: "
            f"{sorted(missing)}"
        )
    return out


def apply_precision(
    k: Union[Kernel, N.Function], config: PrecisionConfig
) -> N.Function:
    """Return a clone of the kernel IR with demoted storage precisions.

    Both local declarations and (scalar or array) parameters may be
    demoted.  Expression dtypes are re-inferred, so implicit promotion
    casts appear exactly where C's usual arithmetic conversions would —
    which is where the cost model charges them.

    :raises KeyError: if a configured name does not exist in the kernel.
    """
    fn = k.ir if isinstance(k, Kernel) else k
    out = b.clone(fn)
    targets = resolve_targets(out, config)
    for p in out.params:
        dt = targets.get(p.name)
        if dt is not None:
            if isinstance(p.type, ArrayType):
                p.type = ArrayType(dt)
            else:
                p.type = ScalarType(dt)
    for s in walk_stmts(out.body):
        if isinstance(s, N.VarDecl):
            dt = targets.get(s.name)
            if dt is not None:
                s.dtype = dt
    out.name = f"{fn.name}_mixed"
    infer_types(out)
    return out
