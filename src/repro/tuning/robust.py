"""Distribution-robust mixed-precision tuning (beyond the paper).

The paper's greedy tuner decides from **one** input point; its
Discussion concedes the choice is input-dependent and that callers
should sweep inputs.  :func:`robust_tune` does exactly that: it runs a
batched error sweep over an input distribution, aggregates each
variable's demotion-error contribution across the whole distribution
(worst case by default), and feeds the aggregated contributions through
the same greedy demotion core.

Soundness of the default (``max``) aggregation: for any sample ``s``
and chosen set ``C``,

    error_s(C) = Σ_{v∈C} delta_v(s)  ≤  Σ_{v∈C} max_s delta_v(s)  ≤  threshold

so the configuration's estimated error stays under the threshold at
*every* swept point, not just a representative one.  The reported
``estimated_error`` is the tighter ``agg_s error_s(C)`` computed from
the actual per-sample sums.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.models import AdaptModel, ErrorModel
from repro.frontend.registry import Kernel
from repro.ir import nodes as N
from repro.ir.types import DType
from repro.sweep.aggregate import AggregatorSpec, resolve_aggregator
from repro.sweep.engine import CacheLike, run_sweep
from repro.tuning.config import PrecisionConfig
from repro.tuning.greedy import TuningResult, greedy_select
from repro.util.deprecation import warn_legacy


def run_robust_tune(
    k: Union[Kernel, N.Function],
    samples: Mapping[str, Sequence[float]],
    threshold: float,
    fixed: Optional[Mapping[str, object]] = None,
    model: Optional[ErrorModel] = None,
    candidates: Optional[Sequence[str]] = None,
    demote_to: DType = DType.F32,
    aggregate: AggregatorSpec = "max",
    cache: CacheLike = None,
    opt_level: int = 2,
    minimal_pushes: bool = True,
    sensitivity: Optional[Dict[str, float]] = None,
) -> TuningResult:
    """The distribution-robust tuner proper — see
    :meth:`repro.session.Session.tune`.

    Non-deprecated implementation shared by the session facade;
    :func:`robust_tune` is the legacy wrapper around it.
    """
    model = model or AdaptModel(demote_to)
    batch = run_sweep(
        k, samples=samples, fixed=fixed, model=model, cache=cache,
        opt_level=opt_level, minimal_pushes=minimal_pushes,
    )
    _, agg = resolve_aggregator(aggregate)
    contrib = {
        v: agg(np.asarray(a)) for v, a in batch.per_variable.items()
    }
    ranking, chosen, _ = greedy_select(
        contrib, threshold, candidates, sensitivity=sensitivity
    )
    if chosen:
        per_sample = np.sum(
            [np.asarray(batch.per_variable[v]) for v in chosen], axis=0
        )
        estimated = float(agg(per_sample))
    else:
        estimated = 0.0
    return TuningResult(
        config=PrecisionConfig.demote(chosen, to=demote_to),
        estimated_error=estimated,
        report=batch.point(batch.worst()),
        ranking=ranking,
        threshold=threshold,
        sweep=batch,
    )


def robust_tune(
    k: Union[Kernel, N.Function],
    samples: Mapping[str, Sequence[float]],
    threshold: float,
    fixed: Optional[Mapping[str, object]] = None,
    model: Optional[ErrorModel] = None,
    candidates: Optional[Sequence[str]] = None,
    demote_to: DType = DType.F32,
    aggregate: AggregatorSpec = "max",
    cache: CacheLike = None,
) -> TuningResult:
    """Find a mixed-precision configuration robust across an input sweep.

    .. deprecated:: 1.1
        Legacy wrapper, removed in 2.0 — use
        :meth:`repro.session.Session.tune` (``session.tune(k,
        threshold, samples=samples)``), which shares the session's
        sweep cache and estimator memo.

    :param k: the kernel to tune.
    :param samples: swept parameters — ``{param: length-N array}``; see
        :mod:`repro.sweep.samplers` for grid/random/explicit builders.
    :param threshold: maximum acceptable accumulated estimated error,
        enforced on the *aggregated* (default: worst-case) contributions.
    :param fixed: lane-uniform values for unswept parameters.
    :param model: error model (default: ADAPT demotion model, Eq. 2).
    :param candidates: restrict demotion candidates.
    :param demote_to: target precision (binary32 by default).
    :param aggregate: how contributions are reduced across samples —
        ``"max"`` (default, conservative), ``"mean"``, ``"p95"``, a
        ``("percentile", q)`` tuple, or a callable.
    :param cache: optional sweep result cache (see
        :class:`repro.sweep.SweepCache`); repeated tuning runs over the
        same distribution become cache hits.
    """
    warn_legacy(
        "repro.robust_tune()", "Session.tune(k, threshold, samples=...)"
    )
    from repro.session import Session

    return Session(cache=cache).tune(
        k, threshold, samples=samples, fixed=fixed, robust=True,
        model=model, candidates=candidates, demote_to=demote_to,
        aggregate=aggregate,
    )
