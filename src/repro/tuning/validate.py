"""Configuration validation: actual error and modelled speedup.

Given a precision configuration, run the demoted program against the
uniform-f64 reference to obtain the *actual* introduced error (the
"Actual Error" columns of Tables I and III), and compare simulated
cycle counts to obtain the speedup (the performance substitution of
DESIGN.md — pure Python cannot observe f32 hardware speedups).

Search loops validate many configurations against one reference:
:func:`measure_reference` runs the reference once and the result feeds
every subsequent :func:`validate_config` call via its ``reference``
parameter, and :func:`counting_runner` compiles a cost-counting variant
once for evaluation at several input points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.codegen.compile import (
    ConfigLaneKernel,
    compile_raw,
    config_lane_kernel,
)
from repro.codegen.npgen import UnvectorizableError
from repro.frontend.registry import Kernel
from repro.interp.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.ir import nodes as N
from repro.ir.types import ArrayType, DType
from repro.tuning.config import PrecisionConfig, apply_precision


@dataclass
class ReferencePoint:
    """One reference (uniform-f64) execution: value and modelled cost."""

    value: float
    cost: float


def modelled_speedup(
    cost_reference: float, cost_mixed: float, what: str = "configuration"
) -> float:
    """Speedup policy shared by every (reference, mixed) cycle pair.

    A zero-cost kernel (both programs cost 0 cycles) is trivially 1.0;
    a *degenerate* pair (mixed cost 0 against a non-zero reference)
    raises instead of silently reporting 1.0.
    """
    if cost_reference == 0.0 and cost_mixed == 0.0:
        return 1.0
    if cost_mixed == 0.0:
        raise ValueError(
            f"degenerate {what}: zero mixed cycle count against "
            f"reference cost {cost_reference}"
        )
    return cost_reference / cost_mixed


@dataclass
class ConfigValidation:
    """Actual-versus-reference measurement of one configuration."""

    config: PrecisionConfig
    reference_value: float
    mixed_value: float
    actual_error: float
    cost_reference: float
    cost_mixed: float

    def __post_init__(self) -> None:
        if self.cost_reference < 0 or self.cost_mixed < 0:
            raise ValueError(
                "negative modelled cycle count "
                f"(reference={self.cost_reference}, "
                f"mixed={self.cost_mixed}) — the cost model is broken"
            )

    @property
    def is_zero_cost(self) -> bool:
        """Both programs cost nothing — a zero-work kernel."""
        return self.cost_reference == 0.0 and self.cost_mixed == 0.0

    @property
    def degenerate(self) -> bool:
        """The mixed program reports zero cycles against a non-trivial
        reference — a broken configuration, not a real speedup."""
        return self.cost_mixed == 0.0 and self.cost_reference > 0.0

    @property
    def speedup(self) -> float:
        """Modelled execution speedup of the mixed configuration
        (see :func:`modelled_speedup` for the edge-case policy)."""
        return modelled_speedup(
            self.cost_reference,
            self.cost_mixed,
            what=f"configuration {self.config.describe()}",
        )


def counting_runner(
    fn: N.Function,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    approx: Optional[Set[str]] = None,
) -> Callable[[Sequence[object]], Tuple[float, float]]:
    """Compile ``fn`` with cycle counting once; return a point runner.

    The runner maps an argument tuple to ``(value, cost)``.  Array
    arguments are copied per call so repeated runs stay independent
    (kernels may mutate arrays in place).
    """
    compiled = compile_raw(
        fn, counting=True, cost_model=cost_model, approx=approx
    )

    def run(args: Sequence[object]) -> Tuple[float, float]:
        call_args = [
            a.copy() if isinstance(a, np.ndarray) else a for a in args
        ]
        value, extras = compiled(*call_args)  # type: ignore[misc]
        cost = float(extras["cost"])
        if cost < 0:
            raise ValueError(
                f"{fn.name}: negative modelled cycle count {cost}"
            )
        return float(value), cost

    return run


class PoolCountingRunner:
    """Counting execution of K configurations × N points, compile-once.

    Wraps one :class:`~repro.codegen.compile.ConfigLaneKernel` (shared
    through the fingerprint-keyed kernel cache) and executes proposal
    pools in one of two lane layouts:

    * ``grid`` — every scalar parameter is additionally batched along
      the validation-point axis, so K configs × N points run as a
      single NumPy execution over a ``(K, N)`` grid (configs are the
      rows — ``(K, 1)`` selector columns — points the columns);
    * ``perpoint`` — inputs stay lane-uniform (required when the kernel
      takes array arguments or input-dependent loop bounds) and the
      K-wide lane batch runs once per validation point.

    Either way each lane performs, bit for bit, the operations the
    per-config compiled scalar code would.
    """

    def __init__(
        self,
        fn: N.Function,
        kernel: ConfigLaneKernel,
        mode: str,
        cost_model: CostModel,
        approx: Optional[Set[str]],
    ) -> None:
        self.fn = fn
        self.kernel = kernel
        self.mode = mode
        self.cost_model = cost_model
        self.approx = approx

    def __call__(
        self,
        configs: Sequence[PrecisionConfig],
        points: Sequence[Sequence[object]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run the pool; returns ``(values, costs)``, both ``(K, N)``.

        :raises KeyError: for configs naming unknown variables (exactly
            like the scalar path).
        :raises ConfigLoweringError: when the pool cannot be expressed
            as lane parameters — callers fall back to the scalar path.
        """
        pool = self.kernel.lower(
            configs, cost_model=self.cost_model, approx=self.approx
        )
        k, n = len(configs), len(points)
        values, costs = self._run(pool, points, k, n)
        if np.any(costs < 0):
            # same guard the scalar counting_runner enforces per run
            raise ValueError(
                f"{self.fn.name}: negative modelled cycle count "
                f"{float(costs.min())}"
            )
        return values, costs

    def _run(
        self,
        pool,
        points: Sequence[Sequence[object]],
        k: int,
        n: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self.mode == "grid":
            cols: List[object] = []
            for i, p in enumerate(self.fn.params):
                dt = p.type.dtype
                cols.append(
                    np.asarray(
                        [pt[i] for pt in points],
                        dtype=np.int64 if dt is DType.I64 else np.float64,
                    )
                )
            value, cost = self.kernel(pool, *cols)
            values = np.broadcast_to(
                np.asarray(value, dtype=np.float64), (k, n)
            ).copy()
            costs = np.broadcast_to(
                np.asarray(cost, dtype=np.float64), (k, n)
            ).copy()
            return values, costs
        values = np.empty((k, n), dtype=np.float64)
        costs = np.empty((k, n), dtype=np.float64)
        for j, pt in enumerate(points):
            args: List[object] = []
            for a, p in zip(pt, self.fn.params):
                if isinstance(p.type, ArrayType):
                    # fresh copy per call: kernels may mutate arrays
                    args.append(list(a))  # type: ignore[arg-type]
                elif p.type.dtype is DType.I64:
                    args.append(int(a))  # type: ignore[arg-type]
                else:
                    args.append(a)
            value, cost = self.kernel(pool, *args)
            values[:, j] = np.broadcast_to(
                np.asarray(value, dtype=np.float64), (k, 1)
            ).reshape(k)
            costs[:, j] = np.broadcast_to(
                np.asarray(cost, dtype=np.float64), (k, 1)
            ).reshape(k)
        return values, costs


def pool_counting_runner(
    fn: N.Function,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    approx: Optional[Set[str]] = None,
) -> Optional[PoolCountingRunner]:
    """Build the config-batched counting runner for ``fn``, if possible.

    Prefers the full ``(K, N)`` grid layout; kernels whose inputs
    cannot be batched (array arguments, input-dependent loop bounds)
    degrade to the per-point lane layout; kernels the config-lane
    generator cannot express at all return ``None`` and callers use the
    per-config scalar path.
    """
    if not any(isinstance(p.type, ArrayType) for p in fn.params):
        try:
            kernel = config_lane_kernel(
                fn,
                batched={p.name for p in fn.params},
                counting=True,
                approx=approx,
            )
            return PoolCountingRunner(
                fn, kernel, "grid", cost_model, approx
            )
        except UnvectorizableError:
            pass
    try:
        kernel = config_lane_kernel(
            fn, counting=True, allow_arrays=True, approx=approx
        )
    except UnvectorizableError:
        return None
    return PoolCountingRunner(fn, kernel, "perpoint", cost_model, approx)


def _run_counting(
    fn: N.Function,
    args: Sequence[object],
    cost_model: CostModel,
    approx: Optional[Set[str]] = None,
) -> Tuple[float, float]:
    return counting_runner(fn, cost_model, approx)(args)


def measure_reference(
    k: Union[Kernel, N.Function],
    args: Sequence[object],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    approx: Optional[Set[str]] = None,
) -> ReferencePoint:
    """Run the uniform-f64 reference once; reusable across validations."""
    fn = k.ir if isinstance(k, Kernel) else k
    value, cost = _run_counting(fn, args, cost_model, approx)
    return ReferencePoint(value=value, cost=cost)


def validate_config(
    k: Union[Kernel, N.Function],
    config: PrecisionConfig,
    args: Sequence[object],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    approx: Optional[Set[str]] = None,
    reference: Optional[ReferencePoint] = None,
) -> ConfigValidation:
    """Execute reference and demoted programs; measure error and cost.

    :param reference: a prior :func:`measure_reference` result for the
        same kernel/args/cost model — skips recompiling and rerunning
        the reference (the hot path of candidate-evaluation loops).
    """
    fn = k.ir if isinstance(k, Kernel) else k
    if reference is None:
        reference = measure_reference(fn, args, cost_model, approx)
    if config:
        mixed_fn = apply_precision(fn, config)
        mixed_value, mixed_cost = _run_counting(
            mixed_fn, args, cost_model, approx
        )
    else:
        mixed_value, mixed_cost = reference.value, reference.cost
    return ConfigValidation(
        config=config,
        reference_value=reference.value,
        mixed_value=mixed_value,
        actual_error=abs(reference.value - mixed_value),
        cost_reference=reference.cost,
        cost_mixed=mixed_cost,
    )
