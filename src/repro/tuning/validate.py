"""Configuration validation: actual error and modelled speedup.

Given a precision configuration, run the demoted program against the
uniform-f64 reference to obtain the *actual* introduced error (the
"Actual Error" columns of Tables I and III), and compare simulated
cycle counts to obtain the speedup (the performance substitution of
DESIGN.md — pure Python cannot observe f32 hardware speedups).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Set, Union

import numpy as np

from repro.codegen.compile import compile_raw
from repro.frontend.registry import Kernel
from repro.interp.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.ir import nodes as N
from repro.tuning.config import PrecisionConfig, apply_precision


@dataclass
class ConfigValidation:
    """Actual-versus-reference measurement of one configuration."""

    config: PrecisionConfig
    reference_value: float
    mixed_value: float
    actual_error: float
    cost_reference: float
    cost_mixed: float

    @property
    def speedup(self) -> float:
        """Modelled execution speedup of the mixed configuration."""
        if self.cost_mixed <= 0:
            return 1.0
        return self.cost_reference / self.cost_mixed


def _run_counting(
    fn: N.Function,
    args: Sequence[object],
    cost_model: CostModel,
    approx: Optional[Set[str]] = None,
):
    compiled = compile_raw(
        fn, counting=True, cost_model=cost_model, approx=approx
    )
    # arrays are mutated in place; copy so reference/mixed runs are
    # independent
    call_args = [
        a.copy() if isinstance(a, np.ndarray) else a for a in args
    ]
    value, extras = compiled(*call_args)  # type: ignore[misc]
    return float(value), float(extras["cost"])


def validate_config(
    k: Union[Kernel, N.Function],
    config: PrecisionConfig,
    args: Sequence[object],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    approx: Optional[Set[str]] = None,
) -> ConfigValidation:
    """Execute reference and demoted programs; measure error and cost."""
    fn = k.ir if isinstance(k, Kernel) else k
    ref_value, ref_cost = _run_counting(fn, args, cost_model, approx)
    if config:
        mixed_fn = apply_precision(fn, config)
        mixed_value, mixed_cost = _run_counting(
            mixed_fn, args, cost_model, approx
        )
    else:
        mixed_value, mixed_cost = ref_value, ref_cost
    return ConfigValidation(
        config=config,
        reference_value=ref_value,
        mixed_value=mixed_value,
        actual_error=abs(ref_value - mixed_value),
        cost_reference=ref_cost,
        cost_mixed=mixed_cost,
    )
