"""Iteration-wise sensitivity analysis and loop splitting (Fig. 9).

The paper analyzes HPCCG's main CG loop: the per-iteration sensitivity
of the vectors r, p, x, Ap drops below the threshold after ~60
iterations, so the loop is split — the first chunk runs in high
precision, the tail in low precision — yielding an 8% speedup.

The Error Estimation Module's traces deliver per-assignment sensitivity
samples in *backward-sweep order*; :func:`iteration_sensitivity` folds
them back into per-iteration aggregates, :func:`find_split_iteration`
picks the split point, and :func:`estimate_split_speedup` costs the
split configuration.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def iteration_sensitivity(
    trace: Sequence[float], n_iterations: int
) -> np.ndarray:
    """Aggregate a backward-order per-assignment trace into
    per-iteration sensitivities (forward iteration order).

    The trace length must be a multiple of ``n_iterations`` (one fixed
    group of assignments per loop iteration — true for straight-line
    loop bodies like CG's).  Samples within an iteration are summed.

    :raises ValueError: if the trace does not divide evenly.
    """
    arr = np.asarray(trace, dtype=np.float64)
    if n_iterations <= 0:
        raise ValueError("n_iterations must be positive")
    if arr.size % n_iterations != 0:
        raise ValueError(
            f"trace length {arr.size} not divisible by "
            f"{n_iterations} iterations"
        )
    per_iter = arr.reshape(n_iterations, -1).sum(axis=1)
    return per_iter[::-1].copy()  # backward order -> forward order


def normalize(series: np.ndarray) -> np.ndarray:
    """Scale a sensitivity series to [0, 1] (max-normalized, Fig. 9)."""
    m = float(series.max()) if series.size else 0.0
    if m == 0.0:
        return np.zeros_like(series)
    return series / m


def find_split_iteration(
    series_by_var: Dict[str, np.ndarray], threshold: float
) -> int:
    """First iteration from which *every* variable's normalized
    sensitivity stays below ``threshold`` for the rest of the run.

    Returns the number of iterations to keep in high precision (i.e.
    the split point); equals the total iteration count when no safe
    split exists.
    """
    if not series_by_var:
        return 0
    lengths = {len(s) for s in series_by_var.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have equal length")
    n = lengths.pop()
    stacked = np.vstack(
        [normalize(np.asarray(s, dtype=np.float64)) for s in series_by_var.values()]
    )
    worst = stacked.max(axis=0)
    # suffix maximum: worst sensitivity from iteration k onwards
    suffix = np.maximum.accumulate(worst[::-1])[::-1]
    below = np.nonzero(suffix < threshold)[0]
    return int(below[0]) if below.size else n


def estimate_split_speedup(
    cost_high_per_iter: float,
    cost_low_per_iter: float,
    split_iteration: int,
    total_iterations: int,
) -> float:
    """Modelled speedup of running iterations ``[split, total)`` at low
    precision versus all-high-precision."""
    if total_iterations <= 0:
        return 1.0
    full = cost_high_per_iter * total_iterations
    split = (
        cost_high_per_iter * split_iteration
        + cost_low_per_iter * (total_iterations - split_iteration)
    )
    if split <= 0:
        return 1.0
    return full / split
