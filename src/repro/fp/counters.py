"""Implicit-cast counters.

The paper's Discussion section notes that a mixed-precision configuration
can be *slower* than the uniform-precision original because of implicit
type-cast overhead, and suggests counting casts (they sketch a Clang
AST-matcher).  :class:`CastCounter` is our equivalent: the static cost
annotator reports how many f32↔f64 conversions each kernel site performs,
and the tuner uses the counts to explain no-speedup configurations such
as the paper's k-Means result.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.ir.types import DType


@dataclass
class CastCounter:
    """Accumulates cast counts keyed by ``(from_dtype, to_dtype)``."""

    counts: Counter = field(default_factory=Counter)

    def record(self, src: DType, dst: DType, times: int = 1) -> None:
        """Record ``times`` casts from ``src`` to ``dst`` precision.

        Same-precision 'casts' are ignored — they compile to nothing.
        """
        if src is dst:
            return
        self.counts[(src, dst)] += times

    @property
    def total(self) -> int:
        """Total number of casts recorded."""
        return sum(self.counts.values())

    def merge(self, other: "CastCounter") -> None:
        """Fold another counter's counts into this one."""
        self.counts.update(other.counts)

    def as_dict(self) -> Dict[Tuple[str, str], int]:
        """Counts with string dtype keys, for reporting."""
        return {
            (src.value, dst.value): n
            for (src, dst), n in sorted(
                self.counts.items(), key=lambda kv: (kv[0][0].value, kv[0][1].value)
            )
        }

    def __str__(self) -> str:
        if not self.counts:
            return "CastCounter(empty)"
        parts = ", ".join(
            f"{src.value}->{dst.value}: {n}" for (src, dst), n in self.counts.items()
        )
        return f"CastCounter({parts})"
