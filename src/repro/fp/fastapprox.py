"""Pure-Python reimplementation of Paul Mineiro's FastApprox library.

The paper's Black-Scholes experiment (Table IV) swaps the standard math
library for FastApprox's approximate ``log``/``exp``/``sqrt`` and uses
CHEF-FP's custom-model hook (Algorithm 2) to bound the approximation
error.  These are bit-level ports of the original C routines: the same
polynomial/bit-twiddling tricks evaluated in binary32, so the
approximation error Δ = f(x) − f̃(x) matches the original library's.

Two accuracy tiers are provided, as in the original:

* ``fast*`` — the rational-polynomial versions (relative error ~1e-5..1e-4)
* ``faster*`` — the purely linear-bit versions (relative error ~1e-2)

All functions take and return Python floats (binary64), but internally
round through binary32 exactly as the C code would.
"""

from __future__ import annotations

import math
import struct
from typing import Callable, Dict

from repro.fp.precision import round_f32

_LOG2_E = 1.442695040888963407  # 1/ln(2)
_LN_2 = 0.6931471805599453


def _f32_bits(x: float) -> int:
    """Bit pattern of ``x`` rounded to binary32, as an unsigned int."""
    return struct.unpack("<I", struct.pack("<f", x))[0]


def _bits_f32(i: int) -> float:
    """Reinterpret an unsigned 32-bit pattern as a binary32 value."""
    return struct.unpack("<f", struct.pack("<I", i & 0xFFFFFFFF))[0]


def fastlog2(x: float) -> float:
    """Mineiro's ``fastlog2``: ~1e-4 relative accuracy for x > 0.

    :raises ValueError: for ``x <= 0`` (the C version returns garbage;
        we fail loudly instead).
    """
    if x <= 0.0:
        raise ValueError("fastlog2 requires x > 0")
    vx_i = _f32_bits(x)
    mx_f = _bits_f32((vx_i & 0x007FFFFF) | 0x3F000000)
    y = vx_i * 1.1920928955078125e-7
    return round_f32(
        y
        - 124.22551499
        - 1.498030302 * mx_f
        - 1.72587999 / (0.3520887068 + mx_f)
    )


def fastlog(x: float) -> float:
    """Natural log via :func:`fastlog2`."""
    return round_f32(0.69314718 * fastlog2(x))


def fasterlog2(x: float) -> float:
    """The cruder linear-bit ``log2`` (~1e-2 accuracy)."""
    if x <= 0.0:
        raise ValueError("fasterlog2 requires x > 0")
    y = _f32_bits(x) * 1.1920928955078125e-7
    return round_f32(y - 126.94269504)


def fasterlog(x: float) -> float:
    """Natural log via :func:`fasterlog2`."""
    return round_f32(0.69314718 * fasterlog2(x))


def fastpow2(p: float) -> float:
    """Mineiro's ``fastpow2``: 2**p with ~1e-4 relative accuracy."""
    p = round_f32(p)
    offset = 1.0 if p < 0 else 0.0
    clipp = -126.0 if p < -126 else p
    w = int(clipp)  # C truncation toward zero
    z = clipp - w + offset
    bits = int(
        (1 << 23)
        * (clipp + 121.2740575 + 27.7280233 / (4.84252568 - z) - 1.49012907 * z)
    )
    return _bits_f32(bits)


def fastexp(p: float) -> float:
    """exp(p) via ``fastpow2(p / ln 2)``."""
    return fastpow2(round_f32(1.442695040 * p))


def fasterpow2(p: float) -> float:
    """The cruder linear-bit ``2**p`` (~2e-2 accuracy)."""
    p = round_f32(p)
    clipp = -126.0 if p < -126 else p
    bits = int((1 << 23) * (clipp + 126.94269504))
    return _bits_f32(bits)


def fasterexp(p: float) -> float:
    """exp(p) via :func:`fasterpow2`."""
    return fasterpow2(round_f32(1.442695040 * p))


def fastpow(x: float, p: float) -> float:
    """x**p via ``fastpow2(p * fastlog2(x))`` (requires x > 0)."""
    return fastpow2(round_f32(p * fastlog2(x)))


def fastrsqrt(x: float) -> float:
    """Quake-III style fast inverse square root with one Newton step.

    ~0.2% relative accuracy for ``x > 0``.
    """
    if x <= 0.0:
        raise ValueError("fastrsqrt requires x > 0")
    xf = round_f32(x)
    i = _f32_bits(xf)
    i = 0x5F3759DF - (i >> 1)
    y = _bits_f32(i)
    # one Newton-Raphson iteration, evaluated in binary32
    y = round_f32(y * round_f32(1.5 - round_f32(0.5 * xf) * y * y))
    return y


def fastsqrt(x: float) -> float:
    """sqrt(x) as ``x * fastrsqrt(x)`` (exact 0 at 0)."""
    if x == 0.0:
        return 0.0
    return round_f32(round_f32(x) * fastrsqrt(x))


#: Map from standard intrinsic name to its "fast" approximation.  The
#: Black-Scholes approximate configurations (Table IV) are expressed as
#: subsets of these substitutions.
FAST_VARIANTS: Dict[str, Callable[..., float]] = {
    "log": fastlog,
    "log2": fastlog2,
    "exp": fastexp,
    "exp2": fastpow2,
    "sqrt": fastsqrt,
    "pow": fastpow,
}

#: Map to the cruder "faster" tier.
FASTER_VARIANTS: Dict[str, Callable[..., float]] = {
    "log": fasterlog,
    "log2": fasterlog2,
    "exp": fasterexp,
    "exp2": fasterpow2,
}

#: Exact references, for Δ = f(x) − f̃(x) in the approximation error model.
EXACT_REFERENCE: Dict[str, Callable[..., float]] = {
    "log": math.log,
    "log2": math.log2,
    "exp": math.exp,
    "exp2": lambda p: 2.0 ** p,
    "sqrt": math.sqrt,
    "pow": math.pow,
}
