"""Floating-point substrate: precisions, rounding, ULPs, FastApprox.

Everything the error models and the mixed-precision machinery need to
reason about IEEE-754 behaviour from within double-precision Python.
"""

from repro.fp.precision import (
    EPS_F16,
    EPS_F32,
    EPS_F64,
    eps_of,
    round_to,
    round_f16,
    round_f32,
    round_f64,
    demotion_error,
)
from repro.fp.ulp import ulp, float_distance, next_after
from repro.fp import fastapprox
from repro.fp.counters import CastCounter

__all__ = [
    "EPS_F16",
    "EPS_F32",
    "EPS_F64",
    "eps_of",
    "round_to",
    "round_f16",
    "round_f32",
    "round_f64",
    "demotion_error",
    "ulp",
    "float_distance",
    "next_after",
    "fastapprox",
    "CastCounter",
]
