"""Unit-in-the-last-place utilities.

Used by tests to state accuracy properties ("the estimate is within N
ULPs") and by the FastApprox accuracy characterisation.
"""

from __future__ import annotations

import math
import struct


def _to_ordinal(x: float) -> int:
    """Map a finite double to a signed integer that orders like the reals."""
    (bits,) = struct.unpack("<q", struct.pack("<d", x))
    if bits < 0:
        bits = -(bits & 0x7FFFFFFFFFFFFFFF)
    return bits


def ulp(x: float) -> float:
    """The gap between ``|x|`` and the next larger double."""
    return math.ulp(x)


def float_distance(a: float, b: float) -> int:
    """Number of representable doubles strictly between ``a`` and ``b``,
    plus one — i.e. the ULP distance.  Both must be finite.

    :raises ValueError: if either input is NaN or infinite.
    """
    if not (math.isfinite(a) and math.isfinite(b)):
        raise ValueError("float_distance requires finite inputs")
    return abs(_to_ordinal(a) - _to_ordinal(b))


def next_after(x: float, direction: float) -> float:
    """The next representable double after ``x`` toward ``direction``."""
    return math.nextafter(x, direction)
