"""IEEE-754 precision levels and round-to-precision helpers.

The paper's Eq. 1 error model needs the machine epsilon of each storage
precision; the ADAPT model (Eq. 2) needs the *demotion error*
``x - (float)x``.  Both are provided here, for scalars and numpy arrays.
"""

from __future__ import annotations

import struct
from typing import Union

import numpy as np

from repro.ir.types import DType, MACHINE_EPS

#: Machine epsilon of IEEE binary16 (half precision).
EPS_F16 = MACHINE_EPS[DType.F16]
#: Machine epsilon of IEEE binary32 (single precision).
EPS_F32 = MACHINE_EPS[DType.F32]
#: Machine epsilon of IEEE binary64 (double precision).
EPS_F64 = MACHINE_EPS[DType.F64]

_EPS_BY_DTYPE = {DType.F16: EPS_F16, DType.F32: EPS_F32, DType.F64: EPS_F64}


def eps_of(dtype: DType) -> float:
    """Machine epsilon of a floating dtype.

    :raises KeyError: for non-float dtypes (there is no rounding error to
        model for integers/booleans).
    """
    return _EPS_BY_DTYPE[dtype]


def round_f64(x: float) -> float:
    """Identity — Python floats *are* binary64."""
    return float(x)


_F32_MAX_ROUND = 3.4028235677973366e38  # halfway point to binary32 inf


def round_f32(x: float) -> float:
    """Round a double to the nearest binary32 value (returned as double).

    Uses ``struct`` round-tripping, which applies IEEE round-to-nearest-
    even — the default FP environment assumed by the paper.  Values
    beyond binary32 range overflow to ±inf, exactly as a C cast would
    (``struct.pack`` would instead raise).
    """
    if x > _F32_MAX_ROUND:
        return float("inf")
    if x < -_F32_MAX_ROUND:
        return float("-inf")
    return struct.unpack("f", struct.pack("f", x))[0]


def round_f16(x: float) -> float:
    """Round a double to the nearest binary16 value (returned as double)."""
    return float(np.float16(x))


_ROUNDERS = {DType.F16: round_f16, DType.F32: round_f32, DType.F64: round_f64}
_NP_DTYPES = {DType.F16: np.float16, DType.F32: np.float32, DType.F64: np.float64}


def round_to(
    x: Union[float, np.ndarray], dtype: DType
) -> Union[float, np.ndarray]:
    """Round ``x`` (scalar or array) to ``dtype`` precision, kept in f64.

    Non-float dtypes are returned unchanged (integers carry no rounding
    error in this model).
    """
    if not dtype.is_float:
        return x
    if isinstance(x, np.ndarray):
        return x.astype(_NP_DTYPES[dtype]).astype(np.float64)
    return _ROUNDERS[dtype](x)


def demotion_error(
    x: Union[float, np.ndarray], dtype: DType = DType.F32
) -> Union[float, np.ndarray]:
    """The representation error introduced by demoting ``x`` to ``dtype``.

    This is the per-variable error term of the ADAPT model (paper Eq. 2):
    ``x - (float)x`` for ``dtype == F32``.
    """
    return x - round_to(x, dtype)
