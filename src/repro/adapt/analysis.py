"""ADAPT analysis driver.

Runs a kernel's generated primal through the taping ``AdFloat`` type,
reverse-sweeps the tape, and applies the Eq. 2 error model per recorded
operation.  Reports gradients, the total error estimate, and tape
statistics (node count, estimated bytes) used by the figure benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.adapt.advalues import AdFloat
from repro.adapt.tape import Tape, TapeLimits
from repro.codegen.compile import CompiledFunction, compile_raw
from repro.frontend.registry import Kernel
from repro.ir import nodes as N
from repro.ir.types import ArrayType, ScalarType
from repro.util.errors import ExecutionError


@dataclass
class AdaptReport:
    """Result of one ADAPT analysis run."""

    value: float
    total_error: float
    gradients: Dict[str, Union[float, np.ndarray]] = field(
        default_factory=dict
    )
    tape_nodes: int = 0
    tape_bytes: int = 0

    def grad(self, param: str) -> Union[float, np.ndarray]:
        """Gradient w.r.t. a differentiable parameter."""
        return self.gradients[param]


class AdaptAnalysis:
    """The ADAPT baseline tool for one kernel.

    Note the workflow difference the paper emphasizes: CHEF-FP generates
    a specialized adjoint once and runs it natively, while ADAPT re-tapes
    the whole computation *on every execute*, holding the full tape in
    memory until the reverse sweep completes.
    """

    def __init__(
        self,
        k: Union[Kernel, N.Function],
        limits: Optional[TapeLimits] = None,
    ) -> None:
        self.primal = k.ir if isinstance(k, Kernel) else k
        if not self.primal.body or not isinstance(
            self.primal.body[-1], N.Return
        ):
            raise ExecutionError(
                f"{self.primal.name}: ADAPT analysis requires a scalar-"
                "returning kernel"
            )
        self.limits = limits or TapeLimits()
        self._compiled: CompiledFunction = compile_raw(
            self.primal, dispatch=True
        )

    def execute(self, *args: object) -> AdaptReport:
        """Tape, reverse, and error-estimate one invocation."""
        params = self.primal.params
        if len(args) != len(params):
            raise ExecutionError(
                f"{self.primal.name}: expected {len(params)} arguments, "
                f"got {len(args)}"
            )
        tape = Tape(self.limits)
        wrapped: List[object] = []
        scalar_inputs: Dict[str, AdFloat] = {}
        array_inputs: Dict[str, List[AdFloat]] = {}
        for p, a in zip(params, args):
            if isinstance(p.type, ArrayType) and p.type.dtype.is_float:
                seq = a.tolist() if isinstance(a, np.ndarray) else list(a)  # type: ignore[union-attr]
                lst = [AdFloat.input(tape, float(v)) for v in seq]
                array_inputs[p.name] = lst
                wrapped.append(lst)
            elif (
                isinstance(p.type, ScalarType) and p.type.dtype.is_float
            ):
                v = AdFloat.input(tape, float(a))  # type: ignore[arg-type]
                scalar_inputs[p.name] = v
                wrapped.append(v)
            else:
                wrapped.append(a)
        out = self._compiled.raw(*wrapped)
        if not isinstance(out, AdFloat):
            # constant-valued result: no recorded dependence on inputs
            return AdaptReport(
                value=float(out),  # type: ignore[arg-type]
                total_error=0.0,
                tape_nodes=len(tape),
                tape_bytes=tape.estimated_bytes,
            )
        adjoints = tape.reverse(out.idx)
        total = tape.eq2_error(adjoints)
        rep = AdaptReport(
            value=out.value,
            total_error=total,
            tape_nodes=len(tape),
            tape_bytes=tape.estimated_bytes,
        )
        for name, v in scalar_inputs.items():
            rep.gradients[name] = adjoints[v.idx]
        for name, lst in array_inputs.items():
            rep.gradients[name] = np.array(
                [adjoints[v.idx] for v in lst], dtype=np.float64
            )
        return rep
