"""The taping value type of the ADAPT baseline.

``AdFloat`` is the analogue of CoDiPack's active real: arithmetic
operators and intrinsic applications record nodes on a shared
:class:`~repro.adapt.tape.Tape` while computing values eagerly.  The
generated primal code (compiled with dispatch bindings) executes
unmodified with these flowing through it — runtime tracing, exactly the
taping approach described in the paper's §II-B.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Sequence, Tuple, Union

from repro.adapt.tape import Tape
from repro.fp.precision import round_f16, round_f32

Number = Union[int, float, "AdFloat"]

_TWO_OVER_SQRT_PI = 2.0 / math.sqrt(math.pi)

#: Numeric partial-derivative table for intrinsics (ADAPT ships its own
#: derivative rules; these mirror the registry's symbolic builders).
_NUMERIC_DERIVS: Dict[str, Callable[..., Tuple[float, ...]]] = {
    "sin": lambda x: (math.cos(x),),
    "cos": lambda x: (-math.sin(x),),
    "tan": lambda x: (1.0 / math.cos(x) ** 2,),
    "asin": lambda x: (1.0 / math.sqrt(1.0 - x * x),),
    "acos": lambda x: (-1.0 / math.sqrt(1.0 - x * x),),
    "atan": lambda x: (1.0 / (1.0 + x * x),),
    "tanh": lambda x: (1.0 - math.tanh(x) ** 2,),
    "sinh": lambda x: (math.cosh(x),),
    "cosh": lambda x: (math.sinh(x),),
    "erf": lambda x: (_TWO_OVER_SQRT_PI * math.exp(-x * x),),
    "erfc": lambda x: (-_TWO_OVER_SQRT_PI * math.exp(-x * x),),
    "exp": lambda x: (math.exp(x),),
    "log": lambda x: (1.0 / x,),
    "log2": lambda x: (1.0 / (x * math.log(2.0)),),
    "exp2": lambda x: (2.0 ** x * math.log(2.0),),
    "sqrt": lambda x: (0.5 / math.sqrt(x),),
    "fabs": lambda x: (math.copysign(1.0, x),),
    "pow": lambda a, b: (
        b * a ** (b - 1.0),
        (a ** b) * math.log(a) if a > 0 else 0.0,
    ),
    "copysign": lambda a, b: (
        math.copysign(1.0, a) * math.copysign(1.0, b),
        0.0,
    ),
    "fmax": lambda a, b: (1.0, 0.0) if a >= b else (0.0, 1.0),
    "fmin": lambda a, b: (1.0, 0.0) if b >= a else (0.0, 1.0),
    "floor": lambda x: (0.0,),
    "ceil": lambda x: (0.0,),
    "step_ge": lambda a, b: (0.0, 0.0),
}

#: value implementations for intrinsics applied to AdFloats
_VALUE_IMPLS: Dict[str, Callable[..., float]] = {
    "sin": math.sin, "cos": math.cos, "tan": math.tan,
    "asin": math.asin, "acos": math.acos, "atan": math.atan,
    "tanh": math.tanh, "sinh": math.sinh, "cosh": math.cosh,
    "erf": math.erf, "erfc": math.erfc,
    "exp": math.exp, "log": math.log, "log2": math.log2,
    "exp2": lambda p: 2.0 ** p, "sqrt": math.sqrt, "fabs": math.fabs,
    "pow": math.pow, "copysign": math.copysign,
    "fmax": lambda a, b: max(a, b), "fmin": lambda a, b: min(a, b),
    "floor": math.floor, "ceil": math.ceil,
    "step_ge": lambda a, b: 1.0 if a >= b else 0.0,
}


class AdFloat:
    """An active floating-point value recorded on a tape."""

    __slots__ = ("tape", "idx", "value")

    def __init__(self, tape: Tape, idx: int, value: float) -> None:
        self.tape = tape
        self.idx = idx
        self.value = value

    # -- construction ------------------------------------------------------
    @classmethod
    def input(cls, tape: Tape, value: float) -> "AdFloat":
        """Register an independent input variable."""
        idx = tape.add_node(float(value))
        return cls(tape, idx, float(value))

    def _node(self, value: float, d_self: float) -> "AdFloat":
        idx = self.tape.add_node(value, self.idx, d_self)
        return AdFloat(self.tape, idx, value)

    def _node2(
        self, other: "AdFloat", value: float, d_self: float, d_other: float
    ) -> "AdFloat":
        idx = self.tape.add_node(
            value, self.idx, d_self, other.idx, d_other
        )
        return AdFloat(self.tape, idx, value)

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: Number) -> "AdFloat":
        if isinstance(other, AdFloat):
            return self._node2(other, self.value + other.value, 1.0, 1.0)
        return self._node(self.value + float(other), 1.0)

    __radd__ = __add__

    def __sub__(self, other: Number) -> "AdFloat":
        if isinstance(other, AdFloat):
            return self._node2(other, self.value - other.value, 1.0, -1.0)
        return self._node(self.value - float(other), 1.0)

    def __rsub__(self, other: Number) -> "AdFloat":
        return self._node(float(other) - self.value, -1.0)

    def __mul__(self, other: Number) -> "AdFloat":
        if isinstance(other, AdFloat):
            return self._node2(
                other,
                self.value * other.value,
                other.value,
                self.value,
            )
        o = float(other)
        return self._node(self.value * o, o)

    __rmul__ = __mul__

    def __truediv__(self, other: Number) -> "AdFloat":
        if isinstance(other, AdFloat):
            # value computed as a true division (reciprocal-multiply
            # would differ by 1 ulp and break bit-exact agreement with
            # the source-transformed code); partials may use the
            # reciprocal freely
            inv = 1.0 / other.value
            return self._node2(
                other,
                self.value / other.value,
                inv,
                -self.value * inv * inv,
            )
        o = float(other)
        return self._node(self.value / o, 1.0 / o)

    def __rtruediv__(self, other: Number) -> "AdFloat":
        o = float(other)
        return self._node(o / self.value, -o / (self.value * self.value))

    def __neg__(self) -> "AdFloat":
        return self._node(-self.value, -1.0)

    def __pos__(self) -> "AdFloat":
        return self

    def __abs__(self) -> "AdFloat":
        return self._node(abs(self.value), math.copysign(1.0, self.value))

    def __pow__(self, other: Number) -> "AdFloat":
        return AdFloat.apply_intrinsic("pow", (self, other))

    # -- precision casts -------------------------------------------------------
    def round32(self) -> "AdFloat":
        """Demotion to binary32 — recorded with unit derivative, the
        first-order treatment of rounding."""
        return self._node(round_f32(self.value), 1.0)

    def round16(self) -> "AdFloat":
        return self._node(round_f16(self.value), 1.0)

    # -- comparisons (values only; control flow is traced, not recorded) --
    def _cmp_value(self, other: Number) -> float:
        return other.value if isinstance(other, AdFloat) else float(other)

    def __lt__(self, other: Number) -> bool:
        return self.value < self._cmp_value(other)

    def __le__(self, other: Number) -> bool:
        return self.value <= self._cmp_value(other)

    def __gt__(self, other: Number) -> bool:
        return self.value > self._cmp_value(other)

    def __ge__(self, other: Number) -> bool:
        return self.value >= self._cmp_value(other)

    def __eq__(self, other: object) -> bool:  # type: ignore[override]
        if isinstance(other, (AdFloat, int, float)):
            return self.value == self._cmp_value(other)  # type: ignore[arg-type]
        return NotImplemented

    def __ne__(self, other: object) -> bool:  # type: ignore[override]
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __hash__(self) -> int:
        return id(self)

    def __float__(self) -> float:
        return self.value

    def __bool__(self) -> bool:
        return bool(self.value)

    def __repr__(self) -> str:
        return f"AdFloat({self.value!r}@{self.idx})"

    # -- intrinsics ------------------------------------------------------------
    @staticmethod
    def apply_intrinsic(name: str, args: Sequence[Number]) -> "AdFloat":
        """Record an intrinsic application (called by the dispatch shims).

        :raises KeyError: for intrinsics without ADAPT derivative rules.
        """
        tape = None
        for a in args:
            if isinstance(a, AdFloat):
                tape = a.tape
                break
        assert tape is not None
        vals = [
            a.value if isinstance(a, AdFloat) else float(a) for a in args
        ]
        value = float(_VALUE_IMPLS[name](*vals))
        partials = _NUMERIC_DERIVS[name](*vals)
        p = [-1, -1]
        d = [0.0, 0.0]
        for k, a in enumerate(args[:2]):
            if isinstance(a, AdFloat):
                p[k] = a.idx
                d[k] = partials[k]
        idx = tape.add_node(value, p[0], d[0], p[1], d[1])
        return AdFloat(tape, idx, value)
