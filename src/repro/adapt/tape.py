"""The ADAPT tape: a linear record of every FP operation.

Structure-of-arrays storage (parallel Python lists) keeps per-node
overhead predictable so the memory-budget check can emulate the paper's
cluster OOM deterministically: when the estimated tape footprint exceeds
the budget, :class:`~repro.util.errors.AnalysisOutOfMemory` is raised —
this is what truncates the ADAPT curves in Figs. 4, 7 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.fp.precision import round_f32
from repro.util.errors import AnalysisOutOfMemory

#: Estimated bytes per tape node: 5 list slots (8 bytes of pointer each)
#: plus two boxed floats (~32 bytes each) and the AdFloat wrapper object
#: amortized.  Deliberately conservative; only ratios matter.
NODE_BYTES = 120


@dataclass
class TapeLimits:
    """Resource limits for one analysis run."""

    #: raise :class:`AnalysisOutOfMemory` when the tape's estimated
    #: footprint exceeds this many bytes (0 disables the check).
    memory_budget_bytes: int = 512 * 1024 * 1024


class Tape:
    """Linear operation tape with reverse-sweep adjoint accumulation."""

    __slots__ = ("values", "p1", "d1", "p2", "d2", "limits", "_check_mask")

    def __init__(self, limits: Optional[TapeLimits] = None) -> None:
        self.values: List[float] = []
        self.p1: List[int] = []
        self.d1: List[float] = []
        self.p2: List[int] = []
        self.d2: List[float] = []
        self.limits = limits or TapeLimits()
        self._check_mask = 0x3FF  # budget check every 1024 nodes

    def __len__(self) -> int:
        return len(self.values)

    @property
    def estimated_bytes(self) -> int:
        """Estimated tape memory footprint."""
        return len(self.values) * NODE_BYTES

    def add_node(
        self,
        value: float,
        p1: int = -1,
        d1: float = 0.0,
        p2: int = -1,
        d2: float = 0.0,
    ) -> int:
        """Record one operation; returns the node index.

        :raises AnalysisOutOfMemory: when the memory budget is exceeded.
        """
        idx = len(self.values)
        self.values.append(value)
        self.p1.append(p1)
        self.d1.append(d1)
        self.p2.append(p2)
        self.d2.append(d2)
        budget = self.limits.memory_budget_bytes
        if budget and (idx & self._check_mask) == 0:
            est = idx * NODE_BYTES
            if est > budget:
                raise AnalysisOutOfMemory(est, budget)
        return idx

    def reverse(self, output_index: int) -> List[float]:
        """Reverse sweep: adjoint of every node w.r.t. the output node."""
        n = len(self.values)
        adj = [0.0] * n
        adj[output_index] = 1.0
        p1, d1, p2, d2 = self.p1, self.d1, self.p2, self.d2
        for i in range(n - 1, -1, -1):
            a = adj[i]
            if a == 0.0:
                continue
            j = p1[i]
            if j >= 0:
                adj[j] += a * d1[i]
            j = p2[i]
            if j >= 0:
                adj[j] += a * d2[i]
        return adj

    def eq2_error(self, adjoints: List[float]) -> float:
        """Total Eq. 2 error: Σ |adj_i · (v_i − (float)v_i)| over all
        recorded operations (each node is one 'assignment')."""
        total = 0.0
        values = self.values
        for i, a in enumerate(adjoints):
            if a == 0.0:
                continue
            v = values[i]
            total += abs(a * (v - round_f32(v)))
        return total
