"""ADAPT baseline: operator-overloading (tracing) AD with taped error
estimation.

This reimplements the comparison tool of the paper's evaluation
(ADAPT-FP, built on the CoDiPack operator-overloading AD library): every
floating-point operation executed at runtime appends a node to a global
tape; after the primal run, a reverse sweep over the whole tape computes
adjoints, and the Eq. 2 error model is applied per node.

Its cost structure is the paper's point of comparison:

* **time** — per-operation dynamic dispatch and node allocation,
* **memory** — the entire tape is retained until the reverse sweep
  (O(#ops)), versus CHEF-FP's minimized push/pop stacks.

The baseline runs the *same generated primal code* as CHEF-FP (via the
dispatchable intrinsic shims), so the comparison isolates exactly the
tracing-vs-source-transformation difference.
"""

from repro.adapt.tape import Tape, TapeLimits
from repro.adapt.advalues import AdFloat
from repro.adapt.analysis import AdaptAnalysis, AdaptReport

__all__ = ["Tape", "TapeLimits", "AdFloat", "AdaptAnalysis", "AdaptReport"]
