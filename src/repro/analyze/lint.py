"""Kernel lint: stable diagnostic codes over the analysis facts.

Two families:

* **RA1xx — numerical safety** (severity ``warning``): facts about
  value ranges and error amplification that make a precision demotion
  statically dangerous;
* **RA2xx — hygiene** (severity ``info``): dataflow facts that make
  the kernel slower or harder to tune without being wrong.

Codes are part of the public contract (tests golden-file them; CI and
editors match on them) — never renumber, only append.

==========  =============================================================
Code        Meaning
==========  =============================================================
``RA101``   value range exceeds f16 finite range (demotion would overflow)
``RA102``   value range exceeds f32 finite range (demotion would overflow)
``RA103``   value range entirely f16-subnormal (demotion flushes to zero)
``RA104``   division by an interval containing (or hugging) zero
``RA105``   catastrophic cancellation (same-signed overlapping operands)
``RA106``   intrinsic domain violation possible (``sqrt``/``log`` of
            non-positive range)
``RA107``   amplifying recurrence: first-order error growth saturated
``RA201``   dead store (value never read)
``RA202``   unused parameter
``RA203``   loop-invariant recomputation
``RA204``   unused local (declared, never read)
==========  =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analyze.dataflow import Dataflow, stmt_writes
from repro.analyze.ranges import (
    FINITE_MAX,
    RangeResult,
    SMALLEST_NORMAL,
    _json_float,
)
from repro.analyze.sensitivity import SensitivityResult
from repro.ir import nodes as N
from repro.ir.typecheck import collect_var_dtypes
from repro.ir.types import DType

#: severity per code family
SEVERITIES = {"RA1": "warning", "RA2": "info"}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding with a stable code."""

    code: str
    var: Optional[str]
    #: source line in the original Python function, when known
    loc: Optional[int]
    message: str
    data: Dict[str, object] = field(default_factory=dict)

    @property
    def severity(self) -> str:
        return SEVERITIES.get(self.code[:3], "info")

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity,
            "var": self.var,
            "loc": self.loc,
            "message": self.message,
            "data": dict(self.data),
        }

    def render(self, kernel: str = "") -> str:
        where = f":{self.loc}" if self.loc is not None else ""
        subject = f" [{self.var}]" if self.var else ""
        prefix = f"{kernel}{where}" if kernel else (where or "-")
        return (
            f"{prefix}: {self.code} {self.severity}{subject}: "
            f"{self.message}"
        )


def _sort_key(d: Diagnostic) -> tuple:
    return (d.code, d.var or "", d.loc if d.loc is not None else -1)


def _is_register(var: str) -> bool:
    return var.startswith("_")


def build_diagnostics(
    fn: N.Function,
    df: Dataflow,
    rr: RangeResult,
    sens: SensitivityResult,
) -> List[Diagnostic]:
    """All lint findings for ``fn``, deterministically ordered."""
    out: List[Diagnostic] = []
    dtypes = collect_var_dtypes(fn)
    float_vars = sorted(
        v for v, dt in dtypes.items() if dt.is_float
    )

    # -- RA101/RA102/RA103: exponent-range feasibility ----------------------
    for var in float_vars:
        if _is_register(var):
            continue
        iv = rr.ranges.get(var)
        if iv is None or not iv.is_finite:
            continue
        if iv.mag > FINITE_MAX[DType.F16]:
            code = (
                "RA102"
                if iv.mag > FINITE_MAX[DType.F32]
                else "RA101"
            )
            target = "f32" if code == "RA102" else "f16"
            out.append(
                Diagnostic(
                    code=code,
                    var=var,
                    loc=_def_loc(df, var),
                    message=(
                        f"value range [{_fmt(iv.lo)}, {_fmt(iv.hi)}] "
                        f"exceeds the {target} finite range — "
                        f"demotion to {target} would overflow"
                    ),
                    data={"range": iv.to_dict(), "target": target},
                )
            )
        elif 0.0 < iv.mag < SMALLEST_NORMAL[DType.F16] and iv.min_mag > 0.0:
            out.append(
                Diagnostic(
                    code="RA103",
                    var=var,
                    loc=_def_loc(df, var),
                    message=(
                        f"value range [{_fmt(iv.lo)}, {_fmt(iv.hi)}] is "
                        "entirely subnormal at f16 — demotion flushes "
                        "significant digits"
                    ),
                    data={"range": iv.to_dict(), "target": "f16"},
                )
            )

    # -- RA104/RA105/RA106: site hazards from range propagation -------------
    _EVENT_CODES = {
        "div_blowup": (
            "RA104",
            "division by an interval containing or approaching zero "
            "amplifies rounding error without bound",
        ),
        "cancellation": (
            "RA105",
            "subtraction of same-signed overlapping ranges can cancel "
            "all significant digits",
        ),
        "domain": (
            "RA106",
            "intrinsic argument range extends outside the function's "
            "domain",
        ),
    }
    for ev in rr.events:
        code, message = _EVENT_CODES[ev.kind]
        out.append(
            Diagnostic(
                code=code,
                var=ev.var,
                loc=ev.loc,
                message=message,
                data={"stmt": ev.stmt, **ev.detail},
            )
        )

    # -- RA107: amplifying recurrences ---------------------------------------
    for var in sorted(sens.capped):
        if _is_register(var):
            continue
        out.append(
            Diagnostic(
                code="RA107",
                var=var,
                loc=_def_loc(df, var),
                message=(
                    "first-order error amplification saturated — the "
                    "variable sits on an amplifying recurrence; "
                    "rounding error may grow without bound"
                ),
                data={"amp": _json_float(sens.amp.get(var, 0.0))},
            )
        )

    # -- RA2xx: hygiene -------------------------------------------------------
    for idx in df.dead_stores:
        s = df.stmts[idx]
        wr = stmt_writes(s)
        if wr is None or _is_register(wr[0]):
            continue
        out.append(
            Diagnostic(
                code="RA201",
                var=wr[0],
                loc=s.loc,
                message="stored value is never read (dead store)",
                data={"stmt": idx},
            )
        )
    for var in sorted(df.unused_params):
        out.append(
            Diagnostic(
                code="RA202",
                var=var,
                loc=None,
                message="parameter is never used",
                data={},
            )
        )
    for stmt_idx, loop_idx in df.loop_invariant:
        s = df.stmts[stmt_idx]
        wr = stmt_writes(s)
        var = wr[0] if wr else None
        if var is not None and _is_register(var):
            continue
        out.append(
            Diagnostic(
                code="RA203",
                var=var,
                loc=s.loc,
                message=(
                    "loop-invariant computation re-executed every "
                    "iteration — hoist it out of the loop"
                ),
                data={"stmt": stmt_idx, "loop": loop_idx},
            )
        )
    for var in sorted(df.unused_locals):
        if _is_register(var):
            continue
        out.append(
            Diagnostic(
                code="RA204",
                var=var,
                loc=_def_loc(df, var),
                message="local is declared but never read",
                data={},
            )
        )

    return sorted(out, key=_sort_key)


def _def_loc(df: Dataflow, var: str) -> Optional[int]:
    for site in df.defs.get(var, ()):
        if site.loc is not None:
            return site.loc
    return None


def _fmt(x: float) -> str:
    return f"{x:.6g}"


def render_text(
    diagnostics: List[Diagnostic], kernel: str = ""
) -> str:
    """Human-readable one-line-per-finding report."""
    if not diagnostics:
        return f"{kernel or 'kernel'}: no findings"
    return "\n".join(d.render(kernel) for d in diagnostics)
