"""Static sensitivity/amplification analysis.

Composes per-operation first-order condition-number bounds along
def-use paths to estimate, for every variable ``v``, how much a
rounding perturbation introduced at ``v`` is amplified by the time it
reaches the kernel's outputs (the return value and any array
parameters, which are passed by reference).

The analysis is the static sibling of the dynamic ADAPT contribution
model (:class:`repro.core.models.AdaptModel`): where ADAPT *measures*
adjoints on concrete inputs, this pass *bounds* them from the interval
ranges, giving a zero-evaluation demotion-error estimate

    ``E[v] = eps(demote_to) * mag(range(v)) * amp(v) * sqrt(writes(v))``

— eps-relative rounding per write, amplified along the worst def-use
path, with the per-write errors composed under the standard stochastic
(random-walk) rounding model: accumulated roundoff grows like the
square root of the number of writes, not linearly (linear growth is
the adversarial worst case and over-pins accumulators by orders of
magnitude).  The estimates feed the lint engine (RA1xx codes) and the
conservative pre-search pruner (:mod:`repro.analyze.report`).

Estimates are deliberately *optimistic* on denominators (they use the
largest divisor magnitude, not the smallest): the pruner pins a
variable to f64 only when even the optimistic estimate blows the error
budget by a wide margin, so optimism translates into pruning less, not
into unsound fronts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.analyze.dataflow import Dataflow
from repro.analyze.ranges import Interval, RangeResult, eval_expr_range
from repro.ir import nodes as N
from repro.ir.types import DType, MACHINE_EPS

#: amplification factors saturate here; a variable that hits the cap
#: sits on an amplifying recurrence (error grows without bound in the
#: first-order model) and is flagged RA107
AMP_CAP = 1e30
#: fixpoint iterations for the backward max-join propagation
_FIXPOINT_CAP = 80
#: amplifications at or above this are downstream of a saturated cycle
#: (a capped value times a sub-unit coefficient): too contaminated to
#: turn into a demotion-error estimate
_AMP_SUSPECT = 1e15
#: execution-count estimates saturate here (matches the exec-count cap
#: in :mod:`repro.analyze.ranges`)
_WRITES_CAP = 1e12


@dataclass
class SensitivityResult:
    """Static sensitivity facts for one function."""

    #: worst-path amplification from a perturbation at ``v`` to the
    #: kernel outputs; 0.0 means no def-use path reaches an output
    amp: Dict[str, float]
    #: estimated number of times ``v`` is written per call (trip-count
    #: products over its def sites), capped at 1e12
    writes: Dict[str, float]
    #: static demotion-error estimate per variable per target dtype
    #: (``{"f32": ..., "f16": ...}``); absent when the range, amp, or
    #: write count is unbounded (nothing can be claimed statically)
    err_estimate: Dict[str, Dict[str, float]]
    #: variables whose amplification saturated at :data:`AMP_CAP`
    capped: Set[str] = field(default_factory=set)


def _mag(iv: Optional[Interval]) -> float:
    return iv.mag if iv is not None else math.inf


def _clamp(x: float) -> float:
    if math.isnan(x):
        return AMP_CAP
    return min(abs(x), AMP_CAP)


class _DerivBounds:
    """Bounds on ``|d expr / d var|`` under summary value ranges.

    Multiple occurrences of the same variable sum (triangle
    inequality); intrinsic derivative factors come from the table
    below, falling back to 1.0 for unknown calls (optimistic).
    """

    def __init__(self, ranges: Mapping[str, Interval]) -> None:
        self.ranges = ranges
        self._range_memo: Dict[int, Interval] = {}

    def range_of(self, e: N.Expr) -> Interval:
        iv = self._range_memo.get(id(e))
        if iv is None:
            iv = eval_expr_range(e, self.ranges)
            self._range_memo[id(e)] = iv
        return iv

    def bound(self, e: N.Expr, var: str) -> float:
        """Bound on ``|d e / d var|`` (0.0 when ``var`` unused)."""
        return self._d(e, var)

    def _d(self, e: N.Expr, u: str) -> float:
        if isinstance(e, N.Const):
            return 0.0
        if isinstance(e, N.Name):
            return 1.0 if e.id == u else 0.0
        if isinstance(e, N.Index):
            return 1.0 if e.base == u else 0.0
        if isinstance(e, N.Cast):
            return self._d(e.operand, u)
        if isinstance(e, N.UnaryOp):
            if e.op == "-":
                return self._d(e.operand, u)
            return 0.0  # logical not
        if isinstance(e, N.BinOp):
            return self._binop(e, u)
        if isinstance(e, N.Call):
            return self._call(e, u)
        return 0.0

    def _binop(self, e: N.BinOp, u: str) -> float:
        if e.op in N.CMPOPS or e.op in N.BOOLOPS:
            return 0.0
        da = self._d(e.left, u)
        db = self._d(e.right, u)
        if e.op in ("+", "-"):
            return _clamp(da + db)
        if e.op == "*":
            if da == 0.0 and db == 0.0:
                return 0.0
            ma = _mag(self.range_of(e.left))
            mb = _mag(self.range_of(e.right))
            return _clamp(da * _clamp(mb) + db * _clamp(ma))
        if e.op == "/":
            if da == 0.0 and db == 0.0:
                return 0.0
            ma = _mag(self.range_of(e.left))
            mb = _mag(self.range_of(e.right))
            # optimistic denominator: the largest divisor magnitude
            if mb == 0.0:
                return AMP_CAP
            if math.isinf(mb):
                return 0.0
            return _clamp(da / mb + db * _clamp(ma) / (mb * mb))
        # integer ops (// %) are piecewise constant
        return 0.0

    def _call(self, e: N.Call, u: str) -> float:
        dargs = [self._d(a, u) for a in e.args]
        if not any(dargs):
            return 0.0
        name = e.fn
        if name.startswith("fast_"):
            name = name[len("fast_"):]
        factors = self._call_factors(name, e.args)
        total = 0.0
        for d, f in zip(dargs, factors):
            total += d * f
        return _clamp(total)

    def _call_factors(self, name: str, args: List[N.Expr]) -> List[float]:
        """Per-argument derivative-magnitude factors for an intrinsic."""
        one = [1.0] * len(args)
        if name in ("sin", "cos", "erf", "erfc", "atan", "tanh",
                    "fabs", "fmax", "fmin", "copysign", "asin", "acos"):
            return one
        if name in ("floor", "ceil", "step_ge"):
            return [0.0] * len(args)
        if name == "user_err":
            return [1.0] + [0.0] * (len(args) - 1)
        a0 = self.range_of(args[0]) if args else None
        m0 = _mag(a0)
        if name in ("exp", "exp2"):
            # d exp(x)/dx = exp(x): monotone, bounded by the *upper*
            # endpoint (an argument range deep in the negatives has a
            # tiny derivative, not a huge one)
            hi = a0.hi if a0 is not None else math.inf
            scale = math.log(2.0) if name == "exp2" else 1.0
            try:
                f = scale * math.exp(min(hi * scale, 700.0))
            except OverflowError:
                f = AMP_CAP
            return [_clamp(f)]
        if name in ("sinh", "cosh"):
            try:
                f = math.exp(min(m0, 700.0))
            except OverflowError:
                f = AMP_CAP
            return [_clamp(f)]
        if name == "tan":
            return [AMP_CAP]
        if name in ("log", "log2"):
            # d log(x)/dx = 1/x; optimistic: largest |x|
            if m0 == 0.0 or math.isinf(m0):
                return [AMP_CAP if m0 == 0.0 else 0.0]
            return [_clamp(1.0 / m0)]
        if name == "sqrt":
            if m0 == 0.0 or math.isinf(m0):
                return [AMP_CAP if m0 == 0.0 else 0.0]
            return [_clamp(0.5 / math.sqrt(m0))]
        if name == "pow" and len(args) == 2:
            m1 = _mag(self.range_of(args[1]))
            if math.isinf(m0) or math.isinf(m1):
                return [AMP_CAP, AMP_CAP]
            try:
                powmag = max(m0, 1.0) ** m1
            except OverflowError:
                powmag = AMP_CAP
            d_base = _clamp(m1 * max(m0, 1.0) ** max(m1 - 1.0, 0.0))
            d_exp = _clamp(powmag * math.log(max(m0, 1.0) + 1.0))
            return [d_base, d_exp]
        return one  # unknown intrinsic: optimistic unit factor


def analyze_sensitivity(
    fn: N.Function,
    df: Dataflow,
    rr: RangeResult,
) -> SensitivityResult:
    """Static amplification/write-count/error estimates for ``fn``."""
    bounds = _DerivBounds(rr.ranges)
    array_params = {
        p.name for p in fn.params if p.type.is_array
    }

    # -- seeds: direct output exposure --------------------------------------
    amp: Dict[str, float] = {}

    def seed(var: str, value: float) -> None:
        if value > amp.get(var, 0.0):
            amp[var] = min(value, AMP_CAP)

    for p in array_params:
        seed(p, 1.0)  # arrays are outputs: final values escape as-is
    for s in df.stmts:
        if isinstance(s, N.Return):
            for u in _expr_vars(s.value):
                seed(u, bounds.bound(s.value, u))
        elif isinstance(s, N.ReturnTuple):
            for v in s.values:
                for u in _expr_vars(v):
                    seed(u, bounds.bound(v, u))

    # -- def-site edges: u --coeff--> w for each def "w := e(u, ...)" -------
    edges: List[Tuple[str, str, float]] = []  # (u, w, coeff)
    for var, sites in df.defs.items():
        for site in sites:
            # param sites use negative indices (PARAM_SITE - position)
            if site.index < 0 or site.kind in ("loop", "pop"):
                continue
            s = df.stmts[site.index]
            rhs = _def_rhs(s)
            if rhs is None:
                continue
            for u in _expr_vars(rhs):
                coeff = bounds.bound(rhs, u)
                if coeff > 0.0:
                    edges.append((u, var, coeff))
            if (
                isinstance(s, N.Assign)
                and isinstance(s.target, N.Index)
            ):
                # a store into w overwrites one element; prior values
                # of w still flow (other elements): identity self-edge
                edges.append((var, var, 1.0))

    # -- backward max-join fixpoint -----------------------------------------
    capped: Set[str] = set()
    for _ in range(_FIXPOINT_CAP):
        changed = False
        for u, w, coeff in edges:
            aw = amp.get(w, 0.0)
            if aw == 0.0:
                continue
            cand = min(coeff * aw, AMP_CAP)
            if cand > amp.get(u, 0.0) * (1.0 + 1e-12):
                amp[u] = cand
                changed = True
        if not changed:
            break
    else:
        # still growing after the cap: every variable whose value rose
        # on the last sweeps sits on an amplifying cycle — saturate
        for u, w, coeff in edges:
            aw = amp.get(w, 0.0)
            if aw > 0.0 and min(coeff * aw, AMP_CAP) > amp.get(u, 0.0):
                amp[u] = AMP_CAP
    for v, a in amp.items():
        if a >= AMP_CAP:
            capped.add(v)

    # -- write counts --------------------------------------------------------
    writes: Dict[str, float] = {}
    for var, sites in df.defs.items():
        total = 0.0
        for site in sites:
            if site.index < 0:
                continue
            total += rr.exec_counts.get(site.index, 1.0)
        if total > 0.0:
            writes[var] = min(total, _WRITES_CAP)

    # -- demotion-error estimates -------------------------------------------
    err: Dict[str, Dict[str, float]] = {}
    for var in set(amp) | set(writes):
        iv = rr.ranges.get(var)
        if iv is None or not iv.is_finite:
            continue
        a = amp.get(var, 0.0)
        w = writes.get(var, 0.0)
        if a >= _AMP_SUSPECT or w >= _WRITES_CAP or w == 0.0:
            continue
        per_dtype: Dict[str, float] = {}
        for dt in (DType.F16, DType.F32):
            per_dtype[dt.value] = (
                MACHINE_EPS[dt] * iv.mag * a * math.sqrt(w)
            )
        err[var] = per_dtype

    return SensitivityResult(
        amp=amp, writes=writes, err_estimate=err, capped=capped
    )


def _def_rhs(s: N.Stmt) -> Optional[N.Expr]:
    if isinstance(s, N.VarDecl):
        return s.init
    if isinstance(s, N.Assign):
        return s.value
    return None


def _expr_vars(e: N.Expr) -> Set[str]:
    from repro.ir.visitor import walk_expr

    out: Set[str] = set()
    for sub in walk_expr(e):
        if isinstance(sub, N.Name):
            out.add(sub.id)
        elif isinstance(sub, N.Index):
            out.add(sub.base)
    return out
