"""Forward/backward dataflow framework over the IR.

The reusable analysis substrate of :mod:`repro.analyze`: statement
indexing, def-use/use-def chains, backward liveness, and the structural
hygiene facts (dead stores, unused parameters, loop-invariant
recomputation) that the lint engine turns into ``RA2xx`` diagnostics.

The IR is structured (no goto, ``break`` only in the guarded-break
pattern), so dataflow runs directly over the tree: straight-line code
is interpreted in order, ``If`` joins its branches, and loop bodies are
iterated to a fixpoint.  All facts are conservative over-approximations
— a *may* analysis for reaching definitions and liveness, a *must*
analysis (err on not reporting) for the hygiene findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.ir import nodes as N
from repro.ir.types import ArrayType
from repro.ir.visitor import iter_stmt_exprs, walk_expr

#: synthetic def-site index for parameters (no statement defines them)
PARAM_SITE = -1


@dataclass(frozen=True)
class DefSite:
    """One definition of a variable: a statement index plus its kind."""

    index: int
    var: str
    #: ``"param" | "decl" | "assign" | "loop" | "store" | "pop"``
    kind: str
    loc: Optional[int] = None


@dataclass
class Dataflow:
    """Def-use facts of one function (see :func:`analyze_dataflow`)."""

    fn: N.Function
    #: pre-order statement list; indices are the site ids used below
    stmts: List[N.Stmt]
    #: every definition site, by variable
    defs: Dict[str, List[DefSite]] = field(default_factory=dict)
    #: statement indices reading each variable
    uses: Dict[str, List[int]] = field(default_factory=dict)
    #: reaching definitions at each (statement, variable) use
    use_def: Dict[Tuple[int, str], FrozenSet[int]] = field(
        default_factory=dict
    )
    #: variables read by the definitions of each variable
    deps: Dict[str, Set[str]] = field(default_factory=dict)
    #: variables with a def-use path into the return value
    flows_to_return: Set[str] = field(default_factory=set)
    #: statement indices of scalar stores whose value is never read
    dead_stores: List[int] = field(default_factory=list)
    #: parameters never referenced by the body
    unused_params: List[str] = field(default_factory=list)
    #: locals declared but never read
    unused_locals: List[str] = field(default_factory=list)
    #: (statement index, loop statement index) of loop-invariant
    #: assignments recomputed on every iteration
    loop_invariant: List[Tuple[int, int]] = field(default_factory=list)

    def def_use(self) -> Dict[int, Set[Tuple[int, str]]]:
        """Inverse of :attr:`use_def`: uses reached by each def site."""
        out: Dict[int, Set[Tuple[int, str]]] = {}
        for (stmt, var), sites in self.use_def.items():
            for site in sites:
                out.setdefault(site, set()).add((stmt, var))
        return out


def stmt_reads(s: N.Stmt) -> Set[str]:
    """Variable (and array-base) names read by one statement."""
    out: Set[str] = set()
    for e in iter_stmt_exprs(s):
        for node in walk_expr(e):
            if isinstance(node, N.Name):
                out.add(node.id)
            elif isinstance(node, N.Index):
                out.add(node.base)
    return out


def stmt_writes(s: N.Stmt) -> Optional[Tuple[str, str]]:
    """The ``(variable, kind)`` a statement defines, if any."""
    if isinstance(s, N.VarDecl):
        return s.name, "decl"
    if isinstance(s, N.Assign):
        if isinstance(s.target, N.Name):
            return s.target.id, "assign"
        return s.target.base, "store"
    if isinstance(s, N.For):
        return s.var, "loop"
    if isinstance(s, N.Pop):
        if isinstance(s.target, N.Name):
            return s.target.id, "pop"
        return s.target.base, "store"
    return None


def index_statements(fn: N.Function) -> List[N.Stmt]:
    """Pre-order statement list; list position is the statement id."""
    out: List[N.Stmt] = []

    def visit(body: Iterable[N.Stmt]) -> None:
        for s in body:
            out.append(s)
            if isinstance(s, (N.For, N.While)):
                visit(s.body)
            elif isinstance(s, N.If):
                visit(s.then)
                visit(s.orelse)

    visit(fn.body)
    return out


class _ReachingDefs:
    """Forward may-analysis: which def sites reach each use."""

    def __init__(self, fn: N.Function, stmts: List[N.Stmt]) -> None:
        self.fn = fn
        self.stmts = stmts
        self.index = {id(s): i for i, s in enumerate(stmts)}
        self.use_def: Dict[Tuple[int, str], Set[int]] = {}
        self.arrays = {
            p.name for p in fn.params if isinstance(p.type, ArrayType)
        }

    def run(self) -> Dict[Tuple[int, str], Set[int]]:
        state: Dict[str, FrozenSet[int]] = {
            p.name: frozenset((PARAM_SITE,)) for p in self.fn.params
        }
        self._body(self.fn.body, state)
        return self.use_def

    def _record_uses(
        self, s: N.Stmt, state: Dict[str, FrozenSet[int]]
    ) -> None:
        i = self.index[id(s)]
        for var in stmt_reads(s):
            key = (i, var)
            reaching = state.get(var, frozenset())
            self.use_def[key] = self.use_def.get(key, set()) | set(reaching)

    def _body(
        self, body: List[N.Stmt], state: Dict[str, FrozenSet[int]]
    ) -> None:
        for s in body:
            self._stmt(s, state)

    def _stmt(self, s: N.Stmt, state: Dict[str, FrozenSet[int]]) -> None:
        i = self.index[id(s)]
        self._record_uses(s, state)
        wrote = stmt_writes(s)
        if isinstance(s, N.If):
            then_state = dict(state)
            else_state = dict(state)
            self._body(s.then, then_state)
            self._body(s.orelse, else_state)
            state.clear()
            state.update(_join_states(then_state, else_state))
            return
        if isinstance(s, (N.For, N.While)):
            if isinstance(s, N.For):
                state[s.var] = frozenset((i,))
            # loop fixpoint: iterate the body, joining with the state
            # before the loop (zero-trip case), until nothing changes
            while True:
                inner = dict(state)
                self._body(s.body, inner)
                merged = _join_states(state, inner)
                if merged == state:
                    break
                state.clear()
                state.update(merged)
            return
        if wrote is not None:
            var, kind = wrote
            if kind == "store":
                # weak update: other elements' stores stay visible
                state[var] = state.get(var, frozenset()) | {i}
            else:
                state[var] = frozenset((i,))


def _join_states(
    a: Dict[str, FrozenSet[int]], b: Dict[str, FrozenSet[int]]
) -> Dict[str, FrozenSet[int]]:
    out: Dict[str, FrozenSet[int]] = {}
    for var in set(a) | set(b):
        out[var] = a.get(var, frozenset()) | b.get(var, frozenset())
    return out


class _Liveness:
    """Backward liveness with dead-store recording on the stable pass."""

    def __init__(self, fn: N.Function, stmts: List[N.Stmt]) -> None:
        self.fn = fn
        self.stmts = stmts
        self.index = {id(s): i for i, s in enumerate(stmts)}
        self.arrays = {
            p.name for p in fn.params if isinstance(p.type, ArrayType)
        }
        self.dead_stores: List[int] = []

    def run(self) -> None:
        # arrays are passed by reference: their final contents are
        # observable by the caller, so array params are live at exit
        exit_live: Set[str] = set(self.arrays)
        self._body(self.fn.body, exit_live, record=True)

    def _body(
        self, body: List[N.Stmt], live: Set[str], record: bool
    ) -> Set[str]:
        for s in reversed(body):
            live = self._stmt(s, live, record)
        return live

    def _stmt(
        self, s: N.Stmt, live: Set[str], record: bool
    ) -> Set[str]:
        reads = stmt_reads(s)
        if isinstance(s, N.If):
            out_then = self._body(s.then, set(live), record)
            out_else = self._body(s.orelse, set(live), record)
            return out_then | out_else | reads
        if isinstance(s, (N.For, N.While)):
            # fixpoint: anything live after the loop or read by a later
            # iteration is live throughout the body
            out = set(live) | reads
            while True:
                new = self._body(s.body, set(out), record=False) | out
                if new <= out:
                    break
                out |= new
            if record:
                self._body(s.body, set(out), record=True)
            if isinstance(s, N.For):
                out.discard(s.var)
            return out | reads | live
        wrote = stmt_writes(s)
        if wrote is not None:
            var, kind = wrote
            if kind in ("assign", "decl", "pop"):
                if (
                    record
                    and kind == "assign"
                    and var not in live
                    and var not in self.arrays
                ):
                    self.dead_stores.append(self.index[id(s)])
                live = set(live)
                live.discard(var)
                return live | reads
            # array store: weak update, the base stays live
            return set(live) | reads | {var}
        return set(live) | reads


def _walk(body: List[N.Stmt]) -> Iterable[N.Stmt]:
    for s in body:
        yield s
        if isinstance(s, (N.For, N.While)):
            yield from _walk(s.body)
        elif isinstance(s, N.If):
            yield from _walk(s.then)
            yield from _walk(s.orelse)


def _defined_in(body: List[N.Stmt]) -> Set[str]:
    """Variables (weakly) defined anywhere inside a statement list."""
    out: Set[str] = set()

    def visit(stmts: List[N.Stmt]) -> None:
        for s in stmts:
            wrote = stmt_writes(s)
            if wrote is not None:
                out.add(wrote[0])
            if isinstance(s, (N.For, N.While)):
                visit(s.body)
            elif isinstance(s, N.If):
                visit(s.then)
                visit(s.orelse)

    visit(body)
    return out


def _is_computation(e: N.Expr) -> bool:
    """Whether re-evaluating ``e`` each iteration costs real work."""
    return any(
        isinstance(n, (N.BinOp, N.Call)) for n in walk_expr(e)
    )


class _LoopInvariants:
    """Flag assignments recomputing a loop-invariant value."""

    def __init__(self, fn: N.Function, stmts: List[N.Stmt]) -> None:
        self.fn = fn
        self.stmts = stmts
        self.index = {id(s): i for i, s in enumerate(stmts)}
        self.found: List[Tuple[int, int]] = []

    def run(self) -> List[Tuple[int, int]]:
        self._body(self.fn.body, loops=[])
        return self.found

    def _body(
        self,
        body: List[N.Stmt],
        loops: List[Tuple[int, Set[str], List[N.Stmt]]],
    ) -> None:
        for s in body:
            if isinstance(s, (N.For, N.While)):
                defined = _defined_in(s.body)
                if isinstance(s, N.For):
                    defined.add(s.var)
                self._body(
                    s.body,
                    loops + [(self.index[id(s)], defined, s.body)],
                )
            elif isinstance(s, N.If):
                self._body(s.then, loops)
                self._body(s.orelse, loops)
            elif loops and isinstance(s, (N.Assign, N.VarDecl)):
                self._check(s, loops)

    def _check(
        self,
        s: N.Stmt,
        loops: List[Tuple[int, Set[str], List[N.Stmt]]],
    ) -> None:
        value = s.value if isinstance(s, N.Assign) else s.init
        if value is None or not _is_computation(value):
            return
        if isinstance(s, N.Assign) and not isinstance(s.target, N.Name):
            return
        reads = set()
        for node in walk_expr(value):
            if isinstance(node, N.Name):
                reads.add(node.id)
            elif isinstance(node, N.Index):
                # array contents may change between iterations even if
                # the base name has no loop-local def — be conservative
                return
        loop_idx, defined, loop_body = loops[-1]
        target = s.name if isinstance(s, N.VarDecl) else s.target.id
        if reads & defined or target in reads:
            return
        # the target must be defined exactly this once inside the loop
        # — a second def means the value genuinely changes per iteration
        n_defs = sum(
            1
            for inner in _walk(loop_body)
            for wrote in (stmt_writes(inner),)
            if wrote is not None and wrote[0] == target
        )
        if n_defs != 1:
            return
        self.found.append((self.index[id(s)], loop_idx))


def analyze_dataflow(fn: N.Function) -> Dataflow:
    """Compute the full def-use fact base for one function."""
    stmts = index_statements(fn)
    df = Dataflow(fn=fn, stmts=stmts)
    for pos, p in enumerate(fn.params):
        df.defs.setdefault(p.name, []).append(
            DefSite(index=PARAM_SITE - pos, var=p.name, kind="param")
        )
    for i, s in enumerate(stmts):
        wrote = stmt_writes(s)
        if wrote is not None:
            var, kind = wrote
            df.defs.setdefault(var, []).append(
                DefSite(index=i, var=var, kind=kind, loc=s.loc)
            )
            if kind != "loop":
                df.deps.setdefault(var, set()).update(stmt_reads(s))
        for var in stmt_reads(s):
            df.uses.setdefault(var, []).append(i)
    reaching = _ReachingDefs(fn, stmts).run()
    df.use_def = {k: frozenset(v) for k, v in reaching.items()}
    live = _Liveness(fn, stmts)
    live.run()
    df.dead_stores = sorted(live.dead_stores)
    df.loop_invariant = _LoopInvariants(fn, stmts).run()
    # transitive closure: variables feeding the return value
    ret_reads: Set[str] = set()
    for s in stmts:
        if isinstance(s, (N.Return, N.ReturnTuple)):
            ret_reads |= stmt_reads(s)
    frontier = set(ret_reads)
    flows = set(ret_reads)
    while frontier:
        nxt: Set[str] = set()
        for var in frontier:
            for dep in df.deps.get(var, ()):
                if dep not in flows:
                    flows.add(dep)
                    nxt.add(dep)
        frontier = nxt
    df.flows_to_return = flows
    referenced = set(df.uses)
    for s in stmts:
        wrote = stmt_writes(s)
        if wrote is not None and wrote[1] == "store":
            referenced.add(wrote[0])
    df.unused_params = [
        p.name for p in fn.params if p.name not in referenced
    ]
    df.unused_locals = sorted(
        var
        for var, sites in df.defs.items()
        if var not in df.uses
        and var not in {p.name for p in fn.params}
        and all(site.kind == "decl" for site in sites)
    )
    return df
