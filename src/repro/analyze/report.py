"""The :class:`AnalysisReport`: one kernel's static-analysis facts.

``analyze_kernel()`` runs the whole pipeline — dataflow, interval
ranges, sensitivity, lint — and folds the per-IR-variable facts back
onto *source-level* names (inlined callee locals like ``expin_in1``
join their source variable ``expin``; compiler registers are dropped),
so the report speaks the same vocabulary as the precision search's
candidate space.

From the folded facts the report derives the two pruning sets:

* **pinned** — variables a demotion to ``demote_to`` would statically
  break: their value range overflows the target's finite range, or the
  static demotion-error estimate exceeds the error budget by
  :data:`PIN_MARGIN`;
* **safe** — variables with *zero* amplification to any kernel output
  and no influence on control flow or addressing: demoting them cannot
  change results, so the search need not spend evaluations on them.

``prune_candidates()`` applies both sets to a search candidate list.
The contract is conservative by construction — see the README's
"Static analysis" section for when pruning can and cannot change the
Pareto front.
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analyze.dataflow import Dataflow, analyze_dataflow
from repro.analyze.lint import Diagnostic, build_diagnostics, render_text
from repro.analyze.ranges import (
    FINITE_MAX,
    Interval,
    RangeResult,
    _json_float,
    analyze_ranges,
    derive_domains,
)
from repro.analyze.sensitivity import (
    SensitivityResult,
    analyze_sensitivity,
)
from repro.ir import nodes as N
from repro.ir.fingerprint import ir_fingerprint
from repro.ir.typecheck import collect_var_dtypes
from repro.ir.types import DType
from repro.ir.visitor import walk_expr, walk_stmts
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: a variable is pinned on estimated error only when the optimistic
#: static estimate exceeds the error budget by this factor — the wide
#: margin keeps the (heuristic, first-order) estimate from pruning
#: configurations a real evaluation would have accepted
PIN_MARGIN = 10.0

#: estimate-based pinning applies only to loop accumulators — variables
#: written at least this many times per call.  For straight-line
#: variables a demotion costs a single rounding, and the worst-path
#: amplification bound is dominated by interval decorrelation (the
#: bound multiplies per-op corner cases that cannot co-occur), so a
#: static estimate there is evidence of nothing; accumulators are where
#: the sqrt-of-writes rounding model is actually calibrated
ACCUM_MIN_WRITES = 8.0

#: inlining suffixes appended to callee locals (possibly stacked) —
#: mirrors the folding in repro.search.api._derive_candidates; the two
#: must agree for pruning to address the same candidate space
_INLINE_SUFFIX = re.compile(r"(?:_in\d+)+$")


def fold_name(var: str) -> Optional[str]:
    """Source-level name of an IR variable (``None`` for registers)."""
    if var.startswith("_"):
        return None
    return _INLINE_SUFFIX.sub("", var)


@dataclass
class AnalysisReport:
    """Everything the static analysis learned about one kernel."""

    kernel: str
    ir_fingerprint: str
    demote_to: str
    threshold: Optional[float]
    #: per source-level variable: joined value range
    ranges: Dict[str, Interval]
    #: per source-level variable: worst-path output amplification
    amp: Dict[str, float]
    #: per source-level variable: estimated writes per call
    writes: Dict[str, float]
    #: per source-level variable: static demotion-error estimate per
    #: target dtype (absent when unbounded)
    err_estimate: Dict[str, Dict[str, float]]
    diagnostics: List[Diagnostic]
    #: source-level variables statically unsafe to demote
    pinned: Tuple[str, ...]
    #: source-level variables statically proven demotion-safe
    safe: Tuple[str, ...]
    #: whether the abstract interpreter hit its step budget (ranges are
    #: maximally coarse past the cut-off)
    widened: bool
    wall_time: float = 0.0
    #: session provenance, stamped by :class:`repro.session.Session`
    provenance: Optional[Dict[str, object]] = field(default=None)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "ir_fingerprint": self.ir_fingerprint,
            "demote_to": self.demote_to,
            "threshold": self.threshold,
            "ranges": {
                v: iv.to_dict() for v, iv in sorted(self.ranges.items())
            },
            "amp": {
                v: _json_float(a) for v, a in sorted(self.amp.items())
            },
            "writes": {
                v: _json_float(w)
                for v, w in sorted(self.writes.items())
            },
            "err_estimate": {
                v: dict(e)
                for v, e in sorted(self.err_estimate.items())
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "pinned": list(self.pinned),
            "safe": list(self.safe),
            "widened": self.widened,
            "digest": self.digest(),
            "wall_time": self.wall_time,
            "provenance": self.provenance,
        }

    def digest(self) -> str:
        """Content digest of the analysis facts.

        Excludes wall time and provenance so the digest identifies
        *what was concluded*, not when or by which session — it is
        folded into search run keys when pruning is enabled.
        """
        blob = json.dumps(
            self._digest_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _digest_payload(self) -> Dict[str, object]:
        d = {
            "kernel": self.kernel,
            "ir_fingerprint": self.ir_fingerprint,
            "demote_to": self.demote_to,
            "threshold": self.threshold,
            "ranges": {
                v: iv.to_dict() for v, iv in sorted(self.ranges.items())
            },
            "amp": {
                v: _json_float(a) for v, a in sorted(self.amp.items())
            },
            "writes": {
                v: _json_float(w)
                for v, w in sorted(self.writes.items())
            },
            "err_estimate": {
                v: dict(e)
                for v, e in sorted(self.err_estimate.items())
            },
            "diagnostics": [x.to_dict() for x in self.diagnostics],
            "pinned": list(self.pinned),
            "safe": list(self.safe),
            "widened": self.widened,
        }
        return d

    # -- presentation --------------------------------------------------------
    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"analyze({self.kernel}): {len(self.diagnostics)} "
            f"finding(s), demote_to={self.demote_to}"
            + (
                f", threshold={self.threshold:g}"
                if self.threshold is not None
                else ""
            )
        ]
        if self.widened:
            lines.append(
                "  (note: abstract interpretation hit its step budget; "
                "ranges are coarse)"
            )
        for var in sorted(self.ranges):
            iv = self.ranges[var]
            bits = [f"  {var}: range [{iv.lo:.6g}, {iv.hi:.6g}]"]
            if var in self.amp:
                bits.append(f"amp {self.amp[var]:.3g}")
            if var in self.writes:
                bits.append(f"writes {self.writes[var]:.3g}")
            est = self.err_estimate.get(var, {}).get(self.demote_to)
            if est is not None:
                bits.append(f"est[{self.demote_to}] {est:.3g}")
            lines.append(", ".join(bits))
        if self.pinned:
            lines.append(f"pinned (keep f64): {', '.join(self.pinned)}")
        if self.safe:
            lines.append(
                f"demotion-safe: {', '.join(self.safe)}"
            )
        lines.append(render_text(self.diagnostics, self.kernel))
        return "\n".join(lines)


def _as_ir(k: object) -> N.Function:
    ir = getattr(k, "ir", None)
    if isinstance(ir, N.Function):
        return ir
    if isinstance(k, N.Function):
        return k
    raise TypeError(
        f"analyze_kernel() needs a Kernel or IR Function, got {type(k)!r}"
    )


def _control_vars(fn: N.Function, df: Dataflow) -> Set[str]:
    """Variables influencing control flow or addressing.

    A demotion that changes one of these can change *which* statements
    execute or *which* element a store hits — effects the first-order
    amplification model does not see — so none of them may be called
    demotion-safe.  Includes everything flowing into a branch
    condition, loop bound, or index expression, transitively."""
    roots: Set[str] = set()

    def exprs_of(e: N.Expr) -> None:
        for sub in walk_expr(e):
            if isinstance(sub, N.Name):
                roots.add(sub.id)
            elif isinstance(sub, N.Index):
                roots.add(sub.base)
                exprs_of(sub.index)

    for s in walk_stmts(fn.body):
        if isinstance(s, N.If):
            exprs_of(s.cond)
        elif isinstance(s, N.While):
            exprs_of(s.cond)
        elif isinstance(s, N.For):
            exprs_of(s.lo)
            exprs_of(s.hi)
            exprs_of(s.step)
        else:
            for e in _stmt_index_exprs(s):
                exprs_of(e)
    # transitive closure over dataflow dependencies
    frontier = list(roots)
    while frontier:
        v = frontier.pop()
        for dep in df.deps.get(v, ()):
            if dep not in roots:
                roots.add(dep)
                frontier.append(dep)
    return roots


def _stmt_index_exprs(s: N.Stmt) -> List[N.Expr]:
    from repro.ir.visitor import iter_stmt_exprs

    out: List[N.Expr] = []
    for e in iter_stmt_exprs(s):
        for sub in walk_expr(e):
            if isinstance(sub, N.Index):
                out.append(sub.index)
    if isinstance(s, N.Assign) and isinstance(s.target, N.Index):
        out.append(s.target.index)
    return out


def analyze_kernel(
    k: object,
    points: Optional[Sequence[Sequence[object]]] = None,
    samples: Optional[Mapping[str, Sequence[object]]] = None,
    fixed: Optional[Mapping[str, object]] = None,
    domains: Optional[Mapping[str, Tuple[float, float]]] = None,
    threshold: Optional[float] = None,
    demote_to: DType = DType.F32,
) -> AnalysisReport:
    """Run the full static-analysis pipeline on one kernel.

    :param k: kernel (or IR function) to analyze.
    :param points: validation input tuples — parameter domains are
        derived from the values they take (joined per parameter).
    :param samples: swept inputs; their min/max widen the domains.
    :param fixed: fixed parameter values, likewise joined.
    :param domains: explicit ``{param: (lo, hi)}`` declarations —
        these *override* the derived domain for that parameter.
    :param threshold: error budget; enables estimate-based pinning.
    :param demote_to: demotion target the feasibility checks test
        against (binary32 by default, matching the search).
    """
    fn = _as_ir(k)
    t0 = time.perf_counter()
    obs_metrics.REGISTRY.counter(
        "repro_analyze_runs_total", "static analysis runs"
    ).inc()
    with obs_trace.span("analysis.run", kernel=fn.name):
        with obs_trace.span("analysis.dataflow"):
            df = analyze_dataflow(fn)
        with obs_trace.span("analysis.ranges"):
            doms = derive_domains(
                fn,
                points=points,
                samples=samples,
                fixed=fixed,
                domains=domains,
            )
            rr = analyze_ranges(fn, doms, stmts=df.stmts)
        with obs_trace.span("analysis.sensitivity"):
            sens = analyze_sensitivity(fn, df, rr)
        with obs_trace.span("analysis.lint"):
            diagnostics = build_diagnostics(fn, df, rr, sens)
        report = _fold_report(
            fn, rr, sens, diagnostics, df,
            threshold=threshold, demote_to=demote_to,
        )
    report.wall_time = time.perf_counter() - t0
    obs_metrics.REGISTRY.counter(
        "repro_analyze_diagnostics_total", "lint findings emitted"
    ).inc(len(diagnostics))
    obs_metrics.REGISTRY.gauge(
        "repro_analyze_last_pinned", "variables pinned by last analysis"
    ).set(len(report.pinned))
    return report


def _fold_report(
    fn: N.Function,
    rr: RangeResult,
    sens: SensitivityResult,
    diagnostics: List[Diagnostic],
    df: Dataflow,
    threshold: Optional[float],
    demote_to: DType,
) -> AnalysisReport:
    dtypes = collect_var_dtypes(fn)
    control = _control_vars(fn, df)

    groups: Dict[str, List[str]] = {}
    for var, dt in dtypes.items():
        if not dt.is_float:
            continue
        name = fold_name(var)
        if name is None:
            continue
        groups.setdefault(name, []).append(var)

    ranges: Dict[str, Interval] = {}
    amp: Dict[str, float] = {}
    writes: Dict[str, float] = {}
    err: Dict[str, Dict[str, float]] = {}
    pinned: List[str] = []
    safe: List[str] = []
    for name in sorted(groups):
        group = groups[name]
        ivs = [rr.ranges[v] for v in group if v in rr.ranges]
        if ivs:
            joined = ivs[0]
            for iv in ivs[1:]:
                joined = joined.join(iv)
            ranges[name] = joined
        amps = [sens.amp.get(v, 0.0) for v in group]
        if any(a > 0.0 for a in amps):
            amp[name] = max(amps)
        w = sum(sens.writes.get(v, 0.0) for v in group)
        if w > 0.0:
            writes[name] = w
        est: Dict[str, float] = {}
        for v in group:
            for dt_name, e in sens.err_estimate.get(v, {}).items():
                est[dt_name] = est.get(dt_name, 0.0) + e
        if est:
            err[name] = est

        is_pinned = False
        for v in group:
            iv = rr.ranges.get(v)
            if (
                iv is not None
                and iv.is_finite
                and iv.mag > FINITE_MAX[demote_to]
            ):
                is_pinned = True
            if threshold is not None:
                e = sens.err_estimate.get(v, {}).get(demote_to.value)
                if (
                    e is not None
                    and e > PIN_MARGIN * threshold
                    and sens.writes.get(v, 0.0) >= ACCUM_MIN_WRITES
                ):
                    is_pinned = True
        if is_pinned:
            pinned.append(name)
            continue
        if all(
            sens.amp.get(v, 0.0) == 0.0 and v not in control
            for v in group
        ):
            safe.append(name)

    return AnalysisReport(
        kernel=fn.name,
        ir_fingerprint=ir_fingerprint(fn),
        demote_to=demote_to.value,
        threshold=None if threshold is None else float(threshold),
        ranges=ranges,
        amp=amp,
        writes=writes,
        err_estimate=err,
        diagnostics=diagnostics,
        pinned=tuple(pinned),
        safe=tuple(safe),
        widened=rr.widened,
    )


def prune_candidates(
    report: AnalysisReport, candidates: Sequence[str]
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Apply the report's pruning sets to a candidate list.

    Returns ``(kept, dropped)``.  A candidate is dropped when it
    matches a pinned or demotion-safe source variable (inlined-suffix
    matching, same as the search's contribution folding).  If pruning
    would empty the candidate space entirely, the original list is
    returned untouched — an empty space would degenerate the search,
    and a space that small is cheap to search anyway.
    """
    drop = set(report.pinned) | set(report.safe)
    kept = tuple(c for c in candidates if c not in drop)
    if not kept:
        return tuple(candidates), ()
    dropped = tuple(c for c in candidates if c in drop)
    return kept, dropped
