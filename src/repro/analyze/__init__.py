"""repro.analyze — static precision analysis over the IR.

Four layers, each usable alone:

* :mod:`repro.analyze.dataflow` — the forward/backward dataflow
  framework (def-use/use-def chains, reaching definitions, liveness,
  loop-invariant detection; loops via fixpoint iteration);
* :mod:`repro.analyze.ranges` — interval/range analysis propagating
  input domains to per-variable value ranges (overflow/underflow
  feasibility, division blowup, cancellation sites);
* :mod:`repro.analyze.sensitivity` — static first-order
  error-amplification bounds along def-use paths and zero-evaluation
  demotion-error estimates;
* :mod:`repro.analyze.lint` — the lint engine with stable ``RA1xx``
  (safety) / ``RA2xx`` (hygiene) diagnostic codes.

:func:`analyze_kernel` runs the whole pipeline and returns an
:class:`AnalysisReport`; :func:`prune_candidates` applies its
pinned/demotion-safe sets to a search candidate space.  See the README
"Static analysis" section for semantics and the pruning contract.
"""

from repro.analyze.dataflow import Dataflow, analyze_dataflow
from repro.analyze.lint import Diagnostic, build_diagnostics, render_text
from repro.analyze.ranges import (
    Interval,
    RangeResult,
    analyze_ranges,
    derive_domains,
)
from repro.analyze.report import (
    AnalysisReport,
    PIN_MARGIN,
    analyze_kernel,
    prune_candidates,
)
from repro.analyze.sensitivity import (
    SensitivityResult,
    analyze_sensitivity,
)

__all__ = [
    "AnalysisReport",
    "Dataflow",
    "Diagnostic",
    "Interval",
    "PIN_MARGIN",
    "RangeResult",
    "SensitivityResult",
    "analyze_dataflow",
    "analyze_kernel",
    "analyze_ranges",
    "analyze_sensitivity",
    "build_diagnostics",
    "derive_domains",
    "prune_candidates",
    "render_text",
]
