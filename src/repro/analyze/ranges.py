"""Interval/range analysis over the IR.

Propagates declared or sampler-derived input domains through every
operation to a per-variable value range (an over-approximating
interval), the substrate for the static precision checks:

* **exponent-range feasibility** — a variable whose value range exceeds
  the finite range of f16/f32 cannot be demoted there without overflow
  (and an all-subnormal range flushes toward zero);
* **division blowup** — a divisor interval containing (or hugging)
  zero makes the quotient unboundedly amplified;
* **catastrophic cancellation** — subtraction of overlapping,
  same-signed ranges can cancel all significant digits.

Loops are handled by abstract iteration: counted ``for`` loops with a
statically bounded trip count are iterated trip-by-trip (joined with
every intermediate state, so ``break`` exits stay covered); unbounded
loops iterate to a fixpoint with widening.  Everything terminates under
hard iteration caps; capped-out bounds widen to infinity, staying
conservative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.ir import nodes as N
from repro.ir.types import DType

#: iterate a counted loop abstractly at most this many times
TRIP_ITER_CAP = 600
#: fixpoint iterations for unbounded (while) loops before widening
WHILE_ITER_CAP = 32
#: total abstract statement evaluations before everything widens
STEP_BUDGET = 400_000
#: largest finite value representable per float dtype
FINITE_MAX: Dict[DType, float] = {
    DType.F16: 65504.0,
    DType.F32: 3.4028234663852886e38,
    DType.F64: 1.7976931348623157e308,
}
#: smallest positive *normal* value per float dtype
SMALLEST_NORMAL: Dict[DType, float] = {
    DType.F16: 6.103515625e-05,
    DType.F32: 1.1754943508222875e-38,
    DType.F64: 2.2250738585072014e-308,
}

_INF = math.inf


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` over the extended reals."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            object.__setattr__(self, "lo", -_INF)
            object.__setattr__(self, "hi", _INF)

    @property
    def mag(self) -> float:
        """Largest absolute value in the interval."""
        return max(abs(self.lo), abs(self.hi))

    @property
    def min_mag(self) -> float:
        """Smallest absolute value in the interval."""
        if self.lo <= 0.0 <= self.hi:
            return 0.0
        return min(abs(self.lo), abs(self.hi))

    @property
    def is_finite(self) -> bool:
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def contains_zero(self) -> bool:
        return self.lo <= 0.0 <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        return max(self.lo, other.lo) <= min(self.hi, other.hi)

    def to_dict(self) -> Dict[str, object]:
        return {"lo": _json_float(self.lo), "hi": _json_float(self.hi)}


TOP = Interval(-_INF, _INF)


def _json_float(x: float) -> object:
    """JSON-expressible bound (strict JSON has no ``Infinity``)."""
    if x == _INF:
        return "inf"
    if x == -_INF:
        return "-inf"
    return float(x)


def interval_of(value: object) -> Interval:
    """The interval of one concrete scalar or array value."""
    try:
        import numpy as np

        if isinstance(value, np.ndarray):
            if value.size == 0:
                return Interval(0.0, 0.0)
            return Interval(float(value.min()), float(value.max()))
    except ImportError:  # pragma: no cover - numpy is a hard dep
        pass
    if isinstance(value, bool):
        return Interval(0.0, 1.0)
    return Interval(float(value), float(value))  # type: ignore[arg-type]


def _mul_bound(a: float, b: float) -> float:
    # endpoint products: 0 * inf contributes 0 (the other endpoint
    # combinations supply the infinite magnitudes)
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


def interval_add(a: Interval, b: Interval) -> Interval:
    return Interval(a.lo + b.lo, a.hi + b.hi)


def interval_sub(a: Interval, b: Interval) -> Interval:
    return Interval(a.lo - b.hi, a.hi - b.lo)


def interval_mul(a: Interval, b: Interval) -> Interval:
    products = [
        _mul_bound(a.lo, b.lo),
        _mul_bound(a.lo, b.hi),
        _mul_bound(a.hi, b.lo),
        _mul_bound(a.hi, b.hi),
    ]
    return Interval(min(products), max(products))


def interval_div(a: Interval, b: Interval) -> Interval:
    if b.contains_zero():
        return TOP
    quotients = []
    for x in (a.lo, a.hi):
        for y in (b.lo, b.hi):
            if math.isinf(y):
                quotients.append(0.0)
            else:
                quotients.append(x / y)
    return Interval(min(quotients), max(quotients))


def interval_neg(a: Interval) -> Interval:
    return Interval(-a.hi, -a.lo)


def interval_abs(a: Interval) -> Interval:
    if a.contains_zero():
        return Interval(0.0, a.mag)
    return Interval(a.min_mag, a.mag)


def _monotone(f: Callable[[float], float]) -> Callable[[Interval], Interval]:
    def apply(a: Interval) -> Interval:
        return Interval(_safe(f, a.lo), _safe(f, a.hi))

    return apply


def _safe(f: Callable[[float], float], x: float) -> float:
    try:
        return f(x)
    except (OverflowError, ValueError):
        if x > 0:
            return _INF
        return -_INF


@dataclass
class RangeEvent:
    """A site-level numerical hazard observed during propagation."""

    #: ``"div_blowup" | "cancellation" | "domain"``
    kind: str
    #: statement index of the enclosing statement
    stmt: int
    loc: Optional[int]
    #: variable being defined at the site (``None`` outside defs)
    var: Optional[str]
    detail: Dict[str, object] = field(default_factory=dict)


@dataclass
class RangeResult:
    """Everything the range analysis learned about one function."""

    fn: N.Function
    #: per-variable value range, joined over every definition
    ranges: Dict[str, Interval]
    #: site-level hazard events (division blowup, cancellation, ...)
    events: List[RangeEvent]
    #: per-loop (statement index) estimated maximum trip count
    trips: Dict[int, float]
    #: per-statement estimated execution count (trip products, capped)
    exec_counts: Dict[int, float]
    #: whether the step budget forced widening (ranges are still sound,
    #: just maximally coarse past the cut-off)
    widened: bool = False


def derive_domains(
    fn: N.Function,
    points: Optional[Sequence[Sequence[object]]] = None,
    samples: Optional[Mapping[str, Sequence[object]]] = None,
    fixed: Optional[Mapping[str, object]] = None,
    domains: Optional[Mapping[str, Tuple[float, float]]] = None,
) -> Dict[str, Interval]:
    """Input domains for the parameters of ``fn``.

    Joins, per parameter: the values it takes across the validation
    ``points``, the min/max of any swept ``samples``, any ``fixed``
    values, and — winning over all of those — explicitly declared
    ``domains`` (``{name: (lo, hi)}``).  Parameters covered by none of
    the sources stay unconstrained (``[-inf, inf]``).
    """
    out: Dict[str, Interval] = {}

    def feed(name: str, iv: Interval) -> None:
        out[name] = out[name].join(iv) if name in out else iv

    names = [p.name for p in fn.params]
    for point in points or ():
        for name, value in zip(names, point):
            feed(name, interval_of(value))
    for name, values in (samples or {}).items():
        feed(name, interval_of(_as_array(values)))
    for name, value in (fixed or {}).items():
        feed(name, interval_of(value))
    for name, (lo, hi) in (domains or {}).items():
        out[name] = Interval(float(lo), float(hi))
    return out


def _as_array(values: Sequence[object]) -> object:
    import numpy as np

    return np.asarray(values)


_UNARY_RANGES: Dict[str, Callable[[Interval], Interval]] = {
    "sin": lambda a: Interval(-1.0, 1.0),
    "cos": lambda a: Interval(-1.0, 1.0),
    "tan": lambda a: TOP,
    "asin": lambda a: Interval(-math.pi / 2, math.pi / 2),
    "acos": lambda a: Interval(0.0, math.pi),
    "atan": _monotone(math.atan),
    "tanh": lambda a: Interval(-1.0, 1.0),
    "sinh": _monotone(math.sinh),
    "cosh": lambda a: Interval(1.0, _safe(math.cosh, a.mag)),
    "erf": lambda a: Interval(-1.0, 1.0),
    "erfc": lambda a: Interval(0.0, 2.0),
    "exp": _monotone(math.exp),
    "exp2": _monotone(lambda x: 2.0**x),
    "floor": _monotone(math.floor),
    "ceil": _monotone(math.ceil),
}


class RangeAnalysis:
    """The abstract interpreter (see module docstring)."""

    def __init__(
        self,
        fn: N.Function,
        domains: Mapping[str, Interval],
        stmts: Optional[List[N.Stmt]] = None,
    ) -> None:
        from repro.analyze.dataflow import index_statements

        self.fn = fn
        self.stmts = stmts if stmts is not None else index_statements(fn)
        self.index = {id(s): i for i, s in enumerate(self.stmts)}
        self.env: Dict[str, Interval] = {}
        self.summary: Dict[str, Interval] = {}
        self.events: List[RangeEvent] = []
        self._event_keys: set = set()
        self.trips: Dict[int, float] = {}
        self.steps = 0
        self.widened = False
        self._stmt_idx = -1
        self._target: Optional[str] = None
        for p in fn.params:
            iv = Interval(*_domain_of(domains, p.name))
            self.env[p.name] = iv
            self._note(p.name, iv)

    # -- driver --------------------------------------------------------------
    def run(self) -> RangeResult:
        self._body(self.fn.body)
        exec_counts = self._exec_counts()
        return RangeResult(
            fn=self.fn,
            ranges=dict(self.summary),
            events=self.events,
            trips=dict(self.trips),
            exec_counts=exec_counts,
            widened=self.widened,
        )

    def _note(self, var: str, iv: Interval) -> None:
        self.summary[var] = (
            self.summary[var].join(iv) if var in self.summary else iv
        )

    def _event(
        self, kind: str, var: Optional[str], **detail: object
    ) -> None:
        s = self.stmts[self._stmt_idx] if self._stmt_idx >= 0 else None
        key = (kind, self._stmt_idx, var)
        if key in self._event_keys:
            return
        self._event_keys.add(key)
        self.events.append(
            RangeEvent(
                kind=kind,
                stmt=self._stmt_idx,
                loc=getattr(s, "loc", None),
                var=var,
                detail=dict(detail),
            )
        )

    # -- statements ----------------------------------------------------------
    def _body(self, body: List[N.Stmt]) -> None:
        for s in body:
            self._stmt(s)

    def _stmt(self, s: N.Stmt) -> None:
        self.steps += 1
        if self.steps > STEP_BUDGET:
            self.widened = True
        self._stmt_idx = self.index[id(s)]
        if isinstance(s, N.VarDecl):
            iv = TOP
            if s.init is not None:
                self._target = s.name
                iv = self._eval(s.init)
                self._target = None
            self.env[s.name] = iv
            self._note(s.name, iv)
        elif isinstance(s, N.Assign):
            if isinstance(s.target, N.Name):
                self._target = s.target.id
                iv = self._eval(s.value)
                self._target = None
                self.env[s.target.id] = iv
                self._note(s.target.id, iv)
            else:
                self._eval(s.target.index)
                self._target = s.target.base
                iv = self._eval(s.value)
                self._target = None
                base = s.target.base
                self.env[base] = self.env.get(base, iv).join(iv)
                self._note(base, self.env[base])
        elif isinstance(s, N.For):
            self._for(s)
        elif isinstance(s, N.While):
            self._while(s)
        elif isinstance(s, N.If):
            self._eval(s.cond)
            before = dict(self.env)
            self._body(s.then)
            then_env = self.env
            self.env = before
            self._body(s.orelse)
            self.env = _join_envs(then_env, self.env)
        elif isinstance(s, (N.Return, N.ReturnTuple, N.ExprStmt)):
            for e in _stmt_exprs(s):
                self._eval(e)
        elif isinstance(s, (N.Push, N.TraceAppend)):
            self._eval(s.value)
        elif isinstance(s, N.Pop):
            # tape pops are adjoint-only; the popped value came from a
            # push whose range we did not track — stay conservative
            if isinstance(s.target, N.Name):
                self.env[s.target.id] = TOP
                self._note(s.target.id, TOP)
            else:
                self.env[s.target.base] = TOP
                self._note(s.target.base, TOP)

    def _for(self, s: N.For) -> None:
        idx = self.index[id(s)]
        lo = self._eval(s.lo)
        hi = self._eval(s.hi)
        step = self._eval(s.step)
        step_lo = max(1.0, step.lo)
        if math.isfinite(hi.hi) and math.isfinite(lo.lo):
            trips = max(0.0, math.ceil((hi.hi - lo.lo) / step_lo))
        else:
            trips = _INF
        self.trips[idx] = trips
        var_iv = Interval(lo.lo, max(lo.lo, hi.hi))
        self.env[s.var] = var_iv
        self._note(s.var, var_iv)
        self._iterate(
            s.body,
            n=int(min(trips, TRIP_ITER_CAP)),
            bounded=trips <= TRIP_ITER_CAP and not self.widened,
        )

    def _while(self, s: N.While) -> None:
        idx = self.index[id(s)]
        self.trips[idx] = _INF
        self._eval(s.cond)
        self._iterate(s.body, n=WHILE_ITER_CAP, bounded=False)
        self._eval(s.cond)

    def _iterate(self, body: List[N.Stmt], n: int, bounded: bool) -> None:
        """Abstractly run a loop body ``n`` times, join-accumulating.

        ``bounded`` means ``n`` covers every concrete trip, so the
        accumulated state is already sound; otherwise the variables
        still changing at the cut-off widen to infinity in the
        direction of change and the body runs once more to propagate.
        """
        acc = dict(self.env)
        for _ in range(max(0, n)):
            self._body(body)
            joined = _join_envs(acc, self.env)
            if joined == acc:
                self.env = dict(acc)
                return
            acc = joined
            self.env = dict(joined)
            if self.steps > STEP_BUDGET:
                self.widened = True
                bounded = False
                break
        if not bounded:
            before = dict(acc)
            self._body(body)
            for var, iv in self.env.items():
                old = before.get(var, iv)
                lo = -_INF if iv.lo < old.lo else old.lo
                hi = _INF if iv.hi > old.hi else old.hi
                acc[var] = Interval(lo, hi)
                if lo == -_INF or hi == _INF:
                    self._note(var, acc[var])
            self.env = dict(acc)
            self._body(body)
            self.env = _join_envs(acc, self.env)

    def _exec_counts(self) -> Dict[int, float]:
        """Per-statement execution count estimates from loop trips."""
        counts: Dict[int, float] = {}

        def visit(body: List[N.Stmt], mult: float) -> None:
            for s in body:
                i = self.index[id(s)]
                counts[i] = counts.get(i, 0.0) + mult
                if isinstance(s, (N.For, N.While)):
                    trips = self.trips.get(i, _INF)
                    inner = min(mult * max(trips, 0.0), 1e12)
                    visit(s.body, inner)
                elif isinstance(s, N.If):
                    visit(s.then, mult)
                    visit(s.orelse, mult)

        visit(self.fn.body, 1.0)
        return counts

    # -- expressions ---------------------------------------------------------
    def _eval(self, e: N.Expr) -> Interval:
        if isinstance(e, N.Const):
            v = float(e.value)
            return Interval(v, v)
        if isinstance(e, N.Name):
            return self.env.get(e.id, TOP)
        if isinstance(e, N.Index):
            self._eval(e.index)
            return self.env.get(e.base, TOP)
        if isinstance(e, N.Cast):
            return self._eval(e.operand)
        if isinstance(e, N.UnaryOp):
            iv = self._eval(e.operand)
            if e.op == "-":
                return interval_neg(iv)
            return Interval(0.0, 1.0)  # not
        if isinstance(e, N.BinOp):
            return self._binop(e)
        if isinstance(e, N.Call):
            return self._call(e)
        return TOP

    def _binop(self, e: N.BinOp) -> Interval:
        a = self._eval(e.left)
        b = self._eval(e.right)
        if e.op in N.CMPOPS or e.op in N.BOOLOPS:
            return Interval(0.0, 1.0)
        if e.op == "+":
            return interval_add(a, b)
        if e.op == "-":
            self._check_cancellation(e, a, b)
            return interval_sub(a, b)
        if e.op == "*":
            return interval_mul(a, b)
        if e.op == "/":
            self._check_division(e, a, b)
            return interval_div(a, b)
        if e.op == "//":
            q = interval_div(a, b) if not b.contains_zero() else TOP
            return Interval(_safe(math.floor, q.lo), _safe(math.floor, q.hi))
        if e.op == "%":
            if b.lo > 0:
                return Interval(0.0, b.hi)
            if b.hi < 0:
                return Interval(b.lo, 0.0)
            return Interval(-b.mag, b.mag)
        return TOP

    def _check_division(
        self, e: N.BinOp, num: Interval, den: Interval
    ) -> None:
        if den.contains_zero():
            self._event(
                "div_blowup",
                self._target,
                divisor=den.to_dict(),
                numerator=num.to_dict(),
                contains_zero=True,
            )
        elif den.min_mag < 1e-8 * max(num.mag, 1.0):
            self._event(
                "div_blowup",
                self._target,
                divisor=den.to_dict(),
                numerator=num.to_dict(),
                contains_zero=False,
            )

    def _check_cancellation(
        self, e: N.BinOp, a: Interval, b: Interval
    ) -> None:
        dtype = getattr(e, "dtype", None)
        if dtype is not None and not dtype.is_float:
            return
        if isinstance(e.left, N.Const) or isinstance(e.right, N.Const):
            # subtracting a literal shifts, it does not cancel inputs
            return
        if not a.overlaps(b):
            return
        same_pos = a.hi > 0 and b.hi > 0
        same_neg = a.lo < 0 and b.lo < 0
        if not (same_pos or same_neg):
            return
        overlap_mag = min(a.hi, b.hi) - max(a.lo, b.lo)
        if overlap_mag <= 0 or max(a.mag, b.mag) == 0:
            return
        self._event(
            "cancellation",
            self._target,
            left=a.to_dict(),
            right=b.to_dict(),
            magnitude=_json_float(max(a.mag, b.mag)),
        )

    def _call(self, e: N.Call) -> Interval:
        args = [self._eval(a) for a in e.args]
        name = e.fn
        if name.startswith("fast_"):
            name = name[len("fast_"):]
        if name in _UNARY_RANGES and len(args) == 1:
            return _UNARY_RANGES[name](args[0])
        if name in ("log", "log2") and len(args) == 1:
            a = args[0]
            if a.lo <= 0.0:
                self._event("domain", self._target, fn=e.fn,
                            arg=a.to_dict())
            f = math.log if name == "log" else math.log2
            lo = -_INF if a.lo <= 0.0 else _safe(f, a.lo)
            hi = -_INF if a.hi <= 0.0 else _safe(f, a.hi)
            return Interval(lo, hi)
        if name == "sqrt" and len(args) == 1:
            a = args[0]
            if a.lo < 0.0:
                self._event("domain", self._target, fn=e.fn,
                            arg=a.to_dict())
            if a.hi < 0.0:
                return Interval(0.0, 0.0)
            return Interval(
                math.sqrt(max(a.lo, 0.0)), _safe(math.sqrt, a.hi)
            )
        if name == "fabs" and len(args) == 1:
            return interval_abs(args[0])
        if name == "fmax" and len(args) == 2:
            return Interval(
                max(args[0].lo, args[1].lo), max(args[0].hi, args[1].hi)
            )
        if name == "fmin" and len(args) == 2:
            return Interval(
                min(args[0].lo, args[1].lo), min(args[0].hi, args[1].hi)
            )
        if name == "pow" and len(args) == 2:
            return self._pow(args[0], args[1])
        if name == "copysign" and len(args) == 2:
            return Interval(-args[0].mag, args[0].mag)
        if name == "step_ge" and len(args) == 2:
            return Interval(0.0, 1.0)
        if name == "user_err" and args:
            return args[0]
        return TOP

    def _pow(self, base: Interval, exp: Interval) -> Interval:
        if not (base.is_finite and exp.is_finite):
            return TOP
        if base.lo <= 0.0:
            # negative bases with non-integer exponents are domain
            # errors at runtime; stay conservative on magnitude only
            m = _safe(lambda _: max(
                _safe(lambda __: abs(base.lo) ** exp.mag, 0.0),
                _safe(lambda __: abs(base.hi) ** exp.mag, 0.0),
                1.0,
            ), 0.0)
            return Interval(-m, m)
        corners = []
        for b in (base.lo, base.hi):
            for x in (exp.lo, exp.hi):
                corners.append(_safe(lambda _: b**x, 0.0))
        return Interval(min(corners), max(corners))


def _domain_of(
    domains: Mapping[str, Interval], name: str
) -> Tuple[float, float]:
    iv = domains.get(name, TOP)
    return iv.lo, iv.hi


def _join_envs(
    a: Dict[str, Interval], b: Dict[str, Interval]
) -> Dict[str, Interval]:
    out: Dict[str, Interval] = {}
    for var in set(a) | set(b):
        ia, ib = a.get(var), b.get(var)
        if ia is None:
            out[var] = ib  # type: ignore[assignment]
        elif ib is None:
            out[var] = ia
        else:
            out[var] = ia.join(ib)
    return out


def _stmt_exprs(s: N.Stmt) -> List[N.Expr]:
    from repro.ir.visitor import iter_stmt_exprs

    return list(iter_stmt_exprs(s))


def analyze_ranges(
    fn: N.Function,
    domains: Mapping[str, Interval],
    stmts: Optional[List[N.Stmt]] = None,
) -> RangeResult:
    """Run the interval analysis over ``fn`` with the given domains."""
    return RangeAnalysis(fn, domains, stmts=stmts).run()


def eval_expr_range(
    e: N.Expr, ranges: Mapping[str, Interval]
) -> Interval:
    """Range of a single expression under per-variable summary ranges.

    A statement-free entry into the abstract interpreter's expression
    evaluation — used by the sensitivity analysis to bound subexpression
    magnitudes.  Hazard events are evaluated but discarded.
    """
    ra = RangeAnalysis.__new__(RangeAnalysis)
    ra.env = dict(ranges)
    ra.stmts = []
    ra.index = {}
    ra.events = []
    ra._event_keys = set()
    ra.trips = {}
    ra.steps = 0
    ra.widened = False
    ra._stmt_idx = -1
    ra._target = None
    return ra._eval(e)
