"""Search strategies over the precision-configuration space.

The paper's workflow is one greedy demotion pass.  Search-based tuners
(Precimonious' delta debugging, FPTuner's global trade-off optimization)
show that *exploring* the space finds strictly better error/performance
points.  Every strategy here speaks one interface —
:meth:`SearchStrategy.run` against a :class:`SearchProblem` — and they
compose: the driver runs them in sequence over a shared evaluator whose
memo makes re-proposed configurations free.

Built-ins (see :data:`STRATEGIES`):

* ``greedy`` — the paper's greedy tuner as a baseline adapter: evaluates
  the full demotion ladder (every prefix of the contribution ranking)
  plus the exact threshold-driven greedy choice, which it records as
  ``problem.baseline``.
* ``delta`` — Precimonious-style delta debugging (ddmin over the set of
  variables *kept* in f64): finds a small kept-set whose complement
  demotes within the threshold, evaluating whole partitions per round
  (parallelizable pools).
* ``anneal`` — simulated annealing with random restarts over bit-flip
  moves, with exhaustive enumeration as the small-kernel fallback when
  the whole space fits in the remaining budget.
* ``population`` — lockstep population annealing: the restart chains
  advance together and each step proposes one *generation* (a pool of
  flips, one per chain) instead of singletons, so the config-batched /
  parallel evaluators score a whole generation in one lane execution.
  Not in the default line-up: pooling reorders evaluations relative to
  ``anneal``, whose sequential trajectory the default results contract
  (bit-reproducibility across releases) pins down.
* ``exhaustive`` — enumerate every subset (budget-gated; chunks sized
  for pool evaluation).

Register your own with :func:`register_strategy`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

import numpy as np

from repro.ir.types import DType
from repro.search.evaluate import (
    CandidateEvaluator,
    EvaluatedCandidate,
    config_key,
)
from repro.tuning.config import PrecisionConfig
from repro.tuning.greedy import greedy_select
from repro.util.errors import ConfigError, UnknownNameError

Subset = FrozenSet[str]


@dataclass
class SearchProblem:
    """Shared state the strategies operate on.

    Budget semantics: ``budget`` caps *computed* evaluations; memo hits
    (configurations already scored) are free, so strategies may freely
    re-propose known points.  ``evaluate_many`` returns ``None`` in the
    slot of any configuration dropped for lack of budget.
    """

    evaluator: CandidateEvaluator
    candidates: Tuple[str, ...]
    threshold: float
    #: estimated demotion-error contribution per candidate (aggregated
    #: over the input sweep when one is present)
    contributions: Dict[str, float]
    demote_to: DType = DType.F32
    budget: int = 64
    seed: int = 0
    #: the greedy strategy records its threshold-driven choice here
    baseline: Optional[EvaluatedCandidate] = None
    _spent: int = field(default=0, init=False)

    # -- bookkeeping --------------------------------------------------------
    @property
    def remaining(self) -> int:
        return max(self.budget - self._spent, 0)

    @property
    def exhausted(self) -> bool:
        return self.remaining <= 0

    def charge(self, n: int) -> None:
        """Pre-charge ``n`` evaluations against the budget.

        The resume path charges the evaluations restored from a run
        store so a resumed run computes exactly as many *new*
        candidates as the uninterrupted run would have — restored
        results themselves replay as free memo hits."""
        self._spent += int(n)

    @property
    def ranking(self) -> List[Tuple[str, float]]:
        """Candidates ascending by estimated contribution (greedy order)."""
        return sorted(
            self.contributions.items(), key=lambda kv: (kv[1], kv[0])
        )

    def config_for(self, subset: Subset) -> PrecisionConfig:
        return PrecisionConfig.demote(sorted(subset), to=self.demote_to)

    # -- evaluation (budget-gated) ------------------------------------------
    def evaluate_many(
        self, subsets: Sequence[Subset], strategy: str
    ) -> List[Optional[EvaluatedCandidate]]:
        """Evaluate a pool of subsets; ``None`` where budget ran out."""
        configs = [self.config_for(s) for s in subsets]
        admitted: List[PrecisionConfig] = []
        slots: List[bool] = []
        batch_new: set = set()
        for c in configs:
            key = config_key(c)
            known = key in self.evaluator.memo or key in batch_new
            if not known and self._spent + len(batch_new) >= self.budget:
                slots.append(False)
                continue
            if not known:
                batch_new.add(key)
            admitted.append(c)
            slots.append(True)
        before = self.evaluator.n_computed
        results = self.evaluator.evaluate_many(admitted, strategy)
        self._spent += self.evaluator.n_computed - before
        out: List[Optional[EvaluatedCandidate]] = []
        it = iter(results)
        for ok in slots:
            out.append(next(it) if ok else None)
        return out

    def evaluate(
        self, subset: Subset, strategy: str
    ) -> Optional[EvaluatedCandidate]:
        return self.evaluate_many([subset], strategy)[0]


class SearchStrategy:
    """One exploration policy over the configuration space."""

    #: registry key; subclasses must override
    name: str = ""

    def run(self, problem: SearchProblem) -> None:
        """Propose and evaluate configurations until done or out of
        budget.  All results land in the shared evaluator history; the
        driver assembles the Pareto front afterwards."""
        raise NotImplementedError


STRATEGIES: Dict[str, Type[SearchStrategy]] = {}

#: strategy line-up used when the caller does not choose
DEFAULT_STRATEGIES: Tuple[str, ...] = ("greedy", "delta", "anneal")


def register_strategy(cls: Type[SearchStrategy]) -> Type[SearchStrategy]:
    """Class decorator: add a strategy to the registry by its name."""
    if not cls.name:
        raise ConfigError(
            f"{cls.__name__} must define a non-empty name"
        )
    STRATEGIES[cls.name] = cls
    return cls


def get_strategy(name: str) -> SearchStrategy:
    """Instantiate a registered strategy by name."""
    try:
        return STRATEGIES[name]()
    except KeyError:
        raise UnknownNameError(
            f"unknown search strategy {name!r} "
            f"(registered: {sorted(STRATEGIES)})"
        ) from None


@register_strategy
class GreedyLadderStrategy(SearchStrategy):
    """The existing greedy tuner, adapted as a baseline strategy.

    Evaluates the exact threshold-driven greedy choice first (recorded
    as ``problem.baseline``) and then the whole demotion ladder — every
    prefix of the contribution ranking, from "demote nothing" to
    "demote everything" — as one pool.  The ladder *is* the family of
    configurations the paper's greedy pass can ever produce (one per
    threshold), so its evaluations chart the greedy trade-off curve.
    """

    name = "greedy"

    def run(self, problem: SearchProblem) -> None:
        ranking = problem.ranking
        _, chosen, _ = greedy_select(
            problem.contributions,
            problem.threshold,
            candidates=problem.candidates,
        )
        subsets: List[Subset] = [frozenset(chosen), frozenset()]
        prefix: set = set()
        for var, _ in ranking:
            prefix.add(var)
            subsets.append(frozenset(prefix))
        results = problem.evaluate_many(subsets, self.name)
        if results[0] is not None:
            problem.baseline = results[0]


def _split(items: List[str], n: int) -> List[List[str]]:
    """Split into ``n`` near-equal contiguous chunks (no empties)."""
    n = min(n, len(items))
    size, rem = divmod(len(items), n)
    chunks, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < rem else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


@register_strategy
class DeltaDebugStrategy(SearchStrategy):
    """Precimonious-style delta debugging over the demotion set.

    Searches for a 1-minimal set ``R`` of variables *kept* at f64 such
    that demoting everything else stays within the error threshold —
    i.e. a maximal demotion set.  Each granularity round proposes all
    chunk/complement tests as one pool, so the parallel evaluator can
    score a whole partition at once.
    """

    name = "delta"

    def run(self, problem: SearchProblem) -> None:
        everything = frozenset(problem.candidates)
        full = problem.evaluate(everything, self.name)
        if full is None or full.error <= problem.threshold:
            return  # demote-all already passes: it is the maximal set
        # invariant: demoting (everything - R) passes the threshold;
        # R = all candidates trivially satisfies it (empty config)
        kept: List[str] = sorted(problem.candidates)
        n = 2
        while len(kept) >= 2 and not problem.exhausted:
            chunks = _split(kept, n)
            tests = [everything - frozenset(ch) for ch in chunks]
            results = problem.evaluate_many(tests, self.name)
            reduced = False
            for ch, res in zip(chunks, results):
                if res is not None and res.error <= problem.threshold:
                    kept, n, reduced = list(ch), 2, True
                    break
            if reduced:
                continue
            if n > 2:
                comps = [
                    everything - (frozenset(kept) - frozenset(ch))
                    for ch in chunks
                ]
                results = problem.evaluate_many(comps, self.name)
                for ch, res in zip(chunks, results):
                    if res is not None and res.error <= problem.threshold:
                        drop = set(ch)
                        kept = [v for v in kept if v not in drop]
                        n, reduced = max(n - 1, 2), True
                        break
                if reduced:
                    continue
            if n >= len(kept):
                break
            n = min(len(kept), 2 * n)
        problem.evaluate(everything - frozenset(kept), self.name)


@register_strategy
class ExhaustiveStrategy(SearchStrategy):
    """Enumerate every subset of the candidates (budget-gated).

    Exact on small kernels; on larger ones it simply stops when the
    budget runs out, having covered the enumeration prefix (subsets
    ordered by bitmask over the sorted candidate list).
    """

    name = "exhaustive"

    #: enumeration chunk handed to the evaluator pool at a time — sized
    #: for the config-batched lane engine (bigger pools amortize better;
    #: chunking never changes which subsets get evaluated or in which
    #: order, since budget admission is per-config within a pool)
    CHUNK = 64

    def run(self, problem: SearchProblem) -> None:
        names = sorted(problem.candidates)
        k = len(names)
        total = 1 << k
        mask = 0
        while mask < total and not problem.exhausted:
            hi = min(mask + self.CHUNK, total)
            subsets = [
                frozenset(
                    names[i] for i in range(k) if (m >> i) & 1
                )
                for m in range(mask, hi)
            ]
            problem.evaluate_many(subsets, self.name)
            mask = hi


def anneal_energy(cand: EvaluatedCandidate, threshold: float) -> float:
    """Scalarized objective shared by the annealing strategies.

    Cycles when the error meets the threshold; cycles plus a
    logarithmic over-threshold penalty otherwise — trajectories are
    pulled toward the cheap side of the feasible region while every
    intermediate evaluation still feeds the Pareto front.
    """
    if cand.error <= threshold:
        return cand.cycles
    if threshold > 0:
        ratio = max(cand.error / threshold, 1.0)
    else:
        ratio = 1e12
    penalty = 1.0 + min(math.log10(ratio), 12.0)
    return cand.cycles + max(cand.cycles_reference, 1.0) * penalty


@register_strategy
class AnnealStrategy(SearchStrategy):
    """Simulated annealing with random restarts (bit-flip moves).

    Scalarizes the two objectives into an energy: cycles when the error
    meets the threshold, cycles plus a logarithmic over-threshold
    penalty otherwise — so trajectories are pulled toward the cheap
    side of the feasible region while every intermediate evaluation
    still feeds the Pareto front.  When the whole space fits in the
    remaining budget the strategy falls back to exhaustive enumeration
    (the small-kernel fallback), which is exact.
    """

    name = "anneal"

    restarts = 3
    steps = 40
    cooling = 0.9

    def _energy(self, cand: EvaluatedCandidate, threshold: float) -> float:
        return anneal_energy(cand, threshold)

    def run(self, problem: SearchProblem) -> None:
        names = sorted(problem.candidates)
        k = len(names)
        if k == 0:
            problem.evaluate(frozenset(), self.name)
            return
        if (1 << k) <= problem.remaining:
            ExhaustiveStrategy().run(problem)
            return
        _, greedy_start, _ = greedy_select(
            problem.contributions,
            problem.threshold,
            candidates=problem.candidates,
        )
        for restart in range(self.restarts):
            if problem.exhausted:
                return
            rng = np.random.default_rng(problem.seed * 7919 + restart)
            if restart == 0:
                current = frozenset(greedy_start)
            else:
                current = frozenset(
                    n for n in names if rng.random() < 0.5
                )
            cur = problem.evaluate(current, self.name)
            if cur is None:
                return
            e_cur = self._energy(cur, problem.threshold)
            temperature = 0.1 * max(cur.cycles_reference, 1.0)
            for _ in range(self.steps):
                if problem.exhausted:
                    return
                flip = names[int(rng.integers(k))]
                proposal = (
                    current - {flip}
                    if flip in current
                    else current | {flip}
                )
                cand = problem.evaluate(proposal, self.name)
                if cand is None:
                    return
                e_new = self._energy(cand, problem.threshold)
                accept = e_new <= e_cur or float(rng.random()) < math.exp(
                    -(e_new - e_cur) / max(temperature, 1e-12)
                )
                if accept:
                    current, e_cur = proposal, e_new
                temperature *= self.cooling


@register_strategy
class PopulationAnnealStrategy(SearchStrategy):
    """Lockstep population annealing — generations, not singletons.

    ``chains`` annealing chains advance in lockstep: every step gathers
    one bit-flip proposal per active chain and submits the whole
    *generation* as one pool, which the config-batched evaluator scores
    in a single lane execution (and the parallel evaluator ships as
    worker blocks).  Chain trajectories are independent — each chain
    accepts/rejects against its own energy with its own RNG stream — so
    the search is deterministic under a fixed seed.

    Compared to ``anneal`` (one evaluation per step), a generation of G
    flips costs roughly one, so the same budget explores ~G× more
    moves.  It is not in :data:`DEFAULT_STRATEGIES` because pooled
    proposals evaluate in a different order than ``anneal``'s
    sequential trajectory, which the default line-up keeps
    bit-reproducible across releases.
    """

    name = "population"

    chains = 4
    steps = 30
    cooling = 0.9

    def run(self, problem: SearchProblem) -> None:
        names = sorted(problem.candidates)
        k = len(names)
        if k == 0:
            problem.evaluate(frozenset(), self.name)
            return
        if (1 << k) <= problem.remaining:
            ExhaustiveStrategy().run(problem)
            return
        _, greedy_start, _ = greedy_select(
            problem.contributions,
            problem.threshold,
            candidates=problem.candidates,
        )
        rngs = [
            np.random.default_rng(problem.seed * 6007 + chain)
            for chain in range(self.chains)
        ]
        starts: List[Subset] = []
        for chain, rng in enumerate(rngs):
            if chain == 0:
                starts.append(frozenset(greedy_start))
            else:
                starts.append(
                    frozenset(n for n in names if rng.random() < 0.5)
                )
        results = problem.evaluate_many(starts, self.name)
        current: List[Optional[Subset]] = []
        energy: List[float] = []
        temp: List[float] = []
        for subset, cand in zip(starts, results):
            if cand is None:
                current.append(None)  # budget ran out: chain inactive
                energy.append(math.inf)
                temp.append(0.0)
            else:
                current.append(subset)
                energy.append(anneal_energy(cand, problem.threshold))
                temp.append(0.1 * max(cand.cycles_reference, 1.0))
        for _ in range(self.steps):
            if problem.exhausted:
                return
            live = [c for c in range(self.chains) if current[c] is not None]
            if not live:
                return
            proposals: List[Subset] = []
            for c in live:
                flip = names[int(rngs[c].integers(k))]
                cur = current[c]
                assert cur is not None
                proposals.append(
                    cur - {flip} if flip in cur else cur | {flip}
                )
            generation = problem.evaluate_many(proposals, self.name)
            for c, subset, cand in zip(live, proposals, generation):
                if cand is None:
                    current[c] = None  # this chain lost the budget race
                    continue
                e_new = anneal_energy(cand, problem.threshold)
                accept = e_new <= energy[c] or float(
                    rngs[c].random()
                ) < math.exp(
                    -(e_new - energy[c]) / max(temp[c], 1e-12)
                )
                if accept:
                    current[c], energy[c] = subset, e_new
                temp[c] *= self.cooling
