"""Pareto front over (error, modelled cycles) with dominance pruning.

A precision search is a bi-objective optimization: lower error and
fewer modelled cycles both matter, and no single configuration wins
both in general.  The :class:`ParetoFront` keeps the non-dominated set
of :class:`~repro.search.evaluate.EvaluatedCandidate` results, pruning
dominated points as better ones arrive and preserving per-candidate
provenance (which strategy proposed it, at which evaluation index).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.search.evaluate import EvaluatedCandidate


def dominates(a: "EvaluatedCandidate", b: "EvaluatedCandidate") -> bool:
    """True if ``a`` is no worse than ``b`` on both objectives and
    strictly better on at least one.

    NaN objectives (a numerically broken configuration — e.g. an
    overflowing demotion producing inf-inf) participate in no dominance
    relation: NaN comparisons are all false, which would otherwise let
    a broken-but-cheap candidate "dominate" on cycles alone.
    """
    if math.isnan(a.error) or math.isnan(b.error):
        return False
    if a.error > b.error or a.cycles > b.cycles:
        return False
    return a.error < b.error or a.cycles < b.cycles


class ParetoFront:
    """The non-dominated set of evaluated precision configurations.

    Insertion is deterministic: a candidate is rejected if any current
    member dominates it or ties it exactly on both objectives (first
    arrival wins ties); otherwise it joins and every member it
    dominates is pruned.
    """

    def __init__(
        self, points: Optional[Iterable["EvaluatedCandidate"]] = None
    ) -> None:
        self._points: List["EvaluatedCandidate"] = []
        for p in points or ():
            self.add(p)

    def add(self, cand: "EvaluatedCandidate") -> bool:
        """Offer a candidate; returns True if it joined the front."""
        if math.isnan(cand.error) or math.isnan(cand.cycles):
            return False  # broken config: no place on a Pareto front
        for p in self._points:
            if dominates(p, cand):
                return False
            if p.error == cand.error and p.cycles == cand.cycles:
                return False  # exact objective tie: first arrival wins
        self._points = [
            p for p in self._points if not dominates(cand, p)
        ]
        self._points.append(cand)
        return True

    @property
    def points(self) -> List["EvaluatedCandidate"]:
        """Members sorted by modelled cycles (ascending), then error."""
        return sorted(
            self._points, key=lambda p: (p.cycles, p.error, p.key)
        )

    def best_under(
        self, threshold: float
    ) -> Optional["EvaluatedCandidate"]:
        """Cheapest member whose error stays within ``threshold``."""
        ok = [p for p in self._points if p.error <= threshold]
        if not ok:
            return None
        return min(ok, key=lambda p: (p.cycles, p.error, p.key))

    def is_consistent(self) -> bool:
        """No member dominates another (the front invariant)."""
        pts = self._points
        return not any(
            dominates(a, b)
            for i, a in enumerate(pts)
            for j, b in enumerate(pts)
            if i != j
        )

    def covers(self, cand: "EvaluatedCandidate") -> bool:
        """True if some member dominates or matches ``cand`` — i.e. the
        front is at least as good as this candidate."""
        if math.isnan(cand.error):
            # a numerically broken candidate is beaten by any valid point
            return len(self._points) > 0
        return any(
            dominates(p, cand)
            or (p.error <= cand.error and p.cycles <= cand.cycles)
            for p in self._points
        )

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator["EvaluatedCandidate"]:
        return iter(self.points)

    def to_dicts(self) -> List[Dict[str, object]]:
        """JSON-able summary of the front (sorted by cycles)."""
        return [p.to_dict() for p in self.points]

    def __str__(self) -> str:
        lines = [f"ParetoFront({len(self._points)} points)"]
        for p in self.points:
            sp = p.speedup_or_none
            speedup = "   n/a" if sp is None else f"{sp:6.3f}x"
            lines.append(
                f"  cycles={p.cycles:12.1f}  error={p.error:.4g}  "
                f"speedup={speedup}  [{p.strategy}#{p.index}] "
                f"{p.config.describe()}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class FrontPoint:
    """A stored front point rehydrated from manifests (not a live
    :class:`~repro.search.evaluate.EvaluatedCandidate`).

    Winner-front election (:func:`union_fronts`) operates on the
    ``{key, error, cycles}`` dicts run manifests persist, plus shard
    provenance saying which run contributed the point.  The class
    quacks enough like an evaluated candidate — ``error``, ``cycles``,
    ``key``, ``strategy``, ``index``, ``speedup_or_none``,
    ``config.describe()`` — for :class:`ParetoFront` and its
    renderings to work unchanged.
    """

    key: str
    error: float
    cycles: float
    strategy: str = "merged"
    index: int = -1
    provenance: Dict[str, object] = field(default_factory=dict)

    @property
    def speedup_or_none(self) -> Optional[float]:
        return None  # manifests do not persist reference cycles

    @property
    def config(self) -> "FrontPoint":
        return self  # describe() shim for ParetoFront.__str__

    def describe(self) -> str:
        run = str(self.provenance.get("run_id", ""))[:12]
        return f"{self.key} <{run or 'unknown-run'}>"

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "error": self.error,
            "cycles": self.cycles,
            "strategy": self.strategy,
            "index": self.index,
            "provenance": dict(self.provenance),
        }


def union_fronts(
    shards: Iterable[
        Tuple[
            Optional[Sequence[Mapping[str, object]]],
            Mapping[str, object],
        ]
    ],
) -> ParetoFront:
    """Elect the winner front from per-shard stored fronts.

    ``shards`` yields ``(points, provenance)`` pairs, where ``points``
    are manifest-format ``{key, error, cycles}`` mappings and
    ``provenance`` identifies the contributing shard (at minimum its
    ``run_id``).  The union is dominance-pruned through the ordinary
    :class:`ParetoFront` insertion rules; candidates are sorted by
    ``(run_id, key)`` before insertion so the first-arrival tie rule
    is stable no matter which order the shards finished in.
    """
    staged: List[FrontPoint] = []
    for points, provenance in shards:
        prov = dict(provenance or {})
        for p in points or ():
            staged.append(
                FrontPoint(
                    key=str(p["key"]),
                    error=float(p["error"]),  # type: ignore[arg-type]
                    cycles=float(p["cycles"]),  # type: ignore[arg-type]
                    provenance=prov,
                )
            )
    staged.sort(
        key=lambda fp: (str(fp.provenance.get("run_id", "")), fp.key)
    )
    front = ParetoFront()
    for fp in staged:
        front.add(fp)  # type: ignore[arg-type]
    return front
