"""Candidate evaluation: score one :class:`PrecisionConfig` on both axes.

A candidate's fitness is two numbers:

* **error** — how much the demoted program deviates from the uniform-f64
  reference.  Measured two ways and combined conservatively: the
  *actual* error of executing the demoted program at the validation
  points (:mod:`repro.tuning.validate`), and — when an input
  distribution is supplied — the *estimated* worst-case error of the
  demoted program over the whole sweep (the PR-1 batch engine with the
  Taylor model, served through the content-addressed result cache so
  re-proposed configurations are free).
* **cycles** — modelled execution cost of the demoted program, from the
  cycle-counting code variant summed over the validation points.

:class:`CandidateEvaluator` owns the reference measurements (run once),
a result memo keyed by configuration content (strategies re-propose the
same subsets constantly), and the evaluation history in deterministic
order — the substrate the Pareto front is built from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.codegen.compile import ConfigLoweringError
from repro.core.api import KernelLike
from repro.frontend.registry import Kernel
from repro.interp.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.ir import nodes as N
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.sweep.aggregate import AggregatorSpec, resolve_aggregator
from repro.sweep.engine import CacheLike, run_sweep
from repro.tuning.config import PrecisionConfig, apply_precision
from repro.util.errors import ConfigError, InvalidRecordError, StoreError
from repro.tuning.validate import (
    ReferencePoint,
    counting_runner,
    modelled_speedup,
    pool_counting_runner,
)

#: how the actual and estimated errors combine into the Pareto error axis
ErrorMetric = str  # "worst" | "actual" | "estimate"


@dataclass
class EvaluatedCandidate:
    """One scored precision configuration, with provenance."""

    #: canonical content key (sorted ``name:dtype`` pairs)
    key: str
    config: PrecisionConfig
    #: worst actual |reference - mixed| over the validation points
    actual_error: float
    #: per-validation-point actual errors
    point_errors: Tuple[float, ...]
    #: aggregated estimated error over the input sweep (None: no sweep)
    estimated_error: Optional[float]
    #: Pareto error objective (see ``error_metric``)
    error: float
    #: modelled mixed cycles summed over the validation points
    cycles: float
    #: modelled reference cycles summed over the validation points
    cycles_reference: float
    #: strategy that first proposed this configuration
    strategy: str = ""
    #: global evaluation index (deterministic discovery order)
    index: int = -1

    @property
    def speedup(self) -> float:
        """Modelled speedup versus the uniform-f64 reference (shares
        the zero-cost/degenerate policy of
        :func:`repro.tuning.validate.modelled_speedup`)."""
        return modelled_speedup(
            self.cycles_reference,
            self.cycles,
            what=f"configuration {self.config.describe()}",
        )

    @property
    def speedup_or_none(self) -> Optional[float]:
        """:attr:`speedup`, or ``None`` for a degenerate candidate —
        the non-raising form used by display and serialization."""
        if self.cycles == 0.0 and self.cycles_reference > 0.0:
            return None
        return self.speedup

    @property
    def demoted(self) -> List[str]:
        return self.config.demoted_names

    def to_dict(self) -> Dict[str, object]:
        return {
            "demoted": self.demoted,
            "config": self.config.describe(),
            "error": self.error,
            "actual_error": self.actual_error,
            "estimated_error": self.estimated_error,
            "cycles": self.cycles,
            "cycles_reference": self.cycles_reference,
            # degenerate configs serialize as null rather than raising
            "speedup": self.speedup_or_none,
            "strategy": self.strategy,
            "index": self.index,
        }


def config_key(config: PrecisionConfig) -> str:
    """Canonical content key of a configuration."""
    return ",".join(
        f"{n}:{dt.value}" for n, dt in sorted(config.demotions.items())
    )


class CandidateEvaluator:
    """Scores precision configurations against one search scenario.

    :param k: kernel under search.
    :param points: validation input tuples — the demoted program is
        executed (with cycle counting) at each; the actual-error axis is
        the worst deviation, the cycle axis the summed cost.
    :param samples: optional swept inputs ``{param: length-N array}``;
        when given, each candidate also gets a distribution-robust
        estimated error from the batch sweep engine.
    :param fixed: lane-uniform values for unswept parameters.
    :param aggregate: how per-sample estimates reduce (default worst
        case, matching ``robust_tune``).
    :param cache: optional :class:`repro.sweep.SweepCache` (or directory)
        for the per-candidate sweeps — configurations re-proposed across
        strategies, runs, or processes become cache hits.
    :param error_metric: ``"worst"`` (default; max of actual and
        estimated), ``"actual"``, or ``"estimate"``.
    :param config_batch: score proposal pools through the compile-once
        config-batched kernel (``repro.codegen`` lane engine) instead of
        one ``apply_precision`` + compile + scalar loop per candidate.
        Results are bit-identical either way; ``False`` forces the
        per-candidate path (ablation / benchmarking hook).
    """

    def __init__(
        self,
        k: KernelLike,
        points: Sequence[Sequence[object]],
        samples: Optional[Mapping[str, Sequence[float]]] = None,
        fixed: Optional[Mapping[str, object]] = None,
        estimate_model=None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        approx: Optional[Set[str]] = None,
        aggregate: AggregatorSpec = "max",
        cache: CacheLike = None,
        error_metric: ErrorMetric = "worst",
        config_batch: bool = True,
    ) -> None:
        if not points:
            raise ConfigError(
                "at least one validation point is required"
            )
        if error_metric not in ("worst", "actual", "estimate"):
            raise ConfigError(f"unknown error metric {error_metric!r}")
        if error_metric == "estimate" and samples is None:
            raise ConfigError(
                "error_metric='estimate' requires an input sweep"
            )
        self.fn: N.Function = k.ir if isinstance(k, Kernel) else k
        self.points = [tuple(p) for p in points]
        self.samples = dict(samples) if samples is not None else None
        self.fixed = dict(fixed) if fixed else {}
        self.cost_model = cost_model
        self.approx = approx
        self.error_metric = error_metric
        self.cache = cache
        self._agg_name, self._agg = resolve_aggregator(aggregate)
        if estimate_model is None:
            from repro.core.models import TaylorModel

            estimate_model = TaylorModel()
        self.estimate_model = estimate_model

        self._references: Optional[List[ReferencePoint]] = None
        #: content key -> evaluated candidate (dedup across strategies)
        self.memo: Dict[str, EvaluatedCandidate] = {}
        #: computed candidates in deterministic evaluation order
        self.history: List[EvaluatedCandidate] = []
        self.n_computed = 0
        self.n_memo_hits = 0
        #: results re-seeded from a persistent run store (resume path)
        self.n_restored = 0
        #: optional persistence hook: called with ``self`` after every
        #: computed batch lands in the history (run-store checkpointing)
        self.checkpoint = None
        self.config_batch = bool(config_batch)
        self._runner_built = False
        self._runner = None
        #: config-batch telemetry: lanes executed, pool runs, fallbacks
        self.n_pool_lanes = 0
        self.n_pool_runs = 0
        self.n_pool_fallbacks = 0

    # -- preparation --------------------------------------------------------
    def prepare(self) -> None:
        """Measure the reference points (and prewarm the reference
        sweep) once.  Idempotent; called implicitly by evaluation and
        explicitly by :class:`ParallelEvaluator` before forking so
        workers inherit the compiled artifacts."""
        if self._references is not None:
            return
        # one compiled counting variant serves every validation point
        run = counting_runner(self.fn, self.cost_model, self.approx)
        self._references = [
            ReferencePoint(*run(args)) for args in self.points
        ]
        if self.samples is not None:
            # prewarm: reference estimate (also populates the estimator
            # memo with the reference adjoint pre-fork)
            run_sweep(
                self.fn,
                samples=self.samples,
                fixed=self.fixed,
                model=self.estimate_model,
                cache=self.cache,
            )
        # prewarm the config-batched kernel too: forked workers inherit
        # the compiled lanes (it lives in the fingerprint-keyed memo)
        self.pool_runner()

    @property
    def references(self) -> List[ReferencePoint]:
        self.prepare()
        assert self._references is not None
        return self._references

    def pool_runner(self):
        """The config-batched counting runner, or ``None`` when disabled
        or the kernel is unvectorizable (per-candidate fallback)."""
        if not self._runner_built:
            self._runner_built = True
            if self.config_batch:
                self._runner = pool_counting_runner(
                    self.fn, self.cost_model, self.approx
                )
        return self._runner

    @property
    def pool_mode(self) -> Optional[str]:
        """Lane layout in use (``"grid"``/``"perpoint"``), or ``None``."""
        runner = self.pool_runner()
        return runner.mode if runner is not None else None

    def restore(self, candidates: Sequence[EvaluatedCandidate]) -> int:
        """Seed the memo and history with previously computed results.

        The resume substrate: a run store hands back the stored
        evaluation history (a prefix of the deterministic evaluation
        order) and the strategies replay against it — every stored
        configuration becomes a memo hit (never recomputed) and fresh
        indices continue where the stored run stopped, so a resumed
        run's history is bit-identical to an uninterrupted one.

        Must be called on a fresh evaluator (before any evaluation);
        restored results count in :attr:`n_restored`, not
        :attr:`n_computed`.
        """
        if self.history:
            raise StoreError(
                "restore() requires a fresh evaluator (history is "
                "non-empty)"
            )
        for cand in sorted(candidates, key=lambda c: c.index):
            if cand.index != len(self.history):
                raise InvalidRecordError(
                    f"stored history is not a contiguous prefix: "
                    f"index {cand.index} at position {len(self.history)}"
                )
            self.memo[cand.key] = cand
            self.history.append(cand)
            self.n_restored += 1
        return self.n_restored

    def eval_stats(self) -> Dict[str, object]:
        """Evaluation counters (memoization and config-batching)."""
        return {
            "computed": self.n_computed,
            "memo_hits": self.n_memo_hits,
            "restored": self.n_restored,
            "pool_mode": self.pool_mode,
            "pool_runs": self.n_pool_runs,
            "pool_lanes": self.n_pool_lanes,
            "pool_fallbacks": self.n_pool_fallbacks,
        }

    # -- evaluation ---------------------------------------------------------
    def evaluate(
        self, config: PrecisionConfig, strategy: str = ""
    ) -> EvaluatedCandidate:
        """Score one configuration (memoized by content)."""
        return self.evaluate_many([config], strategy)[0]

    def evaluate_many(
        self, configs: Sequence[PrecisionConfig], strategy: str = ""
    ) -> List[EvaluatedCandidate]:
        """Score a pool of configurations, preserving order.

        Configurations already scored (this run) are served from the
        memo; the rest go through :meth:`_compute_many` — the hook the
        parallel evaluator overrides to fan the pool out over worker
        processes.  Results merge deterministically: indices are
        assigned in submission order regardless of which worker finished
        first.
        """
        self.prepare()
        keys = [config_key(c) for c in configs]
        fresh: "Dict[str, PrecisionConfig]" = {}
        memo_hits = 0
        for c, key in zip(configs, keys):
            if key in self.memo:
                self.n_memo_hits += 1
                memo_hits += 1
            elif key not in fresh:
                fresh[key] = c
        if memo_hits:
            obs_metrics.REGISTRY.counter(
                "repro_search_memo_hits_total",
                "candidate evaluations served from the evaluator memo",
            ).inc(memo_hits)
        if fresh:
            t0 = time.perf_counter()
            with obs_trace.span(
                "search.batch",
                k=len(fresh),
                memo_hits=memo_hits,
                strategy=strategy,
            ):
                computed = self._compute_many(list(fresh.values()))
            obs_metrics.REGISTRY.histogram(
                "repro_search_batch_seconds",
                "latency of one computed candidate batch",
            ).observe(time.perf_counter() - t0)
            obs_metrics.REGISTRY.counter(
                "repro_search_evaluations_total",
                "candidate configurations computed (not memoized)",
            ).inc(len(fresh))
            for key, cand in zip(fresh, computed):
                cand.index = len(self.history)
                cand.strategy = strategy
                self.memo[key] = cand
                self.history.append(cand)
                self.n_computed += 1
            if self.checkpoint is not None:
                self.checkpoint(self)
        return [self.memo[key] for key in keys]

    # -- computation --------------------------------------------------------
    def _compute_many(
        self, configs: Sequence[PrecisionConfig]
    ) -> List[EvaluatedCandidate]:
        """Serial pool computation (overridden by ParallelEvaluator).

        The config-batched path scores the whole pool — K configs × N
        validation points — through one compiled lane kernel; the
        per-candidate path (``config_batch=False``, unvectorizable
        kernels, or pools a lane batch cannot express) compiles and
        runs each configuration separately.  Scores are bit-identical.
        """
        runner = self.pool_runner()
        pool = [c for c in configs if c]
        if runner is None or len(pool) < 2:
            return [self._compute(c) for c in configs]
        try:
            values, costs = runner(pool, self.points)
        except ConfigLoweringError:
            self.n_pool_fallbacks += 1
            return [self._compute(c) for c in configs]
        self.n_pool_runs += 1
        self.n_pool_lanes += len(pool)
        lanes: Dict[int, EvaluatedCandidate] = {}
        for lane, config in enumerate(pool):
            errors = [
                abs(ref.value - float(values[lane, j]))
                for j, ref in enumerate(self.references)
            ]
            cycles = 0.0
            for j in range(len(self.points)):
                cycles += float(costs[lane, j])
            lanes[id(config)] = self._finish(config, errors, cycles)
        return [
            lanes[id(c)] if c else self._compute(c) for c in configs
        ]

    def _compute(self, config: PrecisionConfig) -> EvaluatedCandidate:
        """Score one configuration from scratch (pure: no memo access,
        no index assignment — safe to run in a worker process)."""
        refs = self.references
        if config:
            mixed_fn = apply_precision(self.fn, config)
            run = counting_runner(mixed_fn, self.cost_model, self.approx)
            errors: List[float] = []
            cycles = 0.0
            for ref, args in zip(refs, self.points):
                value, cost = run(args)
                errors.append(abs(ref.value - value))
                cycles += cost
        else:
            mixed_fn = self.fn
            errors = [0.0 for _ in refs]
            cycles = sum(r.cost for r in refs)
        return self._finish(config, errors, cycles, mixed_fn=mixed_fn)

    def _finish(
        self,
        config: PrecisionConfig,
        errors: List[float],
        cycles: float,
        mixed_fn: Optional[N.Function] = None,
    ) -> EvaluatedCandidate:
        """Shared scoring tail: sweep estimate, objective, candidate.

        Both computation paths funnel through here so the aggregation
        arithmetic (and therefore every float in the result) is the
        same code either way.
        """
        refs = self.references
        cycles_ref = sum(r.cost for r in refs)
        estimated: Optional[float] = None
        if self.samples is not None:
            if mixed_fn is None:
                mixed_fn = (
                    apply_precision(self.fn, config) if config else self.fn
                )
            batch = run_sweep(
                mixed_fn,
                samples=self.samples,
                fixed=self.fixed,
                model=self.estimate_model,
                cache=self.cache,
            )
            estimated = float(
                self._agg(np.asarray(batch.total_error, dtype=np.float64))
            )

        actual = max(errors)
        if self.error_metric == "actual" or estimated is None:
            objective = actual
        elif self.error_metric == "estimate":
            objective = estimated
        else:  # "worst"
            objective = max(actual, estimated)
        return EvaluatedCandidate(
            key=config_key(config),
            config=config,
            actual_error=actual,
            point_errors=tuple(errors),
            estimated_error=estimated,
            error=objective,
            cycles=cycles,
            cycles_reference=cycles_ref,
        )

    def close(self) -> None:
        """Release resources (no-op for the serial evaluator)."""
        return None
