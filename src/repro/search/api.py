"""The ``repro.search.search`` entry point and its result type.

One call runs the whole multi-objective precision search::

    from repro import search as psearch
    from repro.apps import blackscholes as bs

    result = psearch.search(
        bs.bs_price,
        points=[bs.point_args(bs.make_workload(16), i) for i in range(4)],
        threshold=1e-6,
        samples={"sptprice": spt, "volatility": vol},
        fixed={"strike": 100.0, "rate": 0.05, "otime": 0.5, "otype": 0},
        budget=48,
        workers=4,
    )
    print(result.front)          # the (error, cycles) Pareto front
    result.best_under(1e-6)      # cheapest config within threshold

The driver wires the pieces together: per-candidate contributions are
estimated once with the ADAPT demotion model (aggregated over the input
sweep when one is given, exactly like ``robust_tune``), the chosen
strategies run in sequence over a shared budget and a shared
(optionally process-parallel) evaluator, and the Pareto front is
assembled from the full evaluation history.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.core.api import KernelLike, cached_error_estimator
from repro.core.models import AdaptModel
from repro.frontend.registry import Kernel
from repro.interp.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.ir import nodes as N
from repro.ir.types import DType
from repro.search.evaluate import CandidateEvaluator, EvaluatedCandidate
from repro.search.parallel import ParallelEvaluator
from repro.search.pareto import ParetoFront
from repro.search.strategies import (
    DEFAULT_STRATEGIES,
    SearchProblem,
    get_strategy,
)
from repro.sweep.aggregate import AggregatorSpec, resolve_aggregator
from repro.sweep.cache import SweepCache
from repro.sweep.engine import CacheLike, sweep_error
from repro.tuning.config import matches_inlined

#: inlining suffixes appended to callee locals (possibly stacked)
_INLINE_SUFFIX = re.compile(r"(?:_in\d+)+$")


def _as_ir(k: KernelLike) -> N.Function:
    return k.ir if isinstance(k, Kernel) else k


@dataclass
class SearchResult:
    """Everything a precision search produced."""

    kernel: str
    front: ParetoFront
    #: every computed candidate, in deterministic evaluation order
    evaluations: List[EvaluatedCandidate]
    #: the paper-style greedy choice (when the greedy strategy ran)
    baseline: Optional[EvaluatedCandidate]
    threshold: float
    budget: int
    strategies: Tuple[str, ...]
    candidates: Tuple[str, ...]
    #: estimated demotion contributions the strategies ranked by
    contributions: Dict[str, float]
    #: whether worker processes actually evaluated candidate pools
    parallel: bool = False
    #: evaluator/cache counters (config-batching, memo, sweep cache,
    #: compiled-kernel cache) — surfaced by the CLI and benchmarks
    stats: Optional[Dict[str, object]] = None

    @property
    def n_evaluated(self) -> int:
        return len(self.evaluations)

    def best_under(
        self, threshold: Optional[float] = None
    ) -> Optional[EvaluatedCandidate]:
        """Cheapest front point within the (default: search) threshold."""
        return self.front.best_under(
            self.threshold if threshold is None else threshold
        )

    def to_dict(self) -> Dict[str, object]:
        best = self.best_under()
        return {
            "kernel": self.kernel,
            "threshold": self.threshold,
            "budget": self.budget,
            "strategies": list(self.strategies),
            "candidates": list(self.candidates),
            "n_evaluated": self.n_evaluated,
            "parallel": self.parallel,
            "front": self.front.to_dicts(),
            "baseline": self.baseline.to_dict() if self.baseline else None,
            "best_under_threshold": best.to_dict() if best else None,
            "stats": self.stats,
        }

    def summary(self) -> str:
        lines = [
            f"search({self.kernel}): {self.n_evaluated} configs "
            f"evaluated, front size {len(self.front)}, "
            f"threshold {self.threshold:g}"
        ]
        lines.append(str(self.front))
        if self.baseline is not None:
            lines.append(
                f"greedy baseline: error={self.baseline.error:.4g} "
                f"cycles={self.baseline.cycles:.1f} "
                f"{self.baseline.config.describe()}"
            )
            best = self.best_under()
            if best is not None:
                lines.append(
                    f"best under threshold: error={best.error:.4g} "
                    f"cycles={best.cycles:.1f} [{best.strategy}] "
                    f"{best.config.describe()}"
                )
        return "\n".join(lines)


def _resolve_cache(cache: CacheLike) -> Optional[SweepCache]:
    if cache is None or isinstance(cache, SweepCache):
        return cache
    return SweepCache(directory=cache)


def _register_contributions(
    fn: N.Function,
    points: Sequence[Sequence[object]],
    samples: Optional[Mapping[str, Sequence[float]]],
    fixed: Optional[Mapping[str, object]],
    demote_to: DType,
    aggregate: AggregatorSpec,
    cache: Optional[SweepCache],
) -> Dict[str, float]:
    """Per-register estimated demotion contributions (ADAPT model),
    aggregated across the input sweep when one is given."""
    model = AdaptModel(demote_to)
    if samples is not None:
        batch = sweep_error(
            fn, samples=samples, fixed=fixed, model=model, cache=cache
        )
        _, agg = resolve_aggregator(aggregate)
        return {
            v: float(agg(np.asarray(a)))
            for v, a in batch.per_variable.items()
        }
    est = cached_error_estimator(fn, model=model)
    report = est.execute(*points[0])
    return dict(report.per_variable)


def _derive_candidates(registers: Mapping[str, float]) -> Tuple[str, ...]:
    """Source-level candidate names from error-register names.

    Inlined callee locals (``expin_in1``) fold back onto their source
    name (``expin``); analysis artifacts (``_ret``, compiler temps)
    are excluded."""
    names: Set[str] = set()
    for reg in registers:
        if reg.startswith("_"):
            continue
        names.add(_INLINE_SUFFIX.sub("", reg))
    return tuple(sorted(names))


def search(
    k: KernelLike,
    points: Sequence[Sequence[object]],
    threshold: float,
    candidates: Optional[Sequence[str]] = None,
    samples: Optional[Mapping[str, Sequence[float]]] = None,
    fixed: Optional[Mapping[str, object]] = None,
    demote_to: DType = DType.F32,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    budget: int = 64,
    workers: int = 0,
    cache: CacheLike = None,
    aggregate: AggregatorSpec = "max",
    estimate_model=None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    approx: Optional[Set[str]] = None,
    seed: int = 0,
    error_metric: str = "worst",
    config_batch: bool = True,
) -> SearchResult:
    """Multi-objective precision search over (error, modelled cycles).

    :param k: kernel (or IR function) to search.
    :param points: validation input tuples; each candidate is executed
        at every point (actual error, counted cycles).
    :param threshold: error budget the feasibility-driven strategies
        (greedy baseline, delta debugging, annealing) aim for; the
        front itself spans all trade-offs regardless.
    :param candidates: demotion candidates (default: every source-level
        variable with an error register).
    :param samples: optional swept inputs — adds a distribution-robust
        estimated-error term to every candidate's score and aggregates
        the contribution ranking across the distribution.
    :param fixed: lane-uniform values for unswept parameters.
    :param demote_to: target precision (binary32 by default).
    :param strategies: registered strategy names, run in order over the
        shared budget (default ``("greedy", "delta", "anneal")``).
    :param budget: maximum number of *computed* candidate evaluations
        (memoized re-proposals are free).
    :param workers: ``>= 2`` fans candidate pools out over that many
        forked worker processes; results are bit-identical to serial.
    :param cache: optional sweep result cache (shared by the
        contribution sweep and every candidate sweep).
    :param aggregate: sweep aggregation (default worst-case ``"max"``).
    :param seed: RNG seed for the stochastic strategies.
    :param error_metric: how actual and estimated errors combine into
        the Pareto error axis (``"worst"``, ``"actual"``,
        ``"estimate"``).
    :param config_batch: score proposal pools through the compile-once
        config-batched kernel (default).  ``False`` forces the PR-2
        per-candidate compile-and-run path; results are bit-identical,
        only slower.
    """
    fn = _as_ir(k)
    if points and not isinstance(points[0], (tuple, list)):
        raise TypeError(
            "points must be a sequence of argument tuples, e.g. "
            "[(n, h), ...] — got a flat sequence"
        )
    store = _resolve_cache(cache)
    ev_cls = ParallelEvaluator if workers and workers >= 2 else CandidateEvaluator
    ev_kwargs = dict(
        samples=samples,
        fixed=fixed,
        estimate_model=estimate_model,
        cost_model=cost_model,
        approx=approx,
        aggregate=aggregate,
        cache=store,
        error_metric=error_metric,
        config_batch=config_batch,
    )
    if ev_cls is ParallelEvaluator:
        ev_kwargs["workers"] = int(workers)
    from repro.codegen.compile import config_kernel_cache_stats

    evaluator = ev_cls(fn, points, **ev_kwargs)
    kernel_cache_before = config_kernel_cache_stats()
    try:
        evaluator.prepare()
        registers = _register_contributions(
            fn, evaluator.points, samples, fixed, demote_to, aggregate,
            store,
        )
        if candidates is None:
            cand = _derive_candidates(registers)
        else:
            cand = tuple(candidates)
        contributions = {
            c: sum(
                e for r, e in registers.items() if matches_inlined(r, c)
            )
            for c in cand
        }
        problem = SearchProblem(
            evaluator=evaluator,
            candidates=cand,
            threshold=float(threshold),
            contributions=contributions,
            demote_to=demote_to,
            budget=int(budget),
            seed=int(seed),
        )
        names = tuple(strategies)
        for name in names:
            if problem.exhausted:
                break
            get_strategy(name).run(problem)
        front = ParetoFront(evaluator.history)
        parallel = bool(getattr(evaluator, "parallel", False))
        from repro.core.api import estimator_memo_stats

        # hit/miss counters are process-cumulative: report this run's
        # deltas (entries/capacity stay gauges)
        kernel_cache = dict(config_kernel_cache_stats())
        for counter in ("hits", "misses", "unvectorizable"):
            kernel_cache[counter] -= kernel_cache_before[counter]
        stats: Dict[str, object] = {
            "evaluator": evaluator.eval_stats(),
            "estimator_memo": estimator_memo_stats(),
            "config_kernel_cache": kernel_cache,
        }
        if store is not None:
            stats["sweep_cache"] = store.cache_stats()
    finally:
        evaluator.close()
    return SearchResult(
        kernel=fn.name,
        front=front,
        evaluations=list(evaluator.history),
        baseline=problem.baseline,
        threshold=float(threshold),
        budget=int(budget),
        strategies=names,
        candidates=cand,
        contributions=contributions,
        parallel=parallel,
        stats=stats,
    )
