"""The precision-search driver (:func:`run_search`) and its result type.

One call runs the whole multi-objective precision search — through the
session facade::

    import repro
    from repro.apps import blackscholes as bs

    sess = repro.Session()
    result = sess.search(
        bs.bs_price,
        points=[bs.point_args(bs.make_workload(16), i) for i in range(4)],
        threshold=1e-6,
        samples={"sptprice": spt, "volatility": vol},
        fixed={"strike": 100.0, "rate": 0.05, "otime": 0.5, "otype": 0},
        budget=48,
        workers=4,
    )
    print(result.front)          # the (error, cycles) Pareto front
    result.best_under(1e-6)      # cheapest config within threshold

(``repro.search.search(...)`` survives as a deprecated wrapper that
builds a throwaway default session; removal in 2.0.)

The driver wires the pieces together: per-candidate contributions are
estimated once with the ADAPT demotion model (aggregated over the input
sweep when one is given, exactly like ``robust_tune``), the chosen
strategies run in sequence over a shared budget and a shared
(optionally process-parallel) evaluator, and the Pareto front is
assembled from the full evaluation history.
"""

from __future__ import annotations

import os
import re
import signal
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.core.api import KernelLike, cached_error_estimator
from repro.core.models import AdaptModel
from repro.frontend.registry import Kernel
from repro.interp.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.ir import nodes as N
from repro.ir.types import DType
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.search.evaluate import CandidateEvaluator, EvaluatedCandidate
from repro.search.parallel import ParallelEvaluator
from repro.search.pareto import ParetoFront
from repro.search.store import (
    RunStore,
    StoreLike,
    candidate_of,
    library_version,
    record_of,
    run_id_of,
    run_key_components,
)
from repro.search.strategies import (
    DEFAULT_STRATEGIES,
    SearchProblem,
    get_strategy,
)
from repro.sweep.aggregate import AggregatorSpec, resolve_aggregator
from repro.sweep.cache import SweepCache
from repro.sweep.engine import CacheLike, run_sweep
from repro.tuning.config import matches_inlined
from repro.util.deprecation import warn_legacy
from repro.util.errors import ConfigError, InputError

#: inlining suffixes appended to callee locals (possibly stacked)
_INLINE_SUFFIX = re.compile(r"(?:_in\d+)+$")


def _as_ir(k: KernelLike) -> N.Function:
    return k.ir if isinstance(k, Kernel) else k


@dataclass
class SearchResult:
    """Everything a precision search produced."""

    kernel: str
    front: ParetoFront
    #: every computed candidate, in deterministic evaluation order
    evaluations: List[EvaluatedCandidate]
    #: the paper-style greedy choice (when the greedy strategy ran)
    baseline: Optional[EvaluatedCandidate]
    threshold: float
    budget: int
    strategies: Tuple[str, ...]
    candidates: Tuple[str, ...]
    #: estimated demotion contributions the strategies ranked by
    contributions: Dict[str, float]
    #: whether worker processes actually evaluated candidate pools
    parallel: bool = False
    #: evaluator/cache counters (config-batching, memo, sweep cache,
    #: compiled-kernel cache) — surfaced by the CLI and benchmarks
    stats: Optional[Dict[str, object]] = None
    #: content-addressed run id when a persistent store was in use
    run_id: Optional[str] = None
    #: whether any evaluations were restored from the run store
    resumed: bool = False
    #: evaluations served from the store rather than recomputed
    n_restored: int = 0
    #: session provenance (session/config identity, method, sequence
    #: number) — stamped by :class:`repro.session.Session`
    provenance: Optional[Dict[str, object]] = None
    #: per-phase time breakdown aggregated from this run's span tree
    #: (:func:`repro.obs.profile.summarize_records` output); ``None``
    #: unless tracing was enabled during the search
    profile: Optional[Dict[str, object]] = None

    @property
    def n_evaluated(self) -> int:
        return len(self.evaluations)

    def best_under(
        self, threshold: Optional[float] = None
    ) -> Optional[EvaluatedCandidate]:
        """Cheapest front point within the (default: search) threshold."""
        return self.front.best_under(
            self.threshold if threshold is None else threshold
        )

    def to_dict(self) -> Dict[str, object]:
        best = self.best_under()
        return {
            "kernel": self.kernel,
            "threshold": self.threshold,
            "budget": self.budget,
            "strategies": list(self.strategies),
            "candidates": list(self.candidates),
            "n_evaluated": self.n_evaluated,
            "parallel": self.parallel,
            "front": self.front.to_dicts(),
            "baseline": self.baseline.to_dict() if self.baseline else None,
            "best_under_threshold": best.to_dict() if best else None,
            "stats": self.stats,
            "run_id": self.run_id,
            "resumed": self.resumed,
            "n_restored": self.n_restored,
            "provenance": self.provenance,
            "profile": self.profile,
        }

    def summary(self) -> str:
        lines = [
            f"search({self.kernel}): {self.n_evaluated} configs "
            f"evaluated, front size {len(self.front)}, "
            f"threshold {self.threshold:g}"
        ]
        lines.append(str(self.front))
        if self.baseline is not None:
            lines.append(
                f"greedy baseline: error={self.baseline.error:.4g} "
                f"cycles={self.baseline.cycles:.1f} "
                f"{self.baseline.config.describe()}"
            )
            best = self.best_under()
            if best is not None:
                lines.append(
                    f"best under threshold: error={best.error:.4g} "
                    f"cycles={best.cycles:.1f} [{best.strategy}] "
                    f"{best.config.describe()}"
                )
        return "\n".join(lines)


def _resolve_cache(cache: CacheLike) -> Optional[SweepCache]:
    if cache is None or isinstance(cache, SweepCache):
        return cache
    return SweepCache(directory=cache)


def _resolve_store(store: StoreLike) -> Optional[RunStore]:
    if store is None or isinstance(store, RunStore):
        return store
    return RunStore(store)


def _estimate_model_fingerprint(estimate_model) -> str:
    """Fingerprint of the (defaulted) sweep-estimate model for run keys."""
    if estimate_model is None:
        from repro.core.models import TaylorModel

        estimate_model = TaylorModel()
    if not getattr(estimate_model, "cacheable", False):
        raise ConfigError(
            "a persistent run store requires a cacheable estimate "
            "model (models closing over arbitrary callables have no "
            "stable content identity)"
        )
    return estimate_model.fingerprint()


def _crash_hook(n_computed: int) -> None:
    """Deterministic crash injection for crash-safety tests.

    With ``REPRO_SEARCH_CRASH_AFTER=N`` set, the process SIGKILLs
    itself once ``N`` candidates have been computed — after the
    checkpoint for the batch has been written, so tests exercise the
    exact state a hard kill at that instant would leave behind.
    """
    env = os.environ.get("REPRO_SEARCH_CRASH_AFTER")
    if env and n_computed >= int(env):
        os.kill(os.getpid(), signal.SIGKILL)


def _restored_result(
    store: RunStore,
    run_id: str,
    manifest: Dict[str, object],
    threshold: float,
    budget: int,
    strategies: Tuple[str, ...],
) -> Optional[SearchResult]:
    """Rebuild a completed run's :class:`SearchResult` from the store.

    The zero-work warm-resume path: nothing is compiled or executed.
    Returns ``None`` when the stored state is inconsistent (the caller
    falls back to a checkpoint replay)."""
    records = store.load_records(run_id)
    if len(records) != manifest.get("n_evaluations"):
        return None
    if manifest.get("candidates") is None:
        return None
    evaluations = [candidate_of(r) for r in records]
    baseline = None
    baseline_key = manifest.get("baseline_key")
    if baseline_key is not None:
        baseline = next(
            (c for c in evaluations if c.key == baseline_key), None
        )
        if baseline is None:
            return None
    stats: Dict[str, object] = {
        "run_store": {
            "run_id": run_id,
            "root": str(store.root),
            "restored": len(records),
            "computed": 0,
            "checkpoints": 0,
            "replayed": False,
        }
    }
    return SearchResult(
        kernel=str(manifest.get("kernel")),
        front=ParetoFront(evaluations),
        evaluations=evaluations,
        baseline=baseline,
        threshold=float(threshold),
        budget=int(budget),
        strategies=tuple(strategies),
        candidates=tuple(manifest["candidates"]),
        contributions={
            c: float(v)
            for c, v in (manifest.get("contributions") or {}).items()
        },
        parallel=False,
        stats=stats,
        run_id=run_id,
        resumed=True,
        n_restored=len(records),
    )


def _search_components(
    fn: N.Function,
    points: Sequence[Sequence[object]],
    threshold: float,
    candidates: Optional[Sequence[str]],
    samples: Optional[Mapping[str, Sequence[float]]],
    fixed: Optional[Mapping[str, object]],
    demote_to: DType,
    strategies: Sequence[str],
    budget: int,
    seed: int,
    aggregate: AggregatorSpec,
    estimate_model,
    cost_model: CostModel,
    approx: Optional[Set[str]],
    error_metric: str,
    analysis: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Run-key components as :func:`run_search` computes them — shared
    by the driver and :func:`search_run_id` so the two can never
    disagree about a run's identity."""
    components = run_key_components(
        fn,
        points=points,
        threshold=float(threshold),
        candidates=candidates,
        samples=samples,
        fixed=fixed,
        demote_to=demote_to,
        strategies=tuple(strategies),
        budget=int(budget),
        seed=int(seed),
        aggregate=resolve_aggregator(aggregate)[0],
        error_metric=error_metric,
        model_fingerprint=_estimate_model_fingerprint(estimate_model),
        cost_model=cost_model,
        approx=approx,
    )
    if analysis is not None:
        # pruning changes which candidates the strategies see, so the
        # analysis conclusions join the run identity; with analysis
        # off (None) the key set — and every run id — is bit-identical
        # to a pre-analysis release
        components["analysis"] = {
            "digest": str(analysis["digest"]),
            "pruned": sorted(analysis.get("pruned") or ()),
        }
    return components


def search_run_id(
    k: KernelLike,
    points: Sequence[Sequence[object]],
    threshold: float,
    candidates: Optional[Sequence[str]] = None,
    samples: Optional[Mapping[str, Sequence[float]]] = None,
    fixed: Optional[Mapping[str, object]] = None,
    demote_to: DType = DType.F32,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    budget: int = 64,
    aggregate: AggregatorSpec = "max",
    estimate_model=None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    approx: Optional[Set[str]] = None,
    seed: int = 0,
    error_metric: str = "worst",
    analysis: Optional[Mapping[str, object]] = None,
) -> str:
    """The content-addressed run id :func:`run_search` would use for
    these parameters — without running anything.

    Lets callers (the job server, progress UIs) locate a run's store
    directory and poll :meth:`~repro.search.store.RunStore.run_progress`
    before/while the search executes.  Knobs that are bit-identical by
    contract (``workers``, ``config_batch``) and pure plumbing
    (``cache``, ``store``) are not part of a run's identity.
    """
    return run_id_of(
        _search_components(
            _as_ir(k), points, threshold, candidates, samples, fixed,
            demote_to, strategies, budget, seed, aggregate,
            estimate_model, cost_model, approx, error_metric,
            analysis=analysis,
        )
    )


def _register_contributions(
    fn: N.Function,
    points: Sequence[Sequence[object]],
    samples: Optional[Mapping[str, Sequence[float]]],
    fixed: Optional[Mapping[str, object]],
    demote_to: DType,
    aggregate: AggregatorSpec,
    cache: Optional[SweepCache],
) -> Dict[str, float]:
    """Per-register estimated demotion contributions (ADAPT model),
    aggregated across the input sweep when one is given."""
    model = AdaptModel(demote_to)
    if samples is not None:
        batch = run_sweep(
            fn, samples=samples, fixed=fixed, model=model, cache=cache
        )
        _, agg = resolve_aggregator(aggregate)
        return {
            v: float(agg(np.asarray(a)))
            for v, a in batch.per_variable.items()
        }
    est = cached_error_estimator(fn, model=model)
    report = est.execute(*points[0])
    return dict(report.per_variable)


def _derive_candidates(registers: Mapping[str, float]) -> Tuple[str, ...]:
    """Source-level candidate names from error-register names.

    Inlined callee locals (``expin_in1``) fold back onto their source
    name (``expin``); analysis artifacts (``_ret``, compiler temps)
    are excluded."""
    names: Set[str] = set()
    for reg in registers:
        if reg.startswith("_"):
            continue
        names.add(_INLINE_SUFFIX.sub("", reg))
    return tuple(sorted(names))


def run_search(
    k: KernelLike,
    points: Sequence[Sequence[object]],
    threshold: float,
    candidates: Optional[Sequence[str]] = None,
    samples: Optional[Mapping[str, Sequence[float]]] = None,
    fixed: Optional[Mapping[str, object]] = None,
    demote_to: DType = DType.F32,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    budget: int = 64,
    workers: int = 0,
    cache: CacheLike = None,
    aggregate: AggregatorSpec = "max",
    estimate_model=None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    approx: Optional[Set[str]] = None,
    seed: int = 0,
    error_metric: str = "worst",
    config_batch: bool = True,
    store: StoreLike = None,
    resume: bool = False,
    label: Optional[str] = None,
    checkpoint_every: int = 1,
    on_batch: Optional[Callable[[int], None]] = None,
    analysis: Optional[Mapping[str, object]] = None,
) -> SearchResult:
    """Multi-objective precision search over (error, modelled cycles).

    The search driver proper — the non-deprecated implementation
    behind :meth:`repro.session.Session.search`; :func:`search` is the
    legacy wrapper around it.

    :param k: kernel (or IR function) to search.
    :param points: validation input tuples; each candidate is executed
        at every point (actual error, counted cycles).
    :param threshold: error budget the feasibility-driven strategies
        (greedy baseline, delta debugging, annealing) aim for; the
        front itself spans all trade-offs regardless.
    :param candidates: demotion candidates (default: every source-level
        variable with an error register).
    :param samples: optional swept inputs — adds a distribution-robust
        estimated-error term to every candidate's score and aggregates
        the contribution ranking across the distribution.
    :param fixed: lane-uniform values for unswept parameters.
    :param demote_to: target precision (binary32 by default).
    :param strategies: registered strategy names, run in order over the
        shared budget (default ``("greedy", "delta", "anneal")``).
    :param budget: maximum number of *computed* candidate evaluations
        (memoized re-proposals are free).
    :param workers: ``>= 2`` fans candidate pools out over that many
        forked worker processes; results are bit-identical to serial.
    :param cache: optional sweep result cache (shared by the
        contribution sweep and every candidate sweep).
    :param aggregate: sweep aggregation (default worst-case ``"max"``).
    :param seed: RNG seed for the stochastic strategies.
    :param error_metric: how actual and estimated errors combine into
        the Pareto error axis (``"worst"``, ``"actual"``,
        ``"estimate"``).
    :param config_batch: score proposal pools through the compile-once
        config-batched kernel (default).  ``False`` forces the PR-2
        per-candidate compile-and-run path; results are bit-identical,
        only slower.
    :param store: optional persistent :class:`RunStore` (or directory).
        Evaluation history checkpoints to a content-addressed run
        directory after every ``checkpoint_every`` computed batches, so
        a killed run loses at most one batch of work.
    :param resume: with a store, re-seed the evaluator memo, history,
        and budget from the stored run (found by content address) —
        the resumed run replays stored evaluations as free memo hits
        and produces a bit-identical Pareto front and evaluation
        history to an uninterrupted run.  A run that already completed
        is reconstructed straight from the store (zero evaluations,
        nothing compiled).
    :param label: human-readable run label for the manifest (default:
        kernel name).
    :param checkpoint_every: checkpoint cadence, in computed batches.
    :param on_batch: optional callback invoked with the running
        computed-evaluation count after every computed batch (after the
        store checkpoint for that batch, when a store is in use).  An
        exception raised by the callback aborts the search — with a
        store, resumably: the checkpointed prefix stays valid, so a
        later ``resume=True`` run continues bit-identically.  This is
        the cancellation/deadline surface of the job server
        (:mod:`repro.serve`).
    :param analysis: static-analysis conclusions from
        :func:`repro.analyze.analyze_kernel` — a mapping with the
        report ``digest`` and the ``pruned`` source-variable names.
        Pruned names are excluded from the *derived* candidate set
        (explicit ``candidates`` are pre-pruned by the session), the
        conclusions join the run identity, and the manifest records
        them as provenance.  ``None`` (the default) is bit-identical
        to a pre-analysis release.
    """
    fn = _as_ir(k)
    if points and not isinstance(points[0], (tuple, list)):
        raise InputError(
            "points must be a sequence of argument tuples, e.g. "
            "[(n, h), ...] — got a flat sequence"
        )
    sweep_cache = _resolve_cache(cache)
    names = tuple(strategies)
    run_store = _resolve_store(store)
    if resume and run_store is None:
        raise ConfigError("resume=True requires store=")
    run_id: Optional[str] = None
    manifest: Optional[Dict[str, object]] = None
    restored: List[EvaluatedCandidate] = []
    if run_store is not None:
        components = _search_components(
            fn, points, threshold, candidates, samples, fixed,
            demote_to, names, budget, seed, aggregate, estimate_model,
            cost_model, approx, error_metric, analysis=analysis,
        )
        run_id = run_id_of(components)
        if resume:
            manifest = run_store.load_manifest(run_id)
            if (
                manifest is not None
                and manifest.get("library_version") != library_version()
            ):
                # the run key hashes parameters, not library behavior:
                # records computed by a different release could mix
                # with this one's and break the bit-identical contract
                # — restart the run from scratch instead
                manifest = None
            if manifest is not None and manifest.get("completed"):
                warm = _restored_result(
                    run_store, run_id, manifest,
                    threshold=float(threshold), budget=int(budget),
                    strategies=names,
                )
                if warm is not None:
                    return warm
            if manifest is not None:
                restored = [
                    candidate_of(r)
                    for r in run_store.load_records(run_id)
                ]
        if manifest is None:
            # fresh run (or resume over a never-started id): write the
            # manifest and truncate any stale records up front
            manifest = run_store.new_manifest(
                run_id, components, kernel=fn.name,
                label=label or fn.name, analysis=analysis,
            )
            run_store.save_manifest(run_id, manifest)
            run_store.checkpoint(run_id, [])
    ev_cls = ParallelEvaluator if workers and workers >= 2 else CandidateEvaluator
    ev_kwargs = dict(
        samples=samples,
        fixed=fixed,
        estimate_model=estimate_model,
        cost_model=cost_model,
        approx=approx,
        aggregate=aggregate,
        cache=sweep_cache,
        error_metric=error_metric,
        config_batch=config_batch,
    )
    if ev_cls is ParallelEvaluator:
        ev_kwargs["workers"] = int(workers)
    from repro.codegen.compile import _cache_stats

    evaluator = ev_cls(fn, points, **ev_kwargs)
    n_checkpoints = 0
    if run_store is not None or on_batch is not None:
        every = max(int(checkpoint_every), 1)
        batches = 0

        def _on_computed(ev: CandidateEvaluator) -> None:
            nonlocal batches, n_checkpoints
            batches += 1
            if run_store is not None and batches % every == 0:
                run_store.checkpoint(
                    run_id, [record_of(c) for c in ev.history]
                )
                n_checkpoints += 1
            _crash_hook(ev.n_computed)
            if on_batch is not None:
                # after the checkpoint: an abort raised here keeps the
                # just-checkpointed batch resumable on disk
                on_batch(ev.n_computed)

        evaluator.checkpoint = _on_computed
    kernel_cache_before = _cache_stats()
    obs_metrics.REGISTRY.counter(
        "repro_search_runs_total", "precision searches driven"
    ).inc()
    # with tracing enabled, this run's spans are also collected in
    # memory (forked workers' spans go to the trace file only) and
    # aggregated into SearchResult.profile; with tracing disabled the
    # collector stays empty and profile is None
    with obs_trace.collect() as trace_records, obs_trace.span(
        "search.run",
        kernel=fn.name,
        budget=int(budget),
        run_id=run_id,
        strategies=list(names),
    ) as root_span:
        try:
            with obs_trace.span("search.prepare", kernel=fn.name):
                evaluator.prepare()
            if restored:
                evaluator.restore(restored)
            if (
                manifest is not None
                and manifest.get("contributions") is not None
            ):
                # resume: the candidate set and contribution ranking were
                # derived (and persisted) by the original run — reuse them
                # instead of re-sweeping
                cand = tuple(manifest["candidates"])
                contributions = {
                    c: float(v)
                    for c, v in manifest["contributions"].items()
                }
            else:
                with obs_trace.span("search.contributions"):
                    registers = _register_contributions(
                        fn, evaluator.points, samples, fixed, demote_to,
                        aggregate, sweep_cache,
                    )
                if candidates is None:
                    cand = _derive_candidates(registers)
                    if analysis is not None:
                        pruned = set(analysis.get("pruned") or ())
                        kept = tuple(
                            c for c in cand if c not in pruned
                        )
                        # never prune to an empty candidate space — a
                        # space that small is cheap to search anyway
                        if kept:
                            cand = kept
                else:
                    cand = tuple(candidates)
                contributions = {
                    c: sum(
                        e
                        for r, e in registers.items()
                        if matches_inlined(r, c)
                    )
                    for c in cand
                }
                if run_store is not None and manifest is not None:
                    manifest["candidates"] = list(cand)
                    manifest["contributions"] = contributions
                    run_store.save_manifest(run_id, manifest)
            problem = SearchProblem(
                evaluator=evaluator,
                candidates=cand,
                threshold=float(threshold),
                contributions=contributions,
                demote_to=demote_to,
                budget=int(budget),
                seed=int(seed),
            )
            if restored:
                # stored evaluations already consumed budget in the run
                # that computed them
                problem.charge(evaluator.n_restored)
            for name in names:
                if problem.exhausted:
                    break
                with obs_trace.span("search.strategy", strategy=name):
                    get_strategy(name).run(problem)
            front = ParetoFront(evaluator.history)
            parallel = bool(getattr(evaluator, "parallel", False))
            from repro.core.api import _memo_stats

            # hit/miss counters are process-cumulative: report this
            # run's deltas (entries/capacity stay gauges)
            kernel_cache = dict(_cache_stats())
            for counter in ("hits", "misses", "unvectorizable"):
                kernel_cache[counter] -= kernel_cache_before[counter]
            stats: Dict[str, object] = {
                "evaluator": evaluator.eval_stats(),
                "estimator_memo": _memo_stats(),
                "config_kernel_cache": kernel_cache,
            }
            if sweep_cache is not None:
                stats["sweep_cache"] = sweep_cache.cache_stats()
            if run_store is not None and manifest is not None:
                records = [record_of(c) for c in evaluator.history]
                run_store.complete_run(
                    run_id,
                    manifest,
                    records,
                    baseline_key=(
                        problem.baseline.key if problem.baseline else None
                    ),
                    front=[
                        {"key": p.key, "error": p.error, "cycles": p.cycles}
                        for p in front.points
                    ],
                )
                n_checkpoints += 1
                stats["run_store"] = {
                    "run_id": run_id,
                    "root": str(run_store.root),
                    "restored": evaluator.n_restored,
                    "computed": evaluator.n_computed,
                    "checkpoints": n_checkpoints,
                    "replayed": bool(restored),
                }
        finally:
            evaluator.close()
    profile: Optional[Dict[str, object]] = None
    if trace_records:
        from repro.obs.profile import summarize_records

        profile = summarize_records(
            trace_records, root=getattr(root_span, "span_id", None)
        )
    return SearchResult(
        kernel=fn.name,
        front=front,
        evaluations=list(evaluator.history),
        baseline=problem.baseline,
        threshold=float(threshold),
        budget=int(budget),
        strategies=names,
        candidates=cand,
        contributions=contributions,
        parallel=parallel,
        stats=stats,
        run_id=run_id,
        resumed=bool(restored),
        n_restored=evaluator.n_restored,
        profile=profile,
    )


def search(
    k: KernelLike,
    points: Sequence[Sequence[object]],
    threshold: float,
    candidates: Optional[Sequence[str]] = None,
    samples: Optional[Mapping[str, Sequence[float]]] = None,
    fixed: Optional[Mapping[str, object]] = None,
    demote_to: DType = DType.F32,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    budget: int = 64,
    workers: int = 0,
    cache: CacheLike = None,
    aggregate: AggregatorSpec = "max",
    estimate_model=None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    approx: Optional[Set[str]] = None,
    seed: int = 0,
    error_metric: str = "worst",
    config_batch: bool = True,
    store: StoreLike = None,
    resume: bool = False,
    label: Optional[str] = None,
    checkpoint_every: int = 1,
) -> SearchResult:
    """Multi-objective precision search over (error, modelled cycles).

    .. deprecated:: 1.1
        Legacy wrapper, removed in 2.0 — use
        :meth:`repro.session.Session.search`, which shares the
        session's sweep cache, run store, and estimator memo across
        searches.  The signature (positional parameters included)
        matches the 1.0 entry point; results are bit-identical.
    """
    warn_legacy("repro.search.search()", "Session.search()")
    from repro.session import Session

    return Session().search(
        k,
        points,
        threshold,
        candidates=candidates,
        samples=samples,
        fixed=fixed,
        demote_to=demote_to,
        strategies=strategies,
        budget=budget,
        workers=workers,
        cache=cache,
        aggregate=aggregate,
        estimate_model=estimate_model,
        cost_model=cost_model,
        approx=approx,
        seed=seed,
        error_metric=error_metric,
        config_batch=config_batch,
        store=store,
        resume=resume,
        label=label,
        checkpoint_every=checkpoint_every,
    )
