"""Search scenarios: the per-app bundle of everything a search needs.

Each benchmark app (:mod:`repro.apps`) exposes a ``search_scenario()``
returning one of these — kernel, validation points, input sweep, the
candidate demotion set, and the error threshold — so the CLI
(``python -m repro.search --kernel <app>``), the benchmarks, and the
tests all drive the same definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

from repro.core.api import KernelLike


@dataclass
class SearchScenario:
    """A ready-to-run precision-search problem."""

    name: str
    kernel: KernelLike
    #: validation input tuples (actual error / cycle measurement)
    points: Sequence[Sequence[object]]
    threshold: float
    candidates: Tuple[str, ...]
    #: optional swept inputs for the distribution-robust error estimate
    samples: Optional[Mapping[str, Sequence[float]]] = None
    fixed: Optional[Mapping[str, object]] = field(default=None)
    #: default evaluation budget for CLI/benchmark runs
    budget: int = 48
    description: str = ""

    def run(self, session=None, **overrides):
        """Run the precision search on this scenario.

        Goes through :meth:`repro.session.Session.search` — pass
        ``session=`` to share an existing session's sweep cache, run
        store, and defaults (a throwaway default session is used
        otherwise).  Keyword overrides are passed through (``budget=``,
        ``workers=``, ``strategies=``, ``threshold=``, ...).
        """
        if session is None:
            from repro.session import Session

            session = Session()
        kwargs = {
            "candidates": self.candidates,
            "samples": self.samples,
            "fixed": self.fixed,
            "budget": self.budget,
            # run-store manifests label runs by scenario name
            "label": self.name,
        }
        threshold = overrides.pop("threshold", self.threshold)
        kwargs.update(overrides)
        return session.search(
            self.kernel, self.points, threshold, **kwargs
        )
