"""Multi-scenario search orchestration over a persistent run store.

A production tuning job is rarely one search: it is "run the precision
search over *all* the apps, with these budgets, and compare" — a job
long enough that crashes, OOM kills, and CI timeouts are facts of life.
:class:`SearchOrchestrator` runs such a plan:

* every entry is a :class:`PlanEntry` — a named app scenario
  (:mod:`repro.apps`) plus per-entry overrides (budget, strategies,
  threshold, seed, workers) and optional scenario-construction
  arguments;
* every search runs through the shared :class:`~repro.search.store
  .RunStore`, so evaluation history checkpoints as it is computed;
* resuming an interrupted plan is the default: completed entries are
  reconstructed straight from the store (zero evaluations), partially
  evaluated entries replay their stored history as free memo hits and
  continue where they stopped — both bit-identical to an uninterrupted
  run;
* the estimator memo is warm-started across the whole plan up front
  (:func:`repro.core.api.warm_start_estimator_memo`), so forked worker
  pools inherit every kernel's compiled estimators and later entries
  never pay a compile the plan already did;
* :meth:`SearchOrchestrator.report` compares the finished runs —
  evaluations computed vs restored, front sizes, and the best
  threshold-feasible speedup per scenario.

CLI::

    python -m repro.search --plan plan.json --store runs/
    python -m repro.search --all --store runs/ --resume
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.search.api import SearchResult
from repro.search.store import RunStore
from repro.util.errors import ConfigError, UnknownNameError

#: plan-entry keys that are not search() overrides
_ENTRY_META_KEYS = ("scenario", "scenario_args")

#: override keys a plan (entry or defaults) may set — the
#: JSON-expressible knobs of :meth:`SearchScenario.run`.  ``store``,
#: ``resume``, and ``label`` are deliberately absent: the orchestrator
#: owns them, and letting a plan shadow them would turn into a
#: confusing runtime TypeError per entry
_ALLOWED_OVERRIDES = frozenset(
    {
        "budget",
        "strategies",
        "threshold",
        "seed",
        "workers",
        "cache",
        "aggregate",
        "error_metric",
        "config_batch",
        "checkpoint_every",
    }
)


def _check_overrides(overrides: Mapping[str, object], what: str) -> None:
    bad = sorted(set(overrides) - _ALLOWED_OVERRIDES)
    if bad:
        raise ConfigError(
            f"{what}: unknown override keys {bad} "
            f"(allowed: {sorted(_ALLOWED_OVERRIDES)})"
        )


def app_scenarios() -> Dict[str, object]:
    """App modules that ship a ``search_scenario()`` factory."""
    from repro.apps import ALL_APPS

    return {
        name: mod
        for name, mod in ALL_APPS.items()
        if hasattr(mod, "search_scenario")
    }


@dataclass
class PlanEntry:
    """One scenario of a search plan."""

    scenario: str
    #: keyword overrides forwarded to :meth:`SearchScenario.run`
    overrides: Dict[str, object] = field(default_factory=dict)
    #: keyword arguments for the app's ``search_scenario()`` factory
    scenario_args: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "PlanEntry":
        overrides = {
            k: v for k, v in raw.items() if k not in _ENTRY_META_KEYS
        }
        _check_overrides(
            overrides, f"plan entry {raw.get('scenario')!r}"
        )
        if "strategies" in overrides:
            overrides["strategies"] = tuple(overrides["strategies"])
        return cls(
            scenario=str(raw["scenario"]),
            overrides=overrides,
            scenario_args=dict(raw.get("scenario_args") or {}),
        )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"scenario": self.scenario}
        out.update(self.overrides)
        if "strategies" in out:
            out["strategies"] = list(out["strategies"])
        if self.scenario_args:
            out["scenario_args"] = dict(self.scenario_args)
        return out


def shard_entries(
    entries: Sequence["PlanEntry"],
    shards: int,
    *,
    default_seed: int = 0,
) -> List["PlanEntry"]:
    """Expand each entry into ``shards`` seed-varied copies.

    Shard ``s`` overrides ``seed = base_seed + s`` where ``base_seed``
    is the entry's own seed override (falling back to
    ``default_seed``).  The seed is part of the content-addressed run
    key, so shard runs get distinct run ids: a fleet can execute them
    concurrently, and their stores union-merge without collisions.
    The expansion is deterministic — a serial
    :class:`SearchOrchestrator` over the same sharded entries is the
    bit-identical reference for any fleet execution of them.
    """
    if int(shards) < 1:
        raise ConfigError(f"shards must be >= 1, got {shards!r}")
    out: List[PlanEntry] = []
    for entry in entries:
        base_seed = int(entry.overrides.get("seed", default_seed))  # type: ignore[arg-type]
        for s in range(int(shards)):
            overrides = dict(entry.overrides)
            overrides["seed"] = base_seed + s
            out.append(
                PlanEntry(
                    scenario=entry.scenario,
                    overrides=overrides,
                    scenario_args=dict(entry.scenario_args),
                )
            )
    return out


@dataclass
class PlanRun:
    """Outcome of one plan entry."""

    entry: PlanEntry
    result: Optional[SearchResult]
    status: str  # "completed" | "failed"
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "completed" and self.result is not None


class SearchOrchestrator:
    """Runs a multi-scenario, multi-strategy search plan durably.

    :param store: the shared :class:`RunStore` (or its directory).
    :param entries: the plan, as :class:`PlanEntry` instances.
    :param resume: resume entries from the store when their runs exist
        (default) — the orchestrator is safe to re-launch after a crash
        and will not redo completed work.
    :param defaults: overrides applied to every entry (entry-level
        overrides win).
    :param session: the :class:`~repro.session.Session` whose resources
        (sweep cache, estimator memo defaults) the entries share — a
        throwaway default session is created otherwise.
    """

    def __init__(
        self,
        store: Union[RunStore, str, Path],
        entries: Sequence[PlanEntry],
        resume: bool = True,
        defaults: Optional[Mapping[str, object]] = None,
        session=None,
    ) -> None:
        self.store = (
            store if isinstance(store, RunStore) else RunStore(store)
        )
        self.entries = list(entries)
        self.resume = bool(resume)
        self.defaults = dict(defaults or {})
        _check_overrides(self.defaults, "plan defaults")
        self.session = session
        self.runs: List[PlanRun] = []

    def _session(self):
        if self.session is None:
            from repro.session import Session

            self.session = Session()
        return self.session

    # -- construction --------------------------------------------------------
    @classmethod
    def from_plan(
        cls,
        plan: Mapping[str, object],
        store: Union[RunStore, str, Path],
        resume: bool = True,
        session=None,
    ) -> "SearchOrchestrator":
        """Build from a plan mapping::

            {
              "defaults": {"seed": 0, "workers": 2},
              "entries": [
                {"scenario": "blackscholes", "budget": 24},
                {"scenario": "kmeans", "budget": 16,
                 "scenario_args": {"size": 16}}
              ]
            }
        """
        entries = [
            PlanEntry.from_dict(raw) for raw in plan.get("entries", [])
        ]
        if not entries:
            raise ConfigError("plan has no entries")
        known = app_scenarios()
        unknown = [e.scenario for e in entries if e.scenario not in known]
        if unknown:
            raise UnknownNameError(
                f"unknown plan scenarios {unknown} "
                f"(available: {sorted(known)})"
            )
        return cls(
            store, entries, resume=resume,
            defaults=plan.get("defaults") or {},
            session=session,
        )

    @classmethod
    def from_plan_file(
        cls,
        path: Union[str, Path],
        store: Union[RunStore, str, Path],
        resume: bool = True,
        session=None,
    ) -> "SearchOrchestrator":
        plan = json.loads(Path(path).read_text())
        return cls.from_plan(plan, store, resume=resume, session=session)

    @classmethod
    def over_all_apps(
        cls,
        store: Union[RunStore, str, Path],
        resume: bool = True,
        session=None,
        **defaults: object,
    ) -> "SearchOrchestrator":
        """A plan covering every app with a search scenario."""
        entries = [
            PlanEntry(scenario=name) for name in sorted(app_scenarios())
        ]
        if "strategies" in defaults:
            defaults["strategies"] = tuple(defaults["strategies"])  # type: ignore[arg-type]
        return cls(
            store, entries, resume=resume, defaults=defaults,
            session=session,
        )

    # -- execution ------------------------------------------------------------
    def _scenario_for(self, entry: PlanEntry):
        mod = app_scenarios()[entry.scenario]
        return mod.search_scenario(**entry.scenario_args)

    def warm_start(self) -> int:
        """Pre-compile every scenario's estimators into the shared memo.

        Returns the number of estimators newly compiled.  Called by
        :meth:`run`; idempotent."""
        from repro.core.api import warm_start_estimator_memo
        from repro.core.models import AdaptModel, TaylorModel
        from repro.ir.types import DType

        kernels = []
        for entry in self.entries:
            try:
                kernels.append(self._scenario_for(entry).kernel)
            except Exception:
                continue  # entry will fail (and report) in run()
        # TaylorModel serves the candidate sweeps, AdaptModel the
        # contribution ranking — the two models every search builds
        return warm_start_estimator_memo(
            kernels, models=(TaylorModel(), AdaptModel(DType.F32))
        )

    def run(self) -> List[PlanRun]:
        """Execute (or resume) the whole plan; never raises per-entry —
        a failing entry is recorded as ``status="failed"`` and the plan
        continues."""
        self.warm_start()
        self.runs = []
        session = self._session()
        for entry in self.entries:
            overrides = dict(self.defaults)
            overrides.update(entry.overrides)
            try:
                scen = self._scenario_for(entry)
                result = scen.run(
                    session=session,
                    store=self.store, resume=self.resume, **overrides
                )
                self.runs.append(PlanRun(entry, result, "completed"))
            except Exception as exc:  # noqa: BLE001 - reported, not fatal
                self.runs.append(
                    PlanRun(entry, None, "failed", error=str(exc))
                )
        return self.runs

    # -- reporting ------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return bool(self.runs) and all(r.ok for r in self.runs)

    def to_dict(self) -> Dict[str, object]:
        # defaults may hold live objects (a SweepCache instance passed
        # programmatically) — render those as strings so the dict
        # always survives json.dumps (the CLI's --json path)
        defaults = {
            k: (
                v
                if isinstance(
                    v, (str, int, float, bool, type(None), list, tuple)
                )
                else str(v)
            )
            for k, v in self.defaults.items()
        }
        return {
            "store": str(self.store.root),
            "resume": self.resume,
            "defaults": defaults,
            "ok": self.ok,
            "runs": [
                {
                    "entry": r.entry.to_dict(),
                    "status": r.status,
                    "error": r.error or None,
                    "result": (
                        r.result.to_dict() if r.result is not None else None
                    ),
                }
                for r in self.runs
            ],
        }

    def report(self) -> str:
        """Cross-run comparison of the finished plan."""
        lines = [
            f"search plan over {len(self.runs)} scenario(s) "
            f"[store: {self.store.root}]"
        ]
        header = (
            f"  {'scenario':14s} {'status':9s} {'evals':>5s} "
            f"{'restored':>8s} {'front':>5s} {'best@thr':>9s}  run"
        )
        lines.append(header)
        for r in self.runs:
            if r.result is None:
                lines.append(
                    f"  {r.entry.scenario:14s} {'FAILED':9s}"
                    f"{'':>5s} {'':>8s} {'':>5s} {'':>9s}  {r.error}"
                )
                continue
            res = r.result
            best = res.best_under()
            speedup = best.speedup_or_none if best is not None else None
            best_s = f"{speedup:.3f}x" if speedup is not None else "-"
            status = "restored" if res.resumed else "completed"
            lines.append(
                f"  {r.entry.scenario:14s} {status:9s} "
                f"{res.n_evaluated:5d} {res.n_restored:8d} "
                f"{len(res.front):5d} {best_s:>9s}  "
                f"{(res.run_id or '')[:12]}"
            )
        return "\n".join(lines)
