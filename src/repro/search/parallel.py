"""Parallel candidate evaluation over a fork-started worker pool.

Scoring a candidate is compile-and-run heavy (apply the precision
config, compile the counting variant, run the validation points, sweep
the input distribution), and strategies propose candidates in pools —
greedy ladders, delta-debugging partitions, exhaustive enumerations.
:class:`ParallelEvaluator` fans those pools out over a
``multiprocessing`` pool while keeping results **bit-identical** to the
serial path:

* workers are *forked* after :meth:`CandidateEvaluator.prepare`, so the
  parent's measured references and memoized compiled estimators
  (:mod:`repro.core.api`) are inherited copy-on-write — the
  per-process estimator memo then grows independently in each worker,
  i.e. compiled-adjoint construction is memoized per worker;
* each worker computes with exactly the same generated code and inputs
  as the serial evaluator would, so every float matches bit for bit;
* pools ship as contiguous config *blocks* — one lane execution of the
  inherited config-batched kernel per block, not one compile per
  config — and lane results are independent of the block split;
* results merge deterministically in submission order (blocks are
  consumed in dispatch order; evaluation indices are assigned by the
  parent).

Failure containment (none of it can change results — the fallback is
always the bit-identical serial recompute of the same block):

* a worker exception, a worker that *dies* (OOM kill, injected
  ``worker-kill`` fault), or a block that stalls past
  ``hang_timeout_s`` (per-block heartbeat through ``imap``) reaps the
  pool and recomputes the block serially in-process;
* the pool then **respawns** on the next computation — up to
  ``max_respawns`` times (counted in ``repro_worker_respawns_total``)
  — instead of the old permanent serial fallback; only after the
  respawn budget is exhausted does the evaluator stay serial;
* the ``worker.exec`` fault site is probed in the *parent* per
  dispatched block (fork-inherited counters diverge per process, so a
  child-side check would kill every worker at once); a drawn
  ``worker-kill`` poisons exactly one block, whose worker exits hard.

On platforms without the ``fork`` start method (or with ``workers <=
1``) the evaluator degrades to the serial path transparently.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple

from repro import faults
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.search.evaluate import CandidateEvaluator, EvaluatedCandidate
from repro.tuning.config import PrecisionConfig

#: the evaluator the forked workers compute with (inherited at fork
#: time; compiled artifacts cannot be pickled, so initargs won't do)
_FORK_EVALUATOR: Optional[CandidateEvaluator] = None

#: default per-block heartbeat before a pool is declared hung
_DEFAULT_HANG_TIMEOUT_S = 120.0

_RESPAWNS = obs_metrics.REGISTRY.counter(
    "repro_worker_respawns_total",
    "worker pools rebuilt after a failure/hang",
)


class WorkerHangError(RuntimeError):
    """A worker block produced no result within the hang timeout."""


def _worker_compute_block(
    payload: Tuple[List[PrecisionConfig], bool],
) -> Tuple[List[EvaluatedCandidate], Tuple[int, int, int]]:
    """Score one contiguous block of a proposal pool in a worker.

    Runs the *serial* pool computation — i.e. the config-batched lane
    engine when available — on the inherited evaluator: each worker
    lowers its block onto the compiled kernel it inherited at fork
    time, so a block of B configs costs one lane execution, not B
    compiles.  Lane results are independent of how the pool is split,
    so block results are bit-identical to the serial evaluator's.

    Also returns the block's pool-telemetry deltas — the worker's
    counter increments die with the fork, so the parent re-applies
    them to keep ``eval_stats()`` truthful under parallelism.

    ``payload`` is ``(configs, kill)``; a poisoned block (parent-side
    ``worker.exec`` fault draw) hard-kills this worker — ``os._exit``,
    no cleanup, no exception — the closest simulation of an OOM kill
    the parent's hang detection exists to survive.
    """
    configs, kill = payload
    if kill:
        os._exit(86)
    ev = _FORK_EVALUATOR
    assert ev is not None, "worker forked without evaluator"
    before = (ev.n_pool_runs, ev.n_pool_lanes, ev.n_pool_fallbacks)
    # worker attribution: the span's pid field identifies which forked
    # process scored this block (the inherited tracer appends to the
    # same O_APPEND trace file, one atomic line per record).  The
    # inherited thread-local span stack holds the *parent's* open spans
    # — stale in this process — so it is dropped before tracing here.
    tracer = obs_trace.current()
    if tracer is not None:
        tracer._stack().clear()
    with obs_trace.span("search.worker", k=len(configs)):
        out = CandidateEvaluator._compute_many(ev, configs)
    delta = (
        ev.n_pool_runs - before[0],
        ev.n_pool_lanes - before[1],
        ev.n_pool_fallbacks - before[2],
    )
    return out, delta


def _blocks(items: List[PrecisionConfig], n: int) -> List[List[PrecisionConfig]]:
    """Split into at most ``n`` near-equal contiguous blocks.

    Blocks are kept at two-plus configs where possible (fewer workers
    rather than smaller blocks): a single-config block would fall off
    the lane engine inside the worker and pay a per-candidate compile.
    """
    n = max(1, min(n, len(items) // 2 or 1))
    size, rem = divmod(len(items), n)
    out, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < rem else 0)
        out.append(items[start:end])
        start = end
    return out


class ParallelEvaluator(CandidateEvaluator):
    """A :class:`CandidateEvaluator` whose pool computations fan out
    over ``workers`` forked processes.

    Accepts the same constructor arguments plus ``workers``,
    ``max_respawns`` (pool rebuilds allowed after failures; beyond it
    the evaluator stays serial) and ``hang_timeout_s`` (per-block
    heartbeat; ``REPRO_WORKER_TIMEOUT`` overrides the default).  Use
    as a context manager (or call :meth:`close`) to reap the pool.
    """

    def __init__(
        self,
        *args,
        workers: int = 2,
        max_respawns: int = 2,
        hang_timeout_s: Optional[float] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.workers = max(int(workers), 0)
        self.max_respawns = max(int(max_respawns), 0)
        if hang_timeout_s is None:
            env = os.environ.get("REPRO_WORKER_TIMEOUT")
            hang_timeout_s = (
                float(env) if env else _DEFAULT_HANG_TIMEOUT_S
            )
        #: per-block result deadline; <= 0 disables hang detection
        self.hang_timeout_s = float(hang_timeout_s)
        self._pool = None
        #: worker failures observed (exceptions, deaths, hangs)
        self._failures = 0
        #: pool rebuilds performed after a failure
        self.n_respawns = 0
        #: platform cannot fork (or pool construction failed hard)
        self._no_fork = False

    # -- pool lifecycle -----------------------------------------------------
    @property
    def parallel(self) -> bool:
        """Whether worker processes are actually in use."""
        return self._pool is not None

    @property
    def exhausted(self) -> bool:
        """Whether the respawn budget is spent (permanently serial)."""
        return self._no_fork or self._failures > self.max_respawns

    def _ensure_pool(self):
        global _FORK_EVALUATOR
        if self._pool is not None or self.workers < 2 or self.exhausted:
            return self._pool
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            self._no_fork = True  # no fork (e.g. Windows): serial
            return None
        # prepare() BEFORE forking: references and the reference
        # estimator compile once in the parent and are inherited by
        # every worker
        self.prepare()
        _FORK_EVALUATOR = self
        try:
            self._pool = ctx.Pool(processes=self.workers)
        except OSError:
            # construction itself failing (fd/process limits) is not a
            # worker crash — treat as a platform limit, stay serial
            self._pool = None
            self._no_fork = True
        finally:
            _FORK_EVALUATOR = None
        if self._pool is not None and self._failures > 0:
            # not the first spawn: this is a post-failure respawn
            self.n_respawns += 1
            _RESPAWNS.inc()
        return self._pool

    def close(self) -> None:
        """Drain and reap the worker pool (idempotent).

        Happy path is ``close()`` + ``join()``: in-flight worker blocks
        finish cleanly instead of being killed mid-write (a run-store
        checkpoint or sweep-cache put must never be interrupted by its
        own evaluator shutting down).  ``terminate()`` is reserved for
        :meth:`__del__` (interpreter teardown) and the failure path.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def _reap(self) -> None:
        """Kill the pool after a worker failure (state is suspect)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None
        except Exception:
            pass

    # -- telemetry ----------------------------------------------------------
    def eval_stats(self) -> dict:
        out = super().eval_stats()
        out["pool_respawns"] = self.n_respawns
        out["pool_worker_failures"] = self._failures
        return out

    # -- computation --------------------------------------------------------
    def _compute_many(
        self, configs: Sequence[PrecisionConfig]
    ) -> List[EvaluatedCandidate]:
        pool = self._ensure_pool() if len(configs) > 1 else None
        if pool is None:
            return super()._compute_many(configs)
        # ship config *blocks*: each worker lowers its whole block onto
        # the inherited compiled lane kernel in one go (per-candidate
        # shipping would pay one lane execution per config)
        blocks = _blocks(list(configs), self.workers)
        try:
            # the worker.exec fault site is drawn here, in the parent,
            # once per dispatched block: parent-side counters are the
            # globally deterministic ones (each fork would inherit its
            # own copy), and a worker-kill must poison exactly one
            # block, not one per worker
            payloads = []
            for block in blocks:
                spec = faults.check("worker.exec")
                payloads.append(
                    (block, spec is not None and spec.kind == "worker-kill")
                )
            with obs_trace.span(
                "search.parallel",
                k=len(configs),
                blocks=len(blocks),
                workers=self.workers,
            ):
                # imap delivers per-block results in dispatch order;
                # next(timeout) is the heartbeat that catches a dead
                # or wedged worker — a plain pool.map would block
                # forever on a lost task (Pool does not resubmit work
                # a dying worker held)
                it = pool.imap(_worker_compute_block, payloads)
                results = []
                timeout = (
                    self.hang_timeout_s
                    if self.hang_timeout_s > 0
                    else None
                )
                for _ in payloads:
                    try:
                        results.append(it.next(timeout))
                    except multiprocessing.TimeoutError:
                        raise WorkerHangError(
                            f"no worker result within "
                            f"{self.hang_timeout_s}s (dead or hung "
                            f"worker)"
                        ) from None
        except Exception:
            # a worker raised, died, or hung: the pool may have lost
            # processes or hold half-delivered results, so it is not
            # trustworthy anymore — reap it and recompute this block
            # in-process so the caller still gets its results.  The
            # next computation rebuilds the pool (bounded respawn);
            # past max_respawns the evaluator stays serial.
            self._failures += 1
            self._reap()
            return super()._compute_many(configs)
        with obs_trace.span("search.merge", blocks=len(blocks)):
            for _, (runs, lanes, fallbacks) in results:
                self.n_pool_runs += runs
                self.n_pool_lanes += lanes
                self.n_pool_fallbacks += fallbacks
            return [cand for block, _ in results for cand in block]
