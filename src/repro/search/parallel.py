"""Parallel candidate evaluation over a fork-started worker pool.

Scoring a candidate is compile-and-run heavy (apply the precision
config, compile the counting variant, run the validation points, sweep
the input distribution), and strategies propose candidates in pools —
greedy ladders, delta-debugging partitions, exhaustive enumerations.
:class:`ParallelEvaluator` fans those pools out over a
``multiprocessing`` pool while keeping results **bit-identical** to the
serial path:

* workers are *forked* after :meth:`CandidateEvaluator.prepare`, so the
  parent's measured references and memoized compiled estimators
  (:mod:`repro.core.api`) are inherited copy-on-write — the
  per-process estimator memo then grows independently in each worker,
  i.e. compiled-adjoint construction is memoized per worker;
* each worker computes with exactly the same generated code and inputs
  as the serial evaluator would, so every float matches bit for bit;
* results merge deterministically in submission order (``pool.map``
  preserves order; evaluation indices are assigned by the parent).

On platforms without the ``fork`` start method (or with ``workers <=
1``) the evaluator degrades to the serial path transparently.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Sequence

from repro.search.evaluate import CandidateEvaluator, EvaluatedCandidate
from repro.tuning.config import PrecisionConfig

#: the evaluator the forked workers compute with (inherited at fork
#: time; compiled artifacts cannot be pickled, so initargs won't do)
_FORK_EVALUATOR: Optional[CandidateEvaluator] = None


def _worker_compute(config: PrecisionConfig) -> EvaluatedCandidate:
    assert _FORK_EVALUATOR is not None, "worker forked without evaluator"
    return _FORK_EVALUATOR._compute(config)


class ParallelEvaluator(CandidateEvaluator):
    """A :class:`CandidateEvaluator` whose pool computations fan out
    over ``workers`` forked processes.

    Accepts the same constructor arguments plus ``workers``.  Use as a
    context manager (or call :meth:`close`) to reap the pool.
    """

    def __init__(self, *args, workers: int = 2, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.workers = max(int(workers), 0)
        self._pool = None
        self._pool_failed = False

    # -- pool lifecycle -----------------------------------------------------
    @property
    def parallel(self) -> bool:
        """Whether worker processes are actually in use."""
        return self._pool is not None

    def _ensure_pool(self):
        global _FORK_EVALUATOR
        if self._pool is not None or self._pool_failed or self.workers < 2:
            return self._pool
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            self._pool_failed = True  # no fork (e.g. Windows): serial
            return None
        # prepare() BEFORE forking: references and the reference
        # estimator compile once in the parent and are inherited by
        # every worker
        self.prepare()
        _FORK_EVALUATOR = self
        try:
            self._pool = ctx.Pool(processes=self.workers)
        except OSError:
            self._pool = None
            self._pool_failed = True
        finally:
            _FORK_EVALUATOR = None
        return self._pool

    def close(self) -> None:
        """Terminate the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- computation --------------------------------------------------------
    def _compute_many(
        self, configs: Sequence[PrecisionConfig]
    ) -> List[EvaluatedCandidate]:
        pool = self._ensure_pool() if len(configs) > 1 else None
        if pool is None:
            return super()._compute_many(configs)
        return pool.map(_worker_compute, list(configs), chunksize=1)
