"""Command-line precision search over a registered app kernel.

Usage::

    python -m repro.search --kernel blackscholes
    python -m repro.search --kernel kmeans --budget 32 --workers 4
    python -m repro.search --list

Each benchmark app ships a :class:`~repro.search.scenario.SearchScenario`
(kernel, validation points, input sweep, candidate set, threshold); the
CLI runs the search and prints the Pareto front plus the comparison
against the paper's greedy baseline.  ``--json`` dumps the full result
for downstream tooling.

Runs become durable with a persistent store, and multi-scenario plans
run (and resume) through the orchestrator::

    python -m repro.search --kernel blackscholes --store runs/
    python -m repro.search --kernel blackscholes --store runs/ --resume
    python -m repro.search --plan plan.json --store runs/
    python -m repro.search --all --store runs/ --budget 24 --resume
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.search.orchestrator import SearchOrchestrator, app_scenarios
from repro.search.strategies import DEFAULT_STRATEGIES, STRATEGIES


def _scenarios():
    return app_scenarios()


def _run_plan(args) -> int:
    """Orchestrator mode: ``--plan plan.json`` or ``--all``."""
    defaults = {
        "workers": args.workers,
        "seed": args.seed,
        "strategies": tuple(
            s for s in args.strategies.split(",") if s
        ),
    }
    if args.cache is not None:
        defaults["cache"] = args.cache
    if args.budget is not None:
        defaults["budget"] = args.budget
    if args.threshold is not None:
        defaults["threshold"] = args.threshold
    if args.plan is not None:
        orch = SearchOrchestrator.from_plan_file(
            args.plan, store=args.store, resume=args.resume
        )
        # CLI flags fill in whatever the plan's defaults leave unset
        # (plan-file defaults and per-entry overrides win)
        for key, value in defaults.items():
            orch.defaults.setdefault(key, value)
    else:
        orch = SearchOrchestrator.over_all_apps(
            args.store, resume=args.resume, **defaults
        )
    orch.run()
    print(orch.report())
    if args.json is not None:
        args.json.write_text(
            json.dumps(orch.to_dict(), indent=2) + "\n"
        )
        print(f"wrote {args.json}")
    return 0 if orch.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.search",
        description="Cost-aware Pareto precision search over app kernels",
    )
    ap.add_argument(
        "--kernel",
        help="app scenario to search (see --list)",
    )
    ap.add_argument(
        "--list", action="store_true", help="list available scenarios"
    )
    ap.add_argument(
        "--budget", type=int, default=None,
        help="max computed candidate evaluations (default: scenario)",
    )
    ap.add_argument(
        "--workers", type=int, default=0,
        help=">= 2 evaluates candidate pools in that many processes",
    )
    ap.add_argument(
        "--strategies", default=",".join(DEFAULT_STRATEGIES),
        help=f"comma-separated strategy names ({sorted(STRATEGIES)})",
    )
    ap.add_argument(
        "--threshold", type=float, default=None,
        help="error threshold override (default: scenario)",
    )
    ap.add_argument("--seed", type=int, default=0, help="strategy RNG seed")
    ap.add_argument(
        "--cache", default=None,
        help="sweep result cache directory (content-addressed)",
    )
    ap.add_argument(
        "--json", type=Path, default=None,
        help="write the full result as JSON to this path",
    )
    ap.add_argument(
        "--store", default=None,
        help="persistent run-store directory (checkpointed, resumable "
             "runs; content-addressed by the search parameters)",
    )
    ap.add_argument(
        "--resume", action="store_true",
        help="resume matching runs from --store (bit-identical to an "
             "uninterrupted run; completed runs restore with zero "
             "re-evaluation)",
    )
    ap.add_argument(
        "--plan", type=Path, default=None,
        help="run a multi-scenario plan (JSON) through the "
             "orchestrator (requires --store)",
    )
    ap.add_argument(
        "--all", action="store_true",
        help="orchestrate every app scenario as one plan "
             "(requires --store)",
    )
    args = ap.parse_args(argv)

    if args.resume and not args.store:
        ap.error("--resume requires --store")
    if (args.plan or args.all) and not args.store:
        ap.error("--plan/--all require --store")
    if args.plan or args.all:
        return _run_plan(args)

    scenarios = _scenarios()
    if args.list or not args.kernel:
        print("available scenarios:")
        for name, mod in sorted(scenarios.items()):
            scen = mod.search_scenario()
            print(
                f"  {name:14s} kernel={scen.kernel.ir.name:14s} "
                f"threshold={scen.threshold:g} "
                f"candidates={len(scen.candidates)}"
            )
        return 0 if args.list else 2
    if args.kernel not in scenarios:
        print(
            f"unknown kernel {args.kernel!r} "
            f"(available: {sorted(scenarios)})",
            file=sys.stderr,
        )
        return 2

    scen = scenarios[args.kernel].search_scenario()
    overrides = {
        "strategies": tuple(
            s for s in args.strategies.split(",") if s
        ),
        "workers": args.workers,
        "seed": args.seed,
        "cache": args.cache,
    }
    if args.budget is not None:
        overrides["budget"] = args.budget
    if args.threshold is not None:
        overrides["threshold"] = args.threshold
    if args.store is not None:
        overrides["store"] = args.store
        overrides["resume"] = args.resume
    result = scen.run(**overrides)

    print(result.summary())
    stats = result.stats or {}
    ev = stats.get("evaluator", {})
    if ev:
        mode = ev.get("pool_mode") or "off (per-candidate)"
        print(
            f"evaluator: computed={ev.get('computed')} "
            f"memo_hits={ev.get('memo_hits')} "
            f"config_batch={mode} "
            f"pool_runs={ev.get('pool_runs')} "
            f"pool_lanes={ev.get('pool_lanes')} "
            f"pool_fallbacks={ev.get('pool_fallbacks')}"
        )
    memo = stats.get("estimator_memo", {})
    if memo:
        print(
            f"estimator memo: entries={memo.get('entries')} "
            f"capacity={memo.get('capacity')}"
        )
    kern = stats.get("config_kernel_cache", {})
    if kern:
        print(
            f"kernel cache: entries={kern.get('entries')} "
            f"hits={kern.get('hits')} misses={kern.get('misses')} "
            f"unvectorizable={kern.get('unvectorizable')}"
        )
    sweep = stats.get("sweep_cache")
    if sweep is not None:
        print(
            f"sweep cache: hits={sweep.get('hits')} "
            f"misses={sweep.get('misses')} "
            f"evictions={sweep.get('evictions')} "
            f"disk_entries={sweep.get('disk_entries')} "
            f"disk_bytes={sweep.get('disk_bytes')}"
        )
    rs = stats.get("run_store")
    if rs is not None:
        print(
            f"run store: run={str(rs.get('run_id'))[:12]} "
            f"restored={rs.get('restored')} "
            f"computed={rs.get('computed')} "
            f"checkpoints={rs.get('checkpoints')} "
            f"[{rs.get('root')}]"
        )
    if args.json is not None:
        args.json.write_text(
            json.dumps(result.to_dict(), indent=2) + "\n"
        )
        print(f"wrote {args.json}")
    ok = len(result.front) > 0 and result.front.is_consistent()
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
