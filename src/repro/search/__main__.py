"""Command-line precision search over a registered app kernel.

Usage::

    python -m repro.search --kernel blackscholes
    python -m repro.search --kernel kmeans --budget 32 --workers 4
    python -m repro.search --list

Each benchmark app ships a :class:`~repro.search.scenario.SearchScenario`
(kernel, validation points, input sweep, candidate set, threshold); the
CLI runs the search and prints the Pareto front plus the comparison
against the paper's greedy baseline.  ``--json`` dumps the full result
for downstream tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.search.strategies import DEFAULT_STRATEGIES, STRATEGIES


def _scenarios():
    from repro.apps import ALL_APPS

    return {
        name: mod
        for name, mod in ALL_APPS.items()
        if hasattr(mod, "search_scenario")
    }


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.search",
        description="Cost-aware Pareto precision search over app kernels",
    )
    ap.add_argument(
        "--kernel",
        help="app scenario to search (see --list)",
    )
    ap.add_argument(
        "--list", action="store_true", help="list available scenarios"
    )
    ap.add_argument(
        "--budget", type=int, default=None,
        help="max computed candidate evaluations (default: scenario)",
    )
    ap.add_argument(
        "--workers", type=int, default=0,
        help=">= 2 evaluates candidate pools in that many processes",
    )
    ap.add_argument(
        "--strategies", default=",".join(DEFAULT_STRATEGIES),
        help=f"comma-separated strategy names ({sorted(STRATEGIES)})",
    )
    ap.add_argument(
        "--threshold", type=float, default=None,
        help="error threshold override (default: scenario)",
    )
    ap.add_argument("--seed", type=int, default=0, help="strategy RNG seed")
    ap.add_argument(
        "--cache", default=None,
        help="sweep result cache directory (content-addressed)",
    )
    ap.add_argument(
        "--json", type=Path, default=None,
        help="write the full result as JSON to this path",
    )
    args = ap.parse_args(argv)

    scenarios = _scenarios()
    if args.list or not args.kernel:
        print("available scenarios:")
        for name, mod in sorted(scenarios.items()):
            scen = mod.search_scenario()
            print(
                f"  {name:14s} kernel={scen.kernel.ir.name:14s} "
                f"threshold={scen.threshold:g} "
                f"candidates={len(scen.candidates)}"
            )
        return 0 if args.list else 2
    if args.kernel not in scenarios:
        print(
            f"unknown kernel {args.kernel!r} "
            f"(available: {sorted(scenarios)})",
            file=sys.stderr,
        )
        return 2

    scen = scenarios[args.kernel].search_scenario()
    overrides = {
        "strategies": tuple(
            s for s in args.strategies.split(",") if s
        ),
        "workers": args.workers,
        "seed": args.seed,
        "cache": args.cache,
    }
    if args.budget is not None:
        overrides["budget"] = args.budget
    if args.threshold is not None:
        overrides["threshold"] = args.threshold
    result = scen.run(**overrides)

    print(result.summary())
    stats = result.stats or {}
    ev = stats.get("evaluator", {})
    if ev:
        mode = ev.get("pool_mode") or "off (per-candidate)"
        print(
            f"evaluator: computed={ev.get('computed')} "
            f"memo_hits={ev.get('memo_hits')} "
            f"config_batch={mode} "
            f"pool_runs={ev.get('pool_runs')} "
            f"pool_lanes={ev.get('pool_lanes')} "
            f"pool_fallbacks={ev.get('pool_fallbacks')}"
        )
    memo = stats.get("estimator_memo", {})
    if memo:
        print(
            f"estimator memo: entries={memo.get('entries')} "
            f"capacity={memo.get('capacity')}"
        )
    kern = stats.get("config_kernel_cache", {})
    if kern:
        print(
            f"kernel cache: entries={kern.get('entries')} "
            f"hits={kern.get('hits')} misses={kern.get('misses')} "
            f"unvectorizable={kern.get('unvectorizable')}"
        )
    sweep = stats.get("sweep_cache")
    if sweep is not None:
        print(
            f"sweep cache: hits={sweep.get('hits')} "
            f"misses={sweep.get('misses')} "
            f"evictions={sweep.get('evictions')} "
            f"disk_entries={sweep.get('disk_entries')} "
            f"disk_bytes={sweep.get('disk_bytes')}"
        )
    if args.json is not None:
        args.json.write_text(
            json.dumps(result.to_dict(), indent=2) + "\n"
        )
        print(f"wrote {args.json}")
    ok = len(result.front) > 0 and result.front.is_consistent()
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
