"""Deprecated alias: ``python -m repro.search`` → ``python -m repro search``.

The search-only CLI grew into the unified ``python -m repro`` command
(:mod:`repro.cli`); this module forwards its historical flag set to the
``search`` subcommand unchanged (``--kernel``, ``--list``, ``--budget``,
``--workers``, ``--strategies``, ``--threshold``, ``--seed``,
``--cache``, ``--json``, ``--store``, ``--resume``, ``--plan``,
``--all``), warns with a :class:`DeprecationWarning`, and will be
removed in repro 2.0.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.util.deprecation import warn_legacy


def main(argv: Optional[List[str]] = None) -> int:
    warn_legacy(
        "python -m repro.search", "python -m repro search",
        stacklevel=2,
    )
    from repro.cli import main as unified_main

    if argv is None:
        argv = sys.argv[1:]
    return unified_main(["search", *argv])


if __name__ == "__main__":
    raise SystemExit(main())
