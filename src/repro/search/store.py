"""Persistent, content-addressed run store for precision searches.

A search run is compile-and-run heavy, and until now it was entirely
in-memory: a crash, an OOM kill, or a CI timeout threw away every
evaluated candidate.  :class:`RunStore` makes runs durable:

* each run lives in its own directory under the store root, named by a
  **content-addressed run id** — the SHA-256 of everything that
  determines the run's results (IR fingerprint of the kernel, input
  digests of the validation points and sweep, threshold, budget,
  strategy line-up, seed, error/cost model fingerprints) — so resuming
  with the same arguments finds the same run automatically, and runs
  with different parameters never collide;
* a JSON ``manifest.json`` records the run metadata (scenario label,
  kernel, library version, the full key components, the derived
  candidate set and contribution ranking, completion state and final
  front fingerprint);
* evaluation history checkpoints to a pickled ``evals.pkl`` payload —
  floats round-trip bit-exactly, which the resume contract depends on;
* every write is atomic (``mkstemp`` + ``os.replace``, the same
  discipline as :mod:`repro.sweep.cache`), so a run killed at any
  instant leaves either the previous checkpoint or the new one on
  disk, never a torn file.  A checkpoint is always a *prefix* of the
  deterministic evaluation order, which is exactly what resume needs.

The resume contract itself (re-seeding the evaluator memo and budget
so a resumed run is bit-identical to an uninterrupted one) lives in
:func:`repro.search.api.search`; multi-run plans in
:class:`repro.search.orchestrator.SearchOrchestrator`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import socket
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.interp.cost_model import CostModel
from repro.ir import nodes as N
from repro.ir.fingerprint import ir_fingerprint
from repro.ir.types import DType
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.search.evaluate import EvaluatedCandidate
from repro.sweep.cache import digest_inputs
from repro.tuning.config import PrecisionConfig
from repro.util import atomio
from repro.util.retry import DEFAULT_IO_POLICY
from repro.util.errors import ConfigError, StoreError, UnknownNameError

#: on-disk layout version; bumped on incompatible record/manifest changes
#: (checksummed evals.pkl framing is NOT a bump: readers fall back to
#: unframed legacy payloads, so both generations coexist in one store)
RUN_FORMAT = 1

#: pickle protocol pinned for cross-version disk compatibility
_PICKLE_PROTOCOL = 4

#: lease files for the distributed claim protocol (repro.dist.lease)
#: live in this subdirectory of the store root
LEASES_DIRNAME = "_leases"

#: fleet worker summaries (repro.dist.fleet) land here
DIST_DIRNAME = "_dist"

#: store-root subdirectories that are infrastructure, never run dirs —
#: listings, merges and the prune orphan scan must all skip them
RESERVED_DIRNAMES = (
    LEASES_DIRNAME,
    DIST_DIRNAME,
    atomio.QUARANTINE_DIR,
)

StoreLike = Union[None, str, Path, "RunStore"]


def library_version() -> str:
    """The installed package version, recorded in run manifests.

    Resume refuses to mix records across versions: the run key hashes
    parameters, not library behavior, so a version change invalidates
    stored runs (the resume path restarts them from scratch)."""
    try:
        from importlib.metadata import version

        return version("repro-cheffp")
    except Exception:  # not installed (PYTHONPATH=src usage)
        import repro

        return getattr(repro, "__version__", "unknown")


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically with transient retries.

    Thin historical alias over :func:`repro.util.atomio.atomic_write`
    (the run store grew the first copy of the mkstemp+rename
    discipline; the unified helper now owns it).  Unlike the sweep
    cache — where a lost entry is merely a future miss — a lost
    checkpoint loses work, so exhausted-retry failures propagate."""
    atomio.atomic_write(
        path, data, site="store.write", retry=DEFAULT_IO_POLICY
    )


# -- run identity -------------------------------------------------------------


def run_key_components(
    fn: N.Function,
    points: Sequence[Sequence[object]],
    threshold: float,
    candidates: Optional[Sequence[str]],
    samples: Optional[Mapping[str, Sequence[object]]],
    fixed: Optional[Mapping[str, object]],
    demote_to: DType,
    strategies: Sequence[str],
    budget: int,
    seed: int,
    aggregate: str,
    error_metric: str,
    model_fingerprint: str,
    cost_model: CostModel,
    approx,
) -> Dict[str, object]:
    """Everything that determines a search run's results, as JSON.

    Deliberately excludes knobs that are bit-identical by contract
    (``workers``, ``config_batch``) and pure plumbing (``cache``) — a
    run may be resumed serial after starting parallel and vice versa.
    """
    if samples is not None:
        sample_names = sorted(samples)
        samples_digest = digest_inputs(
            [samples[name] for name in sample_names]
        )
    else:
        sample_names, samples_digest = [], None
    if fixed:
        fixed_names = sorted(fixed)
        fixed_digest = digest_inputs([fixed[name] for name in fixed_names])
    else:
        fixed_names, fixed_digest = [], None
    return {
        "ir_fingerprint": ir_fingerprint(fn),
        "points_digest": [digest_inputs(tuple(p)) for p in points],
        "threshold": float(threshold),
        "candidates": (
            "auto" if candidates is None else sorted(candidates)
        ),
        "sample_names": sample_names,
        "samples_digest": samples_digest,
        "fixed_names": fixed_names,
        "fixed_digest": fixed_digest,
        "demote_to": demote_to.value,
        "strategies": list(strategies),
        "budget": int(budget),
        "seed": int(seed),
        "aggregate": aggregate,
        "error_metric": error_metric,
        "model_fingerprint": model_fingerprint,
        # CostModel is a plain dataclass of cost tables; its repr is a
        # deterministic rendering of those tables
        "cost_model": hashlib.sha256(
            repr(cost_model).encode()
        ).hexdigest(),
        "approx": sorted(approx) if approx else [],
        "format": RUN_FORMAT,
    }


def run_id_of(components: Mapping[str, object]) -> str:
    """Content-addressed run id of one parameter set."""
    payload = json.dumps(components, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _looks_like_run_dir(name: str) -> bool:
    """Whether a directory name matches the run-dir layout
    (``run_id[:32]`` — 32 lowercase hex characters)."""
    return len(name) == 32 and all(c in "0123456789abcdef" for c in name)


def _describe_provenance(manifest: Optional[Mapping[str, object]]) -> str:
    """One-line shard provenance for a manifest (ambiguity listings)."""
    if not isinstance(manifest, Mapping):
        return "(no readable manifest)"
    key = manifest.get("key")
    seed = key.get("seed") if isinstance(key, Mapping) else None
    origin = manifest.get("origin")
    parts = [
        str(manifest.get("label") or manifest.get("kernel") or "?"),
        f"seed={seed}",
    ]
    if isinstance(origin, Mapping):
        parts.append(f"origin={origin.get('host')}:{origin.get('pid')}")
    shards = manifest.get("shards")
    if isinstance(shards, Sequence) and not isinstance(shards, str):
        parts.append(f"merged-from={len(shards)} shard(s)")
    parts.append(
        "completed" if manifest.get("completed") else "in-flight"
    )
    return " ".join(parts)


# -- evaluation record (de)serialization --------------------------------------


def record_of(cand: EvaluatedCandidate) -> Dict[str, object]:
    """Serialize one evaluated candidate (pickle payload entry)."""
    return {
        "key": cand.key,
        "demotions": {
            name: dt.value for name, dt in cand.config.demotions.items()
        },
        "actual_error": cand.actual_error,
        "point_errors": tuple(cand.point_errors),
        "estimated_error": cand.estimated_error,
        "error": cand.error,
        "cycles": cand.cycles,
        "cycles_reference": cand.cycles_reference,
        "strategy": cand.strategy,
        "index": cand.index,
    }


def candidate_of(rec: Mapping[str, object]) -> EvaluatedCandidate:
    """Rebuild an :class:`EvaluatedCandidate` from a stored record."""
    config = PrecisionConfig(
        {name: DType(v) for name, v in rec["demotions"].items()}
    )
    return EvaluatedCandidate(
        key=rec["key"],
        config=config,
        actual_error=rec["actual_error"],
        point_errors=tuple(rec["point_errors"]),
        estimated_error=rec["estimated_error"],
        error=rec["error"],
        cycles=rec["cycles"],
        cycles_reference=rec["cycles_reference"],
        strategy=rec["strategy"],
        index=rec["index"],
    )


class RunStore:
    """A directory of persisted search runs, one subdirectory per run.

    ::

        store/
          <run_id[:32]>/
            manifest.json   # metadata, key components, completion state
            evals.pkl       # checkpointed evaluation history (a prefix
                            # of the deterministic evaluation order)
    """

    def __init__(
        self, root: Union[str, Path], *, fsync: bool = False
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: durability policy: fsync every manifest/checkpoint write
        #: (atomic against power loss, not just process death)
        self.fsync = bool(fsync)

    # -- paths --------------------------------------------------------------
    def run_dir(self, run_id: str) -> Path:
        return self.root / run_id[:32]

    def _manifest_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "manifest.json"

    def _records_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "evals.pkl"

    def has_run(self, run_id: str) -> bool:
        return self._manifest_path(run_id).exists()

    # -- manifests ----------------------------------------------------------
    def new_manifest(
        self,
        run_id: str,
        components: Mapping[str, object],
        kernel: str,
        label: str,
        analysis: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        return {
            "format": RUN_FORMAT,
            "run_id": run_id,
            "label": label,
            "kernel": kernel,
            "library_version": library_version(),
            "created": time.time(),
            "key": dict(components),
            "candidates": None,
            "contributions": None,
            "completed": False,
            "n_evaluations": 0,
            "baseline_key": None,
            "front": None,
            # shard provenance: which process created the run, and —
            # after a store merge — which shards contributed to it
            "origin": {
                "host": socket.gethostname(),
                "pid": os.getpid(),
            },
            "shards": None,
            # static-analysis provenance: the analyze report digest and
            # the pruned candidate names, when pre-search pruning ran
            "analysis": dict(analysis) if analysis is not None else None,
        }

    def save_manifest(
        self, run_id: str, manifest: Mapping[str, object]
    ) -> None:
        self.run_dir(run_id).mkdir(parents=True, exist_ok=True)
        data = (json.dumps(manifest, indent=2) + "\n").encode("utf-8")
        # manifests stay plain JSON (external tooling reads them);
        # their corruption mode is already handled by load_manifest
        atomio.atomic_write(
            self._manifest_path(run_id),
            data,
            fsync=self.fsync,
            site="store.write",
            retry=DEFAULT_IO_POLICY,
        )

    def load_manifest(self, run_id: str) -> Optional[Dict[str, object]]:
        """The run's manifest, or ``None`` when absent/unreadable or
        written by an incompatible layout version."""
        path = self._manifest_path(run_id)
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        # a concurrent writer may have left a torn/foreign payload —
        # valid JSON that is not a manifest object degrades like a
        # missing one instead of raising downstream
        if not isinstance(manifest, dict):
            return None
        if manifest.get("format") != RUN_FORMAT:
            return None
        return manifest

    # -- evaluation records --------------------------------------------------
    def checkpoint(
        self, run_id: str, records: Sequence[Mapping[str, object]]
    ) -> None:
        """Persist the full evaluation history so far (atomic rewrite).

        Called after every computed batch; budgets are small (tens to a
        few hundred records), so rewriting beats the bookkeeping of an
        append-only log while keeping the all-or-nothing guarantee.
        Payloads are checksum-framed so torn pages are detected on
        resume; transient write failures retry under the shared policy.

        :raises StoreError: the write still failed after the bounded
            retries — a lost checkpoint loses work, so it surfaces as
            the documented structured error instead of vanishing."""
        t0 = time.perf_counter()
        with obs_trace.span(
            "store.checkpoint", run_id=run_id, records=len(records)
        ):
            self.run_dir(run_id).mkdir(parents=True, exist_ok=True)
            data = pickle.dumps(list(records), protocol=_PICKLE_PROTOCOL)
            try:
                atomio.atomic_write(
                    self._records_path(run_id),
                    data,
                    checksum=True,
                    fsync=self.fsync,
                    site="store.write",
                    retry=DEFAULT_IO_POLICY,
                )
            except OSError as exc:
                raise StoreError(
                    f"checkpoint of run {run_id[:12]} failed after "
                    f"retries: {exc}"
                ) from exc
        obs_metrics.REGISTRY.counter(
            "repro_search_checkpoints_total", "run-store checkpoint writes"
        ).inc()
        obs_metrics.REGISTRY.histogram(
            "repro_checkpoint_write_seconds", "run-store checkpoint latency"
        ).observe(time.perf_counter() - t0)

    def load_records(self, run_id: str) -> List[Dict[str, object]]:
        """Stored evaluation records, as the longest valid prefix.

        A corrupt or unreadable payload degrades to an empty history
        (the run restarts from scratch rather than failing) and the
        bad file moves to the run's ``_quarantine/`` for forensics;
        records after an index gap are dropped, preserving the prefix
        property the bit-identical-resume contract depends on."""
        path = self._records_path(run_id)
        if not path.exists():
            return []
        try:
            blob = atomio.read_bytes(
                path,
                checked=True,
                site="store.read",
                retry=DEFAULT_IO_POLICY,
            )
            raw = pickle.loads(blob)
        except FileNotFoundError:
            return []  # lost a race with remove_run/prune
        except (
            atomio.CorruptPayloadError,
            pickle.PickleError, EOFError, AttributeError,
            ValueError,  # e.g. a truncated/garbled protocol header
        ):
            atomio.quarantine(path, "corrupt checkpoint payload")
            return []
        except OSError:
            # unreadable but not provably corrupt (retries exhausted):
            # leave the file for the next attempt
            return []
        if not isinstance(raw, list):
            return []
        out: List[Dict[str, object]] = []
        for rec in sorted(
            (r for r in raw if isinstance(r, dict)),
            key=lambda r: r.get("index", -1),
        ):
            if rec.get("index") != len(out):
                break
            out.append(rec)
        return out

    def complete_run(
        self,
        run_id: str,
        manifest: Dict[str, object],
        records: Sequence[Mapping[str, object]],
        baseline_key: Optional[str],
        front: Sequence[Mapping[str, object]],
    ) -> None:
        """Final checkpoint + manifest completion marker."""
        self.checkpoint(run_id, records)
        manifest["completed"] = True
        manifest["n_evaluations"] = len(records)
        manifest["baseline_key"] = baseline_key
        manifest["front"] = list(front)
        self.save_manifest(run_id, manifest)

    # -- cross-run access ----------------------------------------------------
    def save_run(
        self,
        manifest: Dict[str, object],
        records: Sequence[Mapping[str, object]],
    ) -> str:
        """Write a run wholesale (copy/truncate tooling and tests)."""
        run_id = str(manifest["run_id"])
        self.save_manifest(run_id, manifest)
        self.checkpoint(run_id, records)
        return run_id

    def list_runs(self) -> List[Dict[str, object]]:
        """Manifests of every readable run, newest first."""
        out = []
        for sub in self.root.iterdir():
            if not sub.is_dir():
                continue
            try:
                manifest = json.loads((sub / "manifest.json").read_text())
            except (OSError, ValueError):
                # half-written run dir (a concurrent writer mkdir'd but
                # hasn't landed the manifest yet) or plain corruption:
                # skip it, never fail the listing
                continue
            if not isinstance(manifest, dict):
                continue
            if manifest.get("format") == RUN_FORMAT:
                out.append(manifest)
        out.sort(key=lambda m: m.get("created", 0.0), reverse=True)
        return out

    def _resolve_against(
        self, manifests: Sequence[Mapping[str, object]], prefix: str
    ) -> str:
        """Expand a run-id prefix against already-loaded manifests."""
        matches = sorted(
            {
                str(m["run_id"])
                for m in manifests
                if str(m.get("run_id", "")).startswith(prefix)
            }
        )
        if not matches:
            raise UnknownNameError(
                f"no stored run matches {prefix!r} in {self.root}"
            )
        if len(matches) > 1:
            # merged stores hold shard runs whose ids share long
            # prefixes with their siblings' labels; list each
            # candidate with its shard provenance so the caller can
            # pick the right one without spelunking manifests
            by_id = {str(m.get("run_id", "")): m for m in manifests}
            lines = []
            for rid in matches:
                lines.append(
                    f"  {rid[:12]}  {_describe_provenance(by_id.get(rid))}"
                )
            raise UnknownNameError(
                f"run id prefix {prefix!r} is ambiguous between "
                f"{len(matches)} runs:\n" + "\n".join(lines)
            )
        return matches[0]

    def resolve_run_id(self, prefix: str) -> str:
        """Expand a (possibly abbreviated) run id against stored runs.

        :raises UnknownNameError: no stored run matches, or the prefix
            is ambiguous.
        """
        return self._resolve_against(self.list_runs(), prefix)

    def run_progress(self, run_id: str) -> Dict[str, object]:
        """Live progress of one run, read from its checkpoints.

        Safe to call while another process (or thread) is writing the
        run: checkpoints are atomic, so the snapshot is always a valid
        prefix of the evaluation order.  This is the polling surface
        the job server (:mod:`repro.serve`) streams search progress
        from.  Returns ``{"exists": False}`` for an unknown run id.
        """
        manifest = self.load_manifest(run_id)
        if manifest is None:
            return {"run_id": run_id, "exists": False}
        key = manifest.get("key") or {}
        n_evaluations = self.stored_evaluation_count(manifest)
        budget = key.get("budget")
        return {
            "run_id": manifest.get("run_id"),
            "exists": True,
            "label": manifest.get("label"),
            "kernel": manifest.get("kernel"),
            "completed": bool(manifest.get("completed")),
            "n_evaluations": n_evaluations,
            "budget": budget,
            "fraction": (
                min(1.0, n_evaluations / budget)
                if isinstance(budget, int) and budget > 0
                else None
            ),
            "front_size": len(manifest.get("front") or []),
            "created": manifest.get("created"),
            "library_version": manifest.get("library_version"),
        }

    def in_flight_runs(self) -> List[Dict[str, object]]:
        """Manifests of runs that never completed, newest first.

        These are the resumable runs a restarted server discovers:
        each still has a valid checkpointed prefix on disk, and
        re-running the same parameters with ``resume=True`` continues
        bit-identically from it.
        """
        return [m for m in self.list_runs() if not m.get("completed")]

    def stored_evaluation_count(
        self, manifest: Mapping[str, object]
    ) -> int:
        """Evaluations a run actually holds.

        Completed runs carry the count in the manifest; for partial
        (crashed) runs the manifest counter is stuck at its initial 0
        — ``checkpoint()`` never rewrites the manifest — so the
        checkpointed records (the resumable prefix) are counted
        instead.  Used by ``compare()`` and the CLI listings.
        """
        if manifest.get("completed"):
            return int(manifest.get("n_evaluations", 0))  # type: ignore[arg-type]
        return len(self.load_records(str(manifest.get("run_id"))))

    def remove_run(self, run_id: str) -> bool:
        """Delete one run directory (full id); returns whether it
        existed.  Use :meth:`resolve_run_id` first to expand prefixes."""
        run_dir = self.run_dir(run_id)
        if not run_dir.is_dir():
            return False
        shutil.rmtree(run_dir, ignore_errors=True)
        return True

    def leases_dir(self) -> Path:
        """Directory the distributed claim protocol keeps leases in."""
        return self.root / LEASES_DIRNAME

    def _leased_run_dirs(self) -> set:
        """Run-dir names (``run_id[:32]``) under a live lease.

        Lazy-imports :mod:`repro.dist.lease` at call time (the dist
        layer imports this module, so a top-level import would cycle).
        """
        if not self.leases_dir().is_dir():
            return set()
        from repro.dist.lease import LeaseManager

        return {
            key[:32]
            for key in LeaseManager(self.leases_dir()).active_keys()
        }

    def merge(
        self,
        src_stores: Sequence[StoreLike],
        *,
        verify: bool = True,
    ):
        """Union-merge runs from ``src_stores`` into this store.

        Thin facade over :func:`repro.dist.store_merge.merge_stores`
        (see there for the dedup/verification/provenance semantics);
        returns its :class:`~repro.dist.store_merge.MergeReport`.
        """
        from repro.dist.store_merge import merge_stores

        return merge_stores(self, src_stores, verify=verify)

    def _run_dir_mtime(self, run_dir: Path) -> float:
        """Latest mtime across a run directory's files (0.0 if gone)."""
        latest = 0.0
        try:
            entries = list(run_dir.iterdir())
        except OSError:
            return latest
        for p in entries:
            try:
                latest = max(latest, p.stat().st_mtime)
            except OSError:
                continue
        return latest

    def prune(
        self,
        max_age_days: Optional[float] = None,
        max_runs: Optional[int] = None,
        incomplete: bool = False,
        dry_run: bool = False,
        min_age_hours: float = 1.0,
    ) -> List[Dict[str, object]]:
        """Garbage-collect stored runs; returns the pruned manifests.

        Selection is the union of the given criteria:

        * ``incomplete=True`` — runs that never completed (crashed and
          abandoned checkpoints), including **orphaned run
          directories** with no readable manifest of the current
          layout format (a crash before the first manifest write, disk
          corruption, or a format bump) — exactly the debris a GC
          exists to clear;
        * ``max_age_days`` — runs created longer ago than this;
        * ``max_runs`` — keep only the newest N of whatever survives
          the other criteria.

        ``dry_run=True`` reports what *would* be pruned without
        deleting anything.

        ``min_age_hours`` protects **live** runs from the
        ``incomplete`` criterion: an in-flight search looks exactly
        like a crashed one (manifest not completed, checkpoints
        accruing), so incomplete runs whose files were touched within
        this window are skipped (default: one hour; pass ``0`` to
        collect everything regardless of recency).

        :raises ConfigError: when called with no criterion at all, or
            with negative values.
        """
        if max_age_days is None and max_runs is None and not incomplete:
            raise ConfigError(
                "prune() requires at least one criterion "
                "(max_age_days=, max_runs=, or incomplete=True)"
            )
        # destructive knobs reject out-of-range values instead of
        # coercing (-1 would silently select every stored run)
        if max_runs is not None and int(max_runs) < 0:
            raise ConfigError(
                f"max_runs must be >= 0, got {max_runs!r}"
            )
        if max_age_days is not None and float(max_age_days) < 0:
            raise ConfigError(
                f"max_age_days must be >= 0, got {max_age_days!r}"
            )
        if float(min_age_hours) < 0:
            raise ConfigError(
                f"min_age_hours must be >= 0, got {min_age_hours!r}"
            )
        recency_cutoff = time.time() - float(min_age_hours) * 3600.0
        manifests = self.list_runs()  # newest first
        victims: List[Dict[str, object]] = []
        victim_ids = set()

        def condemn(m: Dict[str, object]) -> None:
            rid = str(m.get("run_id"))
            if rid not in victim_ids:
                victim_ids.add(rid)
                victims.append(m)

        # runs another worker holds a live lease on (repro.dist) are
        # in-flight shard work, however stale their files look — the
        # lease heartbeat, not the file mtime, is their liveness signal
        leased = self._leased_run_dirs()

        if incomplete:
            for m in manifests:
                if str(m["run_id"])[:32] in leased:
                    continue
                if not m.get("completed") and (
                    self._run_dir_mtime(
                        self.run_dir(str(m["run_id"]))
                    )
                    <= recency_cutoff
                ):
                    condemn(m)
            # orphaned run directories (no readable current-format
            # manifest) are invisible to list_runs but still take
            # disk.  Only condemn directories that demonstrably were
            # run dirs — holding run files or named like one (32 hex
            # chars) — never arbitrary colocated data, and never a
            # whole store written by a *newer* layout format
            known_dirs = {
                str(self.run_dir(str(m["run_id"]))) for m in manifests
            }
            for sub in sorted(self.root.iterdir()):
                if not sub.is_dir() or str(sub) in known_dirs:
                    continue
                if sub.name in RESERVED_DIRNAMES or sub.name in leased:
                    # lease/quarantine/fleet infrastructure and
                    # live-leased shard runs are never orphans
                    continue
                manifest_path = sub / "manifest.json"
                if manifest_path.exists():
                    try:
                        fmt = json.loads(
                            manifest_path.read_text()
                        ).get("format")
                    except (OSError, ValueError):
                        fmt = None
                    if isinstance(fmt, int) and fmt > RUN_FORMAT:
                        # a newer library owns this run; leave it
                        continue
                run_shaped = (
                    manifest_path.exists()
                    or (sub / "evals.pkl").exists()
                    or _looks_like_run_dir(sub.name)
                )
                if run_shaped and (
                    self._run_dir_mtime(sub) <= recency_cutoff
                ):
                    condemn(
                        {
                            "run_id": sub.name,
                            "label": "(orphaned)",
                            "completed": False,
                            "orphaned": True,
                        }
                    )
        if max_age_days is not None:
            cutoff = time.time() - float(max_age_days) * 86400.0
            for m in manifests:
                if str(m["run_id"])[:32] in leased:
                    continue
                if float(m.get("created", 0.0)) < cutoff:
                    condemn(m)
        if max_runs is not None:
            survivors = [
                m
                for m in manifests
                if str(m.get("run_id")) not in victim_ids
            ]
            for m in survivors[int(max_runs):]:
                if str(m["run_id"])[:32] in leased:
                    continue
                condemn(m)
        if not dry_run:
            for m in victims:
                if m.get("orphaned"):
                    # the directory name is not a run id — remove it
                    # directly
                    shutil.rmtree(
                        self.root / str(m["run_id"]), ignore_errors=True
                    )
                else:
                    self.remove_run(str(m["run_id"]))
        return victims

    def compare(
        self, run_ids: Optional[Sequence[str]] = None
    ) -> List[Dict[str, object]]:
        """Comparison rows across stored runs (newest first).

        Each row summarizes one run — label, kernel, completion state,
        evaluation count, Pareto front size, and the cheapest front
        point within the run's own threshold.  For runs that never
        completed, the evaluation count is the number of checkpointed
        records on disk (the resumable prefix), not the manifest's
        stale counter.
        """
        stored = self.list_runs()  # one scan serves every lookup
        if run_ids is not None:
            by_id = {str(m["run_id"]): m for m in stored}
            manifests = [
                by_id[self._resolve_against(stored, rid)]
                for rid in run_ids
            ]
        else:
            manifests = stored
        rows = []
        for m in manifests:
            front = m.get("front") or []
            key = m.get("key") or {}
            threshold = key.get("threshold")
            best = None
            if front and threshold is not None:
                feasible = [
                    p for p in front if p.get("error", 0) <= threshold
                ]
                if feasible:
                    best = min(feasible, key=lambda p: p["cycles"])
            completed = bool(m.get("completed"))
            n_evaluations = self.stored_evaluation_count(m)
            rows.append(
                {
                    "run_id": m.get("run_id"),
                    "label": m.get("label"),
                    "kernel": m.get("kernel"),
                    "created": m.get("created"),
                    "completed": completed,
                    "n_evaluations": n_evaluations,
                    "front_size": len(front),
                    "threshold": threshold,
                    "budget": key.get("budget"),
                    "strategies": key.get("strategies"),
                    "seed": key.get("seed"),
                    "best_error": best["error"] if best else None,
                    "best_cycles": best["cycles"] if best else None,
                }
            )
        return rows

    def diff_fronts(self, run_a: str, run_b: str) -> Dict[str, object]:
        """Structured diff of two stored runs' Pareto fronts.

        Front points are matched by configuration key; the result
        reports points exclusive to either run and, for shared
        configurations, their (error, cycles) deltas.

        :raises StoreError: when either run never completed (it has no
            final front to diff).
        """
        stored = self.list_runs()
        by_id = {str(m["run_id"]): m for m in stored}
        out: Dict[str, object] = {}
        fronts: Dict[str, Dict[str, Dict[str, object]]] = {}
        for name, rid in (("a", run_a), ("b", run_b)):
            full = self._resolve_against(stored, rid)
            manifest = by_id[full]
            if not manifest.get("completed"):
                raise StoreError(
                    f"run {rid!r} never completed — no front to diff"
                )
            out[f"run_{name}"] = full
            out[f"label_{name}"] = manifest.get("label")
            fronts[name] = {
                str(p["key"]): p for p in (manifest.get("front") or [])
            }
        keys_a, keys_b = set(fronts["a"]), set(fronts["b"])
        common = []
        for key in sorted(keys_a & keys_b):
            pa, pb = fronts["a"][key], fronts["b"][key]
            common.append(
                {
                    "key": key,
                    "error_a": pa["error"],
                    "error_b": pb["error"],
                    "cycles_a": pa["cycles"],
                    "cycles_b": pb["cycles"],
                    "same": (
                        pa["error"] == pb["error"]
                        and pa["cycles"] == pb["cycles"]
                    ),
                }
            )
        out["only_a"] = [fronts["a"][k] for k in sorted(keys_a - keys_b)]
        out["only_b"] = [fronts["b"][k] for k in sorted(keys_b - keys_a)]
        out["common"] = common
        out["identical"] = (
            not out["only_a"]
            and not out["only_b"]
            and all(c["same"] for c in common)
        )
        return out
