"""Cost-aware Pareto precision-search subsystem (beyond the paper).

The paper's mixed-precision workflow is a single greedy demotion pass
driven by error contributions alone; its Discussion concedes the result
is input-dependent and says nothing about the error/performance
trade-off.  This subsystem treats tuning as what it is — a
multi-objective search over (error, modelled cycles):

* :mod:`~repro.search.evaluate` — :class:`CandidateEvaluator` scores a
  configuration by actually executing it (actual error + counted
  cycles, via :mod:`repro.tuning.validate`) and, when an input
  distribution is given, by a distribution-robust estimated error from
  the batched sweep engine (content-addressed cache included).  Whole
  proposal pools score in one pass through the compile-once
  config-batched lane kernel (``repro.codegen``), bit-identical to the
  per-candidate path;
* :mod:`~repro.search.strategies` — the :class:`SearchStrategy`
  interface and registry: the paper's greedy pass as a baseline
  adapter, Precimonious-style delta debugging, simulated annealing with
  random restarts (exhaustive enumeration as the small-kernel
  fallback), lockstep population annealing proposing whole generations,
  and plain exhaustive search;
* :mod:`~repro.search.parallel` — :class:`ParallelEvaluator` fans
  candidate pools out over forked worker processes as contiguous config
  blocks, bit-identical to the serial path, with compiled-estimator
  construction memoized per worker;
* :mod:`~repro.search.pareto` — :class:`ParetoFront` with dominance
  pruning and per-candidate provenance;
* :mod:`~repro.search.api` — the :func:`search` driver and
  :class:`SearchResult`;
* :mod:`~repro.search.scenario` — per-app :class:`SearchScenario`
  bundles backing the ``python -m repro search --kernel <app>`` CLI
  (``python -m repro.search`` survives as a deprecated alias);
* :mod:`~repro.search.store` — :class:`RunStore`: content-addressed
  on-disk persistence of run metadata, evaluation history, and Pareto
  fronts, with atomic checkpoints and crash-safe, bit-identical resume
  (``search(..., store=, resume=)``);
* :mod:`~repro.search.orchestrator` — :class:`SearchOrchestrator`:
  durable multi-scenario search plans over a shared store with
  estimator-memo warm-start and cross-run comparison reporting
  (``python -m repro plan --plan plan.json --store runs/``).

The canonical entry point is :meth:`repro.session.Session.search` /
``session.plan`` / ``session.runs``; :func:`repro.search.search`
remains as a deprecated wrapper over a default session (removal 2.0).
"""

from repro.search.api import SearchResult, search, search_run_id
from repro.search.evaluate import (
    CandidateEvaluator,
    EvaluatedCandidate,
    config_key,
)
from repro.search.orchestrator import (
    PlanEntry,
    PlanRun,
    SearchOrchestrator,
    shard_entries,
)
from repro.search.parallel import ParallelEvaluator
from repro.search.pareto import FrontPoint, ParetoFront, dominates, union_fronts
from repro.search.scenario import SearchScenario
from repro.search.store import RunStore
from repro.search.strategies import (
    DEFAULT_STRATEGIES,
    STRATEGIES,
    SearchProblem,
    SearchStrategy,
    get_strategy,
    register_strategy,
)

__all__ = [
    "CandidateEvaluator",
    "DEFAULT_STRATEGIES",
    "EvaluatedCandidate",
    "FrontPoint",
    "ParallelEvaluator",
    "ParetoFront",
    "PlanEntry",
    "PlanRun",
    "RunStore",
    "STRATEGIES",
    "SearchOrchestrator",
    "SearchProblem",
    "SearchResult",
    "SearchScenario",
    "SearchStrategy",
    "config_key",
    "dominates",
    "get_strategy",
    "register_strategy",
    "search_run_id",
    "search",
    "shard_entries",
    "union_fronts",
]
