"""Black-Scholes benchmark (paper §IV-5, PARSEC suite).

European option pricing with the polynomial (Abramowitz–Stegun) CNDF —
the PARSEC formulation.  This is the approximate-computing study of the
paper: three math functions (``log``, ``sqrt``, ``exp``) have FastApprox
variants, and CHEF-FP's custom-model hook (Algorithm 2) bounds the
error each substitution introduces (Table IV).

The variables feeding those functions are made explicit locals
(``login``, ``sqrtin``, ``expin``, ``expin2``) so the variable→function
map S of Algorithm 2 is exactly expressible.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.frontend.registry import kernel

NAME = "blackscholes"
#: Table IV configurations: which intrinsics run approximately
CONFIG_WITHOUT_EXP = frozenset({"log", "sqrt"})
CONFIG_WITH_EXP = frozenset({"log", "sqrt", "exp"})

#: Algorithm 2's map S: variable of interest → function it feeds
APPROX_VARIABLE_MAP: Dict[str, str] = {
    "login": "log",
    "sqrtin": "sqrt",
    "expin": "exp",
    "expin2": "exp",
}


@kernel
def cndf(x: float) -> float:
    """Cumulative normal distribution, PARSEC's polynomial expansion."""
    ax = fabs(x)
    expin = -0.5 * ax * ax
    expval = 0.39894228040143270 * exp(expin)
    k = 1.0 / (1.0 + 0.2316419 * ax)
    poly = k * (
        0.319381530
        + k * (
            -0.356563782
            + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))
        )
    )
    one_minus = 1.0 - expval * poly
    res = one_minus
    if x < 0.0:
        res = 1.0 - one_minus
    return res


@kernel
def bs_price(
    sptprice: float,
    strike: float,
    rate: float,
    volatility: float,
    otime: float,
    otype: int,
) -> float:
    """Price one European option (otype 0 = call, 1 = put)."""
    login = sptprice / strike
    xlogterm = log(login)
    sqrtin = otime
    xsqrtterm = sqrt(sqrtin)
    xpowerterm = 0.5 * volatility * volatility
    xden = volatility * xsqrtterm
    xd1 = ((rate + xpowerterm) * otime + xlogterm) / xden
    xd2 = xd1 - xden
    nd1 = cndf(xd1)
    nd2 = cndf(xd2)
    expin2 = 0.0 - rate * otime
    futurevalue = strike * exp(expin2)
    price = sptprice * nd1 - futurevalue * nd2
    if otype == 1:
        price = futurevalue * (1.0 - nd2) - sptprice * (1.0 - nd1)
    return price


@kernel
def bs_total(
    n: int,
    sptprice: "f64[]",
    strike: "f64[]",
    rate: "f64[]",
    volatility: "f64[]",
    otime: "f64[]",
    otype: "i64[]",
) -> float:
    """Aggregate portfolio value over ``n`` options (the instrumented
    whole-application objective for the analysis-time benchmarks)."""
    total = 0.0
    for i in range(n):
        pr = bs_price(
            sptprice[i], strike[i], rate[i], volatility[i], otime[i],
            otype[i],
        )
        total = total + pr
    return total


def make_workload(size: int, seed: int = 404) -> Tuple[object, ...]:
    """PARSEC-style random option portfolio of ``size`` options."""
    rng = np.random.default_rng(seed)
    spt = rng.uniform(25.0, 150.0, size)
    strike = spt * rng.uniform(0.8, 1.2, size)
    rate = rng.uniform(0.02, 0.1, size)
    vol = rng.uniform(0.05, 0.65, size)
    otime = rng.uniform(0.05, 1.0, size)
    otype = rng.integers(0, 2, size).astype(np.int64)
    return (int(size), spt, strike, rate, vol, otime, otype)


def point_args(workload: Tuple[object, ...], i: int) -> Tuple[object, ...]:
    """Arguments for :func:`bs_price` for option ``i`` of a workload."""
    _, spt, strike, rate, vol, otime, otype = workload
    return (
        float(spt[i]),
        float(strike[i]),
        float(rate[i]),
        float(vol[i]),
        float(otime[i]),
        int(otype[i]),
    )


INSTRUMENTED = bs_total

#: demotion candidates for the precision search (source-level names;
#: cndf locals match their inlined copies through the config rules)
SEARCH_CANDIDATES = (
    "login", "sqrtin", "expin", "expin2", "xlogterm", "xsqrtterm",
    "xpowerterm", "xden", "xd1", "xd2", "futurevalue", "price",
)


def search_scenario(
    n_points: int = 4, n_samples: int = 64, seed: int = 404
):
    """Pareto precision-search scenario on :func:`bs_price`.

    Validation points come from the PARSEC-style random portfolio; the
    robust-error sweep spans spot price and volatility (the two inputs
    the option price is most sensitive to).
    """
    from repro.search.scenario import SearchScenario
    from repro.sweep.samplers import random_sweep

    workload = make_workload(max(n_points, 4), seed=seed)
    points = [point_args(workload, i) for i in range(n_points)]
    samples = random_sweep(
        {"sptprice": (25.0, 150.0), "volatility": (0.05, 0.65)},
        n=n_samples,
        seed=seed,
    )
    threshold = 2e-6
    return SearchScenario(
        name=NAME,
        kernel=bs_price,
        points=points,
        threshold=threshold,
        candidates=SEARCH_CANDIDATES,
        samples=samples,
        fixed={"strike": 100.0, "rate": 0.05, "otime": 0.5, "otype": 0},
        budget=48,
        description=(
            "European option pricing: search the demotion space of the "
            f"pricing locals under a {threshold:g} error budget"
        ),
    )


def closed_form_call(S: float, K: float, r: float, v: float, t: float) -> float:
    """Exact Black-Scholes call via the error function (test oracle)."""
    import math

    d1 = (math.log(S / K) + (r + 0.5 * v * v) * t) / (v * math.sqrt(t))
    d2 = d1 - v * math.sqrt(t)
    N = lambda z: 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))  # noqa: E731
    return S * N(d1) - K * math.exp(-r * t) * N(d2)
