"""HPCCG benchmark (paper §IV-4, Mantevo suite).

A single-threaded conjugate-gradient solver for a 27-point-stencil
Laplacian-like operator on a 3-D "chimney" domain nx × ny × nz — the
structure of Mantevo's HPCCG mini-app (diagonal 27, off-diagonals −1,
right-hand side chosen so the exact solution is all-ones).

The whole CG iteration is the instrumented kernel: the per-iteration
sensitivities of the vectors ``r``, ``p``, ``x`` and ``Ap`` are the
subject of the paper's Fig. 9 heat map and the loop-split optimization,
and the Table I threshold is 1e-10.

The paper scales 20 × 30 × {10..320}; we default to a 4 × 6 base so the
pure-Python adjoint stays laptop-sized (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.frontend.registry import kernel

NAME = "hpccg"
DEFAULT_THRESHOLD = 1e-10
TUNING_CANDIDATES = ("x", "r", "p", "Ap", "s", "alpha", "beta", "rtrans")

#: base cross-section of the chimney domain (paper: 20 × 30)
NX, NY = 4, 6
#: maximum stencil points per row
STENCIL = 27


@kernel
def hpccg_cg(
    nrow: int,
    max_iter: int,
    tol: float,
    vals: "f64[]",
    inds: "i64[]",
    nnz: "i64[]",
    bvec: "f64[]",
    x: "f64[]",
    r: "f64[]",
    p: "f64[]",
    Ap: "f64[]",
) -> float:
    """Conjugate gradient on the padded-CSR stencil matrix.

    ``vals``/``inds`` are padded to 27 entries per row; ``nnz`` holds
    the true per-row counts.  Returns the final residual norm — the
    objective CHEF-FP differentiates.  Note a CG-theoretic consequence
    visible in Fig. 9: the solution vector ``x`` feeds only the output,
    never the residual recurrence, so its sensitivity is ~0 throughout
    (demoting ``x`` is nearly free).  The tolerance exit uses the
    guarded-break pattern so the adjoint can replay the loop.
    """
    for i in range(nrow):
        x[i] = 0.0
        r[i] = bvec[i]
        p[i] = bvec[i]
    rtrans = 0.0
    for i in range(nrow):
        rtrans = rtrans + r[i] * r[i]
    normr = sqrt(rtrans)
    for k in range(max_iter):
        if normr <= tol:
            break
        for i in range(nrow):
            s = 0.0
            cur = nnz[i]
            for j in range(cur):
                s = s + vals[i * 27 + j] * p[inds[i * 27 + j]]
            Ap[i] = s
        alpha_den = 0.0
        for i in range(nrow):
            alpha_den = alpha_den + p[i] * Ap[i]
        alpha = rtrans / alpha_den
        oldrtrans = rtrans
        rtrans = 0.0
        for i in range(nrow):
            x[i] = x[i] + alpha * p[i]
            r[i] = r[i] - alpha * Ap[i]
            rtrans = rtrans + r[i] * r[i]
        beta = rtrans / oldrtrans
        for i in range(nrow):
            p[i] = r[i] + beta * p[i]
        normr = sqrt(rtrans)
    return normr


@kernel
def hpccg_cg_split(
    nrow: int,
    split: int,
    max_iter: int,
    tol: float,
    vals: "f64[]",
    inds: "i64[]",
    nnz: "i64[]",
    bvec: "f64[]",
    x: "f64[]",
    r: "f64[]",
    p: "f64[]",
    Ap: "f64[]",
    xs: "f32[]",
    rs: "f32[]",
    ps: "f32[]",
    Aps: "f32[]",
    vals32: "f32[]",
) -> float:
    """The paper's HPCCG loop-split configuration, written out.

    Iterations ``[0, split)`` run in double precision on ``x/r/p/Ap``;
    the state *and the operator* are then copied into binary32 arrays
    (``xs/rs/ps/Aps``, ``vals32``) and the remaining iterations run
    there — the manual rewrite the paper performs after the Fig. 9
    sensitivity analysis.  Demoting the matrix too is what makes the
    tail actually cheaper; keeping it in f64 would promote every
    product back to double and pay casts (the k-Means effect).
    """
    for i in range(nrow):
        x[i] = 0.0
        r[i] = bvec[i]
        p[i] = bvec[i]
    rtrans = 0.0
    for i in range(nrow):
        rtrans = rtrans + r[i] * r[i]
    normr = sqrt(rtrans)
    for k in range(split):
        if normr <= tol:
            break
        for i in range(nrow):
            s = 0.0
            cur = nnz[i]
            for j in range(cur):
                s = s + vals[i * 27 + j] * p[inds[i * 27 + j]]
            Ap[i] = s
        alpha_den = 0.0
        for i in range(nrow):
            alpha_den = alpha_den + p[i] * Ap[i]
        alpha = rtrans / alpha_den
        oldrtrans = rtrans
        rtrans = 0.0
        for i in range(nrow):
            x[i] = x[i] + alpha * p[i]
            r[i] = r[i] - alpha * Ap[i]
            rtrans = rtrans + r[i] * r[i]
        beta = rtrans / oldrtrans
        for i in range(nrow):
            p[i] = r[i] + beta * p[i]
        normr = sqrt(rtrans)
    # demote state and operator, continue in reduced precision
    for i in range(nrow):
        xs[i] = x[i]
        rs[i] = r[i]
        ps[i] = p[i]
    for i in range(nrow):
        for j in range(27):
            vals32[i * 27 + j] = vals[i * 27 + j]
    rtrans2: "f32" = 0.0
    for i in range(nrow):
        rtrans2 = rtrans2 + rs[i] * rs[i]
    normr = sqrt(rtrans2)
    for k in range(max_iter - split):
        if normr <= tol:
            break
        for i in range(nrow):
            s2: "f32" = 0.0
            cur2 = nnz[i]
            for j in range(cur2):
                s2 = s2 + vals32[i * 27 + j] * ps[inds[i * 27 + j]]
            Aps[i] = s2
        alpha_den2: "f32" = 0.0
        for i in range(nrow):
            alpha_den2 = alpha_den2 + ps[i] * Aps[i]
        alpha2: "f32" = rtrans2 / alpha_den2
        oldrtrans2: "f32" = rtrans2
        rtrans2 = 0.0
        for i in range(nrow):
            xs[i] = xs[i] + alpha2 * ps[i]
            rs[i] = rs[i] - alpha2 * Aps[i]
            rtrans2 = rtrans2 + rs[i] * rs[i]
        beta2: "f32" = rtrans2 / oldrtrans2
        for i in range(nrow):
            ps[i] = rs[i] + beta2 * ps[i]
        normr = sqrt(rtrans2)
    return normr


def make_split_workload(
    nz: int, split: int, max_iter: int = 30, tol: float = 0.0
) -> Tuple[object, ...]:
    """Arguments for :func:`hpccg_cg_split`."""
    vals, inds, nnz, b = generate_matrix(NX, NY, int(nz))
    nrow = len(b)
    work = [np.zeros(nrow, dtype=np.float64) for _ in range(8)]
    vals32 = np.zeros(nrow * STENCIL, dtype=np.float64)
    return (
        nrow, int(split), int(max_iter), float(tol),
        vals, inds, nnz, b, *work, vals32,
    )


def generate_matrix(
    nx: int, ny: int, nz: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Build the padded 27-point stencil system of HPCCG.

    Returns ``(vals, inds, nnz, b)`` where ``b = A·1`` so the exact
    solution is the all-ones vector.
    """
    nrow = nx * ny * nz
    vals = np.zeros(nrow * STENCIL, dtype=np.float64)
    inds = np.zeros(nrow * STENCIL, dtype=np.int64)
    nnz = np.zeros(nrow, dtype=np.int64)
    b = np.zeros(nrow, dtype=np.float64)

    def rid(ix: int, iy: int, iz: int) -> int:
        return ix + nx * (iy + ny * iz)

    for iz in range(nz):
        for iy in range(ny):
            for ix in range(nx):
                row = rid(ix, iy, iz)
                cnt = 0
                rowsum = 0.0
                for dz in (-1, 0, 1):
                    for dy in (-1, 0, 1):
                        for dx in (-1, 0, 1):
                            jx, jy, jz = ix + dx, iy + dy, iz + dz
                            if not (
                                0 <= jx < nx and 0 <= jy < ny and 0 <= jz < nz
                            ):
                                continue
                            col = rid(jx, jy, jz)
                            v = 27.0 if col == row else -1.0
                            vals[row * STENCIL + cnt] = v
                            inds[row * STENCIL + cnt] = col
                            rowsum += v
                            cnt += 1
                nnz[row] = cnt
                b[row] = rowsum  # A @ ones
    return vals, inds, nnz, b


def make_workload(
    nz: int, max_iter: int = 30, tol: float = 0.0
) -> Tuple[object, ...]:
    """Arguments for :func:`hpccg_cg` on an NX × NY × ``nz`` domain.

    ``tol = 0`` keeps the loop running all ``max_iter`` iterations (the
    configuration used for analysis-time benchmarking); pass a positive
    tolerance to exercise the guarded early exit.
    """
    vals, inds, nnz, b = generate_matrix(NX, NY, int(nz))
    nrow = len(b)
    work = [np.zeros(nrow, dtype=np.float64) for _ in range(4)]
    return (nrow, int(max_iter), float(tol), vals, inds, nnz, b, *work)


INSTRUMENTED = hpccg_cg


def search_scenario(nz: int = 2, max_iter: int = 6):
    """Pareto precision-search scenario on the CG iteration.

    Small domain and short iteration keep the pure-Python adjoint and
    the per-candidate counting runs laptop-sized; the candidates are
    the Fig. 9 vectors plus the CG scalars.
    """
    from repro.search.scenario import SearchScenario

    return SearchScenario(
        name=NAME,
        kernel=hpccg_cg,
        points=[make_workload(nz, max_iter=max_iter)],
        threshold=DEFAULT_THRESHOLD,
        candidates=TUNING_CANDIDATES,
        budget=24,
        description=(
            "HPCCG conjugate gradient: Fig. 9 vectors and CG scalars "
            "under the paper's 1e-10 threshold"
        ),
    )


def reference_solve(nz: int) -> np.ndarray:
    """Dense numpy reference solution of the same system (tests)."""
    vals, inds, nnz, b = generate_matrix(NX, NY, nz)
    nrow = len(b)
    A = np.zeros((nrow, nrow))
    for i in range(nrow):
        for j in range(int(nnz[i])):
            A[i, inds[i * STENCIL + j]] = vals[i * STENCIL + j]
    return np.linalg.solve(A, b)
