"""Simpsons benchmark (paper §IV-2).

Composite Simpson's-rule approximation of ∫ₐᵇ f(x) dx with
f(x) = x·sin(x) over [0, π] (exact value π), using the paper's
formulation: interior odd points weighted 4, even points weighted 2.
The Table I threshold is 1e-6.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.frontend.registry import kernel

NAME = "simpsons"
DEFAULT_THRESHOLD = 1e-6
TUNING_CANDIDATES = ("s", "x", "fx", "h")


@kernel
def simpson_f(x: float) -> float:
    """The integrand f(x) = x · sin(x)."""
    fx = x * sin(x)
    return fx


@kernel
def simpson(n: int, lo: float, hi: float) -> float:
    """Composite Simpson approximation with ``2n`` subintervals."""
    h = (hi - lo) / (2.0 * n)
    s = simpson_f(lo) + simpson_f(hi)
    for i in range(1, 2 * n):
        x = lo + i * h
        fx = simpson_f(x)
        if i % 2 == 1:
            s = s + 4.0 * fx
        else:
            s = s + 2.0 * fx
    return s * h / 3.0


def make_workload(size: int) -> Tuple[int, float, float]:
    """Arguments for :func:`simpson` with ``size`` iteration pairs."""
    return (int(size), 0.0, math.pi)


INSTRUMENTED = simpson

#: exact integral of x·sin(x) over [0, π]
EXACT_VALUE = math.pi


def search_scenario(size: int = 200, n_samples: int = 48, seed: int = 11):
    """Pareto precision-search scenario on :func:`simpson`, sweeping
    the integration domain as in the robust-tuning example."""
    from repro.search.scenario import SearchScenario
    from repro.sweep.samplers import random_sweep

    samples = random_sweep(
        {"lo": (0.0, 0.5), "hi": (math.pi / 2, math.pi)},
        n=n_samples,
        seed=seed,
    )
    return SearchScenario(
        name=NAME,
        kernel=simpson,
        points=[make_workload(size)],
        threshold=DEFAULT_THRESHOLD,
        candidates=TUNING_CANDIDATES,
        samples=samples,
        fixed={"n": size},
        budget=32,
        description=(
            "Simpson integration: Table I candidates, integration "
            "domain swept for distribution robustness"
        ),
    )
