"""Arc Length benchmark (paper §IV-1).

Approximates the arc length of the multi-harmonic test function

    g(x) = x + Σ_{k=1..6} sin(2^k x) / 2^k      over [0, π]

by summing straight-line segment lengths between ``n`` sample points —
the same function family used by ADAPT and Precimonious.  The error
threshold of Table I is 1e-5.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.frontend.registry import kernel

NAME = "arclength"
#: Table I threshold for the mixed-precision experiment
DEFAULT_THRESHOLD = 1e-5
#: variables eligible for demotion in the tuning experiment
TUNING_CANDIDATES = ("s", "t1", "t2", "x", "diff", "d1", "t")


@kernel
def arclength_fun(x: float) -> float:
    """The multi-harmonic test function g(x)."""
    d1 = 1.0
    t = x
    for k in range(6):
        d1 = 2.0 * d1
        t = t + sin(d1 * x) / d1
    return t


@kernel
def arclength(n: int, h: float) -> float:
    """Arc length of g over [0, n·h] with ``n`` segments of width ``h``.

    ``h`` is a differentiable input (π/n for the standard [0, π] sweep),
    so the AD-based tools have an independent variable to seed — the
    same formulation ADAPT's version of this benchmark uses.
    """
    t1 = 0.0
    s = 0.0
    for i in range(1, n + 1):
        x = i * h
        t2 = arclength_fun(x)
        diff = t2 - t1
        s = s + sqrt(h * h + diff * diff)
        t1 = t2
    return s


def make_workload(size: int) -> Tuple[int, float]:
    """Arguments for :func:`arclength` at ``size`` iterations."""
    return (int(size), math.pi / int(size))


#: kernel instrumented for error analysis / benchmarking
INSTRUMENTED = arclength


def search_scenario(size: int = 100, n_samples: int = 32, seed: int = 3):
    """Pareto precision-search scenario on :func:`arclength`, sweeping
    the step width ``h`` (i.e. the integration resolution)."""
    from repro.search.scenario import SearchScenario
    from repro.sweep.samplers import random_sweep

    samples = random_sweep(
        {"h": (math.pi / (4 * size), math.pi / size)},
        n=n_samples,
        seed=seed,
    )
    return SearchScenario(
        name=NAME,
        kernel=arclength,
        points=[make_workload(size)],
        threshold=DEFAULT_THRESHOLD,
        candidates=TUNING_CANDIDATES,
        samples=samples,
        fixed={"n": size},
        budget=32,
        description=(
            "Arc-length quadrature: Table I candidates with the step "
            "width swept"
        ),
    )

#: exact arc length for validation, computed by fine-grained reference
def reference_value(n: int = 1_000_000) -> float:
    """High-resolution reference arc length (plain Python, f64)."""
    h = math.pi / n
    t1 = 0.0
    s = 0.0
    for i in range(1, n + 1):
        x = i * h
        d1, t = 1.0, x
        for _ in range(6):
            d1 *= 2.0
            t += math.sin(d1 * x) / d1
        diff = t - t1
        s += math.sqrt(h * h + diff * diff)
        t1 = t
    return s
