"""The paper's five benchmark applications, reimplemented in the DSL.

Each module exposes its instrumented kernel(s), a workload generator,
and the experiment metadata (error threshold, tuning candidates) used
by :mod:`repro.experiments`:

* :mod:`repro.apps.arclength` — arc-length quadrature (ADAPT's classic
  multi-harmonic test function),
* :mod:`repro.apps.simpsons` — Simpson's-rule integration,
* :mod:`repro.apps.kmeans` — Rodinia-style k-Means with the Euclidean
  distance hotspot,
* :mod:`repro.apps.hpccg` — Mantevo HPCCG: a 27-point-stencil conjugate
  gradient solver on a 3-D chimney domain,
* :mod:`repro.apps.blackscholes` — PARSEC-style Black-Scholes option
  pricing with polynomial CNDF (the FastApprox study's target).
"""

from repro.apps import arclength, simpsons, kmeans, hpccg, blackscholes

ALL_APPS = {
    "arclength": arclength,
    "simpsons": simpsons,
    "kmeans": kmeans,
    "hpccg": hpccg,
    "blackscholes": blackscholes,
}

__all__ = [
    "arclength",
    "simpsons",
    "kmeans",
    "hpccg",
    "blackscholes",
    "ALL_APPS",
]
