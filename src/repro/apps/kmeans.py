"""k-Means benchmark (paper §IV-3, Rodinia suite).

The paper instruments the Euclidean distance function — the
computational hotspot — with the three variables of Table III:
``attributes`` (the input points), ``clusters`` (the centroids), and
``sum`` (the running squared distance).  The instrumented aggregate
kernel sums each point's distance to its nearest centroid, the
assignment-step objective.

The input generator reproduces the paper's observation that the error
estimated for ``attributes`` is 0: attribute values are drawn on a
dyadic grid (multiples of 2⁻⁸) that is exactly representable in
binary32, so the Eq. 2 demotion error vanishes.  Centroids are means of
such values and are *not* exactly representable.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.frontend.registry import kernel

NAME = "kmeans"
DEFAULT_THRESHOLD = 1e-6
TUNING_CANDIDATES = ("attributes", "clusters", "sum")

#: problem shape (Rodinia defaults scaled): features per point, clusters
NFEATURES = 4
NCLUSTERS = 5


@kernel
def euclid_dist(
    nfeatures: int,
    pt: int,
    cl: int,
    attributes: "f64[]",
    clusters: "f64[]",
) -> float:
    """Euclidean distance between one point and one centroid.

    The paper's instrumented hotspot: ``sum`` accumulates squared
    feature differences read from ``attributes`` and ``clusters``.
    """
    sum = 0.0
    for f in range(nfeatures):
        sum = sum + (
            attributes[pt * nfeatures + f] - clusters[cl * nfeatures + f]
        ) * (
            attributes[pt * nfeatures + f] - clusters[cl * nfeatures + f]
        )
    return sqrt(sum)


@kernel
def kmeans_cost(
    npoints: int,
    nclusters: int,
    nfeatures: int,
    attributes: "f64[]",
    clusters: "f64[]",
) -> float:
    """Sum of nearest-centroid distances over the whole data set."""
    total = 0.0
    for p in range(npoints):
        best = 1e30  # sentinel kept inside binary32 range
        for c in range(nclusters):
            d = euclid_dist(nfeatures, p, c, attributes, clusters)
            best = fmin(best, d)
        total = total + best
    return total


def make_workload(
    size: int, seed: int = 2023
) -> Tuple[int, int, int, np.ndarray, np.ndarray]:
    """Arguments for :func:`kmeans_cost` with ``size`` data points.

    Attributes are multiples of 2⁻⁸ in [0, 1) — exactly representable
    in binary32 (zero demotion error, matching the paper).  Centroids
    are k-means-style means of random subsets, generically inexact in
    binary32.
    """
    rng = np.random.default_rng(seed)
    attrs = rng.integers(0, 256, size=size * NFEATURES) / 256.0
    # centroids: means of random point subsets (like one Lloyd update)
    cl = np.empty(NCLUSTERS * NFEATURES, dtype=np.float64)
    for c in range(NCLUSTERS):
        members = rng.integers(0, size, size=max(3, size // NCLUSTERS))
        pts = attrs.reshape(size, NFEATURES)[members]
        cl[c * NFEATURES:(c + 1) * NFEATURES] = pts.mean(axis=0)
    return (size, NCLUSTERS, NFEATURES, attrs.astype(np.float64), cl)


INSTRUMENTED = kmeans_cost


def search_scenario(size: int = 24, n_workloads: int = 2):
    """Pareto precision-search scenario on :func:`kmeans_cost`.

    k-Means has no scalar inputs worth sweeping (the data is the
    input), so robustness comes from validating against several
    generated workloads; the candidates are the paper's Table III
    variables, where the cast-cost effect (demoting only ``attributes``
    gives no speedup) makes the cost axis genuinely interesting.
    """
    from repro.search.scenario import SearchScenario

    points = [
        make_workload(size, seed=2023 + 7 * i)
        for i in range(max(n_workloads, 1))
    ]
    return SearchScenario(
        name=NAME,
        kernel=kmeans_cost,
        points=points,
        threshold=DEFAULT_THRESHOLD,
        candidates=TUNING_CANDIDATES,
        budget=16,
        description=(
            "Rodinia k-Means assignment cost: Table III demotion "
            "candidates under the paper's 1e-6 threshold"
        ),
    )


def lloyd_iterations(
    attrs: np.ndarray, k: int, iters: int = 5, seed: int = 7
) -> np.ndarray:
    """Reference numpy k-means (Lloyd) — used by tests to confirm the
    DSL objective matches a conventional implementation's assignment
    cost."""
    pts = attrs.reshape(-1, NFEATURES)
    rng = np.random.default_rng(seed)
    centroids = pts[rng.choice(len(pts), size=k, replace=False)].copy()
    for _ in range(iters):
        d = np.linalg.norm(pts[:, None, :] - centroids[None, :, :], axis=2)
        assign = d.argmin(axis=1)
        for c in range(k):
            sel = pts[assign == c]
            if len(sel):
                centroids[c] = sel.mean(axis=0)
    return centroids.reshape(-1)
