"""Input samplers for sweep runs.

Each sampler produces a *sweep*: a ``{param_name: length-N array}``
mapping that the engine zips into batched positional arguments.  The
paper's Discussion concedes that error estimates (and therefore tuning
decisions) are input-dependent and that "callers should sweep inputs" —
these are the standard ways to build that sweep:

* :func:`grid_sweep` — Cartesian product of per-parameter axes
  (linear or log spacing, or explicit points),
* :func:`random_sweep` — uniform / log-uniform random sampling with an
  **explicit seed** (reproducibility is part of the cache key story),
* :func:`explicit_sweep` — user-supplied arrays, validated and
  normalized.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.util.errors import ConfigError

Axis = Union[Tuple[float, float, int], Tuple[float, float, int, str], Sequence[float]]
Sweep = Dict[str, np.ndarray]


def _axis_points(name: str, spec: Axis) -> np.ndarray:
    if isinstance(spec, tuple) and len(spec) in (3, 4) and isinstance(
        spec[2], (int, np.integer)
    ):
        lo, hi, count = float(spec[0]), float(spec[1]), int(spec[2])
        spacing = spec[3] if len(spec) == 4 else "linear"
        if count < 1:
            raise ConfigError(f"axis {name!r}: count must be >= 1")
        if spacing == "linear":
            return np.linspace(lo, hi, count)
        if spacing == "log":
            if lo <= 0 or hi <= 0:
                raise ConfigError(
                    f"axis {name!r}: log spacing needs positive bounds"
                )
            return np.geomspace(lo, hi, count)
        raise ConfigError(
            f"axis {name!r}: unknown spacing {spacing!r} "
            "(expected 'linear' or 'log')"
        )
    arr = np.asarray(spec, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigError(f"axis {name!r}: expected a non-empty 1-D array")
    return arr


def grid_sweep(axes: Mapping[str, Axis]) -> Sweep:
    """Cartesian-product sweep.

    Each axis is ``(lo, hi, count)``, ``(lo, hi, count, 'log')``, or an
    explicit 1-D array of points.  The result sweeps every combination
    (N = product of axis sizes), in ``meshgrid(indexing='ij')`` order.

    Example::

        grid_sweep({"lo": (0.0, 1.0, 5), "hi": (1.0, 3.0, 7)})  # N = 35
    """
    if not axes:
        raise ConfigError("grid_sweep: at least one axis required")
    names = list(axes)
    points = [_axis_points(n, axes[n]) for n in names]
    mesh = np.meshgrid(*points, indexing="ij")
    return {n: m.reshape(-1) for n, m in zip(names, mesh)}


def random_sweep(
    bounds: Mapping[str, Tuple[float, float]],
    n: int,
    seed: int,
    log: Iterable[str] = (),
) -> Sweep:
    """Random sweep: ``n`` points, uniform per parameter within bounds.

    :param bounds: ``{param: (lo, hi)}``.
    :param seed: **required** RNG seed — sweeps must be reproducible so
        result-cache keys (input digests) are stable across runs.
    :param log: parameter names sampled log-uniformly (positive bounds).
    """
    if n < 1:
        raise ConfigError("random_sweep: n must be >= 1")
    rng = np.random.default_rng(seed)
    logset = set(log)
    unknown = logset - set(bounds)
    if unknown:
        raise ConfigError(
            f"random_sweep: log parameters not in bounds: {sorted(unknown)}"
        )
    out: Sweep = {}
    for name, (lo, hi) in bounds.items():
        if name in logset:
            if lo <= 0 or hi <= 0:
                raise ConfigError(
                    f"random_sweep: log-uniform {name!r} needs positive "
                    "bounds"
                )
            out[name] = np.exp(
                rng.uniform(np.log(lo), np.log(hi), n)
            )
        else:
            out[name] = rng.uniform(lo, hi, n)
    return out


def explicit_sweep(arrays: Mapping[str, Sequence[float]]) -> Sweep:
    """Normalize user-supplied arrays into a sweep (equal-length 1-D)."""
    if not arrays:
        raise ConfigError("explicit_sweep: at least one array required")
    out: Sweep = {}
    n = None
    for name, a in arrays.items():
        arr = np.asarray(a)
        if arr.ndim != 1 or arr.size == 0:
            raise ConfigError(
                f"explicit_sweep: {name!r} must be a non-empty 1-D array"
            )
        if n is None:
            n = arr.size
        elif arr.size != n:
            raise ConfigError(
                f"explicit_sweep: length mismatch ({n} vs {arr.size} "
                f"for {name!r})"
            )
        out[name] = arr
    return out
