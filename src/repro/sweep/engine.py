"""Sweep orchestration: samples → batch evaluation → (cached) report.

:func:`run_sweep` is the engine behind
:meth:`repro.session.Session.sweep`, the one-call entry point of the
sweep subsystem::

    import repro
    from repro.sweep import random_sweep

    sess = repro.Session(cache="~/.cache/repro-sweeps")
    report = sess.sweep(
        kernel,
        samples=random_sweep({"x": (0.1, 10.0)}, n=1000, seed=7),
        fixed={"n": 100},
        model=AdaptModel(),
    )
    report.total_error        # (N,) per-point estimates

(:func:`sweep_error` survives as a deprecated free-function wrapper;
removal in 2.0.)

It reuses compiled estimators across calls (content-addressed memo in
:mod:`repro.core.api`), consults the result cache before evaluating,
and prefers the vectorized batch backend with a transparent scalar-loop
fallback.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.api import KernelLike, cached_error_estimator
from repro.core.models import ErrorModel, TaylorModel
from repro.ir import nodes as N
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.sweep.batch import BatchReport
from repro.sweep.cache import SweepCache, make_key
from repro.util.deprecation import warn_legacy
from repro.util.errors import ExecutionError

CacheLike = Union[None, str, Path, SweepCache]


def _resolve_cache(cache: CacheLike) -> Optional[SweepCache]:
    if cache is None or isinstance(cache, SweepCache):
        return cache
    return SweepCache(directory=cache)


def build_args(
    primal: N.Function,
    samples: Mapping[str, Sequence[float]],
    fixed: Mapping[str, object],
) -> List[object]:
    """Zip a sweep and fixed values into positional arguments.

    Every kernel parameter must appear in exactly one of ``samples``
    (swept, as a length-N array) or ``fixed`` (lane-uniform).
    """
    overlap = set(samples) & set(fixed)
    if overlap:
        raise ExecutionError(
            f"{primal.name}: parameters both swept and fixed: "
            f"{sorted(overlap)}"
        )
    known = {p.name for p in primal.params}
    unknown = (set(samples) | set(fixed)) - known
    if unknown:
        raise ExecutionError(
            f"{primal.name}: unknown parameters: {sorted(unknown)}"
        )
    args: List[object] = []
    for p in primal.params:
        if p.name in samples:
            args.append(np.asarray(samples[p.name]))
        elif p.name in fixed:
            args.append(fixed[p.name])
        else:
            raise ExecutionError(
                f"{primal.name}: parameter {p.name!r} is neither swept "
                "nor fixed"
            )
    return args


def run_sweep(
    k: KernelLike,
    samples: Mapping[str, Sequence[float]],
    fixed: Optional[Mapping[str, object]] = None,
    model: Optional[ErrorModel] = None,
    opt_level: int = 2,
    minimal_pushes: bool = True,
    cache: CacheLike = None,
) -> BatchReport:
    """The sweep engine proper — see :meth:`repro.session.Session.sweep`.

    This is the non-deprecated implementation shared by the session
    facade and the internal callers (robust tuning, candidate
    evaluation, contribution ranking); :func:`sweep_error` is the
    legacy wrapper around it.
    """
    model = model or TaylorModel()
    with obs_trace.span("sweep.run", kernel=_kernel_name(k)) as sp:
        est = cached_error_estimator(
            k, model=model, opt_level=opt_level, minimal_pushes=minimal_pushes
        )
        args = build_args(est.primal_ir, dict(samples), dict(fixed or {}))
        n = max(
            (len(a) for a in args if isinstance(a, np.ndarray)), default=1
        )
        sp.set(n=n)
        store = _resolve_cache(cache)
        key: Optional[str] = None
        if store is not None:
            key = make_key(
                est.primal_ir, model, args,
                opt_level=opt_level, minimal_pushes=minimal_pushes,
            )
            hit = store.get(key)
            if hit is not None:
                sp.set(cache="hit")
                return hit
        report = est.execute_batch(*args)
        sp.set(cache="miss" if store is not None else "off")
        obs_metrics.REGISTRY.counter(
            "repro_sweep_points_total", "input points swept (cache misses)"
        ).inc(n)
        if store is not None:
            store.put(key, report)
        return report


def _kernel_name(k: KernelLike) -> str:
    name = getattr(k, "name", None)
    return name if isinstance(name, str) else "<ir>"


def sweep_error(
    k: KernelLike,
    samples: Mapping[str, Sequence[float]],
    fixed: Optional[Mapping[str, object]] = None,
    model: Optional[ErrorModel] = None,
    opt_level: int = 2,
    minimal_pushes: bool = True,
    cache: CacheLike = None,
) -> BatchReport:
    """Estimate FP error over a batch of input points.

    .. deprecated:: 1.1
        Legacy wrapper, removed in 2.0 — use
        :meth:`repro.session.Session.sweep`, which shares one result
        cache and estimator memo across the whole workflow.

    :param k: kernel (or IR function) to analyze.
    :param samples: ``{param: length-N array}`` — swept parameters (see
        :mod:`repro.sweep.samplers`).
    :param fixed: lane-uniform values for the remaining parameters.
    :param model: error model (default: Taylor, Eq. 1).
    :param cache: ``None``, a directory path, or a :class:`SweepCache` —
        repeated estimates (same kernel content, model, inputs) are
        served from it without re-running the adjoint.
    """
    warn_legacy("repro.sweep_error()", "Session.sweep()")
    from repro.session import Session

    return Session(cache=cache).sweep(
        k, samples, fixed=fixed, model=model,
        opt_level=opt_level, minimal_pushes=minimal_pushes,
    )
