"""Batched adjoint execution: N input points per call.

:class:`BatchedErrorEstimator` wraps a compiled
:class:`~repro.core.api.ErrorEstimator` and evaluates it over a batch of
input points.  Two backends:

* **vectorized** — the adjoint IR is re-rendered as NumPy
  array-at-a-time code (:mod:`repro.codegen.npgen`): one pass through
  the generated function replaces N scalar calls.  Per lane it performs
  bit-identical operations to the scalar path (transcendentals included,
  via :func:`repro.codegen.runtime.exactwise`).
* **loop** — the scalar estimator called per point.  Used when the
  kernel cannot be vectorized (array parameters, data-dependent trip
  counts, sensitivity traces) — results are identical either way, only
  slower.

A batched variant is compiled lazily per *set of swept parameters* (the
taint analysis — and therefore the generated code — depends on which
parameters are arrays) and memoized on the estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codegen import runtime
from repro.codegen.npgen import UnvectorizableError, generate_batch_source
from repro.core.report import ErrorReport
from repro.ir.types import ArrayType, DType
from repro.util.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.api import ErrorEstimator


@dataclass
class BatchReport:
    """Per-point error-estimation results for a batch of N inputs.

    Mirrors :class:`~repro.core.report.ErrorReport` with a leading batch
    axis: every field holds length-N arrays (``gradients`` of array
    parameters hold ``(N, len)`` matrices under the loop backend).
    """

    n: int
    #: primal return value per point
    values: np.ndarray
    #: accumulated FP error estimate per point
    total_error: np.ndarray
    #: per-variable error contributions, each length N
    per_variable: Dict[str, np.ndarray] = field(default_factory=dict)
    #: d(value)/d(param) per point
    gradients: Dict[str, np.ndarray] = field(default_factory=dict)
    #: which backend produced the results: ``vectorized`` or ``loop``
    backend: str = "vectorized"
    #: True when the report was served from a sweep cache
    from_cache: bool = False

    def point(self, i: int) -> ErrorReport:
        """The scalar :class:`ErrorReport` of sample ``i``."""
        rep = ErrorReport(value=float(self.values[i]))
        rep.total_error = float(self.total_error[i])
        rep.per_variable = {
            v: float(a[i]) for v, a in self.per_variable.items()
        }
        rep.gradients = {
            p: (float(a[i]) if np.ndim(a[i]) == 0 else np.asarray(a[i]))
            for p, a in self.gradients.items()
        }
        return rep

    def worst(self) -> int:
        """Index of the sample with the largest total error."""
        return int(np.argmax(self.total_error))

    def copy(self) -> "BatchReport":
        """Deep copy (fresh arrays) — the cache hands out copies so
        callers mutating a result can never corrupt the cached entry."""
        return BatchReport(
            n=self.n,
            values=np.array(self.values),
            total_error=np.array(self.total_error),
            per_variable={
                v: np.array(a) for v, a in self.per_variable.items()
            },
            gradients={
                g: np.array(a) for g, a in self.gradients.items()
            },
            backend=self.backend,
            from_cache=self.from_cache,
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for (de)serialization by the sweep cache."""
        return {
            "n": self.n,
            "values": self.values,
            "total_error": self.total_error,
            "per_variable": dict(self.per_variable),
            "gradients": dict(self.gradients),
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "BatchReport":
        return cls(
            n=int(d["n"]),
            values=d["values"],  # type: ignore[arg-type]
            total_error=d["total_error"],  # type: ignore[arg-type]
            per_variable=dict(d["per_variable"]),  # type: ignore[arg-type]
            gradients=dict(d["gradients"]),  # type: ignore[arg-type]
            backend=str(d["backend"]),
        )


def _is_sweep_array(a: object) -> bool:
    return (
        isinstance(a, np.ndarray) and a.ndim >= 1
    ) or isinstance(a, (list, tuple))


class BatchedErrorEstimator:
    """Batch execution façade over one :class:`ErrorEstimator`."""

    def __init__(self, est: "ErrorEstimator") -> None:
        self.est = est
        # frozenset(batched param names) -> (raw callable, source) | None
        self._variants: Dict[frozenset, Optional[Tuple[object, str]]] = {}

    # -- variant compilation ------------------------------------------------
    def _variant(
        self, batched: frozenset
    ) -> Optional[Tuple[object, str]]:
        if batched not in self._variants:
            adj = self.est.adjoint_ir
            try:
                src = generate_batch_source(adj, set(batched))
            except UnvectorizableError:
                self._variants[batched] = None
                return None
            g = runtime.batch_bindings()
            for name, impl in self.est.module.bindings().items():
                # user-bound scalar callables (external error models) are
                # lifted elementwise so they flow through batch code
                g[name] = (
                    runtime.exactwise(impl) if callable(impl) else impl
                )
            ns: Dict[str, object] = {}
            code = compile(src, f"<repro-batch:{adj.name}>", "exec")
            exec(code, g, ns)  # noqa: S102 - our own generated source
            self._variants[batched] = (ns[adj.name], src)
        return self._variants[batched]

    def batch_source(self, batched: Sequence[str]) -> Optional[str]:
        """Generated vectorized source for a swept-parameter set (None if
        the kernel is unvectorizable for that set)."""
        v = self._variant(frozenset(batched))
        return v[1] if v is not None else None

    # -- execution ----------------------------------------------------------
    def execute(self, *args: object) -> BatchReport:
        """Evaluate the estimator over a batch.

        Each positional argument is either a lane-uniform value (scalar,
        or a numpy array for an array parameter) or — for scalar
        parameters only — a length-N array/list sweeping that parameter.
        All swept arrays must share one length N.
        """
        primal = self.est.primal_ir
        params = primal.params
        if len(args) != len(params):
            raise ExecutionError(
                f"{primal.name}: expected {len(params)} arguments, "
                f"got {len(args)}"
            )
        batched: List[str] = []
        n: Optional[int] = None
        for a, p in zip(args, params):
            if isinstance(p.type, ArrayType):
                continue  # array params are always lane-uniform
            if _is_sweep_array(a):
                m = len(a)  # type: ignore[arg-type]
                if n is None:
                    n = m
                elif m != n:
                    raise ExecutionError(
                        f"{primal.name}: swept arrays disagree on batch "
                        f"size ({n} vs {m} for {p.name!r})"
                    )
                batched.append(p.name)
        if n == 0:
            raise ExecutionError(
                f"{primal.name}: empty sweep (length-0 arrays)"
            )
        if n is None:
            n = 1

        variant = None
        if batched and not self.est._runner.compiled.traces:
            variant = self._variant(frozenset(batched))
        if variant is not None:
            return self._execute_vectorized(args, batched, n, variant[0])
        return self._execute_loop(args, batched, n)

    # -- vectorized backend -------------------------------------------------
    def _execute_vectorized(
        self,
        args: Sequence[object],
        batched: List[str],
        n: int,
        raw: object,
    ) -> BatchReport:
        primal = self.est.primal_ir
        full: List[object] = []
        for a, p in zip(args, primal.params):
            dt = p.type.dtype
            if p.name in batched:
                arr = np.asarray(
                    a, dtype=np.int64 if dt is DType.I64 else np.float64
                )
                if dt in (DType.F32, DType.F16):
                    from repro.fp.precision import round_to

                    arr = np.asarray(round_to(arr, dt))
                full.append(arr)
            else:
                v: object = a
                if dt in (DType.F32, DType.F16) and isinstance(
                    a, (int, float)
                ):
                    from repro.fp.precision import round_to

                    v = round_to(float(a), dt)
                full.append(v)
        with np.errstate(all="ignore"):
            result = raw(*full)  # type: ignore[operator]
        if not isinstance(result, tuple):
            result = (result,)
        named: Dict[Tuple[str, ...], np.ndarray] = {}
        for key, val in zip(self.est.layout["ret_names"], result):
            named[tuple(key)] = np.broadcast_to(
                np.asarray(val, dtype=np.float64), (n,)
            ).copy()

        rep = BatchReport(
            n=n,
            values=named[("value",)],
            total_error=np.zeros(n),
            backend="vectorized",
        )
        for key, val in named.items():
            if key[0] == "grad":
                rep.gradients[key[1]] = val
            elif key[0] == "extra":
                if key[1] == "fp_error":
                    rep.total_error = val
                elif key[1].startswith("delta:"):
                    rep.per_variable[key[1][len("delta:"):]] = val
        self._add_input_errors(rep, args, batched, n)
        return rep

    def _add_input_errors(
        self,
        rep: BatchReport,
        args: Sequence[object],
        batched: List[str],
        n: int,
    ) -> None:
        # mirror of the scalar path: input variables are never assignment
        # targets, so their representation error is added host-side from
        # the final adjoints (Eq. 2 runs over inputs too)
        model = self.est.module.model
        primal = self.est.primal_ir
        for i, p in enumerate(primal.params):
            if p.name not in rep.gradients:
                continue
            if p.name in batched:
                values = np.asarray(args[i], dtype=np.float64)
            else:
                values = np.full(n, float(args[i]))  # type: ignore[arg-type]
            contrib = np.asarray(
                model.input_error_batch(
                    p.name, values, rep.gradients[p.name]
                ),
                dtype=np.float64,
            )
            if np.any(contrib != 0.0):
                rep.per_variable[p.name] = (
                    rep.per_variable.get(p.name, np.zeros(n)) + contrib
                )
                rep.total_error = rep.total_error + contrib

    # -- loop backend -------------------------------------------------------
    def _execute_loop(
        self, args: Sequence[object], batched: List[str], n: int
    ) -> BatchReport:
        primal = self.est.primal_ir
        reports: List[ErrorReport] = []
        for i in range(n):
            point: List[object] = []
            for a, p in zip(args, primal.params):
                if p.name in batched:
                    v = a[i]  # type: ignore[index]
                    point.append(
                        int(v) if p.type.dtype is DType.I64 else float(v)
                    )
                elif isinstance(a, np.ndarray):
                    # fresh copy per point: kernels may mutate array
                    # arguments in place
                    point.append(a.copy())
                else:
                    point.append(a)
            reports.append(self.est.execute(*point))
        per_vars = sorted({v for r in reports for v in r.per_variable})
        grads = sorted({g for r in reports for g in r.gradients})
        return BatchReport(
            n=n,
            values=np.asarray([r.value for r in reports]),
            total_error=np.asarray([r.total_error for r in reports]),
            per_variable={
                v: np.asarray(
                    [r.per_variable.get(v, 0.0) for r in reports]
                )
                for v in per_vars
            },
            gradients={
                g: np.stack(
                    [np.asarray(r.gradients[g]) for r in reports]
                )
                for g in grads
            },
            backend="loop",
        )
